// Regenerates paper Table 8: dataset bias unveiled by sufficient
// explanations. YAGO3-10 <person, born_in, city> predictions are explained
// by *football facts* (plays_for / affiliated_to), revealing that the model
// predicts birthplaces through the team-city correlation rather than
// personal data — exactly the bias the generator plants (and the paper
// found in the real YAGO3-10).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kYago310,
                                  options.dataset_scale(), options.seed);
  Result<int32_t> born = dataset.relations().Find("born_in");
  Result<int32_t> plays = dataset.relations().Find("plays_for");
  Result<int32_t> affiliated = dataset.relations().Find("affiliated_to");
  if (!born.ok() || !plays.ok() || !affiliated.ok()) {
    std::printf("expected YAGO3-10 relations missing\n");
    return 1;
  }

  std::printf("Table 8: dataset bias unveiled by Kelpie sufficient "
              "explanations (ComplEx, YAGO3-10)\n\n");
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));

  size_t shown = 0, football_explained = 0;
  const size_t to_show = options.full ? 7 : 4;
  Rng conv_rng(options.seed + 4);
  for (const Triple& t : dataset.test()) {
    if (shown >= to_show) break;
    if (t.relation != born.value()) continue;
    if (FilteredTailRank(*model, dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        *model, dataset, t, PredictionTarget::kTail,
        options.conversion_size(), conv_rng);
    if (conversion_set.empty()) continue;
    Explanation x =
        kelpie.ExplainSufficient(t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    ++shown;
    bool football = false;
    std::printf("Prediction : %s\n", dataset.TripleToString(t).c_str());
    for (const Triple& f : x.facts) {
      std::printf("  explains : %s\n", dataset.TripleToString(f).c_str());
      if (f.relation == plays.value() || f.relation == affiliated.value()) {
        football = true;
      }
    }
    if (football) ++football_explained;
    std::printf("\n");
  }
  std::printf("%zu/%zu birthplace predictions explained through football "
              "facts — the dataset bias of paper Table 8.\n",
              football_explained, shown);
  return 0;
}
