// Regenerates paper Table 7: qualitative necessary explanations for
// YAGO3-10 <actor, acted_in, movie> predictions. Expected shape: each
// explanation consists of *other films of the same actor* — the recurring
// acting ensembles the generator plants (and the original YAGO3-10
// exhibits) are recovered purely from the model's behaviour.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kYago310,
                                  options.dataset_scale(), options.seed);
  Result<int32_t> acted = dataset.relations().Find("acted_in");
  if (!acted.ok()) {
    std::printf("acted_in relation missing\n");
    return 1;
  }

  std::printf("Table 7: Kelpie necessary explanations for <actor, acted_in, "
              "movie> predictions (ComplEx, YAGO3-10)\n\n");
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));

  size_t shown = 0;
  const size_t to_show = options.full ? 5 : 3;
  for (const Triple& t : dataset.test()) {
    if (shown >= to_show) break;
    if (t.relation != acted.value()) continue;
    if (FilteredTailRank(*model, dataset, t) != 1) continue;
    Explanation x = kelpie.ExplainNecessary(t, PredictionTarget::kTail);
    if (x.empty()) continue;
    ++shown;
    std::printf("Prediction : %s\n", dataset.TripleToString(t).c_str());
    size_t same_relation = 0;
    for (const Triple& f : x.facts) {
      std::printf("  explains : %s\n", dataset.TripleToString(f).c_str());
      if (f.relation == acted.value()) ++same_relation;
    }
    std::printf("  (%zu/%zu facts are other acted_in facts of the same "
                "actor; relevance %.2f)\n\n",
                same_relation, x.size(), x.relevance);
  }
  if (shown == 0) {
    std::printf("no correctly predicted acted_in test facts at this scale; "
                "rerun with --full\n");
  }
  return 0;
}
