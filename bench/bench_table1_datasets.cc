// Regenerates paper Table 1: statistics of the five LP datasets (here:
// their synthetic stand-ins — see DESIGN.md §3 for the substitution).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::printf("Table 1: Statistics of the LP datasets we employ "
              "(synthetic stand-ins, scale=%.2f)\n\n",
              options.dataset_scale());
  PrintRow({"Dataset", "Entities", "Relations", "Train", "Valid", "Test",
            "MeanDeg", "MaxDeg"});
  PrintRule(8);
  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    DatasetStats stats = ComputeStats(dataset);
    PrintRow({stats.name, std::to_string(stats.num_entities),
              std::to_string(stats.num_relations),
              std::to_string(stats.num_train),
              std::to_string(stats.num_valid),
              std::to_string(stats.num_test),
              FormatDouble(stats.mean_entity_degree, 1),
              std::to_string(stats.max_entity_degree)});
  }
  return 0;
}
