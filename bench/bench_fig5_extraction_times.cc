// Regenerates paper Figure 5: average extraction time of a necessary (5a)
// and a sufficient (5b) explanation, per model and dataset. Expected shape:
// sufficient slower than necessary (each candidate is post-trained once per
// conversion entity); the densest dataset (FB15k) slowest.
//
// Each cell is extracted twice — with num_threads = 1 and with
// num_threads = N (--threads=N, default 4) — as the paper-extension
// parallel-extraction series. The chunked visiting semantics guarantee
// identical explanations; any divergence is reported as a determinism
// failure in the last column.
#include "bench/bench_util.h"

#include <thread>

#include "math/stats.h"

namespace {

/// One table cell, kept for the optional --json=PATH summary
/// (BENCH_fig5.json in the CI perf-smoke job).
struct CellResult {
  std::string dataset;
  std::string model;
  double nec_seq_s = 0.0;
  double nec_par_s = 0.0;
  double suf_seq_s = 0.0;
  double suf_par_s = 0.0;
  double post_trainings_per_necessary = 0.0;
  bool deterministic = true;
};

void WriteJson(const std::string& path, size_t threads,
               const std::vector<CellResult>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"threads\": %zu,\n  \"cells\": [\n", threads);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"model\": \"%s\", "
                 "\"necessary_seq_s\": %.4f, \"necessary_par_s\": %.4f, "
                 "\"sufficient_seq_s\": %.4f, \"sufficient_par_s\": %.4f, "
                 "\"post_trainings_per_necessary\": %.1f, "
                 "\"deterministic\": %s}%s\n",
                 c.dataset.c_str(), c.model.c_str(), c.nec_seq_s,
                 c.nec_par_s, c.suf_seq_s, c.suf_par_s,
                 c.post_trainings_per_necessary,
                 c.deterministic ? "true" : "false",
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);
  const size_t per_cell = options.full ? 10 : 4;
  const size_t threads = options.threads;
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("Figure 5: average extraction times in seconds "
              "(%zu predictions per cell; T%zu = %zu extraction threads; "
              "%u hardware core%s)\n",
              per_cell, threads, threads, cores, cores == 1 ? "" : "s");
  if (cores < threads) {
    std::printf("note: fewer cores than extraction threads — the speedup "
                "columns measure scheduling overhead, not parallel gain\n");
  }
  std::printf("\n");
  PrintRow({"Dataset", "Model", "Nec T1(s)", "Nec T" + std::to_string(threads),
            "Speedup", "Suf T1(s)", "Suf T" + std::to_string(threads),
            "Speedup", "PT/nec", "Match"},
           12);
  PrintRule(10, 12);

  std::vector<CellResult> cells;
  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng rng(options.seed + 2);
      std::vector<Triple> predictions =
          SampleCorrectTailPredictions(*model, dataset, per_cell, rng);
      if (predictions.empty()) continue;
      KelpieOptions seq_options = MakeKelpieOptions(options);
      KelpieOptions par_options = seq_options;
      par_options.num_threads = threads;
      KelpieExplainer seq(*model, dataset, seq_options);
      KelpieExplainer par(*model, dataset, par_options);
      RunningStats nec1, necN, suf1, sufN, nec_pt;
      bool all_match = true;
      Rng conv_rng(options.seed + 4);
      for (const Triple& p : predictions) {
        // Post-training cost of the sequential extraction, read as a delta
        // of the process metrics registry (exact at num_threads = 1).
        const uint64_t pt_before = TotalPostTrainings();
        Explanation n1 = seq.ExplainNecessary(p, PredictionTarget::kTail);
        const uint64_t pt_nec = TotalPostTrainings() - pt_before;
        Explanation nN = par.ExplainNecessary(p, PredictionTarget::kTail);
        nec1.Add(n1.seconds);
        necN.Add(nN.seconds);
        nec_pt.Add(static_cast<double>(pt_nec));
        all_match = all_match && n1.facts == nN.facts &&
                    n1.relevance == nN.relevance &&
                    n1.visited_candidates == nN.visited_candidates;
        std::vector<EntityId> conversion_set = SampleConversionEntities(
            *model, dataset, p, PredictionTarget::kTail,
            options.conversion_size(), conv_rng);
        if (conversion_set.empty()) continue;
        Explanation s1 =
            seq.ExplainSufficient(p, PredictionTarget::kTail, conversion_set);
        Explanation sN =
            par.ExplainSufficient(p, PredictionTarget::kTail, conversion_set);
        suf1.Add(s1.seconds);
        sufN.Add(sN.seconds);
        all_match = all_match && s1.facts == sN.facts &&
                    s1.relevance == sN.relevance &&
                    s1.visited_candidates == sN.visited_candidates;
      }
      auto speedup = [](const RunningStats& a, const RunningStats& b) {
        return b.mean() > 0.0 ? a.mean() / b.mean() : 0.0;
      };
      PrintRow({std::string(BenchmarkDatasetName(d)),
                std::string(ModelKindName(kind)),
                FormatDouble(nec1.mean(), 3), FormatDouble(necN.mean(), 3),
                FormatDouble(speedup(nec1, necN), 2) + "x",
                FormatDouble(suf1.mean(), 3), FormatDouble(sufN.mean(), 3),
                FormatDouble(speedup(suf1, sufN), 2) + "x",
                FormatDouble(nec_pt.mean(), 1), all_match ? "yes" : "NO"},
               12);
      cells.push_back({std::string(BenchmarkDatasetName(d)),
                       std::string(ModelKindName(kind)), nec1.mean(),
                       necN.mean(), suf1.mean(), sufN.mean(),
                       nec_pt.mean(), all_match});
    }
  }
  if (!options.json_path.empty()) {
    WriteJson(options.json_path, threads, cells);
  }
  return 0;
}
