// Regenerates paper Figure 5: average extraction time of a necessary (5a)
// and a sufficient (5b) explanation, per model and dataset. Expected shape:
// sufficient slower than necessary (each candidate is post-trained once per
// conversion entity); the densest dataset (FB15k) slowest.
#include "bench/bench_util.h"

#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);
  const size_t per_cell = options.full ? 10 : 4;

  std::printf("Figure 5: average extraction times in seconds "
              "(%zu predictions per cell)\n\n",
              per_cell);
  PrintRow({"Dataset", "Model", "Necessary(s)", "Sufficient(s)",
            "PT/nec", "PT/suf"},
           14);
  PrintRule(6, 14);

  for (BenchmarkDataset d : AllBenchmarkDatasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng rng(options.seed + 2);
      std::vector<Triple> predictions =
          SampleCorrectTailPredictions(*model, dataset, per_cell, rng);
      if (predictions.empty()) continue;
      KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));
      RunningStats nec_time, suf_time, nec_pt, suf_pt;
      Rng conv_rng(options.seed + 4);
      for (const Triple& p : predictions) {
        Explanation nx = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
        nec_time.Add(nx.seconds);
        nec_pt.Add(static_cast<double>(nx.post_trainings));
        std::vector<EntityId> conversion_set = SampleConversionEntities(
            *model, dataset, p, PredictionTarget::kTail,
            options.conversion_size(), conv_rng);
        if (conversion_set.empty()) continue;
        Explanation sx =
            kelpie.ExplainSufficient(p, PredictionTarget::kTail,
                                     conversion_set);
        suf_time.Add(sx.seconds);
        suf_pt.Add(static_cast<double>(sx.post_trainings));
      }
      PrintRow({std::string(BenchmarkDatasetName(d)),
                std::string(ModelKindName(kind)),
                FormatDouble(nec_time.mean(), 3),
                FormatDouble(suf_time.mean(), 3),
                FormatDouble(nec_pt.mean(), 1),
                FormatDouble(suf_pt.mean(), 1)},
               14);
    }
  }
  return 0;
}
