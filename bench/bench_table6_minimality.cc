// Regenerates paper Table 6: minimality of the extracted explanations.
// Each Kelpie explanation is replaced by a random strict subset; the model
// is retrained with the sub-sampled explanations applied, and the loss of
// effectiveness (sub - full) / full is reported. Expected shape: strongly
// negative percentages everywhere — the full explanations are (close to)
// minimal, so removing any part destroys much of their effect.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::printf("Table 6: Loss in effectiveness when sub-sampling necessary "
              "and sufficient explanations\n\n");
  PrintRow({"Dataset", "Model", "Nec.H@1", "Nec.MRR", "Suf.H@1", "Suf.MRR"},
           13);
  PrintRule(6, 13);

  auto percent = [](double v) { return FormatDouble(v * 100.0, 1) + "%"; };

  for (BenchmarkDataset d : options.datasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng sample_rng(options.seed + 2);
      std::vector<Triple> predictions = SampleCorrectTailPredictions(
          *model, dataset, options.num_predictions(), sample_rng);
      if (predictions.size() < 3) continue;

      KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));

      // ---- Necessary scenario. ----
      NecessaryRunResult full_nec = RunNecessaryEndToEnd(
          kelpie, kind, dataset, predictions, options.seed + 3);
      Rng sub_rng(options.seed + 6);
      std::vector<std::vector<Triple>> sub_nec =
          SubsampleExplanations(full_nec.explanations, sub_rng);
      std::vector<Triple> sub_removed;
      for (const auto& facts : sub_nec) {
        sub_removed.insert(sub_removed.end(), facts.begin(), facts.end());
      }
      LpMetrics sub_nec_metrics = RetrainAndMeasureTails(
          kind, dataset, predictions, sub_removed, {}, options.seed + 3);
      double nec_h1_loss = EffectivenessLoss(
          full_nec.after.hits_at_1 - 1.0, sub_nec_metrics.hits_at_1 - 1.0);
      double nec_mrr_loss = EffectivenessLoss(
          full_nec.after.mrr - 1.0, sub_nec_metrics.mrr - 1.0);

      // ---- Sufficient scenario. ----
      Rng conv_rng(options.seed + 4);
      SufficientRunResult full_suf = RunSufficientEndToEnd(
          kelpie, *model, kind, dataset, predictions,
          options.conversion_size(), conv_rng, options.seed + 5);
      std::vector<std::vector<Triple>> sub_suf_facts =
          SubsampleExplanations(full_suf.explanations, sub_rng);
      std::vector<Explanation> sub_suf(full_suf.explanations.size());
      for (size_t i = 0; i < sub_suf.size(); ++i) {
        sub_suf[i].facts = sub_suf_facts[i];
      }
      std::vector<Triple> converted =
          ConversionPredictions(predictions, full_suf.conversion_sets);
      std::vector<Triple> sub_added = TransferredFacts(
          predictions, sub_suf, full_suf.conversion_sets);
      LpMetrics sub_suf_metrics = RetrainAndMeasureTails(
          kind, dataset, converted, {}, sub_added, options.seed + 5);
      double suf_h1_loss = EffectivenessLoss(
          full_suf.delta_h1(),
          sub_suf_metrics.hits_at_1 - full_suf.before.hits_at_1);
      double suf_mrr_loss = EffectivenessLoss(
          full_suf.delta_mrr(), sub_suf_metrics.mrr - full_suf.before.mrr);

      PrintRow({std::string(BenchmarkDatasetName(d)),
                std::string(ModelKindName(kind)), percent(nec_h1_loss),
                percent(nec_mrr_loss), percent(suf_h1_loss),
                percent(suf_mrr_loss)},
               13);
    }
  }
  return 0;
}
