// Regenerates paper Figure 4: correlation between *preliminary* relevance
// (mean of member facts' individual relevances) and *true* relevance of
// candidate explanations, for one prediction. The paper shows the two
// correlate globally — the property that lets the Explanation Builder visit
// candidates in preliminary-relevance order and stop early. We print the
// (preliminary, true) pairs as a series plus the Pearson/Spearman
// coefficients.
#include "bench/bench_util.h"

#include "math/stats.h"

namespace {

using namespace kelpie;
using namespace kelpie::bench;

/// Collects the (preliminary, true) relevance scatter of sufficient
/// candidates over a few predictions and reports its correlation.
void RunScatter(ModelKind kind, const Dataset& dataset,
                const BenchOptions& options, bool print_points) {
  auto model = TrainModel(kind, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  std::vector<Triple> predictions = SampleCorrectTailPredictions(
      *model, dataset, options.full ? 3 : 2, rng);
  if (predictions.empty()) {
    std::printf("%s: no correct prediction found\n",
                std::string(ModelKindName(kind)).c_str());
    return;
  }

  KelpieOptions kelpie_options = MakeKelpieOptions(options);
  // Explore exhaustively (no threshold acceptance, generous visit budget)
  // so the scatter covers the candidate space.
  kelpie_options.builder.sufficient_threshold = 1e9;
  kelpie_options.builder.max_visits_per_size = options.full ? 150 : 60;
  kelpie_options.builder.max_explanation_length = 3;
  kelpie_options.builder.exhaustive = true;
  Kelpie kelpie(*model, dataset, kelpie_options);

  std::vector<double> preliminary, true_relevance;
  std::vector<size_t> sizes;
  for (const Triple& prediction : predictions) {
    kelpie.ExplainSufficient(
        prediction, PredictionTarget::kTail, nullptr,
        [&](size_t size, double prelim, double true_rel) {
          sizes.push_back(size);
          preliminary.push_back(prelim);
          true_relevance.push_back(true_rel);
        });
  }

  if (print_points) {
    PrintRow({"size", "preliminary", "true"});
    PrintRule(3);
    for (size_t i = 0; i < preliminary.size(); ++i) {
      PrintRow({std::to_string(sizes[i]), FormatDouble(preliminary[i], 4),
                FormatDouble(true_relevance[i], 4)});
    }
  }
  // Correlation over multi-fact candidates (for size 1 the two coincide by
  // definition).
  std::vector<double> px, py;
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (sizes[i] > 1) {
      px.push_back(preliminary[i]);
      py.push_back(true_relevance[i]);
    }
  }
  std::printf("\n%s: %zu candidates (%zu multi-fact), Pearson %.3f, "
              "Spearman %.3f\n\n",
              std::string(ModelKindName(kind)).c_str(), sizes.size(),
              px.size(), PearsonCorrelation(px, py),
              SpearmanCorrelation(px, py));
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseArgs(argc, argv);
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k,
                                  options.dataset_scale(), options.seed);
  std::printf("Figure 4: preliminary vs true relevance of sufficient "
              "candidate explanations (FB15k)\n\n");
  // The paper's figure uses a TransE FB15k prediction; ComplEx is shown as
  // well (its post-training is less noisy, making the correlation easier
  // to see at this reduced scale).
  RunScatter(ModelKind::kTransE, dataset, options, /*print_points=*/true);
  RunScatter(ModelKind::kComplEx, dataset, options, /*print_points=*/false);
  return 0;
}
