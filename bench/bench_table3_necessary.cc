// Regenerates paper Table 3: end-to-end effectiveness of NECESSARY
// explanations (ΔH@1 / ΔMRR after removing the explanations and retraining;
// more negative = more effective). Frameworks: K1, Kelpie, DP, Criage
// (Criage skipped for TransE, as in the paper). Expected shape: Kelpie most
// negative nearly everywhere; K1 and DP competitive; Criage weak.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::printf("Table 3: End-to-end effectiveness of necessary explanations\n"
              "(dataset scale %.2f, |P| = %zu per cell; more negative = "
              "better)\n\n",
              options.dataset_scale(), options.num_predictions());
  PrintRow({"Dataset", "Model", "Framework", "dH@1", "dMRR", "AvgLen"});
  PrintRule(6);

  for (BenchmarkDataset d : options.datasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng sample_rng(options.seed + 2);
      std::vector<Triple> predictions = SampleCorrectTailPredictions(
          *model, dataset, options.num_predictions(), sample_rng);
      if (predictions.size() < 3) {
        std::fprintf(stderr,
                     "[bench] %s/%s: too few correct predictions (%zu), "
                     "skipping\n",
                     std::string(BenchmarkDatasetName(d)).c_str(),
                     std::string(ModelKindName(kind)).c_str(),
                     predictions.size());
        continue;
      }
      for (auto& framework : MakeFrameworks(*model, dataset, options)) {
        NecessaryRunResult run = RunNecessaryEndToEnd(
            *framework, kind, dataset, predictions, options.seed + 3);
        double total_len = 0.0;
        for (const Explanation& x : run.explanations) {
          total_len += static_cast<double>(x.size());
        }
        PrintRow({std::string(BenchmarkDatasetName(d)),
                  std::string(ModelKindName(kind)),
                  std::string(framework->Name()),
                  FormatSigned(run.delta_h1(), 3),
                  FormatSigned(run.delta_mrr(), 3),
                  FormatDouble(total_len /
                                   static_cast<double>(run.explanations.size()),
                               2)});
      }
    }
  }
  return 0;
}
