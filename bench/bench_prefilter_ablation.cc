// Pre-Filter ablation (the studies the paper reports in its repository):
//  (a) top-k sweep — the trade-off between extraction cost and explanation
//      quality (k = 20 is the paper's default);
//  (b) promisingness policy — BFS topology vs the type-similarity variant
//      (Section 4.1 reports the two behave similarly).
#include "bench/bench_util.h"

#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  const size_t num_predictions = options.full ? 12 : 6;
  std::vector<Triple> predictions = SampleCorrectTailPredictions(
      *model, dataset, num_predictions, rng);

  std::printf("Pre-Filter ablation (ComplEx, FB15k-237, %zu predictions)\n\n",
              predictions.size());
  PrintRow({"Policy", "top-k", "AvgRelev", "AvgLen", "AvgTime(s)", "AvgPT"},
           13);
  PrintRule(6, 13);

  struct Config {
    PromisingnessPolicy policy;
    size_t top_k;
    const char* name;
  };
  std::vector<Config> configs{
      {PromisingnessPolicy::kTopology, 5, "topology"},
      {PromisingnessPolicy::kTopology, 10, "topology"},
      {PromisingnessPolicy::kTopology, 20, "topology"},
      {PromisingnessPolicy::kTopology, 40, "topology"},
      {PromisingnessPolicy::kTypeSimilarity, 20, "type-sim"},
  };
  for (const Config& config : configs) {
    KelpieOptions kelpie_options = MakeKelpieOptions(options);
    kelpie_options.prefilter.policy = config.policy;
    kelpie_options.prefilter.top_k = config.top_k;
    Kelpie kelpie(*model, dataset, kelpie_options);
    RunningStats relevance, length, seconds, post_trainings;
    for (const Triple& p : predictions) {
      Explanation x = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
      relevance.Add(x.relevance);
      length.Add(static_cast<double>(x.size()));
      seconds.Add(x.seconds);
      post_trainings.Add(static_cast<double>(x.post_trainings));
    }
    PrintRow({config.name, std::to_string(config.top_k),
              FormatDouble(relevance.mean(), 2),
              FormatDouble(length.mean(), 2),
              FormatDouble(seconds.mean(), 3),
              FormatDouble(post_trainings.mean(), 1)},
             13);
  }
  return 0;
}
