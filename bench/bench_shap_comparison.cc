// Regenerates the Section 4.3 comparison between the Explanation Builder
// and a KernelSHAP-style exploration of the same candidate space. Both
// strategies consume the same cost unit — one post-training per coalition /
// candidate evaluation. Expected shape: KernelSHAP needs orders of
// magnitude more evaluations to produce stable Shapley attributions than
// the Explanation Builder needs to find an accepted explanation.
#include <cmath>

#include "bench/bench_util.h"

#include "core/prefilter.h"
#include "core/relevance_engine.h"

namespace {

using namespace kelpie;

/// Solves the (k+1)x(k+1) linear system A x = b by Gaussian elimination
/// with partial pivoting (KernelSHAP's weighted regression normal
/// equations). Returns false on a singular system.
bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < n; ++row) {
      double factor = a[row][col] / a[col][col];
      for (size_t c2 = col; c2 < n; ++c2) {
        a[row][c2] -= factor * a[col][c2];
      }
      b[row] -= factor * b[col];
    }
  }
  for (size_t col = n; col-- > 0;) {
    for (size_t row = 0; row < col; ++row) {
      b[row] -= a[row][col] / a[col][col] * b[col];
    }
    b[col] /= a[col][col];
  }
  return true;
}

/// KernelSHAP over the Pre-Filtered facts: features are facts, the value of
/// a coalition is its necessary relevance (each evaluation costs one
/// post-training, like a Builder visit). Samples coalitions in rounds and
/// refits the weighted regression until the attribution vector stabilizes.
/// Returns the number of value-function evaluations consumed.
size_t RunKernelShap(RelevanceEngine& engine, const Triple& prediction,
                     const std::vector<Triple>& facts, Rng& rng,
                     size_t max_evaluations) {
  const size_t k = facts.size();
  // Accumulated normal equations: design is [z_1..z_k, 1], weighted by the
  // SHAP kernel weight of the coalition size.
  std::vector<std::vector<double>> xtx(k + 1,
                                       std::vector<double>(k + 1, 0.0));
  std::vector<double> xty(k + 1, 0.0);
  std::vector<double> previous(k, 0.0);
  size_t evaluations = 0;
  const size_t round_size = 64;
  const double tolerance = 0.25;  // rank units

  while (evaluations < max_evaluations) {
    for (size_t s = 0; s < round_size && evaluations < max_evaluations;
         ++s) {
      // Draw a non-trivial coalition (KernelSHAP's kernel is infinite at
      // the empty/full coalitions; they are handled as constraints — here
      // approximated by large weights).
      size_t size = 1 + static_cast<size_t>(rng.UniformUint64(k - 1));
      std::vector<size_t> members =
          rng.SampleWithoutReplacement(k, size);
      std::vector<Triple> coalition;
      for (size_t m : members) coalition.push_back(facts[m]);
      double value = engine.NecessaryRelevance(
          prediction, PredictionTarget::kTail, coalition);
      ++evaluations;
      double weight =
          static_cast<double>(k - 1) /
          (static_cast<double>(size) * static_cast<double>(k - size));
      std::vector<double> z(k + 1, 0.0);
      for (size_t m : members) z[m] = 1.0;
      z[k] = 1.0;
      for (size_t i = 0; i <= k; ++i) {
        if (z[i] == 0.0) continue;
        for (size_t j = 0; j <= k; ++j) {
          xtx[i][j] += weight * z[i] * z[j];
        }
        xty[i] += weight * z[i] * value;
      }
    }
    // Refit and test convergence of the attribution vector.
    std::vector<std::vector<double>> a = xtx;
    for (size_t i = 0; i <= k; ++i) a[i][i] += 1e-6;  // ridge
    std::vector<double> b = xty;
    if (!SolveLinearSystem(a, b)) continue;
    double max_change = 0.0;
    for (size_t i = 0; i < k; ++i) {
      max_change = std::max(max_change, std::fabs(b[i] - previous[i]));
      previous[i] = b[i];
    }
    if (evaluations > round_size && max_change < tolerance) break;
  }
  return evaluations;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  const size_t num_predictions = options.full ? 4 : 2;
  std::vector<Triple> predictions = SampleCorrectTailPredictions(
      *model, dataset, num_predictions, rng);

  std::printf("Explanation Builder vs KernelSHAP: post-trainings consumed "
              "per prediction\n(the paper reports dozens-hundreds vs "
              "hundreds of thousands at full scale)\n\n");
  PrintRow({"Prediction", "k", "Builder", "KernelSHAP", "Ratio"}, 14);
  PrintRule(5, 14);

  const size_t shap_cap = options.full ? 4000 : 1200;
  for (const Triple& p : predictions) {
    KelpieOptions kelpie_options = MakeKelpieOptions(options);
    Kelpie kelpie(*model, dataset, kelpie_options);
    Explanation x = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
    size_t builder_cost = x.post_trainings;

    PreFilter prefilter(dataset, kelpie_options.prefilter);
    std::vector<Triple> facts =
        prefilter.MostPromisingFacts(p, PredictionTarget::kTail);
    if (facts.size() < 3) continue;
    RelevanceEngine engine(*model, dataset, kelpie_options.engine);
    Rng shap_rng(options.seed + 9);
    size_t shap_cost =
        RunKernelShap(engine, p, facts, shap_rng, shap_cap);
    std::string suffix = shap_cost >= shap_cap ? "+ (capped)" : "";
    PrintRow({dataset.TripleToString(p).substr(0, 13),
              std::to_string(facts.size()), std::to_string(builder_cost),
              std::to_string(shap_cost) + suffix,
              kelpie::FormatDouble(
                  static_cast<double>(shap_cost) /
                      std::max<size_t>(1, builder_cost),
                  1) + "x"},
             14);
  }
  return 0;
}
