// Microbenchmark of the math/simd.h kernel layer and the all-candidate
// scoring paths built on it (DESIGN.md §11). Two sections:
//
//  1. Kernel ns/op: each simd:: kernel through the active backend
//     (whatever KELPIE_SIMD selected at configure time) against the
//     always-compiled simd::scalar:: reference, at embedding-sized dims.
//     Both produce bit-identical results by contract, so the delta is pure
//     throughput.
//  2. ScoreAll throughput: ScoreAllTails entities/second per model on a
//     fixed small synthetic dataset — the post-training sweep and filtered
//     ranking hot path.
//
// With --json=PATH a machine-readable summary (BENCH_kernels.json in CI)
// is written for the perf-smoke delta report; timings vary run to run, so
// the JSON is compared report-only against bench/baseline.json.
#include "bench/bench_util.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "math/matrix.h"
#include "math/quant.h"
#include "math/rng.h"
#include "math/simd.h"

namespace {

using namespace kelpie;
using namespace kelpie::bench;

/// Defeats dead-code elimination of pure-result kernels without a memory
/// barrier per call.
float g_sink = 0.0f;

struct KernelTiming {
  std::string name;
  size_t dim = 0;
  double active_ns = 0.0;
  double scalar_ns = 0.0;

  double speedup() const {
    return active_ns > 0.0 ? scalar_ns / active_ns : 0.0;
  }
};

/// Times `op(iters)` (which must run the kernel `iters` times), returning
/// ns per kernel call. Calibrates the iteration count to a ~60ms window and
/// keeps the best of three repetitions to shed scheduler noise.
template <typename Op>
double TimeNsPerOp(Op&& op, size_t calibrate_iters = 1024) {
  Stopwatch timer;
  op(calibrate_iters);
  double elapsed = timer.ElapsedSeconds();
  const double target_seconds = 0.06;
  size_t iters = calibrate_iters;
  if (elapsed > 0.0 && elapsed < target_seconds) {
    iters = static_cast<size_t>(
        static_cast<double>(calibrate_iters) * target_seconds / elapsed);
  }
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    timer.Restart();
    op(iters);
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best * 1e9 / static_cast<double>(iters);
}

std::vector<float> BenchVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

/// Benchmarks one reduction kernel (Dot-shaped signature) through both
/// paths.
template <typename ActiveKernel, typename ScalarKernel>
KernelTiming TimeReduction(const std::string& name, size_t dim, Rng& rng,
                           ActiveKernel&& active, ScalarKernel&& scalar) {
  std::vector<float> a = BenchVec(dim, rng);
  std::vector<float> b = BenchVec(dim, rng);
  KernelTiming t;
  t.name = name;
  t.dim = dim;
  t.active_ns = TimeNsPerOp([&](size_t iters) {
    float acc = 0.0f;
    for (size_t i = 0; i < iters; ++i) acc += active(a, b);
    g_sink += acc;
  });
  t.scalar_ns = TimeNsPerOp([&](size_t iters) {
    float acc = 0.0f;
    for (size_t i = 0; i < iters; ++i) acc += scalar(a, b);
    g_sink += acc;
  });
  return t;
}

KernelTiming TimeAxpy(size_t dim, Rng& rng) {
  std::vector<float> x = BenchVec(dim, rng);
  std::vector<float> y = BenchVec(dim, rng);
  // Tiny alpha keeps y bounded over millions of accumulations.
  const float alpha = 1e-7f;
  KernelTiming t;
  t.name = "axpy";
  t.dim = dim;
  t.active_ns = TimeNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) simd::Axpy(alpha, x, y);
    g_sink += y[0];
  });
  t.scalar_ns = TimeNsPerOp([&](size_t iters) {
    for (size_t i = 0; i < iters; ++i) simd::scalar::Axpy(alpha, x, y);
    g_sink += y[0];
  });
  return t;
}

/// Row-sweep kernels (Gemv / SquaredDistanceRows): one "op" is a full
/// rows x cols sweep, mirroring a ScoreAll call over the entity table.
template <typename ActiveKernel, typename ScalarKernel>
KernelTiming TimeRowSweep(const std::string& name, size_t rows, size_t cols,
                          Rng& rng, ActiveKernel&& active,
                          ScalarKernel&& scalar) {
  std::vector<float> m = BenchVec(rows * cols, rng);
  std::vector<float> x = BenchVec(cols, rng);
  std::vector<float> out(rows);
  KernelTiming t;
  t.name = name;
  t.dim = cols;
  t.active_ns = TimeNsPerOp(
      [&](size_t iters) {
        for (size_t i = 0; i < iters; ++i) {
          active(m.data(), rows, cols, x.data(), out.data());
        }
        g_sink += out[0];
      },
      /*calibrate_iters=*/16);
  t.scalar_ns = TimeNsPerOp(
      [&](size_t iters) {
        for (size_t i = 0; i < iters; ++i) {
          scalar(m.data(), rows, cols, x.data(), out.data());
        }
        g_sink += out[0];
      },
      /*calibrate_iters=*/16);
  return t;
}

/// Quantized-shortlist sweeps (math/quant.h, DESIGN.md §15): the int8
/// certified-interval candidate sweep against the exact float sweep it
/// prunes for, at paper-benchmark entity counts (FB15k-237 has 14541
/// entities). The *_shortlist rows additionally time the per-call query
/// quantization and the guaranteed-superset top-K selection — the full
/// work the quantized rank path does before exact re-scoring.
struct QuantTiming {
  std::string name;
  size_t rows = 0;
  size_t dim = 0;
  double exact_ns = 0.0;
  double quant_ns = 0.0;

  double speedup() const {
    return quant_ns > 0.0 ? exact_ns / quant_ns : 0.0;
  }
};

QuantTiming TimeQuantSweep(const std::string& name, size_t rows, size_t cols,
                           Rng& rng, bool dot, bool shortlist) {
  Matrix table(rows, cols);
  {
    std::span<float> data = table.Data();
    for (float& v : data) {
      v = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
    }
  }
  const Matrix& ctable = table;
  std::vector<float> x = BenchVec(cols, rng);
  // Table quantization is amortized across every rank call by the
  // per-model TableCache, so it stays outside the timed region; the query
  // is quantized per call, so it stays inside.
  std::shared_ptr<const quant::QuantizedTable> qtable =
      quant::QuantizeRowMajor(ctable);
  std::vector<float> exact_out(rows);
  std::vector<double> approx(rows);
  std::vector<double> err(rows);

  QuantTiming t;
  t.name = name;
  t.rows = rows;
  t.dim = cols;
  t.exact_ns = TimeNsPerOp(
      [&](size_t iters) {
        for (size_t i = 0; i < iters; ++i) {
          if (dot) {
            simd::GemvRowMajor(ctable.Data().data(), rows, cols, x.data(),
                               exact_out.data());
          } else {
            simd::SquaredDistanceRows(ctable.Data().data(), rows, cols,
                                      x.data(), exact_out.data());
          }
        }
        g_sink += exact_out[0];
      },
      /*calibrate_iters=*/4);
  t.quant_ns = TimeNsPerOp(
      [&](size_t iters) {
        for (size_t i = 0; i < iters; ++i) {
          quant::QuantizedVec qx = quant::QuantizeVec(x);
          if (dot) {
            quant::ApproxDots(*qtable, qx, approx, err);
          } else {
            quant::ApproxSquaredDistances(*qtable, qx, approx, err);
          }
          if (shortlist) {
            std::vector<size_t> keep = quant::SelectShortlist(
                approx, err, /*k=*/10, /*slack=*/16, /*largest=*/dot);
            g_sink += static_cast<float>(keep.size());
          }
        }
        g_sink += static_cast<float>(approx[0]);
      },
      /*calibrate_iters=*/4);
  return t;
}

struct ScoreAllTiming {
  std::string model;
  size_t num_entities = 0;
  size_t dim = 0;
  double ns_per_call = 0.0;

  double entities_per_second() const {
    return ns_per_call > 0.0
               ? static_cast<double>(num_entities) * 1e9 / ns_per_call
               : 0.0;
  }
};

ScoreAllTiming TimeScoreAll(ModelKind kind, const Dataset& dataset,
                            uint64_t seed) {
  auto model = TrainModel(kind, dataset, seed);
  std::vector<float> scores(model->num_entities());
  const auto& train = dataset.train();
  ScoreAllTiming t;
  t.model = std::string(ModelKindName(kind));
  t.num_entities = model->num_entities();
  t.dim = model->entity_dim();
  size_t cursor = 0;
  t.ns_per_call = TimeNsPerOp(
      [&](size_t iters) {
        for (size_t i = 0; i < iters; ++i) {
          const Triple& q = train[cursor++ % train.size()];
          model->ScoreAllTails(q.head, q.relation, scores);
        }
        g_sink += scores[0];
      },
      /*calibrate_iters=*/8);
  return t;
}

void WriteJson(const std::string& path,
               const std::vector<KernelTiming>& kernels,
               const std::vector<QuantTiming>& quant,
               const std::vector<ScoreAllTiming>& score_all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"backend\": \"%s\",\n  \"kernels\": [\n",
               std::string(simd::BackendName()).c_str());
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelTiming& k = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dim\": %zu, "
                 "\"active_ns_per_op\": %.2f, \"scalar_ns_per_op\": %.2f, "
                 "\"speedup\": %.3f}%s\n",
                 k.name.c_str(), k.dim, k.active_ns, k.scalar_ns,
                 k.speedup(), i + 1 < kernels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"quant\": [\n");
  for (size_t i = 0; i < quant.size(); ++i) {
    const QuantTiming& q = quant[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %zu, \"dim\": %zu, "
                 "\"exact_ns_per_op\": %.0f, \"quant_ns_per_op\": %.0f, "
                 "\"speedup\": %.3f}%s\n",
                 q.name.c_str(), q.rows, q.dim, q.exact_ns, q.quant_ns,
                 q.speedup(), i + 1 < quant.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"score_all\": [\n");
  for (size_t i = 0; i < score_all.size(); ++i) {
    const ScoreAllTiming& s = score_all[i];
    std::fprintf(f,
                 "    {\"model\": \"%s\", \"entities\": %zu, \"dim\": %zu, "
                 "\"ns_per_call\": %.0f, \"entities_per_second\": %.0f}%s\n",
                 s.model.c_str(), s.num_entities, s.dim, s.ns_per_call,
                 s.entities_per_second(),
                 i + 1 < score_all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseArgs(argc, argv);
  Rng rng(options.seed);

  std::printf("Kernel microbenchmark (backend: %s)\n\n",
              std::string(simd::BackendName()).c_str());
  PrintRow({"Kernel", "Dim", "Active ns", "Scalar ns", "Speedup"}, 12);
  PrintRule(5, 12);

  std::vector<KernelTiming> kernels;
  const size_t dims[] = {64, 128, 256};
  for (size_t dim : dims) {
    kernels.push_back(TimeReduction(
        "dot", dim, rng,
        [](std::span<const float> a, std::span<const float> b) {
          return simd::Dot(a, b);
        },
        [](std::span<const float> a, std::span<const float> b) {
          return simd::scalar::Dot(a, b);
        }));
    kernels.push_back(TimeReduction(
        "squared_distance", dim, rng,
        [](std::span<const float> a, std::span<const float> b) {
          return simd::SquaredDistance(a, b);
        },
        [](std::span<const float> a, std::span<const float> b) {
          return simd::scalar::SquaredDistance(a, b);
        }));
    kernels.push_back(TimeReduction(
        "l1_distance", dim, rng,
        [](std::span<const float> a, std::span<const float> b) {
          return simd::L1Distance(a, b);
        },
        [](std::span<const float> a, std::span<const float> b) {
          return simd::scalar::L1Distance(a, b);
        }));
    kernels.push_back(TimeAxpy(dim, rng));
  }
  // Row sweeps sized like a ScoreAll over a mid-sized entity table.
  const size_t sweep_rows = 4096;
  for (size_t dim : dims) {
    kernels.push_back(TimeRowSweep(
        "gemv_row_major", sweep_rows, dim, rng,
        [](const float* m, size_t rows, size_t cols, const float* x,
           float* out) { simd::GemvRowMajor(m, rows, cols, x, out); },
        [](const float* m, size_t rows, size_t cols, const float* x,
           float* out) {
          simd::scalar::GemvRowMajor(m, rows, cols, x, out);
        }));
    kernels.push_back(TimeRowSweep(
        "squared_distance_rows", sweep_rows, dim, rng,
        [](const float* m, size_t rows, size_t cols, const float* x,
           float* out) { simd::SquaredDistanceRows(m, rows, cols, x, out); },
        [](const float* m, size_t rows, size_t cols, const float* x,
           float* out) {
          simd::scalar::SquaredDistanceRows(m, rows, cols, x, out);
        }));
  }
  for (const KernelTiming& k : kernels) {
    PrintRow({k.name, std::to_string(k.dim), FormatDouble(k.active_ns, 1),
              FormatDouble(k.scalar_ns, 1),
              FormatDouble(k.speedup(), 2) + "x"},
             12);
  }

  // Quantized candidate sweep vs the exact float sweep it prunes for, at
  // FB15k-237 entity count (DESIGN.md §15 sets a >= 2x target for the
  // sweep itself).
  const size_t quant_rows = 14541;
  std::printf("\nQuantized shortlist sweep (%zu rows)\n\n", quant_rows);
  PrintRow({"Sweep", "Dim", "Exact ns", "Quant ns", "Speedup"}, 16);
  PrintRule(5, 16);
  std::vector<QuantTiming> quant;
  // Paper-scale embedding widths (the reference models run 200-1000-float
  // entity rows); below ~128 the stat-array streams cap the win.
  const size_t quant_dims[] = {128, 256, 512};
  for (size_t dim : quant_dims) {
    quant.push_back(TimeQuantSweep("quant_dot_sweep", quant_rows, dim, rng,
                                   /*dot=*/true, /*shortlist=*/false));
    quant.push_back(TimeQuantSweep("quant_distance_sweep", quant_rows, dim,
                                   rng, /*dot=*/false, /*shortlist=*/false));
  }
  quant.push_back(TimeQuantSweep("quant_dot_shortlist", quant_rows, 256, rng,
                                 /*dot=*/true, /*shortlist=*/true));
  quant.push_back(TimeQuantSweep("quant_distance_shortlist", quant_rows, 256,
                                 rng, /*dot=*/false, /*shortlist=*/true));
  for (const QuantTiming& q : quant) {
    PrintRow({q.name, std::to_string(q.dim), FormatDouble(q.exact_ns, 0),
              FormatDouble(q.quant_ns, 0),
              FormatDouble(q.speedup(), 2) + "x"},
             16);
  }

  std::printf("\nScoreAllTails throughput (fixed small dataset)\n\n");
  PrintRow({"Model", "Entities", "Dim", "us/call", "Ment/s"}, 12);
  PrintRule(5, 12);
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  std::vector<ScoreAllTiming> score_all;
  for (ModelKind kind :
       {ModelKind::kTransE, ModelKind::kDistMult, ModelKind::kComplEx,
        ModelKind::kRotatE, ModelKind::kConvE}) {
    score_all.push_back(TimeScoreAll(kind, dataset, options.seed + 1));
    const ScoreAllTiming& s = score_all.back();
    PrintRow({s.model, std::to_string(s.num_entities),
              std::to_string(s.dim), FormatDouble(s.ns_per_call / 1e3, 1),
              FormatDouble(s.entities_per_second() / 1e6, 2)},
             12);
  }

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, kernels, quant, score_all);
  }
  // Keep g_sink observable so no measured loop is optimized away.
  std::fprintf(stderr, "[bench] checksum %.6g\n",
               static_cast<double>(g_sink));
  return 0;
}
