// Regenerates paper Figure 6: extraction time with and without the
// Pre-Filter as a function of the head entity's degree (ComplEx,
// FB15k-237). Expected shape: with Pre-Filtering the time stays flat in the
// degree; without it the time grows steeply (the candidate space is
// binomial in the degree).
#include <map>

#include "bench/bench_util.h"

#include "math/stats.h"

namespace {

using namespace kelpie;

/// Finds, for each degree bucket, up to `per_bucket` tail predictions whose
/// head has a degree within the bucket: held-out (test/valid) facts first,
/// then — because high-degree heads rarely appear in the small held-out
/// splits — training facts (a pure timing study; Kelpie explains training
/// facts exactly like held-out ones).
std::vector<std::pair<std::string, std::vector<Triple>>> BucketPredictions(
    const Dataset& dataset, size_t per_bucket) {
  const std::vector<std::pair<int, int>> buckets{
      {5, 15}, {15, 40}, {40, 90}, {90, 350}};
  std::vector<std::pair<std::string, std::vector<Triple>>> out;
  for (auto [lo, hi] : buckets) {
    std::vector<Triple> picks;
    for (const auto* split :
         {&dataset.test(), &dataset.valid(), &dataset.train()}) {
      for (const Triple& t : *split) {
        if (picks.size() >= per_bucket) break;
        int degree =
            static_cast<int>(dataset.train_graph().Degree(t.head));
        if (degree >= lo && degree < hi) picks.push_back(t);
      }
      if (picks.size() >= per_bucket) break;
    }
    out.emplace_back("[" + std::to_string(lo) + "," + std::to_string(hi) +
                         ")",
                     std::move(picks));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);

  std::printf("Figure 6: extraction times with and without the Pre-Filter, "
              "by head degree (ComplEx, FB15k-237)\n\n");
  PrintRow({"HeadDegree", "N", "WithPF(s)", "WithoutPF(s)", "PT.with",
            "PT.without"},
           14);
  PrintRule(6, 14);

  const size_t per_bucket = options.full ? 5 : 3;
  for (auto& [bucket, predictions] : BucketPredictions(dataset, per_bucket)) {
    if (predictions.empty()) {
      PrintRow({bucket, "0", "-", "-", "-", "-"}, 14);
      continue;
    }
    KelpieOptions with_options = MakeKelpieOptions(options);
    KelpieOptions without_options = with_options;
    without_options.prefilter.policy = PromisingnessPolicy::kNone;
    // Keep the exploration budget identical; only the candidate pool size
    // differs.
    Kelpie with_pf(*model, dataset, with_options);
    Kelpie without_pf(*model, dataset, without_options);

    RunningStats with_time, without_time, with_pt, without_pt;
    for (const Triple& p : predictions) {
      Explanation a = with_pf.ExplainNecessary(p, PredictionTarget::kTail);
      with_time.Add(a.seconds);
      with_pt.Add(static_cast<double>(a.post_trainings));
      Explanation b = without_pf.ExplainNecessary(p, PredictionTarget::kTail);
      without_time.Add(b.seconds);
      without_pt.Add(static_cast<double>(b.post_trainings));
    }
    PrintRow({bucket, std::to_string(predictions.size()),
              FormatDouble(with_time.mean(), 3),
              FormatDouble(without_time.mean(), 3),
              FormatDouble(with_pt.mean(), 1),
              FormatDouble(without_pt.mean(), 1)},
             14);
  }
  return 0;
}
