// Regenerates paper Table 4: end-to-end effectiveness of SUFFICIENT
// explanations (ΔH@1 / ΔMRR over the fictitious conversion predictions P_C
// after adding the transferred facts and retraining; more positive =
// better). Expected shape: Kelpie >= K1 > DP >> Criage, with DP degrading
// most on ConvE (its constant-ε shift fights the unstable deep gradient).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::printf("Table 4: End-to-end effectiveness of sufficient explanations\n"
              "(dataset scale %.2f, |P| = %zu, |C| = %zu; more positive = "
              "better)\n\n",
              options.dataset_scale(), options.num_predictions(),
              options.conversion_size());
  PrintRow({"Dataset", "Model", "Framework", "dH@1", "dMRR", "AvgLen"});
  PrintRule(6);

  for (BenchmarkDataset d : options.datasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng sample_rng(options.seed + 2);
      std::vector<Triple> predictions = SampleCorrectTailPredictions(
          *model, dataset, options.num_predictions(), sample_rng);
      if (predictions.size() < 3) {
        std::fprintf(stderr, "[bench] %s/%s: too few correct predictions, "
                             "skipping\n",
                     std::string(BenchmarkDatasetName(d)).c_str(),
                     std::string(ModelKindName(kind)).c_str());
        continue;
      }
      for (auto& framework : MakeFrameworks(*model, dataset, options)) {
        Rng conv_rng(options.seed + 4);
        SufficientRunResult run = RunSufficientEndToEnd(
            *framework, *model, kind, dataset, predictions,
            options.conversion_size(), conv_rng, options.seed + 5);
        double total_len = 0.0;
        for (const Explanation& x : run.explanations) {
          total_len += static_cast<double>(x.size());
        }
        PrintRow({std::string(BenchmarkDatasetName(d)),
                  std::string(ModelKindName(kind)),
                  std::string(framework->Name()),
                  FormatSigned(run.delta_h1(), 3),
                  FormatSigned(run.delta_mrr(), 3),
                  FormatDouble(total_len /
                                   static_cast<double>(run.explanations.size()),
                               2)});
      }
    }
  }
  return 0;
}
