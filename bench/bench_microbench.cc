// Google-benchmark microbenchmarks of the primitives the framework's cost
// model is built on: all-candidate scoring, BFS promisingness, one
// post-training, and one full relevance computation, per model family.
#include <benchmark/benchmark.h>

#include "core/prefilter.h"
#include "core/relevance_engine.h"
#include "datagen/datasets.h"
#include "eval/ranking.h"
#include "models/factory.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

struct Fixture {
  Dataset dataset;
  std::unique_ptr<LinkPredictionModel> transe;
  std::unique_ptr<LinkPredictionModel> complex_model;
  std::unique_ptr<LinkPredictionModel> conve;
  Triple probe;

  Fixture()
      : dataset(MakeBenchmark(BenchmarkDataset::kFb15k237, 0.35, 7)) {
    transe = CreateAndTrain(ModelKind::kTransE, dataset, 11);
    complex_model = CreateAndTrain(ModelKind::kComplEx, dataset, 11);
    conve = CreateAndTrain(ModelKind::kConvE, dataset, 11);
    probe = dataset.test().front();
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

LinkPredictionModel& ModelByIndex(int index) {
  Fixture& f = GetFixture();
  switch (index) {
    case 0:
      return *f.transe;
    case 1:
      return *f.complex_model;
    default:
      return *f.conve;
  }
}

void BM_ScoreAllTails(benchmark::State& state) {
  Fixture& f = GetFixture();
  LinkPredictionModel& model = ModelByIndex(static_cast<int>(state.range(0)));
  std::vector<float> scores(model.num_entities());
  for (auto _ : state) {
    model.ScoreAllTails(f.probe.head, f.probe.relation, scores);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_ScoreAllTails)->Arg(0)->Arg(1)->Arg(2);

void BM_FilteredTailRank(benchmark::State& state) {
  Fixture& f = GetFixture();
  LinkPredictionModel& model = ModelByIndex(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FilteredTailRank(model, f.dataset, f.probe));
  }
}
BENCHMARK(BM_FilteredTailRank)->Arg(0)->Arg(1)->Arg(2);

void BM_BfsPromisingness(benchmark::State& state) {
  Fixture& f = GetFixture();
  PreFilter prefilter(f.dataset, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prefilter.MostPromisingFacts(f.probe, PredictionTarget::kTail));
  }
}
BENCHMARK(BM_BfsPromisingness);

void BM_PostTraining(benchmark::State& state) {
  Fixture& f = GetFixture();
  LinkPredictionModel& model = ModelByIndex(static_cast<int>(state.range(0)));
  std::vector<Triple> facts = f.dataset.train_graph().FactsOf(f.probe.head);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.PostTrainMimic(f.dataset, f.probe.head, facts, rng));
  }
}
BENCHMARK(BM_PostTraining)->Arg(0)->Arg(1)->Arg(2);

void BM_NecessaryRelevance(benchmark::State& state) {
  Fixture& f = GetFixture();
  LinkPredictionModel& model = ModelByIndex(static_cast<int>(state.range(0)));
  RelevanceEngine engine(model, f.dataset, {});
  std::vector<Triple> facts = f.dataset.train_graph().FactsOf(f.probe.head);
  std::vector<Triple> candidate{facts.front()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.NecessaryRelevance(
        f.probe, PredictionTarget::kTail, candidate));
  }
}
BENCHMARK(BM_NecessaryRelevance)->Arg(0)->Arg(1)->Arg(2);

void BM_DatasetGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MakeBenchmark(BenchmarkDataset::kWn18rr, 0.35, 7));
  }
}
BENCHMARK(BM_DatasetGeneration);

}  // namespace
}  // namespace kelpie

BENCHMARK_MAIN();
