// Serving-layer benchmark (DESIGN.md §12): score round-trip throughput and
// explain dispatch latency through serve::Server, at pool sizes 1 and 2.
// Requests flow the full production path — bounded queue, batch coalescing,
// round-robin pool lease — so the numbers capture queueing and dispatch
// overhead on top of raw model cost.
//
// With --json=PATH a machine-readable summary (BENCH_serve.json in CI) is
// written for the perf-smoke delta report; timings vary run to run, so the
// JSON is compared report-only against the "serve" section of
// bench/baseline.json.
#include "bench/bench_util.h"

#include <future>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/stopwatch.h"
#include "models/model_store.h"
#include "serve/server.h"

namespace {

using namespace kelpie;
using namespace kelpie::bench;

struct ServeTiming {
  std::string name;
  size_t pool = 0;
  size_t requests = 0;
  double ns_per_request = 0.0;

  double requests_per_second() const {
    return ns_per_request > 0.0 ? 1e9 / ns_per_request : 0.0;
  }
};

std::unique_ptr<serve::Server> MakeServer(const std::string& model_path,
                                          const Dataset& dataset,
                                          const BenchOptions& bench,
                                          size_t pool_size) {
  serve::ServerOptions options;
  options.pool_size = pool_size;
  options.dispatchers = pool_size;
  // The bench front-loads the whole workload, so admission must not shed:
  // an unbounded queue measures throughput rather than load-shedding policy.
  options.max_queue_depth = 0;
  options.kelpie = MakeKelpieOptions(bench);
  Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Create(model_path, dataset, options);
  if (!server.ok()) {
    std::fprintf(stderr, "[bench] server: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(server).value();
}

/// Submits `count` score requests cycling the test split, waits for every
/// future; the whole window (submit + queue + dispatch + score) divided by
/// `count` is the round-trip cost.
ServeTiming TimeScoreRoundTrip(serve::Server& server, const Dataset& dataset,
                               size_t pool, size_t count) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<std::future<serve::ScoreResult>> futures;
  futures.reserve(count);
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(server.Submit({test[i % test.size()], Deadline()}));
  }
  for (std::future<serve::ScoreResult>& f : futures) {
    serve::ScoreResult result = f.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "[bench] score: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
  }
  return {"score_roundtrip", pool, count,
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(count)};
}

/// Dispatches `count` necessary explains concurrently; per-request cost is
/// dominated by post-training but includes the full admission path.
ServeTiming TimeExplainDispatch(serve::Server& server, const Dataset& dataset,
                                size_t pool, size_t count) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<std::future<serve::ExplainResult>> futures;
  futures.reserve(count);
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    serve::ExplainRequest request;
    request.prediction = test[i % test.size()];
    futures.push_back(server.SubmitExplain(std::move(request)));
  }
  for (std::future<serve::ExplainResult>& f : futures) {
    serve::ExplainResult result = f.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "[bench] explain: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
  }
  return {"explain_necessary", pool, count,
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(count)};
}

void WriteJson(const std::string& path,
               const std::vector<ServeTiming>& timings) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"serve\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    const ServeTiming& t = timings[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pool\": %zu, \"requests\": %zu, "
                 "\"ns_per_request\": %.0f, \"requests_per_second\": %.0f}%s\n",
                 t.name.c_str(), t.pool, t.requests, t.ns_per_request,
                 t.requests_per_second(), i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  std::unique_ptr<LinkPredictionModel> model =
      TrainModel(ModelKind::kTransE, dataset, options.seed);
  const std::string model_path =
      "/tmp/kelpie_bench_serve_" + std::to_string(getpid()) + ".model";
  Status saved = SaveModel(*model, ModelKind::kTransE, model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "[bench] save: %s\n", saved.ToString().c_str());
    return 1;
  }

  const size_t score_requests = options.full ? 8192 : 2048;
  const size_t explain_requests = options.full ? 8 : 4;

  std::printf("Serve round-trip benchmark (TransE, %s scale %.2f)\n\n",
              dataset.name().c_str(), options.dataset_scale());
  PrintRow({"Bench", "Pool", "Requests", "us/req", "req/s"}, 14);
  PrintRule(5, 14);

  std::vector<ServeTiming> timings;
  for (size_t pool : {size_t{1}, size_t{2}}) {
    std::unique_ptr<serve::Server> server =
        MakeServer(model_path, dataset, options, pool);
    timings.push_back(
        TimeScoreRoundTrip(*server, dataset, pool, score_requests));
    timings.push_back(
        TimeExplainDispatch(*server, dataset, pool, explain_requests));
    server->Stop();
  }
  for (const ServeTiming& t : timings) {
    PrintRow({t.name, std::to_string(t.pool), std::to_string(t.requests),
              FormatDouble(t.ns_per_request / 1e3, 1),
              FormatDouble(t.requests_per_second(), 0)},
             14);
  }

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, timings);
  }
  std::remove(model_path.c_str());
  return 0;
}
