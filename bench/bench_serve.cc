// Serving-layer benchmark (DESIGN.md §12): score round-trip throughput and
// explain dispatch latency through serve::Server, at pool sizes 1 and 2.
// Requests flow the full production path — bounded queue, batch coalescing,
// round-robin pool lease — so the numbers capture queueing and dispatch
// overhead on top of raw model cost.
//
// With --json=PATH a machine-readable summary (BENCH_serve.json in CI) is
// written for the perf-smoke delta report; timings vary run to run, so the
// JSON is compared report-only against the "serve" section of
// bench/baseline.json.
#include "bench/bench_util.h"

#include <future>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/stopwatch.h"
#include "core/relevance_cache.h"
#include "models/model_store.h"
#include "serve/server.h"

namespace {

using namespace kelpie;
using namespace kelpie::bench;

struct ServeTiming {
  std::string name;
  size_t pool = 0;
  size_t requests = 0;
  double ns_per_request = 0.0;

  double requests_per_second() const {
    return ns_per_request > 0.0 ? 1e9 / ns_per_request : 0.0;
  }
};

/// --warm-cache summary: repeated explains with a shared relevance cache,
/// cold (first pass populates it) vs warm (every post-training is a hit).
struct WarmCacheSummary {
  double cold_ns_per_request = 0.0;
  double warm_ns_per_request = 0.0;

  double speedup() const {
    return warm_ns_per_request > 0.0
               ? cold_ns_per_request / warm_ns_per_request
               : 0.0;
  }
};

std::unique_ptr<serve::Server> MakeServer(
    const std::string& model_path, const Dataset& dataset,
    const BenchOptions& bench, size_t pool_size,
    std::shared_ptr<RelevanceCache> cache = nullptr) {
  serve::ServerOptions options;
  options.pool_size = pool_size;
  options.dispatchers = pool_size;
  // The bench front-loads the whole workload, so admission must not shed:
  // an unbounded queue measures throughput rather than load-shedding policy.
  options.max_queue_depth = 0;
  options.kelpie = MakeKelpieOptions(bench);
  options.kelpie.engine.relevance_cache = std::move(cache);
  Result<std::unique_ptr<serve::Server>> server =
      serve::Server::Create(model_path, dataset, options);
  if (!server.ok()) {
    std::fprintf(stderr, "[bench] server: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(server).value();
}

/// Submits `count` score requests cycling the test split, waits for every
/// future; the whole window (submit + queue + dispatch + score) divided by
/// `count` is the round-trip cost.
ServeTiming TimeScoreRoundTrip(serve::Server& server, const Dataset& dataset,
                               size_t pool, size_t count) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<std::future<serve::ScoreResult>> futures;
  futures.reserve(count);
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(server.Submit({test[i % test.size()], Deadline()}));
  }
  for (std::future<serve::ScoreResult>& f : futures) {
    serve::ScoreResult result = f.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "[bench] score: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
  }
  return {"score_roundtrip", pool, count,
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(count)};
}

/// Dispatches `count` necessary explains concurrently; per-request cost is
/// dominated by post-training but includes the full admission path.
ServeTiming TimeExplainDispatch(serve::Server& server, const Dataset& dataset,
                                size_t pool, size_t count) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<std::future<serve::ExplainResult>> futures;
  futures.reserve(count);
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    serve::ExplainRequest request;
    request.prediction = test[i % test.size()];
    futures.push_back(server.SubmitExplain(std::move(request)));
  }
  for (std::future<serve::ExplainResult>& f : futures) {
    serve::ExplainResult result = f.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "[bench] explain: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
  }
  return {"explain_necessary", pool, count,
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(count)};
}

/// Submits `unique * repeats` necessary explains cycling `unique` distinct
/// predictions; with a shared relevance cache every repeat is served from
/// cached post-trainings, so this window measures the warm-path cost.
ServeTiming TimeExplainRepeated(serve::Server& server, const Dataset& dataset,
                                size_t pool, size_t unique, size_t repeats,
                                const char* name) {
  const std::vector<Triple>& test = dataset.test();
  const size_t count = unique * repeats;
  std::vector<std::future<serve::ExplainResult>> futures;
  futures.reserve(count);
  Stopwatch timer;
  for (size_t i = 0; i < count; ++i) {
    serve::ExplainRequest request;
    request.prediction = test[i % unique % test.size()];
    futures.push_back(server.SubmitExplain(std::move(request)));
  }
  for (std::future<serve::ExplainResult>& f : futures) {
    serve::ExplainResult result = f.get();
    if (!result.status.ok()) {
      std::fprintf(stderr, "[bench] explain (repeated): %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
  }
  return {name, pool, count,
          timer.ElapsedSeconds() * 1e9 / static_cast<double>(count)};
}

void WriteJson(const std::string& path,
               const std::vector<ServeTiming>& timings,
               const WarmCacheSummary* warm) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"serve\": [\n");
  for (size_t i = 0; i < timings.size(); ++i) {
    const ServeTiming& t = timings[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"pool\": %zu, \"requests\": %zu, "
                 "\"ns_per_request\": %.0f, \"requests_per_second\": %.0f}%s\n",
                 t.name.c_str(), t.pool, t.requests, t.ns_per_request,
                 t.requests_per_second(), i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s\n", warm != nullptr ? "," : "");
  if (warm != nullptr) {
    std::fprintf(f,
                 "  \"warm_cache\": {\"cold_ns_per_request\": %.0f, "
                 "\"warm_ns_per_request\": %.0f, \"speedup\": %.2f}\n",
                 warm->cold_ns_per_request, warm->warm_ns_per_request,
                 warm->speedup());
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseArgs(argc, argv);
  bool warm_cache = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--warm-cache") == 0) warm_cache = true;
  }

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  std::unique_ptr<LinkPredictionModel> model =
      TrainModel(ModelKind::kTransE, dataset, options.seed);
  const std::string model_path =
      "/tmp/kelpie_bench_serve_" + std::to_string(getpid()) + ".model";
  Status saved = SaveModel(*model, ModelKind::kTransE, model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "[bench] save: %s\n", saved.ToString().c_str());
    return 1;
  }

  const size_t score_requests = options.full ? 8192 : 2048;
  const size_t explain_requests = options.full ? 8 : 4;

  std::printf("Serve round-trip benchmark (TransE, %s scale %.2f)\n\n",
              dataset.name().c_str(), options.dataset_scale());
  PrintRow({"Bench", "Pool", "Requests", "us/req", "req/s"}, 14);
  PrintRule(5, 14);

  std::vector<ServeTiming> timings;
  for (size_t pool : {size_t{1}, size_t{2}}) {
    std::unique_ptr<serve::Server> server =
        MakeServer(model_path, dataset, options, pool);
    timings.push_back(
        TimeScoreRoundTrip(*server, dataset, pool, score_requests));
    timings.push_back(
        TimeExplainDispatch(*server, dataset, pool, explain_requests));
    server->Stop();
  }
  WarmCacheSummary warm;
  if (warm_cache) {
    // Repeated-query section: one pool-2 server whose instances share an
    // in-memory relevance cache. The first pass over the distinct
    // predictions pays full post-training cost (and fills the cache); the
    // repeat passes are served from it — the speedup is the cacheable
    // fraction of an explain.
    const size_t unique = explain_requests;
    const size_t repeats = 4;
    auto cache = RelevanceCache::Open({});
    std::unique_ptr<serve::Server> server =
        MakeServer(model_path, dataset, options, 2, cache);
    ServeTiming cold = TimeExplainRepeated(*server, dataset, 2, unique, 1,
                                           "explain_repeated_cold");
    ServeTiming hot = TimeExplainRepeated(*server, dataset, 2, unique,
                                          repeats, "explain_repeated_warm");
    server->Stop();
    warm.cold_ns_per_request = cold.ns_per_request;
    warm.warm_ns_per_request = hot.ns_per_request;
    timings.push_back(cold);
    timings.push_back(hot);
  }

  for (const ServeTiming& t : timings) {
    PrintRow({t.name, std::to_string(t.pool), std::to_string(t.requests),
              FormatDouble(t.ns_per_request / 1e3, 1),
              FormatDouble(t.requests_per_second(), 0)},
             14);
  }
  if (warm_cache) {
    std::printf("\nwarm relevance cache: %.1fx over cold "
                "(%.0f us/req -> %.0f us/req)\n",
                warm.speedup(), warm.cold_ns_per_request / 1e3,
                warm.warm_ns_per_request / 1e3);
  }

  if (!options.json_path.empty()) {
    WriteJson(options.json_path, timings, warm_cache ? &warm : nullptr);
  }
  std::remove(model_path.c_str());
  return 0;
}
