// The paper notes (Section 5.3) that "an analogous methodology can be
// defined for head predictions" — this bench runs it: the necessary and
// sufficient end-to-end pipelines over correct HEAD predictions
// (explanations are built from the tail entity's facts, conversions
// replace the tail). Expected shape: the same qualitative behaviour as
// Tables 3-4, with effectiveness of the same order.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  std::vector<Triple> predictions =
      SampleCorrectPredictions(*model, dataset, options.num_predictions(),
                               PredictionTarget::kHead, rng);
  if (predictions.size() < 3) {
    std::printf("too few correct head predictions at this scale; rerun "
                "with --full\n");
    return 0;
  }

  std::printf("Head-prediction end-to-end (ComplEx, FB15k-237, |P| = %zu)\n\n",
              predictions.size());
  PrintRow({"Scenario", "Framework", "dH@1", "dMRR", "AvgLen"});
  PrintRule(5);

  for (auto& framework : MakeFrameworks(*model, dataset, options)) {
    NecessaryRunResult run = RunNecessaryEndToEnd(
        *framework, ModelKind::kComplEx, dataset, predictions,
        options.seed + 3, PredictionTarget::kHead);
    double total_len = 0.0;
    for (const Explanation& x : run.explanations) {
      total_len += static_cast<double>(x.size());
    }
    PrintRow({"necessary", std::string(framework->Name()),
              FormatSigned(run.delta_h1(), 3),
              FormatSigned(run.delta_mrr(), 3),
              FormatDouble(total_len /
                               static_cast<double>(run.explanations.size()),
                           2)});
  }

  for (auto& framework : MakeFrameworks(*model, dataset, options)) {
    Rng conv_rng(options.seed + 4);
    SufficientRunResult run = RunSufficientEndToEnd(
        *framework, *model, ModelKind::kComplEx, dataset, predictions,
        options.conversion_size(), conv_rng, options.seed + 5,
        PredictionTarget::kHead);
    double total_len = 0.0;
    for (const Explanation& x : run.explanations) {
      total_len += static_cast<double>(x.size());
    }
    PrintRow({"sufficient", std::string(framework->Name()),
              FormatSigned(run.delta_h1(), 3),
              FormatSigned(run.delta_mrr(), 3),
              FormatDouble(total_len /
                               static_cast<double>(run.explanations.size()),
                           2)});
  }
  return 0;
}
