// Ablations of two Relevance Engine / Explanation Builder design choices:
//  (a) the necessary acceptance threshold ξ_n0 (the paper's repository
//      study; ξ_n0 = 5 is "usually a fine trade-off") — higher thresholds
//      buy stronger explanations with longer searches;
//  (b) the homologous-mimic baseline vs comparing against the original
//      entity's rank directly (Section 4.2 argues the former erases
//      post-training fluctuations).
#include "bench/bench_util.h"

#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  const size_t num_predictions = options.full ? 12 : 6;
  std::vector<Triple> predictions = SampleCorrectTailPredictions(
      *model, dataset, num_predictions, rng);

  std::printf("(a) Necessary threshold xi_n0 sweep (ComplEx, FB15k-237)\n\n");
  PrintRow({"xi_n0", "Accepted", "AvgRelev", "AvgLen", "AvgPT"}, 12);
  PrintRule(5, 12);
  for (double threshold : {1.0, 5.0, 10.0, 20.0}) {
    KelpieOptions kelpie_options = MakeKelpieOptions(options);
    kelpie_options.builder.necessary_threshold = threshold;
    Kelpie kelpie(*model, dataset, kelpie_options);
    RunningStats relevance, length, post_trainings;
    size_t accepted = 0;
    for (const Triple& p : predictions) {
      Explanation x = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
      relevance.Add(x.relevance);
      length.Add(static_cast<double>(x.size()));
      post_trainings.Add(static_cast<double>(x.post_trainings));
      if (x.accepted) ++accepted;
    }
    PrintRow({FormatDouble(threshold, 0),
              std::to_string(accepted) + "/" +
                  std::to_string(predictions.size()),
              FormatDouble(relevance.mean(), 2),
              FormatDouble(length.mean(), 2),
              FormatDouble(post_trainings.mean(), 1)},
             12);
  }

  std::printf("\n(b) Relevance baseline: homologous mimic vs original "
              "entity rank\n\n");
  PrintRow({"Baseline", "AvgRelev", "AvgLen", "Accepted"}, 14);
  PrintRule(4, 14);
  for (bool use_original : {false, true}) {
    KelpieOptions kelpie_options = MakeKelpieOptions(options);
    kelpie_options.engine.use_original_rank_baseline = use_original;
    Kelpie kelpie(*model, dataset, kelpie_options);
    RunningStats relevance, length;
    size_t accepted = 0;
    for (const Triple& p : predictions) {
      Explanation x = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
      relevance.Add(x.relevance);
      length.Add(static_cast<double>(x.size()));
      if (x.accepted) ++accepted;
    }
    PrintRow({use_original ? "original-rank" : "homologous",
              FormatDouble(relevance.mean(), 2),
              FormatDouble(length.mean(), 2),
              std::to_string(accepted) + "/" +
                  std::to_string(predictions.size())},
             14);
  }
  return 0;
}
