// Regenerates paper Table 2: LP performance (H@1, MRR) of TransE, ComplEx
// and ConvE across the five datasets. Expected shape (matching the paper):
// ComplEx strongest overall; every model far better on the leaky FB15k/WN18
// than on FB15k-237/WN18RR; TransE weakest on WN18RR (symmetric relations
// defeat pure translations).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::vector<BenchmarkDataset> datasets = AllBenchmarkDatasets();
  std::printf("Table 2: LP performance (filtered H@1 / MRR, both "
              "directions)\n\n");
  std::vector<std::string> header{"Model"};
  for (BenchmarkDataset d : datasets) {
    header.push_back(std::string(BenchmarkDatasetName(d)) + " H@1");
    header.push_back("MRR");
  }
  PrintRow(header);
  PrintRule(header.size());

  std::vector<Dataset> materialized;
  for (BenchmarkDataset d : datasets) {
    materialized.push_back(
        MakeBenchmark(d, options.dataset_scale(), options.seed));
  }
  for (ModelKind kind : options.models()) {
    std::vector<std::string> row{std::string(ModelKindName(kind))};
    for (const Dataset& dataset : materialized) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      EvalResult result = EvaluateTest(*model, dataset);
      row.push_back(FormatDouble(result.HitsAt1(), 3));
      row.push_back(FormatDouble(result.Mrr(), 3));
    }
    PrintRow(row);
  }
  return 0;
}
