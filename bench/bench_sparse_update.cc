// Benchmark of the sparse optimizer path and incremental KG updates
// (DESIGN.md §16). Three comparisons:
//
//  1. Training throughput with TrainConfig::sparse_updates off vs on for
//     the embedding-stateful models (ComplEx exercises RowAdagrad, ConvE
//     adds the dense Adam stacks riding next to the sparse rows). Both
//     paths produce byte-identical parameters; the delta is pure storage
//     strategy — the sparse path materializes accumulator rows lazily and
//     skips the dense state sweep at save/restore boundaries.
//  2. `updates/sec`: positive triples processed per second of training,
//     the number the sparse path must not regress.
//  3. Incremental `kelpie update` vs full retrain on the same delta: wall
//     time of ApplyKgUpdate (bounded post-training of the affected rows
//     only) against retraining from scratch on the updated graph.
//
// With --json=PATH a machine-readable summary (BENCH_sparse_update.json in
// CI) is written. Wall-clock sections are compared report-only against
// bench/baseline.json — the gate (tools/bench_compare.py --fail-below)
// covers only the kernel/sweep/warm-cache ratio sections.
#include "bench/bench_util.h"

#include <cstdint>
#include <string>
#include <vector>

#include "xp/update.h"

namespace {

using namespace kelpie;
using namespace kelpie::bench;

struct TrainTiming {
  std::string model;
  std::string mode;  // "dense" | "sparse"
  double ms = 0.0;
  double updates_per_second = 0.0;
};

struct UpdateTiming {
  std::string name;  // "incremental_update" | "full_retrain"
  std::string model;
  size_t affected = 0;
  double ms = 0.0;
  double speedup_vs_retrain = 1.0;
};

TrainTiming TimeTrain(ModelKind kind, const Dataset& dataset, bool sparse,
                      uint64_t seed) {
  TrainConfig config = DefaultConfig(kind, dataset);
  config.sparse_updates = sparse;
  auto model = CreateModel(kind, dataset, config);
  Rng rng(seed);
  Stopwatch timer;
  Status status = model->Train(dataset, rng);
  const double seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] train failed: %s\n",
                 status.ToString().c_str());
  }
  TrainTiming t;
  t.model = std::string(ModelKindName(kind));
  t.mode = sparse ? "sparse" : "dense";
  t.ms = seconds * 1e3;
  const double positives = static_cast<double>(dataset.train().size()) *
                           static_cast<double>(config.epochs);
  t.updates_per_second = seconds > 0.0 ? positives / seconds : 0.0;
  return t;
}

/// A delta touching a handful of entities: remove the first `k` training
/// triples with distinct heads, and for each removed head add one novel
/// fact with the same relation but a previously-unseen tail.
xp::KgDelta MakeDelta(const Dataset& dataset, size_t k) {
  xp::KgDelta delta;
  std::vector<bool> head_used(dataset.num_entities(), false);
  for (const Triple& t : dataset.train()) {
    if (delta.remove.size() >= k) break;
    if (head_used[static_cast<size_t>(t.head)]) continue;
    head_used[static_cast<size_t>(t.head)] = true;
    delta.remove.push_back(t);
    for (size_t tail = 0; tail < dataset.num_entities(); ++tail) {
      Triple candidate(t.head, t.relation, static_cast<EntityId>(tail));
      if (!dataset.IsKnown(candidate)) {
        delta.add.push_back(candidate);
        break;
      }
    }
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = ParseArgs(argc, argv);
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  std::printf("sparse-update bench: %s (%zu entities, %zu train facts)\n\n",
              dataset.name().c_str(), dataset.num_entities(),
              dataset.train().size());

  std::printf("Training throughput, dense vs sparse optimizer state\n\n");
  PrintRow({"Model", "Mode", "ms", "updates/s"}, 14);
  PrintRule(4, 14);
  std::vector<TrainTiming> train_timings;
  for (ModelKind kind : {ModelKind::kTransE, ModelKind::kComplEx,
                         ModelKind::kConvE}) {
    for (bool sparse : {false, true}) {
      train_timings.push_back(TimeTrain(kind, dataset, sparse,
                                        options.seed + 1));
      const TrainTiming& t = train_timings.back();
      PrintRow({t.model, t.mode, FormatDouble(t.ms, 1),
                FormatDouble(t.updates_per_second, 0)},
               14);
    }
  }

  // Incremental update vs full retrain, on the model whose optimizer
  // state is the richest embedding-side case (RowAdagrad on three tables).
  const ModelKind kind = ModelKind::kComplEx;
  const xp::KgDelta delta = MakeDelta(dataset, /*k=*/8);
  auto model = CreateAndTrain(kind, dataset, options.seed + 1);

  xp::UpdateOptions update_options;
  update_options.seed = options.seed + 2;
  Stopwatch timer;
  Result<xp::UpdateReport> report =
      xp::ApplyKgUpdate(*model, dataset, delta, update_options);
  const double incremental_ms = timer.ElapsedSeconds() * 1e3;
  if (!report.ok()) {
    std::fprintf(stderr, "[bench] update failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const Dataset updated =
      dataset.WithModifiedTraining(delta.remove, delta.add);
  timer.Restart();
  auto retrained = CreateAndTrain(kind, updated, options.seed + 1);
  const double retrain_ms = timer.ElapsedSeconds() * 1e3;

  std::vector<UpdateTiming> update_timings;
  UpdateTiming inc;
  inc.name = "incremental_update";
  inc.model = std::string(ModelKindName(kind));
  inc.affected = report->affected.size();
  inc.ms = incremental_ms;
  inc.speedup_vs_retrain =
      incremental_ms > 0.0 ? retrain_ms / incremental_ms : 0.0;
  update_timings.push_back(inc);
  UpdateTiming full;
  full.name = "full_retrain";
  full.model = inc.model;
  full.affected = dataset.num_entities();
  full.ms = retrain_ms;
  update_timings.push_back(full);

  std::printf("\nIncremental update vs full retrain (%s, %zu affected)\n\n",
              inc.model.c_str(), inc.affected);
  PrintRow({"Path", "Rows", "ms", "speedup"}, 20);
  PrintRule(4, 20);
  for (const UpdateTiming& u : update_timings) {
    PrintRow({u.name, std::to_string(u.affected), FormatDouble(u.ms, 1),
              FormatDouble(u.speedup_vs_retrain, 1) + "x"},
             20);
  }

  if (!options.json_path.empty()) {
    std::FILE* f = std::fopen(options.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   options.json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"sparse_update\": [\n");
    for (const TrainTiming& t : train_timings) {
      std::fprintf(f,
                   "    {\"name\": \"train\", \"model\": \"%s\", "
                   "\"mode\": \"%s\", \"ms\": %.1f, "
                   "\"updates_per_second\": %.0f},\n",
                   t.model.c_str(), t.mode.c_str(), t.ms,
                   t.updates_per_second);
    }
    for (size_t i = 0; i < update_timings.size(); ++i) {
      const UpdateTiming& u = update_timings[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"model\": \"%s\", "
                   "\"affected\": %zu, \"ms\": %.1f, "
                   "\"speedup_vs_retrain\": %.1f}%s\n",
                   u.name.c_str(), u.model.c_str(), u.affected, u.ms,
                   u.speedup_vs_retrain,
                   i + 1 < update_timings.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}
