#ifndef KELPIE_BENCH_BENCH_UTIL_H_
#define KELPIE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/criage.h"
#include "baselines/data_poisoning.h"
#include "baselines/explainer.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/datasets.h"
#include "eval/evaluator.h"
#include "models/factory.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace bench {

/// Common options of the experiment benches. Every bench runs a reduced
/// grid by default so the whole suite finishes in minutes; pass --full for
/// the paper-scale grid (all five datasets, more predictions, |C| = 10).
struct BenchOptions {
  bool full = false;
  uint64_t seed = 7;
  /// Worker threads for parallel explanation extraction (--threads=N).
  /// Benches that compare against sequential extraction run both a
  /// threads=1 and a threads=N series.
  size_t threads = 4;
  /// When non-empty (--json=PATH), the bench also writes a machine-readable
  /// JSON summary to this path. The CI perf-smoke job uploads these files
  /// and diffs them against bench/baseline.json.
  std::string json_path;

  double dataset_scale() const { return full ? 1.0 : 0.55; }
  size_t num_predictions() const { return full ? 40 : 10; }
  size_t conversion_size() const { return full ? 10 : 4; }

  std::vector<BenchmarkDataset> datasets() const {
    if (full) return AllBenchmarkDatasets();
    return {BenchmarkDataset::kFb15k237, BenchmarkDataset::kWn18rr};
  }
  std::vector<ModelKind> models() const {
    return {ModelKind::kTransE, ModelKind::kComplEx, ModelKind::kConvE};
  }
};

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      options.full = true;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.threads = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      options.json_path = argv[i] + 7;
    }
  }
  return options;
}

/// Trains a model with dataset-appropriate defaults, reporting the time.
inline std::unique_ptr<LinkPredictionModel> TrainModel(
    ModelKind kind, const Dataset& dataset, uint64_t seed) {
  Stopwatch timer;
  std::unique_ptr<LinkPredictionModel> model = CreateAndTrain(kind, dataset, seed);
  std::fprintf(stderr, "[bench] trained %s on %s in %.1fs\n",
               std::string(ModelKindName(kind)).c_str(),
               dataset.name().c_str(), timer.ElapsedSeconds());
  return model;
}

/// Kelpie options tuned for bench throughput; --full restores paper-like
/// exploration budgets.
inline KelpieOptions MakeKelpieOptions(const BenchOptions& bench) {
  KelpieOptions options;
  options.engine.conversion_set_size = bench.conversion_size();
  options.builder.max_visits_per_size = bench.full ? 100 : 25;
  return options;
}

/// Creates the four frameworks the paper compares (Kelpie, K1, DP, Criage).
/// The Criage entry is omitted for TransE, as in the paper ("the code
/// provided by the Criage authors only supports multiplicative models").
inline std::vector<std::unique_ptr<Explainer>> MakeFrameworks(
    const LinkPredictionModel& model, const Dataset& dataset,
    const BenchOptions& bench) {
  std::vector<std::unique_ptr<Explainer>> out;
  out.push_back(std::make_unique<KelpieExplainer>(
      model, dataset, MakeKelpieOptions(bench), /*k1_only=*/true));
  out.push_back(std::make_unique<KelpieExplainer>(
      model, dataset, MakeKelpieOptions(bench), /*k1_only=*/false));
  out.push_back(std::make_unique<DataPoisoningExplainer>(model, dataset));
  if (std::string(model.Name()) != "TransE") {
    out.push_back(std::make_unique<CriageExplainer>(model, dataset));
  }
  return out;
}

/// Total Relevance Engine post-trainings recorded in the process metrics
/// registry (all mimic kinds). Benches report deltas of this across a
/// measured region instead of reaching into engine-private counters; at
/// num_threads = 1 the registry count is exact.
inline uint64_t TotalPostTrainings() {
  return metrics::Registry::Global().CounterFamilyTotal(
      "kelpie_engine_post_trainings_total");
}

/// Prints a row of a fixed-width text table.
inline void PrintRow(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline void PrintRule(size_t cells, int width = 12) {
  std::printf("%s\n", std::string(cells * static_cast<size_t>(width), '-')
                          .c_str());
}

}  // namespace bench
}  // namespace kelpie

#endif  // KELPIE_BENCH_BENCH_UTIL_H_
