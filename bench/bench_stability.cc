// Reproduces the paper's end-of-Section-5.3 robustness check: "we have
// repeated a subset of our end-to-end experiments on 10 different samples
// of 100 tail predictions each, obtaining similar values". Runs the
// necessary-scenario end-to-end pipeline on several disjoint prediction
// samples and reports the spread of ΔH@1 / ΔMRR. Expected shape: small
// standard deviation relative to the (large, negative) means.
#include "bench/bench_util.h"

#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);
  const size_t num_samples = options.full ? 10 : 4;
  const size_t per_sample = options.full ? 15 : 8;

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);

  std::printf("Stability of Kelpie necessary end-to-end results across %zu "
              "prediction samples (ComplEx, FB15k-237, |P| = %zu each)\n\n",
              num_samples, per_sample);
  PrintRow({"Sample", "dH@1", "dMRR", "AvgLen"});
  PrintRule(4);

  RunningStats h1_stats, mrr_stats;
  for (size_t s = 0; s < num_samples; ++s) {
    Rng sample_rng(options.seed + 100 + s);
    std::vector<Triple> predictions = SampleCorrectTailPredictions(
        *model, dataset, per_sample, sample_rng);
    if (predictions.size() < 3) continue;
    KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));
    NecessaryRunResult run = RunNecessaryEndToEnd(
        kelpie, ModelKind::kComplEx, dataset, predictions,
        options.seed + 200 + s);
    double total_len = 0.0;
    for (const Explanation& x : run.explanations) {
      total_len += static_cast<double>(x.size());
    }
    h1_stats.Add(run.delta_h1());
    mrr_stats.Add(run.delta_mrr());
    PrintRow({std::to_string(s), FormatSigned(run.delta_h1(), 3),
              FormatSigned(run.delta_mrr(), 3),
              FormatDouble(total_len /
                               static_cast<double>(run.explanations.size()),
                           2)});
  }
  PrintRule(4);
  PrintRow({"mean", FormatSigned(h1_stats.mean(), 3),
            FormatSigned(mrr_stats.mean(), 3), ""});
  PrintRow({"std", FormatDouble(h1_stats.stddev(), 3),
            FormatDouble(mrr_stats.stddev(), 3), ""});
  return 0;
}
