// Robustness study: the Data Poisoning paper's *addition* attack (paper
// Section 3.2 — "a symmetric approach can be used to identify the fake
// adversarial samples that, if added to the dataset, worsen φ(h,r,t) the
// most"). For a sample of correct predictions we add the top-k fake facts
// per prediction and retrain; the drop in H@1/MRR quantifies model
// robustness to single-entity poisoning. Expected shape: measurable
// degradation that grows with k.
#include <unordered_set>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  options.dataset_scale(), options.seed);
  auto model = TrainModel(ModelKind::kComplEx, dataset, options.seed + 1);
  Rng rng(options.seed + 2);
  std::vector<Triple> predictions = SampleCorrectTailPredictions(
      *model, dataset, options.num_predictions(), rng);
  if (predictions.size() < 3) {
    std::printf("too few correct predictions; rerun with --full\n");
    return 0;
  }

  std::printf("Adversarial-addition attack (DP, ComplEx, FB15k-237, "
              "|P| = %zu)\n\n",
              predictions.size());
  PrintRow({"fakes/pred", "H@1", "MRR", "dH@1", "dMRR"});
  PrintRule(5);

  LpMetrics clean = RetrainAndMeasureTails(ModelKind::kComplEx, dataset,
                                           predictions, {}, {},
                                           options.seed + 3);
  PrintRow({"0 (clean)", FormatDouble(clean.hits_at_1, 3),
            FormatDouble(clean.mrr, 3), "-", "-"});

  DataPoisoningExplainer dp(*model, dataset);
  for (size_t k : {1u, 3u, 6u}) {
    std::vector<Triple> fakes;
    std::unordered_set<uint64_t> seen;
    for (const Triple& p : predictions) {
      for (const Triple& fake :
           dp.AdversarialAdditions(p, PredictionTarget::kTail, k)) {
        if (seen.insert(fake.Key()).second) {
          fakes.push_back(fake);
        }
      }
    }
    LpMetrics poisoned = RetrainAndMeasureTails(
        ModelKind::kComplEx, dataset, predictions, {}, fakes,
        options.seed + 3);
    PrintRow({std::to_string(k), FormatDouble(poisoned.hits_at_1, 3),
              FormatDouble(poisoned.mrr, 3),
              FormatSigned(poisoned.hits_at_1 - clean.hits_at_1, 3),
              FormatSigned(poisoned.mrr - clean.mrr, 3)});
  }
  return 0;
}
