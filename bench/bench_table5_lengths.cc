// Regenerates paper Table 5: average length (and standard deviation) of the
// extracted Kelpie explanations, per scenario, model and dataset. Expected
// shape: necessary explanations longer than sufficient ones; sufficient
// lengths near 1 on the WordNet-style datasets (one symmetric/inverse fact
// suffices).
#include "bench/bench_util.h"

#include "math/stats.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  std::printf("Table 5: Lengths of the extracted explanations (AVG / STD)\n\n");
  PrintRow({"Dataset", "Model", "Nec.AVG", "Nec.STD", "Suf.AVG", "Suf.STD"});
  PrintRule(6);

  for (BenchmarkDataset d : options.datasets()) {
    Dataset dataset = MakeBenchmark(d, options.dataset_scale(), options.seed);
    for (ModelKind kind : options.models()) {
      auto model = TrainModel(kind, dataset, options.seed + 1);
      Rng sample_rng(options.seed + 2);
      std::vector<Triple> predictions = SampleCorrectTailPredictions(
          *model, dataset, options.num_predictions(), sample_rng);
      if (predictions.size() < 3) continue;

      KelpieExplainer kelpie(*model, dataset, MakeKelpieOptions(options));
      RunningStats necessary_lengths, sufficient_lengths;
      Rng conv_rng(options.seed + 4);
      for (const Triple& p : predictions) {
        Explanation nx =
            kelpie.ExplainNecessary(p, PredictionTarget::kTail);
        if (!nx.empty()) {
          necessary_lengths.Add(static_cast<double>(nx.size()));
        }
        std::vector<EntityId> conversion_set = SampleConversionEntities(
            *model, dataset, p, PredictionTarget::kTail,
            options.conversion_size(), conv_rng);
        if (conversion_set.empty()) continue;
        Explanation sx = kelpie.ExplainSufficient(
            p, PredictionTarget::kTail, conversion_set);
        if (!sx.empty()) {
          sufficient_lengths.Add(static_cast<double>(sx.size()));
        }
      }
      PrintRow({std::string(BenchmarkDatasetName(d)),
                std::string(ModelKindName(kind)),
                FormatDouble(necessary_lengths.mean(), 2),
                FormatDouble(necessary_lengths.stddev(), 2),
                FormatDouble(sufficient_lengths.mean(), 2),
                FormatDouble(sufficient_lengths.stddev(), 2)});
    }
  }
  return 0;
}
