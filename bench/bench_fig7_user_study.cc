// Regenerates paper Figure 7 / Section 5.7: the end-user study.
// The original is a 44-participant human study; here the protocol (three
// questions, answer categories, aggregation) is reproduced with a SIMULATED
// respondent model driven by measurable explanation quality — see
// EXPERIMENTS.md for the substitution rationale. Expected shape: high
// clarity, mostly-correct effect answers, and higher trust in ComplEx than
// in TransE (its explanation facts sit closer to the predicted entity).
#include "bench/bench_util.h"

#include "xp/user_study.h"

int main(int argc, char** argv) {
  using namespace kelpie;
  using namespace kelpie::bench;
  BenchOptions options = ParseArgs(argc, argv);

  Dataset dataset = MakeBenchmark(BenchmarkDataset::kYago310,
                                  options.dataset_scale(), options.seed);
  const size_t pairs_per_model = options.full ? 18 : 8;
  const size_t participants = 44;

  std::printf("Figure 7 (simulated): end-user study over Kelpie "
              "explanations, %zu participants\n\n",
              participants);
  PrintRow({"Model", "Q1.clarity", "Q2.correct", "Q2.nothing", "Q2.dontknow",
            "Q2.nonsense", "Q3.trust"},
           13);
  PrintRule(7, 13);

  for (ModelKind kind : {ModelKind::kComplEx, ModelKind::kTransE}) {
    auto model = TrainModel(kind, dataset, options.seed + 1);
    Rng rng(options.seed + 2);
    std::vector<Triple> predictions = SampleCorrectTailPredictions(
        *model, dataset, pairs_per_model, rng);
    KelpieOptions kelpie_options = MakeKelpieOptions(options);
    KelpieExplainer kelpie(*model, dataset, kelpie_options);

    std::vector<ExplanationFeatures> features;
    for (const Triple& p : predictions) {
      Explanation x = kelpie.ExplainNecessary(p, PredictionTarget::kTail);
      if (x.empty()) continue;
      features.push_back(ComputeFeatures(
          x, dataset, p, PredictionTarget::kTail,
          kelpie_options.builder.necessary_threshold));
    }
    Rng study_rng(options.seed + 5);
    UserStudyResult result = RunUserStudy(features, participants, study_rng);
    PrintRow({std::string(ModelKindName(kind)),
              FormatDouble(result.mean_clarity, 2),
              FormatDouble(result.effect_distribution[0], 3),
              FormatDouble(result.effect_distribution[1], 3),
              FormatDouble(result.effect_distribution[2], 3),
              FormatDouble(result.effect_distribution[3], 3),
              FormatDouble(result.mean_trust, 2)},
             13);
  }
  return 0;
}
