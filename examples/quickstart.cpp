// Quickstart: generate a knowledge graph, train a link-prediction model,
// and ask Kelpie WHY the model predicts what it predicts.
//
//   ./quickstart
//
// Walks through the full public API surface in ~80 lines: dataset, model,
// evaluation, necessary explanation, sufficient explanation.
#include <cstdio>

#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/evaluator.h"
#include "models/factory.h"
#include "xp/pipeline.h"

using namespace kelpie;

int main() {
  // 1. A dataset. Here: the synthetic FB15k-237 stand-in; real TSV datasets
  //    load with LoadDatasetTsv (see examples/custom_kg.cpp).
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237,
                                  /*scale=*/0.4, /*seed=*/7);
  std::printf("dataset %s: %zu entities, %zu relations, %zu train facts\n",
              dataset.name().c_str(), dataset.num_entities(),
              dataset.num_relations(), dataset.train().size());

  // 2. A model. Any LinkPredictionModel works; ComplEx is the strongest of
  //    the built-ins.
  std::unique_ptr<LinkPredictionModel> model =
      CreateAndTrain(ModelKind::kComplEx, dataset, /*seed=*/42);
  EvalResult quality = EvaluateTest(*model, dataset);
  std::printf("test H@1 = %.3f, MRR = %.3f\n", quality.HitsAt1(),
              quality.Mrr());

  // 3. A correct prediction to explain.
  Rng rng(11);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model, dataset, 1, rng);
  if (predictions.empty()) {
    std::printf("the model got nothing right; try more epochs\n");
    return 1;
  }
  const Triple prediction = predictions.front();
  std::printf("\nexplaining the tail prediction %s\n",
              dataset.TripleToString(prediction).c_str());

  // 4. Kelpie. One instance per (model, dataset) pair.
  Kelpie kelpie(*model, dataset, KelpieOptions{});

  // 4a. Necessary explanation: the smallest set of training facts of the
  //     head entity without which the model would answer differently.
  Explanation necessary = kelpie.ExplainNecessary(prediction);
  std::printf("\nNECESSARY (%zu facts, relevance %.1f, %zu post-trainings, "
              "%.2fs):\n",
              necessary.size(), necessary.relevance,
              necessary.post_trainings, necessary.seconds);
  // ExplainWithPaths annotates each fact with the training-graph path that
  // connects it to the predicted entity.
  std::printf("%s",
              ExplainWithPaths(necessary, dataset, prediction,
                               PredictionTarget::kTail)
                  .c_str());

  // 4b. Sufficient explanation: facts that, copied onto other entities,
  //     make the model give them the same answer.
  std::vector<EntityId> converted;
  Explanation sufficient =
      kelpie.ExplainSufficient(prediction, PredictionTarget::kTail,
                               &converted);
  std::printf("\nSUFFICIENT (%zu facts, relevance %.2f over %zu conversion "
              "entities):\n",
              sufficient.size(), sufficient.relevance, converted.size());
  for (const Triple& fact : sufficient.facts) {
    std::printf("  - %s\n", dataset.TripleToString(fact).c_str());
  }
  std::printf("\ndone.\n");
  return 0;
}
