// Explaining WRONG predictions — the workflow sketched at the end of the
// paper's Section 2.2: "necessary explanations can identify which training
// facts of the wrongly predicted entities have misled the model;
// sufficient explanations can isolate which facts those entities may have
// lacked".
//
// For each test fact the model gets wrong we:
//  1. take the model's actual (wrong) top answer and extract a NECESSARY
//     explanation of the wrong prediction — the facts that misled it;
//  2. extract a SUFFICIENT explanation from a correctly-predicted entity of
//     the same query relation and check whether transferring those facts
//     would have converted the failing query — the evidence it lacked.
#include <cstdio>

#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/ranking.h"
#include "models/factory.h"
#include "xp/pipeline.h"

using namespace kelpie;

namespace {

/// The entity the model actually ranks first for <h, r, ?> (filtered:
/// other known answers are skipped, like in evaluation).
EntityId TopTail(const LinkPredictionModel& model, const Dataset& dataset,
                 const Triple& query) {
  std::vector<float> scores(model.num_entities());
  model.ScoreAllTails(query.head, query.relation, scores);
  const auto& known = dataset.KnownTails(query.head, query.relation);
  EntityId best = 0;
  float best_score = -1e30f;
  for (size_t e = 0; e < scores.size(); ++e) {
    EntityId id = static_cast<EntityId>(e);
    if (id != query.tail && known.count(id)) continue;  // filtered setting
    if (scores[e] > best_score) {
      best_score = scores[e];
      best = id;
    }
  }
  return best;
}

}  // namespace

int main() {
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kFb15k237, 0.5, 7);
  auto model = CreateAndTrain(ModelKind::kComplEx, dataset, 42);
  Kelpie kelpie(*model, dataset, KelpieOptions{});

  size_t shown = 0;
  for (const Triple& fact : dataset.test()) {
    if (shown >= 3) break;
    int rank = FilteredTailRank(*model, dataset, fact);
    if (rank <= 2) continue;  // only clearly wrong predictions
    EntityId wrong = TopTail(*model, dataset, fact);
    if (wrong == fact.tail) continue;
    ++shown;

    std::printf("query      : <%s, %s, ?>\n",
                dataset.entities().NameOf(fact.head).c_str(),
                dataset.relations().NameOf(fact.relation).c_str());
    std::printf("expected   : %s (ranked %d)\n",
                dataset.entities().NameOf(fact.tail).c_str(), rank);
    std::printf("model said : %s\n",
                dataset.entities().NameOf(wrong).c_str());

    // (1) What misled the model? Explain the wrong answer as if it were a
    // prediction — the facts whose removal would dethrone it.
    Triple wrong_prediction(fact.head, fact.relation, wrong);
    Explanation misled = kelpie.ExplainNecessary(wrong_prediction);
    std::printf("  misled by:\n");
    for (const Triple& f : misled.facts) {
      std::printf("    %s\n", dataset.TripleToString(f).c_str());
    }
    if (misled.empty()) std::printf("    (no single cause found)\n");

    // (2) What was the head missing? Find a *donor*: another entity whose
    // prediction of the same answer the model gets right, and extract the
    // sufficient explanation that converts OUR failing head — the facts it
    // lacked.
    Triple donor_fact;
    bool have_donor = false;
    for (const Triple& candidate : dataset.train()) {
      if (candidate.relation != fact.relation ||
          candidate.tail != fact.tail || candidate.head == fact.head) {
        continue;
      }
      if (FilteredTailRank(*model, dataset, candidate) == 1) {
        donor_fact = candidate;
        have_donor = true;
        break;
      }
    }
    if (have_donor) {
      std::vector<EntityId> conversion_set{fact.head};
      Explanation lacked = kelpie.ExplainSufficientWithSet(
          donor_fact, PredictionTarget::kTail, conversion_set);
      std::printf("  evidence it lacked (from donor %s, relevance %.2f):\n",
                  dataset.entities().NameOf(donor_fact.head).c_str(),
                  lacked.relevance);
      for (const Triple& f : lacked.facts) {
        Triple transferred = TransferFact(f, donor_fact.head, fact.head);
        std::printf("    + %s\n",
                    dataset.TripleToString(transferred).c_str());
      }
      if (lacked.empty()) std::printf("    (none found)\n");
    } else {
      std::printf("  (no correctly-predicted donor for this answer)\n");
    }
    std::printf("\n");
  }
  if (shown == 0) {
    std::printf("the model answered everything correctly at this scale — "
                "increase the dataset scale to see failures\n");
  }
  return 0;
}
