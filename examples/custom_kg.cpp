// Bringing your own knowledge graph: the TSV entry point.
//
// Most users arrive with train/valid/test files in the standard
// "head<TAB>relation<TAB>tail" benchmark format. This example writes a tiny
// hand-crafted KG (the paper's running Barack Obama example, padded with
// enough supporting entities to be trainable) to disk, loads it back with
// LoadDatasetTsv, trains TransE, and explains the famous prediction
// <Barack_Obama, nationality, USA>.
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/kelpie.h"
#include "eval/ranking.h"
#include "kgraph/io.h"
#include "models/factory.h"

using namespace kelpie;

namespace {

/// A people/cities/countries world in the spirit of the paper's Figures 2
/// and 3. Per country: a handful of cities; per city: several residents
/// with born_in/lives_in facts and a nationality that follows from them.
/// One nationality fact per country is held out as test.
void WriteWorld(const std::string& dir) {
  std::string train, test;
  const int kCountries = 4, kCitiesPer = 3, kPeoplePerCity = 6;
  for (int c = 0; c < kCountries; ++c) {
    std::string country = "Country" + std::to_string(c);
    for (int k = 0; k < kCitiesPer; ++k) {
      std::string city = "City" + std::to_string(c) + "_" +
                         std::to_string(k);
      train += city + "\tlocated_in\t" + country + "\n";
      for (int p = 0; p < kPeoplePerCity; ++p) {
        std::string person = "Person" + std::to_string(c) + "_" +
                             std::to_string(k) + "_" + std::to_string(p);
        train += person + "\tborn_in\t" + city + "\n";
        if (p % 2 == 0) {
          train += person + "\tlives_in\t" + city + "\n";
        }
        // Hold out one nationality per country as the test set.
        if (k == 0 && p == 0) {
          test += person + "\tnationality\t" + country + "\n";
        } else {
          train += person + "\tnationality\t" + country + "\n";
        }
      }
    }
  }
  // The named example, living in country 0.
  train += "Barack_Obama\tborn_in\tCity0_0\n";
  train += "Barack_Obama\tlives_in\tCity0_1\n";
  test += "Barack_Obama\tnationality\tCountry0\n";

  auto write = [&](const std::string& name, const std::string& content) {
    std::FILE* f = std::fopen((dir + "/" + name).c_str(), "w");
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  };
  write("train.txt", train);
  write("valid.txt", test);  // tiny world: reuse the held-out facts
  write("test.txt", test);
}

}  // namespace

int main() {
  std::string dir = std::filesystem::temp_directory_path() /
                    "kelpie_custom_kg_example";
  std::filesystem::create_directories(dir);
  WriteWorld(dir);

  Result<Dataset> loaded = LoadDatasetTsv("obama-world", dir);
  if (!loaded.ok()) {
    std::printf("load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(loaded).value();
  std::printf("loaded %s: %zu entities, %zu relations, %zu train facts\n",
              dataset.name().c_str(), dataset.num_entities(),
              dataset.num_relations(), dataset.train().size());

  TrainConfig config = DefaultConfig(ModelKind::kTransE, dataset);
  config.dim = 16;
  config.epochs = 120;  // tiny graph: cheap to train well
  auto model = CreateModel(ModelKind::kTransE, dataset, config);
  Rng rng(42);
  model->Train(dataset, rng);

  Result<int32_t> obama = dataset.entities().Find("Barack_Obama");
  Result<int32_t> nationality = dataset.relations().Find("nationality");
  Result<int32_t> usa = dataset.entities().Find("Country0");
  Triple prediction(obama.value(), nationality.value(), usa.value());
  std::printf("rank of Country0 for <Barack_Obama, nationality, ?>: %d\n",
              FilteredTailRank(*model, dataset, prediction));

  Kelpie kelpie(*model, dataset, KelpieOptions{});
  Explanation why = kelpie.ExplainNecessary(prediction);
  std::printf("\nwhy does the model predict %s?\n",
              dataset.TripleToString(prediction).c_str());
  for (const Triple& fact : why.facts) {
    std::printf("  because of %s\n", dataset.TripleToString(fact).c_str());
  }
  std::printf("(relevance %.1f — removing these facts is expected to "
              "change the answer)\n",
              why.relevance);
  return 0;
}
