// Auditing a dataset for bias with sufficient explanations — the workflow
// behind the paper's Table 8 and its Section 1 claim that explainability
// frameworks "can support the identification of biases and even errors in
// the original KGs".
//
// The YAGO3-10 stand-in predicts birthplaces suspiciously well for a graph
// with almost no personal data. Sufficient explanations reveal why: the
// model infers born_in from football-club membership — a dataset bias, not
// world knowledge. The audit below quantifies it.
#include <cstdio>
#include <map>

#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/ranking.h"
#include "models/factory.h"
#include "xp/pipeline.h"

using namespace kelpie;

int main() {
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kYago310, 0.5, 7);
  auto model = CreateAndTrain(ModelKind::kComplEx, dataset, 42);

  Result<int32_t> born = dataset.relations().Find("born_in");
  if (!born.ok()) {
    std::printf("no born_in relation in this dataset\n");
    return 1;
  }

  KelpieOptions options;
  options.engine.conversion_set_size = 5;
  Kelpie kelpie(*model, dataset, options);

  // Audit every correctly predicted birthplace: which relations does the
  // model actually lean on?
  std::map<std::string, int> evidence_relations;
  size_t audited = 0;
  Rng rng(23);
  for (const Triple& t : dataset.test()) {
    if (audited >= 8) break;
    if (t.relation != born.value()) continue;
    if (FilteredTailRank(*model, dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        *model, dataset, t, PredictionTarget::kTail, 5, rng);
    if (conversion_set.empty()) continue;
    Explanation x = kelpie.ExplainSufficientWithSet(
        t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    ++audited;
    std::printf("%s is explained by:\n", dataset.TripleToString(t).c_str());
    for (const Triple& fact : x.facts) {
      std::printf("  %s\n", dataset.TripleToString(fact).c_str());
      ++evidence_relations[dataset.relations().NameOf(fact.relation)];
    }
  }

  std::printf("\n=== audit summary over %zu predictions ===\n", audited);
  for (const auto& [relation, count] : evidence_relations) {
    std::printf("  evidence via %-16s x%d\n", relation.c_str(), count);
  }
  int football = evidence_relations["plays_for"] +
                 evidence_relations["affiliated_to"];
  int total = 0;
  for (const auto& [relation, count] : evidence_relations) total += count;
  if (total > 0 && football * 2 > total) {
    std::printf("\nBIAS DETECTED: the model infers birthplaces mostly from "
                "football-club membership\n(%d of %d evidence facts). The "
                "dataset under-represents personal facts;\nconsider "
                "enriching it before trusting born_in predictions.\n",
                football, total);
  } else {
    std::printf("\nno dominant single-domain bias detected in this "
                "sample.\n");
  }
  return 0;
}
