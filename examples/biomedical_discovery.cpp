// Drug repurposing with explainable link prediction — the motivating
// scenario of the paper's introduction (Bonner et al. / Gaudelet et al.):
// LP models propose drug->disease "treats" links, and domain experts only
// trust proposals whose supporting evidence they can inspect.
//
// We build a synthetic biomedical KG with the mechanism
//   treats(Drug, Disease) <- targets(Drug, Protein) AND
//                            implicated_in(Protein, Disease)
// train ComplEx, and use Kelpie to surface the mechanism behind each
// predicted therapy: explanations naming a shared protein target are
// biologically plausible; anything else flags a spurious correlation.
#include <cstdio>

#include "core/kelpie.h"
#include "datagen/generator.h"
#include "eval/ranking.h"
#include "models/factory.h"
#include "xp/pipeline.h"

using namespace kelpie;

namespace {

GeneratorSpec BioMedSpec() {
  GeneratorSpec spec;
  spec.name = "biomed";
  spec.seed = 17;
  spec.types = {{"Drug", 120}, {"Protein", 150}, {"Disease", 60},
                {"Pathway", 25}, {"SideEffect", 30}};
  spec.relations = {
      {.name = "targets", .domain = "Drug", .range = "Protein",
       .facts_per_head = 1.6, .zipf_exponent = 1.5},
      {.name = "implicated_in", .domain = "Protein", .range = "Disease",
       .facts_per_head = 1.0, .zipf_exponent = 1.4},
      {.name = "participates_in", .domain = "Protein", .range = "Pathway",
       .facts_per_head = 1.2, .zipf_exponent = 1.3},
      {.name = "causes", .domain = "Drug", .range = "SideEffect",
       .facts_per_head = 1.0, .zipf_exponent = 1.4},
      // Populated by the mechanism rule below; this is the relation whose
      // missing links drug repurposing predicts.
      {.name = "treats", .domain = "Drug", .range = "Disease",
       .facts_per_head = 0.0},
  };
  spec.rules = {{.premise1 = "targets", .premise2 = "implicated_in",
                 .conclusion = "treats", .apply_prob = 0.7}};
  spec.valid_fraction = 0.05;
  spec.test_fraction = 0.15;
  return spec;
}

}  // namespace

int main() {
  Result<Dataset> generated = GenerateDataset(BioMedSpec());
  if (!generated.ok()) {
    std::printf("generation failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(generated).value();
  std::printf("biomedical KG: %zu entities, %zu facts; %zu held-out "
              "treats links\n\n",
              dataset.num_entities(), dataset.train().size(),
              dataset.test().size());

  auto model = CreateAndTrain(ModelKind::kComplEx, dataset, 42);
  Result<int32_t> targets = dataset.relations().Find("targets");
  Result<int32_t> implicated = dataset.relations().Find("implicated_in");

  Kelpie kelpie(*model, dataset, KelpieOptions{});
  size_t shown = 0, mechanistic = 0;
  for (const Triple& proposal : dataset.test()) {
    if (shown >= 5) break;
    if (FilteredTailRank(*model, dataset, proposal) != 1) continue;
    ++shown;
    std::printf("proposed therapy: %s\n",
                dataset.TripleToString(proposal).c_str());
    Explanation why = kelpie.ExplainNecessary(proposal);
    bool has_target_evidence = false;
    for (const Triple& fact : why.facts) {
      std::printf("  evidence: %s\n", dataset.TripleToString(fact).c_str());
      if (targets.ok() && fact.relation == targets.value()) {
        has_target_evidence = true;
      }
      if (implicated.ok() && fact.relation == implicated.value()) {
        has_target_evidence = true;
      }
    }
    if (has_target_evidence) {
      ++mechanistic;
      std::printf("  -> mechanistically plausible (protein-target "
                  "evidence)\n\n");
    } else {
      std::printf("  -> WARNING: no mechanistic evidence; treat as a "
                  "spurious correlation\n\n");
    }
  }
  std::printf("%zu/%zu correct proposals backed by mechanistic evidence\n",
              mechanistic, shown);
  return 0;
}
