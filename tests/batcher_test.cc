#include "ml/batcher.h"

#include <set>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(BatcherTest, CoversAllSamplesExactlyOncePerEpoch) {
  Batcher batcher(10, 3);
  Rng rng(1);
  batcher.Reshuffle(rng);
  std::multiset<size_t> seen;
  for (auto b = batcher.NextBatch(); !b.empty(); b = batcher.NextBatch()) {
    seen.insert(b.begin(), b.end());
  }
  EXPECT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(BatcherTest, LastBatchMayBeSmaller) {
  Batcher batcher(10, 4);
  Rng rng(2);
  batcher.Reshuffle(rng);
  std::vector<size_t> sizes;
  for (auto b = batcher.NextBatch(); !b.empty(); b = batcher.NextBatch()) {
    sizes.push_back(b.size());
  }
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 4u);
  EXPECT_EQ(sizes[1], 4u);
  EXPECT_EQ(sizes[2], 2u);
}

TEST(BatcherTest, NumBatchesRoundsUp) {
  EXPECT_EQ(Batcher(10, 4).num_batches(), 3u);
  EXPECT_EQ(Batcher(8, 4).num_batches(), 2u);
  EXPECT_EQ(Batcher(0, 4).num_batches(), 0u);
}

TEST(BatcherTest, ReshuffleChangesOrder) {
  Batcher batcher(64, 64);
  Rng rng(3);
  batcher.Reshuffle(rng);
  auto b1 = batcher.NextBatch();
  std::vector<size_t> first(b1.begin(), b1.end());
  batcher.Reshuffle(rng);
  auto b2 = batcher.NextBatch();
  std::vector<size_t> second(b2.begin(), b2.end());
  EXPECT_NE(first, second);
}

TEST(BatcherTest, ZeroBatchSizeTreatedAsOne) {
  Batcher batcher(3, 0);
  Rng rng(4);
  batcher.Reshuffle(rng);
  size_t count = 0;
  for (auto b = batcher.NextBatch(); !b.empty(); b = batcher.NextBatch()) {
    EXPECT_EQ(b.size(), 1u);
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(BatcherTest, ExhaustedEpochReturnsEmptyUntilReshuffle) {
  Batcher batcher(2, 2);
  Rng rng(5);
  batcher.Reshuffle(rng);
  EXPECT_FALSE(batcher.NextBatch().empty());
  EXPECT_TRUE(batcher.NextBatch().empty());
  EXPECT_TRUE(batcher.NextBatch().empty());
  batcher.Reshuffle(rng);
  EXPECT_FALSE(batcher.NextBatch().empty());
}

}  // namespace
}  // namespace kelpie
