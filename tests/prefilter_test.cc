#include "core/prefilter.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kelpie {
namespace {

/// Builds the paper's Figure 2 example KG:
/// Obama -born_in-> Honolulu -located_in-> USA; Obama -president_of-> USA;
/// Bill_Gates -supported-> Obama; Bill_Gates -born_in-> Seattle;
/// Seattle -located_in-> USA. Prediction: <Obama, nationality, USA>.
struct Figure2 {
  Dictionary entities, relations;
  EntityId obama, honolulu, usa, gates, seattle;
  RelationId born, located, president, supported, nationality;
  std::unique_ptr<Dataset> dataset;
  Triple prediction;

  Figure2() {
    obama = entities.GetOrAdd("Barack_Obama");
    honolulu = entities.GetOrAdd("Honolulu");
    usa = entities.GetOrAdd("USA");
    gates = entities.GetOrAdd("Bill_Gates");
    seattle = entities.GetOrAdd("Seattle");
    born = relations.GetOrAdd("born_in");
    located = relations.GetOrAdd("located_in");
    president = relations.GetOrAdd("president_of");
    supported = relations.GetOrAdd("supported");
    nationality = relations.GetOrAdd("nationality");
    std::vector<Triple> train{
        Triple(obama, born, honolulu),   Triple(honolulu, located, usa),
        Triple(obama, president, usa),   Triple(gates, supported, obama),
        Triple(gates, born, seattle),    Triple(seattle, located, usa),
    };
    prediction = Triple(obama, nationality, usa);
    dataset = std::make_unique<Dataset>(
        "figure2", std::move(entities), std::move(relations),
        std::move(train), std::vector<Triple>{},
        std::vector<Triple>{prediction});
  }
};

TEST(PreFilterTest, PromisingnessMatchesPaperExample) {
  Figure2 fig;
  PreFilter filter(*fig.dataset, {});
  std::vector<Triple> facts =
      fig.dataset->train_graph().FactsOf(fig.obama);
  std::vector<double> gamma =
      filter.Promisingness(fig.prediction, PredictionTarget::kTail, facts);
  ASSERT_EQ(gamma.size(), facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (facts[i] == Triple(fig.obama, fig.president, fig.usa)) {
      EXPECT_DOUBLE_EQ(gamma[i], 0.0);  // features USA itself
    } else if (facts[i] == Triple(fig.obama, fig.born, fig.honolulu)) {
      EXPECT_DOUBLE_EQ(gamma[i], 1.0);  // Honolulu -> USA
    } else if (facts[i] == Triple(fig.gates, fig.supported, fig.obama)) {
      EXPECT_DOUBLE_EQ(gamma[i], 2.0);  // Gates -> Seattle -> USA
    }
  }
}

TEST(PreFilterTest, TopKOrdersByPromisingness) {
  Figure2 fig;
  PreFilterOptions options;
  options.top_k = 2;
  PreFilter filter(*fig.dataset, options);
  std::vector<Triple> top =
      filter.MostPromisingFacts(fig.prediction, PredictionTarget::kTail);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], Triple(fig.obama, fig.president, fig.usa));
  EXPECT_EQ(top[1], Triple(fig.obama, fig.born, fig.honolulu));
}

TEST(PreFilterTest, ReturnsAllWhenFewerThanK) {
  Figure2 fig;
  PreFilterOptions options;
  options.top_k = 100;
  PreFilter filter(*fig.dataset, options);
  std::vector<Triple> top =
      filter.MostPromisingFacts(fig.prediction, PredictionTarget::kTail);
  EXPECT_EQ(top.size(), 3u);  // all Obama facts
}

TEST(PreFilterTest, PredictionTripleExcludedEvenIfInTraining) {
  Figure2 fig;
  // Re-build a dataset where the prediction is also a training fact.
  Dataset with_pred =
      fig.dataset->WithModifiedTraining({}, {fig.prediction});
  PreFilter filter(with_pred, {});
  std::vector<Triple> top =
      filter.MostPromisingFacts(fig.prediction, PredictionTarget::kTail);
  EXPECT_EQ(std::find(top.begin(), top.end(), fig.prediction), top.end());
}

TEST(PreFilterTest, IgnoresPredictionEdgeInBfs) {
  // A head entity whose only connection to the tail is the prediction
  // itself: promisingness must not use that edge.
  Dictionary entities, relations;
  EntityId a = entities.GetOrAdd("a");
  EntityId b = entities.GetOrAdd("b");
  EntityId c = entities.GetOrAdd("c");
  RelationId r = relations.GetOrAdd("r");
  // a-r->b in train; prediction <a, r, c>; c connected only via prediction.
  Dataset dataset("tiny", std::move(entities), std::move(relations),
                  {Triple(a, r, b)}, {}, {Triple(a, r, c)});
  PreFilter filter(dataset, {});
  std::vector<Triple> facts = dataset.train_graph().FactsOf(a);
  std::vector<double> gamma =
      filter.Promisingness(Triple(a, r, c), PredictionTarget::kTail, facts);
  ASSERT_EQ(gamma.size(), 1u);
  EXPECT_TRUE(std::isinf(gamma[0]));  // unreachable without the prediction
}

TEST(PreFilterTest, HeadPredictionUsesTailAsSource) {
  Figure2 fig;
  PreFilter filter(*fig.dataset, {});
  // Head prediction <?, nationality, USA> -> source entity is USA.
  std::vector<Triple> top =
      filter.MostPromisingFacts(fig.prediction, PredictionTarget::kHead);
  for (const Triple& t : top) {
    EXPECT_TRUE(t.Mentions(fig.usa));
  }
}

TEST(PreFilterTest, NonePolicyReturnsEverything) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  PreFilterOptions options;
  options.policy = PromisingnessPolicy::kNone;
  options.top_k = 1;
  PreFilter filter(dataset, options);
  std::vector<Triple> all =
      filter.MostPromisingFacts(prediction, PredictionTarget::kTail);
  EXPECT_EQ(all.size(),
            dataset.train_graph().FactsOf(prediction.head).size());
}

TEST(PreFilterTest, TypeSimilarityPolicyPrefersSameSignatureEndpoints) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();  // <Person, nationality, Country>
  PreFilterOptions options;
  options.policy = PromisingnessPolicy::kTypeSimilarity;
  PreFilter filter(dataset, options);
  std::vector<Triple> facts =
      dataset.train_graph().FactsOf(prediction.head);
  std::vector<double> gamma =
      filter.Promisingness(prediction, PredictionTarget::kTail, facts);
  // All γ must be valid dissimilarities in [0, 1].
  for (double g : gamma) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0 + 1e-12);
  }
}

TEST(PreFilterTest, DeterministicAcrossCalls) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  PreFilter filter(dataset, {});
  std::vector<Triple> a =
      filter.MostPromisingFacts(prediction, PredictionTarget::kTail);
  std::vector<Triple> b =
      filter.MostPromisingFacts(prediction, PredictionTarget::kTail);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace kelpie
