// Exactness guarantees of the quantized shortlist fast path (math/quant.h,
// eval/ranking.cc, DESIGN.md §15), in two layers:
//
//  1. Property harness over the shortlist primitive: for fuzzed tables of
//     dims 1..67 (including duplicated rows and rows differing in the last
//     ulp — adversarial near-ties), SelectShortlist must return a superset
//     of the true top-K by *exact* float kernel value, for both kernels,
//     at several K and slack values.
//
//  2. End-to-end byte-identity: filtered ranks, evaluation metrics,
//     conversion sets and relevances of all five models are bitwise equal
//     with the quantized path on or off, at 1 and 4 threads, because every
//     candidate is either classified through a certified interval or
//     re-scored through the same per-row kernels the exact sweep uses.
#include "math/quant.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "core/relevance_engine.h"
#include "eval/evaluator.h"
#include "eval/ranking.h"
#include "math/matrix.h"
#include "math/rng.h"
#include "math/simd.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

constexpr size_t kMaxDim = 67;  // covers every remainder mod 8 twice, plus 3

/// Fuzz table: 40 random rows, 4 exact duplicates of early rows, and 4
/// copies nudged by one ulp in one element — the hardest inputs for a
/// pruner, because approximate scores cannot separate them.
Matrix FuzzTable(size_t dim, Rng& rng) {
  Matrix m(48, dim);
  for (size_t r = 0; r < 40; ++r) {
    for (size_t j = 0; j < dim; ++j) {
      m.At(r, j) = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
    }
  }
  for (size_t k = 0; k < 4; ++k) {
    for (size_t j = 0; j < dim; ++j) {
      m.At(40 + k, j) = m.At(k, j);
      m.At(44 + k, j) = m.At(k, j);
    }
    m.At(44 + k, 0) = std::nextafter(m.At(k, 0), 100.0f);
  }
  return m;
}

/// The strongest, tie-break-proof form of "true top-K": every row whose
/// exact value ties or beats the K-th best exact value.
std::unordered_set<size_t> TrueTopK(const std::vector<float>& final_scores,
                                    size_t k) {
  std::vector<float> sorted = final_scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  const float kth = sorted[std::min(k, sorted.size()) - 1];
  std::unordered_set<size_t> top;
  for (size_t i = 0; i < final_scores.size(); ++i) {
    if (final_scores[i] >= kth) top.insert(i);
  }
  return top;
}

TEST(QuantShortlistPropertyTest, DotShortlistIsSupersetOfTrueTopK) {
  for (size_t dim = 1; dim <= kMaxDim; ++dim) {
    for (uint64_t seed : {11u, 29u}) {
      Rng rng(seed * 1000 + dim);
      Matrix m = FuzzTable(dim, rng);
      std::vector<float> x(dim);
      for (float& v : x) v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      std::shared_ptr<const quant::QuantizedTable> qt =
          quant::QuantizeRowMajor(m);
      ASSERT_NE(qt, nullptr);
      quant::QuantizedVec qx = quant::QuantizeVec(x);
      std::vector<double> approx(m.rows()), err(m.rows());
      quant::ApproxDots(*qt, qx, approx, err);
      std::vector<float> exact(m.rows());
      for (size_t r = 0; r < m.rows(); ++r) exact[r] = simd::Dot(m.Row(r), x);
      for (size_t k : {1u, 5u, 10u}) {
        for (size_t slack : {0u, 3u}) {
          std::vector<size_t> shortlist =
              quant::SelectShortlist(approx, err, k, slack, /*largest=*/true);
          std::unordered_set<size_t> in(shortlist.begin(), shortlist.end());
          for (size_t i : TrueTopK(exact, k)) {
            EXPECT_TRUE(in.count(i))
                << "dot dim=" << dim << " seed=" << seed << " k=" << k
                << " slack=" << slack << " dropped true-top row " << i;
          }
        }
      }
    }
  }
}

TEST(QuantShortlistPropertyTest, DistanceShortlistIsSupersetOfTrueTopK) {
  for (size_t dim = 1; dim <= kMaxDim; ++dim) {
    for (uint64_t seed : {13u, 31u}) {
      Rng rng(seed * 1000 + dim);
      Matrix m = FuzzTable(dim, rng);
      std::vector<float> x(dim);
      for (float& v : x) v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      std::shared_ptr<const quant::QuantizedTable> qt =
          quant::QuantizeRowMajor(m);
      ASSERT_NE(qt, nullptr);
      quant::QuantizedVec qx = quant::QuantizeVec(x);
      std::vector<double> approx(m.rows()), err(m.rows());
      quant::ApproxSquaredDistances(*qt, qx, approx, err);
      // Final scores exactly as the distance models compute them.
      std::vector<float> final_scores(m.rows());
      for (size_t r = 0; r < m.rows(); ++r) {
        final_scores[r] = -std::sqrt(simd::SquaredDistance(m.Row(r), x));
      }
      for (size_t k : {1u, 5u, 10u}) {
        for (size_t slack : {0u, 3u}) {
          std::vector<size_t> shortlist =
              quant::SelectShortlist(approx, err, k, slack, /*largest=*/false);
          std::unordered_set<size_t> in(shortlist.begin(), shortlist.end());
          for (size_t i : TrueTopK(final_scores, k)) {
            EXPECT_TRUE(in.count(i))
                << "dist dim=" << dim << " seed=" << seed << " k=" << k
                << " slack=" << slack << " dropped true-top row " << i;
          }
        }
      }
    }
  }
}

TEST(QuantShortlistPropertyTest, InfiniteErrorRowsAreNeverPruned) {
  // err = +Inf (non-finite source rows) must survive any threshold.
  std::vector<double> approx{5.0, 1.0, 0.0};
  std::vector<double> err{0.1, 0.1,
                          std::numeric_limits<double>::infinity()};
  for (bool largest : {true, false}) {
    std::vector<size_t> s = quant::SelectShortlist(approx, err, 1, 0, largest);
    EXPECT_TRUE(std::find(s.begin(), s.end(), 2u) != s.end());
  }
}

// ---------------------------------------------------------------------------
// End-to-end byte-identity across all five models.
// ---------------------------------------------------------------------------

const Dataset& ToyDataset() {
  static const Dataset* dataset =
      new Dataset(testing_util::MakeToyDataset());
  return *dataset;
}

/// Models are expensive to train; share one per kind across tests (they are
/// only read — mutation tests make their own copies of rows and restore).
LinkPredictionModel& ToyModel(ModelKind kind) {
  static auto* cache =
      new std::map<ModelKind, std::unique_ptr<LinkPredictionModel>>();
  auto it = cache->find(kind);
  if (it == cache->end()) {
    it = cache->emplace(kind, testing_util::TrainToyModel(kind, ToyDataset()))
             .first;
  }
  return *it->second;
}

const ModelKind kAllKinds[] = {ModelKind::kTransE, ModelKind::kRotatE,
                               ModelKind::kDistMult, ModelKind::kComplEx,
                               ModelKind::kConvE};

TEST(QuantExactnessTest, FilteredRanksByteIdenticalQuantOnVsOff) {
  const Dataset& dataset = ToyDataset();
  const RankingOptions on{true};
  const RankingOptions off{false};
  for (ModelKind kind : kAllKinds) {
    const LinkPredictionModel& model = ToyModel(kind);
    metrics::ScopedRegistry scoped;  // isolates the engagement counters
    for (const Triple& t : dataset.test()) {
      EXPECT_EQ(FilteredTailRank(model, dataset, t, on),
                FilteredTailRank(model, dataset, t, off))
          << model.Name() << " tail " << t.head << "," << t.relation << ","
          << t.tail;
      EXPECT_EQ(FilteredHeadRank(model, dataset, t, on),
                FilteredHeadRank(model, dataset, t, off))
          << model.Name() << " head";
      EXPECT_EQ(FilteredRank(model, dataset, t, PredictionTarget::kTail, on),
                FilteredRank(model, dataset, t, PredictionTarget::kTail, off));
    }
    // The identity must not be vacuous: the quantized path really served
    // these ranks (no silent fallback to the exact sweep).
    metrics::Registry& reg = metrics::Registry::Global();
    EXPECT_GT(reg.GetCounter("kelpie_quant_sweeps_total", {}).Value(), 0u)
        << model.Name();
    EXPECT_EQ(reg.GetCounter("kelpie_quant_fallbacks_total", {}).Value(), 0u)
        << model.Name();
  }
}

TEST(QuantExactnessTest, MimicOverrideRanksByteIdenticalQuantOnVsOff) {
  // The relevance engine's hot call ranks with an override vector standing
  // in for an entity (the mimic). Perturbed vectors, including near-tie
  // nudges, must rank identically through both paths.
  const Dataset& dataset = ToyDataset();
  const RankingOptions on{true};
  const RankingOptions off{false};
  for (ModelKind kind : kAllKinds) {
    const LinkPredictionModel& model = ToyModel(kind);
    const Triple probe = dataset.test().front();
    Rng rng(77);
    for (int trial = 0; trial < 4; ++trial) {
      std::span<const float> base = model.EntityEmbedding(probe.head);
      std::vector<float> mimic(base.begin(), base.end());
      if (trial == 1) {
        for (float& v : mimic) {
          v += static_cast<float>(rng.UniformDouble(-0.05, 0.05));
        }
      } else if (trial == 2) {
        mimic[0] = std::nextafter(mimic[0], 100.0f);  // one-ulp near-tie
      } else if (trial == 3) {
        for (float& v : mimic) v = 0.0f;  // degenerate zero query
      }
      EXPECT_EQ(FilteredTailRankWithHeadVec(model, dataset, probe.head, mimic,
                                            probe.relation, probe.tail, on),
                FilteredTailRankWithHeadVec(model, dataset, probe.head, mimic,
                                            probe.relation, probe.tail, off))
          << model.Name() << " trial " << trial;
      EXPECT_EQ(FilteredHeadRankWithTailVec(model, dataset, probe.tail, mimic,
                                            probe.relation, probe.head, on),
                FilteredHeadRankWithTailVec(model, dataset, probe.tail, mimic,
                                            probe.relation, probe.head, off))
          << model.Name() << " trial " << trial;
    }
  }
}

uint64_t Bits64(double d) { return std::bit_cast<uint64_t>(d); }

TEST(QuantExactnessTest, EvaluateByteIdenticalAcrossThreadsAndQuant) {
  const Dataset& dataset = ToyDataset();
  for (ModelKind kind : kAllKinds) {
    const LinkPredictionModel& model = ToyModel(kind);
    EvalResult reference;  // threads=1, quant off
    bool have_reference = false;
    for (size_t threads : {1u, 4u}) {
      for (bool quant : {false, true}) {
        EvalOptions options;
        options.num_threads = threads;
        options.quantized_shortlist = quant;
        EvalResult result = EvaluateTest(model, dataset, options);
        if (!have_reference) {
          reference = result;
          have_reference = true;
          continue;
        }
        EXPECT_EQ(Bits64(result.Mrr()), Bits64(reference.Mrr()))
            << model.Name() << " threads=" << threads << " quant=" << quant;
        EXPECT_EQ(Bits64(result.HitsAt(1)), Bits64(reference.HitsAt(1)))
            << model.Name() << " threads=" << threads << " quant=" << quant;
        EXPECT_EQ(Bits64(result.HitsAt(10)), Bits64(reference.HitsAt(10)))
            << model.Name() << " threads=" << threads << " quant=" << quant;
      }
    }
  }
}

TEST(QuantExactnessTest, NearTieEntityRowsRankIdentically) {
  // Engineer exact ties and one-ulp separations inside the entity table
  // itself, then rank across them: the uncertain band must re-score through
  // the exact kernels and agree with the exact sweep on every comparison.
  const Dataset& dataset = ToyDataset();
  const RankingOptions on{true};
  const RankingOptions off{false};
  for (ModelKind kind : kAllKinds) {
    LinkPredictionModel& model = ToyModel(kind);
    const Triple probe = dataset.test().front();
    // Save rows 0 and 1, overwrite with tail's row (exact tie) and a
    // one-ulp nudge of it, compare, restore.
    std::vector<float> save0(model.EntityEmbedding(0).begin(),
                             model.EntityEmbedding(0).end());
    std::vector<float> save1(model.EntityEmbedding(1).begin(),
                             model.EntityEmbedding(1).end());
    std::span<const float> target_row = model.EntityEmbedding(probe.tail);
    std::vector<float> tie(target_row.begin(), target_row.end());
    std::copy(tie.begin(), tie.end(), model.MutableEntityEmbedding(0).begin());
    tie[0] = std::nextafter(tie[0], 100.0f);
    std::copy(tie.begin(), tie.end(), model.MutableEntityEmbedding(1).begin());
    EXPECT_EQ(FilteredTailRank(model, dataset, probe, on),
              FilteredTailRank(model, dataset, probe, off))
        << model.Name() << " with engineered ties";
    std::copy(save0.begin(), save0.end(),
              model.MutableEntityEmbedding(0).begin());
    std::copy(save1.begin(), save1.end(),
              model.MutableEntityEmbedding(1).begin());
  }
}

TEST(QuantExactnessTest, RelevanceAndConversionSetsByteIdentical) {
  // The relevance engine consumes ranks through the quantized path: its
  // conversion sets (sampled by rank) and relevances (rank differences
  // after post-training) must be byte-identical with the flag on or off.
  const Dataset& dataset = ToyDataset();
  const LinkPredictionModel& model = ToyModel(ModelKind::kComplEx);
  Triple prediction;
  bool found = false;
  for (const Triple& t : dataset.test()) {
    if (FilteredTailRank(model, dataset, t) == 1) {
      prediction = t;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  Triple evidence;
  for (const Triple& f : dataset.train_graph().FactsOf(prediction.head)) {
    if (f.relation == 0 && f.head == prediction.head) {
      evidence = f;
      break;
    }
  }
  ASSERT_NE(evidence.head, kNoEntity);

  RelevanceEngineOptions quant_on;
  quant_on.quantized_shortlist = true;
  quant_on.conversion_set_size = 5;
  RelevanceEngineOptions quant_off;
  quant_off.quantized_shortlist = false;
  quant_off.conversion_set_size = 5;
  RelevanceEngine engine_on(model, dataset, quant_on);
  RelevanceEngine engine_off(model, dataset, quant_off);

  EXPECT_EQ(
      engine_on.SampleConversionSet(prediction, PredictionTarget::kTail),
      engine_off.SampleConversionSet(prediction, PredictionTarget::kTail));
  const double rel_on = engine_on.NecessaryRelevance(
      prediction, PredictionTarget::kTail, {evidence});
  const double rel_off = engine_off.NecessaryRelevance(
      prediction, PredictionTarget::kTail, {evidence});
  EXPECT_EQ(Bits64(rel_on), Bits64(rel_off));
}

TEST(QuantExactnessTest, FallbackCoversModelsWithoutSweepSupport) {
  // A model that exposes no CandidateSweep must silently fall back and
  // still return the exact rank; the fallback counter records it.
  class OpaqueModel final : public LinkPredictionModel {
   public:
    explicit OpaqueModel(const LinkPredictionModel& inner)
        : LinkPredictionModel(TrainConfig{}), inner_(inner) {}
    std::string_view Name() const override { return "Opaque"; }
    size_t num_entities() const override { return inner_.num_entities(); }
    size_t num_relations() const override { return inner_.num_relations(); }
    size_t entity_dim() const override { return inner_.entity_dim(); }
    Status Train(const Dataset&, Rng&, const TrainControl&) override {
      return Status::Ok();
    }
    float Score(const Triple& t) const override { return inner_.Score(t); }
    void ScoreAllTails(EntityId h, RelationId r,
                       std::span<float> out) const override {
      inner_.ScoreAllTails(h, r, out);
    }
    void ScoreAllHeads(RelationId r, EntityId t,
                       std::span<float> out) const override {
      inner_.ScoreAllHeads(r, t, out);
    }
    void ScoreAllTailsWithHeadVec(std::span<const float> h, RelationId r,
                                  std::span<float> out) const override {
      inner_.ScoreAllTailsWithHeadVec(h, r, out);
    }
    void ScoreAllHeadsWithTailVec(RelationId r, std::span<const float> t,
                                  std::span<float> out) const override {
      inner_.ScoreAllHeadsWithTailVec(r, t, out);
    }
    float ScoreWithEntityVec(const Triple& t, EntityId which,
                             std::span<const float> vec) const override {
      return inner_.ScoreWithEntityVec(t, which, vec);
    }
    std::vector<float> ScoreGradWrtHead(const Triple& t) const override {
      return inner_.ScoreGradWrtHead(t);
    }
    std::vector<float> ScoreGradWrtTail(const Triple& t) const override {
      return inner_.ScoreGradWrtTail(t);
    }
    using LinkPredictionModel::PostTrainMimic;
    std::vector<float> PostTrainMimic(const Dataset& d, EntityId e,
                                      const std::vector<Triple>& f, Rng& rng,
                                      std::span<const float> w)
        const override {
      return inner_.PostTrainMimic(d, e, f, rng, w);
    }
    std::span<const float> EntityEmbedding(EntityId e) const override {
      return inner_.EntityEmbedding(e);
    }
    std::span<float> MutableEntityEmbedding(EntityId) override {
      KELPIE_CHECK(false);
      return {};
    }
    Status SaveParameters(std::ostream&) const override {
      return Status::Ok();
    }
    Status LoadParameters(std::istream&) override { return Status::Ok(); }
    // No TailSweepWithHeadVec / EntityTable overrides: the base class
    // defaults (nullopt / nullptr) exercise the fallback.

   private:
    const LinkPredictionModel& inner_;
  };

  const Dataset& dataset = ToyDataset();
  OpaqueModel opaque(ToyModel(ModelKind::kComplEx));
  metrics::ScopedRegistry scoped;
  const Triple probe = dataset.test().front();
  EXPECT_EQ(FilteredTailRank(opaque, dataset, probe, RankingOptions{true}),
            FilteredTailRank(opaque, dataset, probe, RankingOptions{false}));
  metrics::Registry& reg = metrics::Registry::Global();
  EXPECT_GT(reg.GetCounter("kelpie_quant_fallbacks_total", {}).Value(), 0u);
  EXPECT_EQ(reg.GetCounter("kelpie_quant_sweeps_total", {}).Value(), 0u);
}

TEST(QuantExactnessTest, GlobalDefaultDrivesOptionlessOverloads) {
  const Dataset& dataset = ToyDataset();
  const LinkPredictionModel& model = ToyModel(ModelKind::kTransE);
  const Triple probe = dataset.test().front();
  ASSERT_FALSE(DefaultQuantizedShortlist());
  const int off_rank = FilteredTailRank(model, dataset, probe);
  SetDefaultQuantizedShortlist(true);
  metrics::ScopedRegistry scoped;
  const int on_rank = FilteredTailRank(model, dataset, probe);
  EXPECT_GT(
      metrics::Registry::Global().GetCounter("kelpie_quant_sweeps_total", {})
          .Value(),
      0u);
  SetDefaultQuantizedShortlist(false);
  EXPECT_EQ(on_rank, off_rank);
  // EvalOptions picks the default up at construction time.
  SetDefaultQuantizedShortlist(true);
  EvalOptions options;
  EXPECT_TRUE(options.quantized_shortlist);
  SetDefaultQuantizedShortlist(false);
  EvalOptions options_off;
  EXPECT_FALSE(options_off.quantized_shortlist);
}

}  // namespace
}  // namespace kelpie
