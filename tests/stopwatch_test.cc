// The stopwatch must be monotone: it is the basis of deadline accounting,
// so a wall-clock adjustment (NTP step, suspend) must never make elapsed
// time go backwards. The header pins std::chrono::steady_clock with a
// static_assert; these tests exercise the observable contract.
#include "common/stopwatch.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(StopwatchTest, ElapsedIsMonotoneNonDecreasing) {
  Stopwatch watch;
  double last = watch.ElapsedSeconds();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 10000; ++i) {
    const double now = watch.ElapsedSeconds();
    ASSERT_GE(now, last) << "elapsed time went backwards at sample " << i;
    last = now;
  }
}

TEST(StopwatchTest, RestartResetsElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double before = watch.ElapsedSeconds();
  EXPECT_GE(before, 0.045);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before);
}

TEST(StopwatchTest, MillisAndSecondsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double seconds = watch.ElapsedSeconds();
  const double millis = watch.ElapsedMillis();
  // Sampled a hair apart, so bracket instead of demanding equality.
  EXPECT_GE(millis, seconds * 1000.0);
  EXPECT_LT(millis, (seconds + 1.0) * 1000.0);
}

TEST(StopwatchTest, UsesSteadyClock) {
  static_assert(std::is_same_v<Stopwatch::Clock, std::chrono::steady_clock>,
                "deadline math requires a monotonic clock");
  static_assert(Stopwatch::Clock::is_steady);
  SUCCEED();
}

}  // namespace
}  // namespace kelpie
