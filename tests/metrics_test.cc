#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(MetricsTest, EmptyAccumulatorIsZero) {
  MetricsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.HitsAt(1), 0.0);
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MeanRank(), 0.0);
}

TEST(MetricsTest, HitsAtKCountsRanksBelowThreshold) {
  MetricsAccumulator acc;
  for (int r : {1, 1, 2, 5, 10}) acc.AddRank(r);
  EXPECT_DOUBLE_EQ(acc.HitsAt(1), 0.4);
  EXPECT_DOUBLE_EQ(acc.HitsAt(2), 0.6);
  EXPECT_DOUBLE_EQ(acc.HitsAt(10), 1.0);
}

TEST(MetricsTest, MrrAveragesReciprocals) {
  MetricsAccumulator acc;
  acc.AddRank(1);
  acc.AddRank(2);
  acc.AddRank(4);
  EXPECT_NEAR(acc.Mrr(), (1.0 + 0.5 + 0.25) / 3.0, 1e-12);
}

TEST(MetricsTest, MeanRank) {
  MetricsAccumulator acc;
  acc.AddRank(1);
  acc.AddRank(3);
  EXPECT_DOUBLE_EQ(acc.MeanRank(), 2.0);
}

TEST(MetricsTest, AllPerfectRanks) {
  MetricsAccumulator acc;
  for (int i = 0; i < 10; ++i) acc.AddRank(1);
  EXPECT_DOUBLE_EQ(acc.HitsAt(1), 1.0);
  EXPECT_DOUBLE_EQ(acc.Mrr(), 1.0);
}

TEST(MetricsTest, MetricsAreInUnitInterval) {
  MetricsAccumulator acc;
  for (int r : {1, 7, 100, 3, 42}) acc.AddRank(r);
  EXPECT_GE(acc.Mrr(), 0.0);
  EXPECT_LE(acc.Mrr(), 1.0);
  EXPECT_GE(acc.HitsAt(1), 0.0);
  EXPECT_LE(acc.HitsAt(1), 1.0);
}

}  // namespace
}  // namespace kelpie
