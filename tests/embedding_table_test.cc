#include "ml/embedding_table.h"

#include <cmath>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(InitTest, NormalInitHasRequestedMoments) {
  Matrix m(200, 50);
  Rng rng(1);
  InitMatrix(m, InitScheme::kNormal, 0.1, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : m.Data()) {
    sum += v;
    sq += v * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n), 0.1, 0.01);
}

TEST(InitTest, UniformInitStaysInBounds) {
  Matrix m(50, 20);
  Rng rng(2);
  InitMatrix(m, InitScheme::kUniform, 0.5, rng);
  for (float v : m.Data()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(InitTest, XavierBoundDependsOnFans) {
  Matrix m(10, 90);
  Rng rng(3);
  InitMatrix(m, InitScheme::kXavierUniform, 0.0, rng);
  const float bound = std::sqrt(6.0f / (10.0f + 90.0f));
  for (float v : m.Data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, DeterministicGivenSeed) {
  Matrix a(5, 5), b(5, 5);
  Rng r1(9), r2(9);
  InitMatrix(a, InitScheme::kNormal, 0.1, r1);
  InitMatrix(b, InitScheme::kNormal, 0.1, r2);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.Data()[i], b.Data()[i]);
  }
}

TEST(InitTest, InitRowUsesExplicitFans) {
  std::vector<float> row(64);
  Rng rng(4);
  InitRow(row, InitScheme::kXavierUniform, 0.0, rng, 32, 32);
  const float bound = std::sqrt(6.0f / 64.0f);
  for (float v : row) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(InitTest, InitRowDefaultsFanToRowSize) {
  std::vector<float> row(24);
  Rng rng(5);
  InitRow(row, InitScheme::kXavierUniform, 0.0, rng);
  const float bound = std::sqrt(6.0f / 24.0f);
  for (float v : row) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

}  // namespace
}  // namespace kelpie
