#include "datagen/datasets.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

class BenchmarkDatasetTest
    : public ::testing::TestWithParam<BenchmarkDataset> {};

TEST_P(BenchmarkDatasetTest, GeneratesNonDegenerateDataset) {
  Dataset d = MakeBenchmark(GetParam(), /*scale=*/0.5, /*seed=*/7);
  EXPECT_GT(d.num_entities(), 100u);
  EXPECT_GE(d.num_relations(), 3u);
  EXPECT_GT(d.train().size(), 500u);
  EXPECT_GT(d.test().size(), 20u);
  EXPECT_GT(d.valid().size(), 10u);
}

TEST_P(BenchmarkDatasetTest, SplitsDisjointAndEntitiesCovered) {
  Dataset d = MakeBenchmark(GetParam(), 0.5, 7);
  for (const Triple& t : d.test()) {
    EXPECT_FALSE(d.train_graph().Contains(t));
    EXPECT_GT(d.train_graph().Degree(t.head), 0u);
    EXPECT_GT(d.train_graph().Degree(t.tail), 0u);
  }
}

TEST_P(BenchmarkDatasetTest, DegreeDistributionIsSkewed) {
  Dataset d = MakeBenchmark(GetParam(), 0.5, 7);
  DatasetStats stats = ComputeStats(d);
  // The paper notes LP datasets have extremely skewed degree
  // distributions; the max degree should dwarf the mean.
  EXPECT_GT(static_cast<double>(stats.max_entity_degree),
            4.0 * stats.mean_entity_degree);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkDatasetTest,
    ::testing::ValuesIn(AllBenchmarkDatasets()),
    [](const ::testing::TestParamInfo<BenchmarkDataset>& info) {
      std::string name(BenchmarkDatasetName(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BenchmarkNamesTest, MatchPaperTable1) {
  EXPECT_EQ(BenchmarkDatasetName(BenchmarkDataset::kFb15k), "FB15k");
  EXPECT_EQ(BenchmarkDatasetName(BenchmarkDataset::kFb15k237), "FB15k-237");
  EXPECT_EQ(BenchmarkDatasetName(BenchmarkDataset::kWn18), "WN18");
  EXPECT_EQ(BenchmarkDatasetName(BenchmarkDataset::kWn18rr), "WN18RR");
  EXPECT_EQ(BenchmarkDatasetName(BenchmarkDataset::kYago310), "YAGO3-10");
  EXPECT_EQ(AllBenchmarkDatasets().size(), 5u);
}

TEST(BenchmarkStructureTest, Fb15kHasInverseLeakageAnd237DoesNot) {
  Dataset fb = MakeBenchmark(BenchmarkDataset::kFb15k, 0.5, 7);
  Dataset fb237 = MakeBenchmark(BenchmarkDataset::kFb15k237, 0.5, 7);
  EXPECT_TRUE(fb.relations().Contains("has_actor"));
  EXPECT_TRUE(fb.relations().Contains("person_born_here"));
  EXPECT_FALSE(fb237.relations().Contains("has_actor"));
  EXPECT_FALSE(fb237.relations().Contains("person_born_here"));
  // The leakage makes FB15k strictly larger.
  EXPECT_GT(fb.train().size(), fb237.train().size());
}

TEST(BenchmarkStructureTest, Wn18HasInversePairsAndRrDoesNot) {
  Dataset wn = MakeBenchmark(BenchmarkDataset::kWn18, 0.5, 7);
  Dataset wnrr = MakeBenchmark(BenchmarkDataset::kWn18rr, 0.5, 7);
  EXPECT_TRUE(wn.relations().Contains("hyponym"));
  EXPECT_FALSE(wnrr.relations().Contains("hyponym"));
  // Both keep the symmetric relations.
  EXPECT_TRUE(wn.relations().Contains("similar_to"));
  EXPECT_TRUE(wnrr.relations().Contains("similar_to"));
}

TEST(BenchmarkStructureTest, Wn18rrTestIsDominatedBySymmetricRelations) {
  Dataset wnrr = MakeBenchmark(BenchmarkDataset::kWn18rr, 0.5, 7);
  size_t symmetric = 0;
  for (const Triple& t : wnrr.test()) {
    const std::string& rel = wnrr.relations().NameOf(t.relation);
    if (rel == "similar_to" || rel == "derivationally_related" ||
        rel == "also_see") {
      ++symmetric;
    }
  }
  // Without inverse relations, the only derivable (hence test-eligible)
  // facts are the symmetric copies.
  EXPECT_EQ(symmetric, wnrr.test().size());
}

TEST(BenchmarkStructureTest, YagoHasFootballBiasRelations) {
  Dataset yago = MakeBenchmark(BenchmarkDataset::kYago310, 0.5, 7);
  EXPECT_TRUE(yago.relations().Contains("plays_for"));
  EXPECT_TRUE(yago.relations().Contains("born_in"));
  EXPECT_TRUE(yago.relations().Contains("acted_in"));
  // born_in facts exist despite facts_per_head = 0 (from the correlation).
  Result<int32_t> born = yago.relations().Find("born_in");
  ASSERT_TRUE(born.ok());
  size_t count = 0;
  for (const Triple& t : yago.train()) {
    if (t.relation == born.value()) ++count;
  }
  EXPECT_GT(count, 50u);
}

TEST(BenchmarkScaleTest, ScaleShrinksDataset) {
  Dataset small = MakeBenchmark(BenchmarkDataset::kFb15k237, 0.3, 7);
  Dataset large = MakeBenchmark(BenchmarkDataset::kFb15k237, 1.0, 7);
  EXPECT_LT(small.num_entities(), large.num_entities());
  EXPECT_LT(small.train().size(), large.train().size());
}

}  // namespace
}  // namespace kelpie
