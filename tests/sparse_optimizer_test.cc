// Unit tests of the sparse optimizer state (DESIGN.md §16): byte-identity
// with the dense optimizers on touched rows, lazy materialization,
// deterministic serialization and validate-before-mutate restore.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "math/matrix.h"
#include "math/rng.h"
#include "ml/optimizer.h"

namespace kelpie {
namespace {

std::vector<float> RandomVec(Rng& rng, size_t n) {
  std::vector<float> out(n);
  for (float& x : out) x = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  return out;
}

Matrix RandomMatrix(Rng& rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (float& x : m.Data()) {
    x = static_cast<float>(rng.UniformDouble() * 2.0 - 1.0);
  }
  return m;
}

bool BitwiseEqual(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(SparseRowAdagradTest, MatchesDenseOnTouchedRows) {
  constexpr size_t kRows = 12, kCols = 8;
  Rng rng(3);
  Matrix dense_params = RandomMatrix(rng, kRows, kCols);
  Matrix sparse_params = dense_params;
  RowAdagrad dense(kRows, kCols, 0.1f);
  SparseRowAdagrad sparse(kRows, kCols, 0.1f);

  // A scattered schedule, including repeats, never touching rows 0 and 11.
  const size_t schedule[] = {3, 7, 3, 5, 9, 7, 7, 1, 5, 3};
  for (size_t row : schedule) {
    std::vector<float> grad = RandomVec(rng, kCols);
    dense.Step(dense_params, row, grad);
    sparse.Step(sparse_params, row, grad);
  }
  EXPECT_TRUE(BitwiseEqual(dense_params.Data(), sparse_params.Data()));
  EXPECT_EQ(sparse.touched_rows(), 5u);  // distinct rows {1, 3, 5, 7, 9}
}

TEST(SparseRowAdagradTest, SameRowTwiceInOneBatchAccumulates) {
  // The same row receiving two gradients back to back (a batch containing
  // one entity twice) must see the second step conditioned on the first
  // step's accumulator — identical to the dense optimizer.
  constexpr size_t kCols = 4;
  Rng rng(5);
  Matrix dense_params = RandomMatrix(rng, 2, kCols);
  Matrix sparse_params = dense_params;
  RowAdagrad dense(2, kCols, 0.2f);
  SparseRowAdagrad sparse(2, kCols, 0.2f);
  std::vector<float> g1 = RandomVec(rng, kCols);
  std::vector<float> g2 = RandomVec(rng, kCols);
  dense.Step(dense_params, 1, g1);
  dense.Step(dense_params, 1, g2);
  sparse.Step(sparse_params, 1, g1);
  sparse.Step(sparse_params, 1, g2);
  EXPECT_TRUE(BitwiseEqual(dense_params.Data(), sparse_params.Data()));
  EXPECT_EQ(sparse.touched_rows(), 1u);
}

TEST(SparseRowAdagradTest, StepSpanMatchesStepOnSameState) {
  constexpr size_t kCols = 6;
  Rng rng(9);
  std::vector<float> row_a = RandomVec(rng, kCols);
  std::vector<float> row_b = row_a;
  std::vector<float> grad = RandomVec(rng, kCols);
  Matrix table(1, kCols);
  std::copy(row_a.begin(), row_a.end(), table.Row(0).begin());

  SparseRowAdagrad a(1, kCols, 0.3f);
  SparseRowAdagrad b(1, kCols, 0.3f);
  a.Step(table, 0, grad);
  b.StepSpan(row_b, 0, grad);
  EXPECT_TRUE(BitwiseEqual(table.Row(0), row_b));
}

TEST(SparseRowAdagradTest, SaveRestoreRoundTripsAndStaysDeterministic) {
  constexpr size_t kRows = 10, kCols = 4;
  Rng rng(11);
  Matrix params = RandomMatrix(rng, kRows, kCols);
  Matrix params_copy = params;
  SparseRowAdagrad opt(kRows, kCols, 0.1f);
  for (size_t row : {2u, 8u, 2u, 4u}) {
    opt.Step(params, row, RandomVec(rng, kCols));
  }
  const std::string blob = opt.SaveState();
  EXPECT_EQ(blob, opt.SaveState());  // serialization is a pure function

  SparseRowAdagrad restored(kRows, kCols, 0.1f);
  ASSERT_TRUE(restored.RestoreState(blob));
  EXPECT_EQ(restored.touched_rows(), opt.touched_rows());
  EXPECT_EQ(restored.SaveState(), blob);

  // Continue both from the same state: future steps must agree bitwise.
  Rng grads(13);
  Matrix continued = params;
  for (size_t row : {4u, 6u, 2u}) {
    std::vector<float> g = RandomVec(grads, kCols);
    opt.Step(params, row, g);
    restored.Step(continued, row, g);
  }
  EXPECT_TRUE(BitwiseEqual(params.Data(), continued.Data()));
  (void)params_copy;
}

TEST(SparseRowAdagradTest, RestoreValidatesBeforeMutating) {
  constexpr size_t kRows = 6, kCols = 3;
  Rng rng(17);
  Matrix params = RandomMatrix(rng, kRows, kCols);
  SparseRowAdagrad opt(kRows, kCols, 0.1f);
  opt.Step(params, 2, RandomVec(rng, kCols));
  const std::string before = opt.SaveState();

  // Truncated blob: rejected, state untouched.
  EXPECT_FALSE(opt.RestoreState(std::string_view(before).substr(
      0, before.size() - 3)));
  EXPECT_EQ(opt.SaveState(), before);

  // Wrong shape: a blob saved from a differently shaped optimizer.
  SparseRowAdagrad other(kRows + 1, kCols, 0.1f);
  Matrix other_params = RandomMatrix(rng, kRows + 1, kCols);
  other.Step(other_params, 0, RandomVec(rng, kCols));
  EXPECT_FALSE(opt.RestoreState(other.SaveState()));
  EXPECT_EQ(opt.SaveState(), before);

  // Empty blob: fresh state.
  EXPECT_TRUE(opt.RestoreState(std::string_view()));
  EXPECT_EQ(opt.touched_rows(), 0u);
}

TEST(SparseAdamTest, RowSteppedKTimesEqualsOneRowDenseAdam) {
  constexpr size_t kCols = 5;
  Rng rng(23);
  std::vector<float> sparse_row = RandomVec(rng, kCols);
  Matrix dense_row(1, kCols);
  std::copy(sparse_row.begin(), sparse_row.end(), dense_row.Row(0).begin());

  SparseAdam sparse(4, kCols, 0.05f);
  DenseAdam dense(1, kCols, 0.05f);
  for (int k = 0; k < 7; ++k) {
    std::vector<float> g = RandomVec(rng, kCols);
    sparse.StepSpan(sparse_row, 3, g);
    dense.Step(dense_row, g);
  }
  EXPECT_TRUE(BitwiseEqual(dense_row.Row(0), sparse_row));
  EXPECT_EQ(sparse.row_step_count(3), 7);
  EXPECT_EQ(sparse.touched_rows(), 1u);
}

TEST(SparseAdamTest, BiasCorrectionIsPerRowLazy) {
  // A row first touched late must get first-step (t=1) bias correction,
  // not the global step count — i.e. it behaves exactly like a fresh
  // one-row DenseAdam, independent of the other rows' histories.
  constexpr size_t kCols = 4;
  Rng rng(29);
  SparseAdam sparse(3, kCols, 0.1f);
  std::vector<float> busy_row = RandomVec(rng, kCols);
  for (int k = 0; k < 5; ++k) {
    sparse.StepSpan(busy_row, 0, RandomVec(rng, kCols));
  }
  ASSERT_EQ(sparse.row_step_count(0), 5);
  EXPECT_EQ(sparse.row_step_count(2), 0);

  std::vector<float> late_row = RandomVec(rng, kCols);
  std::vector<float> late_copy = late_row;
  std::vector<float> g = RandomVec(rng, kCols);
  sparse.StepSpan(late_row, 2, g);
  EXPECT_EQ(sparse.row_step_count(2), 1);

  DenseAdam fresh(1, kCols, 0.1f);
  fresh.StepSpan(late_copy, g);
  EXPECT_TRUE(BitwiseEqual(late_row, late_copy));
}

TEST(SparseAdamTest, SaveRestoreCarriesStepCounts) {
  constexpr size_t kCols = 3;
  Rng rng(31);
  SparseAdam opt(4, kCols, 0.05f);
  std::vector<float> row = RandomVec(rng, kCols);
  for (int k = 0; k < 3; ++k) {
    opt.StepSpan(row, 1, RandomVec(rng, kCols));
  }
  const std::string blob = opt.SaveState();

  SparseAdam restored(4, kCols, 0.05f);
  ASSERT_TRUE(restored.RestoreState(blob));
  EXPECT_EQ(restored.row_step_count(1), 3);
  EXPECT_EQ(restored.SaveState(), blob);

  // Rejections leave state untouched.
  EXPECT_FALSE(restored.RestoreState("garbage-bytes"));
  EXPECT_EQ(restored.SaveState(), blob);
}

TEST(SparseBlobsTest, ComposeSplitRoundTrip) {
  const std::vector<std::string> parts = {"alpha", "", "gamma-longer"};
  const std::string blob = ComposeSparseBlobs(parts);
  std::vector<std::string> split;
  ASSERT_TRUE(SplitSparseBlobs(blob, parts.size(), split));
  EXPECT_EQ(split, parts);
}

TEST(SparseBlobsTest, EmptyInputYieldsExpectedEmptyParts) {
  std::vector<std::string> split;
  ASSERT_TRUE(SplitSparseBlobs(std::string_view(), 3, split));
  ASSERT_EQ(split.size(), 3u);
  for (const std::string& s : split) EXPECT_TRUE(s.empty());
}

TEST(SparseBlobsTest, RejectsCountMismatchAndTrailingBytes) {
  const std::string blob = ComposeSparseBlobs({"a", "b"});
  std::vector<std::string> split;
  EXPECT_FALSE(SplitSparseBlobs(blob, 3, split));
  EXPECT_FALSE(SplitSparseBlobs(blob + "x", 2, split));
  EXPECT_FALSE(SplitSparseBlobs(std::string_view(blob).substr(
                                    0, blob.size() - 1),
                                2, split));
}

}  // namespace
}  // namespace kelpie
