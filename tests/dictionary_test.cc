#include "kgraph/dictionary.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(DictionaryTest, AssignsDenseIdsInInsertionOrder) {
  Dictionary d;
  EXPECT_EQ(d.GetOrAdd("a"), 0);
  EXPECT_EQ(d.GetOrAdd("b"), 1);
  EXPECT_EQ(d.GetOrAdd("c"), 2);
  EXPECT_EQ(d.size(), 3u);
}

TEST(DictionaryTest, GetOrAddIsIdempotent) {
  Dictionary d;
  int32_t id = d.GetOrAdd("x");
  EXPECT_EQ(d.GetOrAdd("x"), id);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, FindReturnsNotFoundForMissing) {
  Dictionary d;
  d.GetOrAdd("present");
  Result<int32_t> found = d.Find("present");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0);
  Result<int32_t> missing = d.Find("absent");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(DictionaryTest, ContainsAndNameOfRoundTrip) {
  Dictionary d;
  int32_t id = d.GetOrAdd("Barack_Obama");
  EXPECT_TRUE(d.Contains("Barack_Obama"));
  EXPECT_FALSE(d.Contains("Xi_Jinping"));
  EXPECT_EQ(d.NameOf(id), "Barack_Obama");
}

TEST(DictionaryTest, NamesVectorAlignedWithIds) {
  Dictionary d;
  d.GetOrAdd("first");
  d.GetOrAdd("second");
  ASSERT_EQ(d.names().size(), 2u);
  EXPECT_EQ(d.names()[0], "first");
  EXPECT_EQ(d.names()[1], "second");
}

TEST(DictionaryTest, EmptyDictionary) {
  Dictionary d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.size(), 0u);
}

}  // namespace
}  // namespace kelpie
