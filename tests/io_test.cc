#include "kgraph/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(ParseTriplesTest, ParsesTsv) {
  Dictionary entities, relations;
  Result<std::vector<Triple>> result = ParseTriplesTsv(
      "a\tr1\tb\nb\tr2\tc\n", entities, relations);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0], Triple(0, 0, 1));
  EXPECT_EQ((*result)[1], Triple(1, 1, 2));
  EXPECT_EQ(entities.size(), 3u);
  EXPECT_EQ(relations.size(), 2u);
}

TEST(ParseTriplesTest, SkipsBlankLinesAndStripsWhitespace) {
  Dictionary entities, relations;
  Result<std::vector<Triple>> result = ParseTriplesTsv(
      "\n  a \tr\t b \n\n", entities, relations);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE(entities.Contains("a"));
  EXPECT_TRUE(entities.Contains("b"));
}

TEST(ParseTriplesTest, RejectsWrongFieldCount) {
  Dictionary entities, relations;
  Result<std::vector<Triple>> result =
      ParseTriplesTsv("a\tb\n", entities, relations);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseTriplesTest, WrongFieldCountReportsLineNumber) {
  Dictionary entities, relations;
  // Line 1 is fine, line 3 (after a blank line 2) has four fields.
  Result<std::vector<Triple>> result = ParseTriplesTsv(
      "a\tr\tb\n\nc\tr\td\textra\n", entities, relations);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("got 4"), std::string::npos)
      << result.status().ToString();
}

TEST(ParseTriplesTest, EmptyFieldReportsWhichField) {
  Dictionary entities, relations;
  struct Case {
    const char* text;
    const char* field;
  };
  for (const Case& c : {Case{" \tr\tb\n", "head"}, Case{"a\t \tb\n", "relation"},
                        Case{"a\tr\t \n", "tail"}}) {
    Result<std::vector<Triple>> result =
        ParseTriplesTsv(c.text, entities, relations);
    ASSERT_FALSE(result.ok()) << c.text;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find(std::string("empty ") + c.field),
              std::string::npos)
        << result.status().ToString();
    EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
  }
}

TEST(ParseTriplesTest, SourceNamePrefixesErrors) {
  Dictionary entities, relations;
  Result<std::vector<Triple>> result = ParseTriplesTsv(
      "only_one_field\n", entities, relations, "data/train.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("data/train.txt: line 1"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ParseTriplesTest, ReusesExistingIds) {
  Dictionary entities, relations;
  entities.GetOrAdd("a");
  Result<std::vector<Triple>> result =
      ParseTriplesTsv("a\tr\tb\n", entities, relations);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].head, 0);
  EXPECT_EQ(entities.size(), 2u);
}

class IoRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(IoRoundTripTest, SaveAndLoadDataset) {
  Dictionary entities, relations;
  EntityId a = entities.GetOrAdd("alpha");
  EntityId b = entities.GetOrAdd("beta");
  EntityId c = entities.GetOrAdd("gamma");
  RelationId r = relations.GetOrAdd("rel");
  Dataset original("roundtrip", std::move(entities), std::move(relations),
                   {Triple(a, r, b), Triple(b, r, c)}, {Triple(a, r, c)},
                   {Triple(c, r, a)});
  ASSERT_TRUE(SaveDatasetTsv(original, dir_.string()).ok());

  Result<Dataset> loaded = LoadDatasetTsv("roundtrip", dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->train().size(), 2u);
  EXPECT_EQ(loaded->valid().size(), 1u);
  EXPECT_EQ(loaded->test().size(), 1u);
  EXPECT_EQ(loaded->num_entities(), 3u);
  EXPECT_EQ(loaded->num_relations(), 1u);
  // Names survive the round trip (ids may be renumbered by first
  // appearance, so compare by rendered names).
  EXPECT_EQ(loaded->TripleToString(loaded->train()[0]),
            original.TripleToString(original.train()[0]));
}

TEST_F(IoRoundTripTest, MalformedFileErrorNamesTheFile) {
  Dictionary entities, relations;
  EntityId a = entities.GetOrAdd("alpha");
  EntityId b = entities.GetOrAdd("beta");
  RelationId r = relations.GetOrAdd("rel");
  Dataset d("x", std::move(entities), std::move(relations),
            {Triple(a, r, b)}, {Triple(a, r, b)}, {Triple(b, r, a)});
  ASSERT_TRUE(SaveDatasetTsv(d, dir_.string()).ok());
  {
    std::ofstream out(dir_ / "valid.txt", std::ios::app);
    out << "broken_line_without_tabs\n";
  }
  Result<Dataset> loaded = LoadDatasetTsv("x", dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("valid.txt: line 2"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(IoRoundTripTest, LoadFromMissingDirFails) {
  Result<Dataset> loaded =
      LoadDatasetTsv("nope", (dir_ / "does_not_exist").string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(IoRoundTripTest, SaveToBadPathFails) {
  Dictionary entities, relations;
  entities.GetOrAdd("a");
  entities.GetOrAdd("b");
  relations.GetOrAdd("r");
  Dataset d("x", std::move(entities), std::move(relations),
            {Triple(0, 0, 1)}, {}, {});
  Status s = SaveTriplesTsv(d, d.train(), "/nonexistent_dir_kelpie/out.txt");
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace kelpie
