// Span collector semantics: disabled-by-default no-op, allocation-ordered
// ids, per-thread parentage, masked-JSON determinism, and thread safety of
// concurrent span open/close and histogram merges under
// CancellableParallelFor (this test is part of the CI TSan subset).
#include "common/trace.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace kelpie {
namespace trace {
namespace {

/// Every test leaves the global collector disabled and empty; the collector
/// is process-global, so hygiene here keeps tests order-independent.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Collector::Global().Disable();
    Collector::Global().Clear();
  }
  void TearDown() override {
    Collector::Global().Disable();
    Collector::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  {
    Span outer("outer");
    Span inner("inner");
  }
  EXPECT_TRUE(Collector::Global().Finished().empty());
}

TEST_F(TraceTest, SpanIdsAreAllocationOrderedAndParentsNest) {
  Collector::Global().Enable();
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  { Span second_root("second_root"); }
  Collector::Global().Disable();

  const std::vector<SpanRecord> spans = Collector::Global().Finished();
  ASSERT_EQ(spans.size(), 3u);
  // Finished() sorts by id = open order, not close order.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "second_root");
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[1].id, 2u);
  EXPECT_EQ(spans[2].id, 3u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].parent, 0u);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.start_seconds, 0.0) << s.name;
    EXPECT_GE(s.duration_seconds, 0.0) << s.name;
  }
  // The outer span covers the inner one on the steady clock.
  EXPECT_LE(spans[0].start_seconds, spans[1].start_seconds);
  EXPECT_GE(spans[0].duration_seconds, spans[1].duration_seconds);
}

TEST_F(TraceTest, EnableAndClearResetIds) {
  Collector::Global().Enable();
  { Span a("a"); }
  Collector::Global().Clear();
  { Span b("b"); }
  std::vector<SpanRecord> spans = Collector::Global().Finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "b");
  EXPECT_EQ(spans[0].id, 1u);

  // Enable() implies Clear(): a fresh recording epoch.
  Collector::Global().Enable();
  { Span c("c"); }
  spans = Collector::Global().Finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "c");
  EXPECT_EQ(spans[0].id, 1u);
}

TEST_F(TraceTest, MaskedJsonIsDeterministicAcrossRuns) {
  auto run_workload = [] {
    Collector::Global().Enable();
    {
      Span run("run");
      for (int i = 0; i < 3; ++i) {
        Span step("step");
      }
    }
    Collector::Global().Disable();
    return Collector::Global().ToJson(/*mask_wall_clock=*/true);
  };
  const std::string first = run_workload();
  const std::string second = run_workload();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first,
            "[{\"name\":\"run\",\"start_seconds\":\"MASKED\","
            "\"duration_seconds\":\"MASKED\",\"children\":["
            "{\"name\":\"step\",\"start_seconds\":\"MASKED\","
            "\"duration_seconds\":\"MASKED\",\"children\":[]},"
            "{\"name\":\"step\",\"start_seconds\":\"MASKED\","
            "\"duration_seconds\":\"MASKED\",\"children\":[]},"
            "{\"name\":\"step\",\"start_seconds\":\"MASKED\","
            "\"duration_seconds\":\"MASKED\",\"children\":[]}]}]");
}

TEST_F(TraceTest, UnmaskedJsonCarriesTimings) {
  Collector::Global().Enable();
  { Span run("run"); }
  Collector::Global().Disable();
  const std::string json = Collector::Global().ToJson();
  EXPECT_NE(json.find("\"name\":\"run\""), std::string::npos);
  EXPECT_EQ(json.find("MASKED"), std::string::npos);
}

TEST_F(TraceTest, OrphanedChildrenBecomeRoots) {
  Collector::Global().Enable();
  SpanRecord orphan;
  orphan.id = 99;
  orphan.parent = 42;  // 42 never finished (e.g. still open at snapshot)
  orphan.name = "orphan";
  Collector::Global().Record(orphan);
  const std::string json = Collector::Global().ToJson(true);
  EXPECT_NE(json.find("\"name\":\"orphan\""), std::string::npos);
}

TEST_F(TraceTest, ObservabilitySnapshotCombinesMetricsAndSpans) {
  metrics::ScopedRegistry scoped;
  metrics::Registry::Global()
      .GetCounter("kelpie_snapshot_probe_total", {},
                  metrics::Determinism::kDeterministic)
      .Increment();
  Collector::Global().Enable();
  { Span run("snapshot_probe"); }
  Collector::Global().Disable();
  const std::string json = ObservabilitySnapshotJson(/*mask_wall_clock=*/true);
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(json.find("kelpie_snapshot_probe_total"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"snapshot_probe\""), std::string::npos);
}

// TSan target: spans opened/closed from pool workers while every worker
// merges into one histogram and bumps one counter. Checks both data-race
// freedom (under -fsanitize=thread) and exactness of the lock-free paths.
TEST_F(TraceTest, ConcurrentSpansAndHistogramMergesAreSafe) {
  metrics::ScopedRegistry scoped;
  metrics::Counter& work =
      metrics::Registry::Global().GetCounter("kelpie_trace_work_total");
  metrics::Histogram& sizes = metrics::Registry::Global().GetHistogram(
      "kelpie_trace_sizes", metrics::LinearBuckets(1.0, 1.0, 4));
  Collector::Global().Enable();

  constexpr size_t kIters = 256;
  ThreadPool pool(4);
  ParallelOutcome outcome = CancellableParallelFor(
      pool, kIters,
      [&](size_t i) {
        Span item("item");
        {
          Span step("step");
          sizes.Observe(static_cast<double>(i % 5));
          work.Increment();
        }
      },
      [] { return Status::Ok(); });
  Collector::Global().Disable();

  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.completed, kIters);
  EXPECT_EQ(work.Value(), kIters);
  EXPECT_EQ(sizes.Count(), kIters);

  const std::vector<SpanRecord> spans = Collector::Global().Finished();
  ASSERT_EQ(spans.size(), 2 * kIters);
  std::set<uint64_t> ids;
  size_t items = 0, steps = 0;
  for (const SpanRecord& s : spans) {
    ids.insert(s.id);
    if (s.name == "item") ++items;
    if (s.name == "step") ++steps;
  }
  EXPECT_EQ(ids.size(), 2 * kIters);  // ids unique under concurrency
  EXPECT_EQ(items, kIters);
  EXPECT_EQ(steps, kIters);
  // Parentage is per-thread: every step's parent is some item span.
  std::set<uint64_t> item_ids;
  for (const SpanRecord& s : spans) {
    if (s.name == "item") item_ids.insert(s.id);
  }
  for (const SpanRecord& s : spans) {
    if (s.name == "step") {
      EXPECT_EQ(item_ids.count(s.parent), 1u) << "step parent " << s.parent;
    }
  }
}

}  // namespace
}  // namespace trace
}  // namespace kelpie
