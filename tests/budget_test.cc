// Bounded extraction: work-unit budgets, deadlines, cancellation, and the
// --retry-truncated upgrade path. The determinism-critical properties are
// (a) budget truncation is thread-count invariant, (b) an unlimited budget
// reproduces the unbounded search bit for bit, (c) cancellation returns the
// best-so-far explanation, (d) retrying truncated journal records under
// larger limits converges to the journal an uninterrupted run would write.
#include "common/budget.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/explainer.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/kelpie.h"
#include "tests/test_util.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

// ---------------------------------------------------------------- unit ----

TEST(WorkBudgetTest, ChargesAllOrNothing) {
  WorkBudget budget(5);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_EQ(budget.limit(), 5u);
  EXPECT_TRUE(budget.TryCharge(3));
  EXPECT_EQ(budget.used(), 3u);
  EXPECT_EQ(budget.remaining(), 2u);
  // A charge that does not fit entirely charges nothing.
  EXPECT_FALSE(budget.TryCharge(3));
  EXPECT_EQ(budget.used(), 3u);
  EXPECT_TRUE(budget.TryCharge(2));
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_FALSE(budget.TryCharge(1));
}

TEST(WorkBudgetTest, UnlimitedByDefault) {
  WorkBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.TryCharge(1ull << 62));
  EXPECT_TRUE(budget.TryCharge(1ull << 62));
  EXPECT_EQ(budget.remaining(), WorkBudget::kUnlimited);
}

TEST(WorkBudgetTest, ResetReinitializesLimitAndUsage) {
  WorkBudget budget(2);
  EXPECT_TRUE(budget.TryCharge(2));
  EXPECT_FALSE(budget.TryCharge(1));
  budget.Reset(4);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.remaining(), 4u);
  EXPECT_TRUE(budget.TryCharge(4));
}

TEST(WorkBudgetTest, ZeroCapacityChargesNothingButFreeCharges) {
  WorkBudget budget(0);
  EXPECT_FALSE(budget.unlimited());
  EXPECT_EQ(budget.limit(), 0u);
  EXPECT_EQ(budget.remaining(), 0u);
  EXPECT_FALSE(budget.TryCharge(1));
  // A zero-unit charge always fits — even a spent (or empty) budget.
  EXPECT_TRUE(budget.TryCharge(0));
  EXPECT_EQ(budget.used(), 0u);
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e18);
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(DeadlineTest, NonPositiveAfterIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-3.0).Expired());
  EXPECT_LE(Deadline::After(0.0).RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, FarFutureIsNotExpired) {
  Deadline d = Deadline::After(3600.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 3000.0);
}

TEST(DeadlineTest, EarliestPicksTheSoonerDeadline) {
  EXPECT_TRUE(Deadline::Earliest(Deadline::Infinite(), Deadline::After(0.0))
                  .Expired());
  EXPECT_FALSE(
      Deadline::Earliest(Deadline::Infinite(), Deadline::After(3600.0))
          .Expired());
  EXPECT_TRUE(Deadline::Earliest(Deadline::Infinite(), Deadline::Infinite())
                  .infinite());
}

TEST(DeadlineTest, EarliestWithAlreadyExpiredDeadlineIsExpiredEitherWay) {
  const Deadline expired = Deadline::After(-1.0);
  const Deadline future = Deadline::After(3600.0);
  EXPECT_TRUE(Deadline::Earliest(expired, future).Expired());
  EXPECT_TRUE(Deadline::Earliest(future, expired).Expired());
  // The composed deadline is finite, not saturated.
  EXPECT_FALSE(Deadline::Earliest(expired, future).infinite());
  EXPECT_LE(Deadline::Earliest(expired, future).RemainingSeconds(), 0.0);
}

TEST(CancelTokenTest, CopiesShareOneStickyFlag) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(copy.cancelled());
  copy.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
  // A fresh token is independent.
  EXPECT_FALSE(CancelToken().cancelled());
}

// Two signals racing to cancel the same token (e.g. SIGINT and a serve
// shutdown) must both observe a consistent sticky flag.
TEST(CancelTokenTest, ConcurrentRequestCancelFromTwoThreadsIsSticky) {
  for (int round = 0; round < 50; ++round) {
    CancelToken token;
    CancelToken a = token;
    CancelToken b = token;
    std::thread ta([&] { a.RequestCancel(); });
    std::thread tb([&] { b.RequestCancel(); });
    ta.join();
    tb.join();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(a.cancelled());
    EXPECT_TRUE(b.cancelled());
  }
}

TEST(ExtractionControlTest, DefaultImposesNoLimits) {
  ExtractionControl control;
  EXPECT_TRUE(control.CheckInterrupt().ok());
  EXPECT_EQ(control.BudgetRemaining(), WorkBudget::kUnlimited);
  EXPECT_TRUE(control.TryCharge(1ull << 40));
}

TEST(ExtractionControlTest, CancellationBeatsDeadline) {
  ExtractionControl control;
  control.deadline = Deadline::After(0.0);
  EXPECT_EQ(control.CheckInterrupt().code(), StatusCode::kDeadlineExceeded);
  control.cancel.RequestCancel();
  EXPECT_EQ(control.CheckInterrupt().code(), StatusCode::kCancelled);
}

TEST(CompletenessTest, FromStatusAndNames) {
  EXPECT_EQ(CompletenessFromStatus(Status::Ok()), Completeness::kComplete);
  EXPECT_EQ(CompletenessFromStatus(Status::Cancelled("x")),
            Completeness::kCancelled);
  EXPECT_EQ(CompletenessFromStatus(Status::DeadlineExceeded("x")),
            Completeness::kTruncatedDeadline);
  EXPECT_EQ(CompletenessName(Completeness::kComplete), "Complete");
  EXPECT_EQ(CompletenessName(Completeness::kTruncatedBudget),
            "TruncatedBudget");
  EXPECT_EQ(CompletenessName(Completeness::kTruncatedDeadline),
            "TruncatedDeadline");
  EXPECT_EQ(CompletenessName(Completeness::kCancelled), "Cancelled");
}

// --------------------------------------------------------- integration ----

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

/// Shared trained model: extraction tests only read it. The interesting
/// predictions are located_in facts — a city's source-side neighborhood
/// (its born_in facts) gives the builder several candidates, unlike the
/// degree-1 test people.
class BoundedExtractionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_)
                 .release();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }
  void TearDown() override { failpoint::DisarmAll(); }

  static Triple CityPrediction(int j) {
    const Dataset& d = *dataset_;
    int32_t city = d.entities().Find("City_" + std::to_string(j)).value();
    int32_t rel = d.relations().Find("located_in").value();
    int32_t country =
        d.entities().Find("Country_" + std::to_string(j % 3)).value();
    return Triple(city, rel, country);
  }

  /// Everything the parallel-visiting contract promises to keep invariant
  /// across thread counts (post_trainings and seconds may legitimately grow
  /// with speculation).
  static void ExpectSameScheduleInvariantFields(const Explanation& a,
                                                const Explanation& b) {
    EXPECT_EQ(a.facts, b.facts);
    EXPECT_EQ(a.relevance, b.relevance);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.visited_candidates, b.visited_candidates);
    EXPECT_EQ(a.skipped_candidates, b.skipped_candidates);
    EXPECT_EQ(a.divergent_candidates, b.divergent_candidates);
    EXPECT_EQ(a.completeness, b.completeness);
  }

  static Dataset* dataset_;
  static LinkPredictionModel* model_;
};

Dataset* BoundedExtractionTest::dataset_ = nullptr;
LinkPredictionModel* BoundedExtractionTest::model_ = nullptr;

// Acceptance (a): the same work-unit budget truncates at the same candidate
// at every thread count.
TEST_F(BoundedExtractionTest, BudgetTruncationIsThreadCountInvariant) {
  const Triple prediction = CityPrediction(0);
  ExtractionLimits limits;
  limits.work_budget = 2;

  KelpieOptions sequential;
  sequential.num_threads = 1;
  Kelpie kelpie1(*model_, *dataset_, sequential);
  Explanation x1 = kelpie1.ExplainNecessary(prediction,
                                            PredictionTarget::kTail, nullptr,
                                            limits);

  KelpieOptions parallel;
  parallel.num_threads = 4;
  Kelpie kelpie4(*model_, *dataset_, parallel);
  Explanation x4 = kelpie4.ExplainNecessary(prediction,
                                            PredictionTarget::kTail, nullptr,
                                            limits);

  EXPECT_EQ(x1.completeness, Completeness::kTruncatedBudget);
  EXPECT_EQ(x1.visited_candidates, 2u);
  EXPECT_GE(x1.skipped_candidates, 1u);
  EXPECT_FALSE(x1.facts.empty()) << "truncation keeps the best-so-far";
  ExpectSameScheduleInvariantFields(x1, x4);
}

// Acceptance (b): a budget that never binds reproduces the unbounded search
// exactly (only wall-clock may differ).
TEST_F(BoundedExtractionTest, GenerousLimitsMatchUnboundedRunBitForBit) {
  const Triple prediction = CityPrediction(1);
  KelpieOptions options;
  options.num_threads = 1;

  // Fresh instances for each run: the engine caches homologous baselines
  // across calls, which would skew the post_trainings comparison.
  Kelpie plain(*model_, *dataset_, options);
  Explanation unbounded =
      plain.ExplainNecessary(prediction, PredictionTarget::kTail);

  Kelpie limited(*model_, *dataset_, options);
  ExtractionLimits limits;
  limits.work_budget = 1'000'000;
  limits.timeout_seconds = 3600.0;
  Explanation bounded = limited.ExplainNecessary(
      prediction, PredictionTarget::kTail, nullptr, limits);

  ExpectSameScheduleInvariantFields(unbounded, bounded);
  EXPECT_EQ(unbounded.post_trainings, bounded.post_trainings);
  EXPECT_EQ(unbounded.completeness, Completeness::kComplete);
  EXPECT_EQ(unbounded.kind, bounded.kind);
}

// Acceptance (c): cancelling mid-extraction returns kCancelled with the
// best explanation found so far.
TEST_F(BoundedExtractionTest, CancelMidExtractionKeepsBestSoFar) {
  const Triple prediction = CityPrediction(0);
  KelpieOptions options;
  options.num_threads = 1;
  // An unreachable threshold keeps the search alive past S_1, giving the
  // cancellation a boundary to land on.
  options.builder.necessary_threshold = 1e9;
  Kelpie kelpie(*model_, *dataset_, options);

  ExtractionLimits limits;
  size_t observed = 0;
  CandidateObserver cancel_after_first = [&](size_t, double, double) {
    if (++observed == 1) limits.cancel.RequestCancel();
  };
  Explanation x = kelpie.ExplainNecessary(
      prediction, PredictionTarget::kTail, cancel_after_first, limits);

  EXPECT_EQ(x.completeness, Completeness::kCancelled);
  EXPECT_FALSE(x.accepted);
  EXPECT_FALSE(x.facts.empty()) << "cancel must return the best-so-far";
  EXPECT_GE(observed, 1u);
}

TEST_F(BoundedExtractionTest, ExpiredDeadlineTruncatesImmediately) {
  const Triple prediction = CityPrediction(0);
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);

  ExtractionLimits limits;
  limits.deadline = Deadline::After(0.0);
  Explanation x = kelpie.ExplainNecessary(prediction,
                                          PredictionTarget::kTail, nullptr,
                                          limits);
  EXPECT_EQ(x.completeness, Completeness::kTruncatedDeadline);
  EXPECT_EQ(x.visited_candidates, 0u);
  EXPECT_GE(x.skipped_candidates, 1u);
  EXPECT_TRUE(x.facts.empty());
}

// A sufficient candidate costs one unit per conversion entity; a budget
// smaller than one candidate's cost evaluates nothing.
TEST_F(BoundedExtractionTest, SufficientCandidatesCostConversionSetUnits) {
  const Triple prediction = CityPrediction(2);
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);
  Rng rng(17);
  std::vector<EntityId> conversion_set = SampleConversionEntities(
      *model_, *dataset_, prediction, PredictionTarget::kTail, 3, rng);
  ASSERT_EQ(conversion_set.size(), 3u);

  ExtractionLimits limits;
  limits.work_budget = 3;  // exactly one candidate's worth
  Explanation one = kelpie.ExplainSufficientWithSet(
      prediction, PredictionTarget::kTail, conversion_set, nullptr, limits);
  EXPECT_EQ(one.completeness, Completeness::kTruncatedBudget);
  EXPECT_EQ(one.visited_candidates, 1u);

  limits.work_budget = 2;  // less than one candidate
  Explanation none = kelpie.ExplainSufficientWithSet(
      prediction, PredictionTarget::kTail, conversion_set, nullptr, limits);
  EXPECT_EQ(none.completeness, Completeness::kTruncatedBudget);
  EXPECT_EQ(none.visited_candidates, 0u);
  EXPECT_TRUE(none.facts.empty());
}

// Divergent post-trainings degrade to skip-and-record instead of aborting
// the extraction.
TEST_F(BoundedExtractionTest, DivergentPostTrainingsAreCountedAndSkipped) {
  const Triple prediction = CityPrediction(0);
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);

  failpoint::Arm("engine.post_train.diverge", failpoint::kAnyValue,
                 failpoint::kForever);
  Explanation x =
      kelpie.ExplainNecessary(prediction, PredictionTarget::kTail);
  failpoint::DisarmAll();

  // Every candidate diverged: nothing usable, but the search completed and
  // accounted for each divergence.
  EXPECT_EQ(x.completeness, Completeness::kComplete);
  EXPECT_FALSE(x.accepted);
  EXPECT_TRUE(x.facts.empty());
  EXPECT_GT(x.divergent_candidates, 0u);
  EXPECT_EQ(x.divergent_candidates, x.visited_candidates);
}

// ------------------------------------------------------------- metrics ----

/// Sum of one outcome's builder-candidate series across search stages.
/// Reading a stage that never committed resolves a zero series, which is
/// harmless inside a scoped registry.
uint64_t OutcomeTotal(metrics::Registry& reg, const char* kind,
                      const char* outcome) {
  uint64_t total = 0;
  for (int stage = 1; stage <= 10; ++stage) {
    total += reg.GetCounter("kelpie_builder_candidates_total",
                            {{"kind", kind},
                             {"stage", std::to_string(stage)},
                             {"outcome", outcome}})
                 .Value();
  }
  return total;
}

// The builder's deterministic counters are committed from the sequential
// stopping-policy replay, so they must agree exactly with the per-candidate
// ledger the Explanation itself reports — for complete and truncated runs
// alike.
TEST_F(BoundedExtractionTest, BuilderCountersMatchExplanationLedger) {
  metrics::ScopedRegistry scoped;
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);
  Explanation x =
      kelpie.ExplainNecessary(CityPrediction(1), PredictionTarget::kTail);
  ASSERT_EQ(x.completeness, Completeness::kComplete);

  metrics::Registry& reg = metrics::Registry::Global();
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "visited"), x.visited_candidates);
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "skipped"), x.skipped_candidates);
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "divergent"),
            x.divergent_candidates);
  EXPECT_EQ(reg.GetCounter("kelpie_builder_extractions_total",
                           {{"kind", "necessary"},
                            {"completeness", "Complete"}})
                .Value(),
            1u);
  // A necessary candidate costs one work unit.
  EXPECT_EQ(reg.GetCounter("kelpie_builder_committed_work_units_total",
                           {{"kind", "necessary"}})
                .Value(),
            x.visited_candidates);
}

TEST_F(BoundedExtractionTest, BudgetTruncationCountersAreExact) {
  metrics::ScopedRegistry scoped;
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);
  ExtractionLimits limits;
  limits.work_budget = 2;
  Explanation x = kelpie.ExplainNecessary(
      CityPrediction(0), PredictionTarget::kTail, nullptr, limits);
  ASSERT_EQ(x.completeness, Completeness::kTruncatedBudget);

  metrics::Registry& reg = metrics::Registry::Global();
  // The two budgeted visits both land in S_1; everything else is skipped.
  EXPECT_EQ(reg.GetCounter("kelpie_builder_candidates_total",
                           {{"kind", "necessary"},
                            {"stage", "1"},
                            {"outcome", "visited"}})
                .Value(),
            2u);
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "visited"), x.visited_candidates);
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "skipped"), x.skipped_candidates);
  EXPECT_EQ(reg.GetCounter("kelpie_builder_committed_work_units_total",
                           {{"kind", "necessary"}})
                .Value(),
            2u);
  EXPECT_EQ(reg.GetCounter("kelpie_builder_extractions_total",
                           {{"kind", "necessary"},
                            {"completeness", "TruncatedBudget"}})
                .Value(),
            1u);
}

TEST_F(BoundedExtractionTest, DivergentCandidatesCountedInRegistry) {
  metrics::ScopedRegistry scoped;
  KelpieOptions options;
  options.num_threads = 1;
  Kelpie kelpie(*model_, *dataset_, options);

  failpoint::Arm("engine.post_train.diverge", failpoint::kAnyValue,
                 failpoint::kForever);
  Explanation x =
      kelpie.ExplainNecessary(CityPrediction(0), PredictionTarget::kTail);
  failpoint::DisarmAll();
  ASSERT_GT(x.divergent_candidates, 0u);

  metrics::Registry& reg = metrics::Registry::Global();
  EXPECT_EQ(OutcomeTotal(reg, "necessary", "divergent"),
            x.divergent_candidates);
  // The engine saw at least the baseline divergence.
  EXPECT_GE(reg.CounterFamilyTotal("kelpie_engine_diverged_post_trainings_"
                                   "total"),
            1u);
}

// ------------------------------------------------------------ pipeline ----

class RetryTruncatedTest : public BoundedExtractionTest {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_budget_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // A mix of multi-candidate (city) and single-candidate (person)
    // predictions: under a small budget the city extractions truncate while
    // the person's completes, exercising both retry paths.
    predictions_ = {CityPrediction(0), CityPrediction(1)};
    for (const Triple& t : dataset_->test()) {
      predictions_.push_back(t);
      break;
    }
    ASSERT_EQ(predictions_.size(), 3u);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Journal(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
  std::vector<Triple> predictions_;
};

// Acceptance (d): --resume --retry-truncated under larger limits converges
// to the byte-identical journal of an uninterrupted unlimited run.
TEST_F(RetryTruncatedTest, UpgradeConvergesToUninterruptedRun) {
  KelpieOptions options;
  options.num_threads = 1;

  // Truncated first pass: 2 work units per prediction.
  KelpieExplainer small(*model_, *dataset_, options);
  ExtractionLimits tight;
  tight.work_budget = 2;
  small.SetExtractionLimits(tight);
  Result<NecessaryRunResult> truncated = RunNecessaryEndToEndResumable(
      small, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), false});
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  size_t incomplete = 0;
  for (const Explanation& x : truncated->explanations) {
    if (x.completeness != Completeness::kComplete) ++incomplete;
  }
  ASSERT_GT(incomplete, 0u) << "budget was expected to truncate";
  ASSERT_LT(incomplete, predictions_.size())
      << "the single-candidate prediction was expected to complete";

  // Reference: an uninterrupted unlimited run in a fresh process (fresh
  // explainer = cold caches, as a real re-invocation would have).
  KelpieExplainer reference(*model_, *dataset_, options);
  Result<NecessaryRunResult> full = RunNecessaryEndToEndResumable(
      reference, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("full.jnl"), false});
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Upgrade pass: resume the truncated journal with retry under unlimited
  // limits, again with a fresh explainer.
  KelpieExplainer upgraded(*model_, *dataset_, options);
  RunControl control;
  control.retry_truncated = true;
  Result<NecessaryRunResult> retried = RunNecessaryEndToEndResumable(
      upgraded, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), true}, control);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  ASSERT_EQ(retried->explanations.size(), full->explanations.size());
  for (size_t i = 0; i < full->explanations.size(); ++i) {
    const Explanation& a = full->explanations[i];
    const Explanation& b = retried->explanations[i];
    EXPECT_EQ(a.facts, b.facts) << "prediction " << i;
    EXPECT_EQ(a.relevance, b.relevance) << "prediction " << i;
    EXPECT_EQ(a.completeness, Completeness::kComplete) << "prediction " << i;
    EXPECT_EQ(b.completeness, Completeness::kComplete) << "prediction " << i;
    EXPECT_EQ(a.post_trainings, b.post_trainings) << "prediction " << i;
  }
  EXPECT_EQ(full->after.hits_at_1, retried->after.hits_at_1);
  EXPECT_EQ(full->after.mrr, retried->after.mrr);
  EXPECT_EQ(ReadAll(Journal("run.jnl")), ReadAll(Journal("full.jnl")))
      << "upgraded journal must be byte-identical to the uninterrupted one";
}

// Without --retry-truncated a resumed run replays truncated records as-is.
TEST_F(RetryTruncatedTest, PlainResumeReplaysTruncatedRecords) {
  KelpieOptions options;
  options.num_threads = 1;
  KelpieExplainer small(*model_, *dataset_, options);
  ExtractionLimits tight;
  tight.work_budget = 2;
  small.SetExtractionLimits(tight);
  Result<NecessaryRunResult> first = RunNecessaryEndToEndResumable(
      small, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), false});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string bytes = ReadAll(Journal("run.jnl"));

  KelpieExplainer unlimited(*model_, *dataset_, options);
  Result<NecessaryRunResult> resumed = RunNecessaryEndToEndResumable(
      unlimited, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), true});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->explanations.size(), first->explanations.size());
  for (size_t i = 0; i < first->explanations.size(); ++i) {
    EXPECT_EQ(first->explanations[i].completeness,
              resumed->explanations[i].completeness);
    EXPECT_EQ(first->explanations[i].facts, resumed->explanations[i].facts);
  }
  EXPECT_EQ(ReadAll(Journal("run.jnl")), bytes)
      << "a plain resume must not rewrite the journal";
}

TEST_F(RetryTruncatedTest, CancelledRunControlStopsBeforeExtracting) {
  KelpieOptions options;
  options.num_threads = 1;
  KelpieExplainer explainer(*model_, *dataset_, options);
  RunControl control;
  control.cancel.RequestCancel();
  Result<NecessaryRunResult> result = RunNecessaryEndToEndResumable(
      explainer, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), false}, control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // The journal is valid (header only) and resumable after the cancel.
  Result<NecessaryRunResult> resumed = RunNecessaryEndToEndResumable(
      explainer, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), true});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
}

TEST_F(RetryTruncatedTest, ExpiredRunDeadlineStopsWithDeadlineExceeded) {
  KelpieOptions options;
  options.num_threads = 1;
  KelpieExplainer explainer(*model_, *dataset_, options);
  RunControl control;
  control.deadline = Deadline::After(0.0);
  Result<SufficientRunResult> result = RunSufficientEndToEndResumable(
      explainer, *model_, ModelKind::kComplEx, *dataset_, predictions_, 2, 5,
      7, PredictionTarget::kTail, {Journal("run.jnl"), false}, control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace kelpie
