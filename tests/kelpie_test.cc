// Integration tests of the Kelpie facade over all supported models
// (parameterized): the framework must extract meaningful explanations
// regardless of the underlying architecture — the paper's model-agnosticism
// claim.
#include "core/kelpie.h"

#include <gtest/gtest.h>

#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class KelpieTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(GetParam(), *dataset_);
    for (const Triple& t : dataset_->test()) {
      if (FilteredTailRank(*model_, *dataset_, t) == 1) {
        prediction_ = t;
        found_ = true;
        break;
      }
    }
  }

  KelpieOptions FastOptions() const {
    KelpieOptions options;
    options.engine.conversion_set_size = 4;
    options.builder.max_visits_per_size = 20;
    return options;
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  Triple prediction_;
  bool found_ = false;
};

TEST_P(KelpieTest, NecessaryExplanationExtracted) {
  if (!found_) GTEST_SKIP() << "model did not rank any test fact first";
  Kelpie kelpie(*model_, *dataset_, FastOptions());
  Explanation x = kelpie.ExplainNecessary(prediction_);
  EXPECT_FALSE(x.empty());
  EXPECT_LE(x.size(), 4u);
  for (const Triple& f : x.facts) {
    EXPECT_TRUE(f.Mentions(prediction_.head));
  }
}

TEST_P(KelpieTest, NecessaryExplanationIncludesEvidenceChain) {
  if (!found_) GTEST_SKIP();
  // In the toy dataset the born_in fact is the root of the evidence chain
  // for nationality; a correct necessary explanation should usually
  // include it (we accept any explanation whose removal-relevance is
  // positive, but check born_in membership for the strongest signal).
  Kelpie kelpie(*model_, *dataset_, FastOptions());
  Explanation x = kelpie.ExplainNecessary(prediction_);
  if (GetParam() == ModelKind::kConvE || GetParam() == ModelKind::kTransE) {
    // ConvE's per-entity output bias can carry toy-scale predictions on its
    // own (3 countries, heavily repeated as tails), making every removal
    // irrelevant; only require near-zero best relevance there. The same
    // holds for TransE when the source entity has a single training fact:
    // the relation's translation vector alone lands on the gold tail, so
    // even the untrained removal mimic keeps rank 1. (Before post-trainings
    // were seeded per fact set, shared-RNG noise masked this by nudging the
    // removal mimic's rank.) Relevance is an integer rank deterioration,
    // and when every removal is irrelevant, post-training noise can tick
    // the removal mimic's rank one position in *either* direction — so
    // accept a one-rank improvement as "irrelevant" too, not just 0.
    EXPECT_GE(x.relevance, -1.0);
  } else {
    EXPECT_GT(x.relevance, 0.0);
  }
}

TEST_P(KelpieTest, SufficientExplanationExtracted) {
  if (!found_) GTEST_SKIP();
  Kelpie kelpie(*model_, *dataset_, FastOptions());
  std::vector<EntityId> conversion_set;
  Explanation x =
      kelpie.ExplainSufficient(prediction_, PredictionTarget::kTail,
                               &conversion_set);
  if (conversion_set.empty()) {
    GTEST_SKIP() << "no convertible entities for this prediction";
  }
  EXPECT_FALSE(x.empty());
  EXPECT_EQ(x.kind, ExplanationKind::kSufficient);
}

TEST_P(KelpieTest, ExplainWithProvidedConversionSet) {
  if (!found_) GTEST_SKIP();
  Kelpie kelpie(*model_, *dataset_, FastOptions());
  std::vector<EntityId> set =
      kelpie.engine().SampleConversionSet(prediction_,
                                          PredictionTarget::kTail);
  if (set.empty()) GTEST_SKIP();
  Explanation x = kelpie.ExplainSufficientWithSet(
      prediction_, PredictionTarget::kTail, set);
  EXPECT_FALSE(x.empty());
}

TEST_P(KelpieTest, HeadPredictionExplained) {
  if (!found_) GTEST_SKIP();
  // Explain the head side of the same prediction: source entity is the
  // tail (a Country).
  Kelpie kelpie(*model_, *dataset_, FastOptions());
  Explanation x =
      kelpie.ExplainNecessary(prediction_, PredictionTarget::kHead);
  for (const Triple& f : x.facts) {
    EXPECT_TRUE(f.Mentions(prediction_.tail));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, KelpieTest,
    ::testing::Values(ModelKind::kTransE, ModelKind::kComplEx,
                      ModelKind::kConvE, ModelKind::kDistMult,
                      ModelKind::kRotatE),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(ModelKindName(info.param));
    });

}  // namespace
}  // namespace kelpie
