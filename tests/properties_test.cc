// Property-style parameterized sweeps over seeds and scales: invariants
// that must hold for arbitrary inputs, not just the fixtures the unit tests
// pin down.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/explanation_builder.h"
#include "core/prefilter.h"
#include "datagen/datasets.h"
#include "eval/ranking.h"
#include "math/rng.h"
#include "math/stats.h"
#include "math/vec.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

// ---------------------------------------------------------------------------
// Ranking invariants over random score vectors.
// ---------------------------------------------------------------------------

class RankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankPropertyTest, ArgmaxRanksFirstAndRanksAreAPermutationBound) {
  Rng rng(GetParam());
  const size_t n = 50;
  std::vector<float> scores(n);
  for (float& s : scores) s = static_cast<float>(rng.Normal(0.0, 1.0));
  size_t argmax = std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end()));
  EXPECT_EQ(RankFromScores(scores, static_cast<EntityId>(argmax), nullptr),
            1);
  // Every rank lies in [1, n] and is monotone in the score.
  for (size_t e = 0; e < n; e += 7) {
    int rank = RankFromScores(scores, static_cast<EntityId>(e), nullptr);
    EXPECT_GE(rank, 1);
    EXPECT_LE(rank, static_cast<int>(n));
  }
}

TEST_P(RankPropertyTest, FilteringNeverWorsensRank) {
  Rng rng(GetParam() ^ 0xabcdef);
  const size_t n = 40;
  std::vector<float> scores(n);
  for (float& s : scores) s = static_cast<float>(rng.Normal(0.0, 1.0));
  std::unordered_set<EntityId> filtered;
  for (int i = 0; i < 10; ++i) {
    filtered.insert(static_cast<EntityId>(rng.UniformUint64(n)));
  }
  for (size_t e = 0; e < n; e += 5) {
    int raw = RankFromScores(scores, static_cast<EntityId>(e), nullptr);
    int filt = RankFromScores(scores, static_cast<EntityId>(e), &filtered);
    EXPECT_LE(filt, raw);
    EXPECT_GE(filt, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Softmax / metric invariants over random inputs.
// ---------------------------------------------------------------------------

class MathPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MathPropertyTest, SoftmaxIsADistributionAndOrderPreserving) {
  Rng rng(GetParam());
  std::vector<float> x(32);
  for (float& v : x) v = static_cast<float>(rng.Normal(0.0, 3.0));
  std::vector<float> original = x;
  SoftmaxInPlace(x);
  double total = 0.0;
  for (float v : x) {
    EXPECT_GE(v, 0.0f);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
  for (size_t i = 1; i < x.size(); ++i) {
    if (original[i - 1] < original[i]) {
      EXPECT_LE(x[i - 1], x[i]);
    }
  }
}

TEST_P(MathPropertyTest, LogSumExpIsAtLeastMax) {
  Rng rng(GetParam() ^ 77);
  std::vector<float> x(16);
  for (float& v : x) v = static_cast<float>(rng.Normal(0.0, 10.0));
  double lse = LogSumExp(x);
  float max_v = *std::max_element(x.begin(), x.end());
  EXPECT_GE(lse, max_v - 1e-5);
  EXPECT_LE(lse, max_v + std::log(static_cast<double>(x.size())) + 1e-5);
}

TEST_P(MathPropertyTest, PearsonIsSymmetricAndBounded) {
  Rng rng(GetParam() ^ 1234);
  std::vector<double> x(30), y(30);
  for (size_t i = 0; i < 30; ++i) {
    x[i] = rng.Normal(0.0, 1.0);
    y[i] = rng.Normal(0.0, 1.0);
  }
  double xy = PearsonCorrelation(x, y);
  double yx = PearsonCorrelation(y, x);
  EXPECT_NEAR(xy, yx, 1e-12);
  EXPECT_GE(xy, -1.0 - 1e-12);
  EXPECT_LE(xy, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MathPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Generator invariants across scales and seeds.
// ---------------------------------------------------------------------------

struct GenCase {
  BenchmarkDataset dataset;
  double scale;
  uint64_t seed;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, StructuralInvariantsHold) {
  const GenCase& param = GetParam();
  Dataset d = MakeBenchmark(param.dataset, param.scale, param.seed);
  // Ids in range everywhere.
  for (const auto* split : {&d.train(), &d.valid(), &d.test()}) {
    for (const Triple& t : *split) {
      EXPECT_GE(t.head, 0);
      EXPECT_LT(t.head, static_cast<EntityId>(d.num_entities()));
      EXPECT_GE(t.tail, 0);
      EXPECT_LT(t.tail, static_cast<EntityId>(d.num_entities()));
      EXPECT_GE(t.relation, 0);
      EXPECT_LT(t.relation, static_cast<RelationId>(d.num_relations()));
      EXPECT_NE(t.head, t.tail);  // generator never emits self-loops
    }
  }
  // No duplicates across the whole dataset.
  std::unordered_set<uint64_t> seen;
  for (const auto* split : {&d.train(), &d.valid(), &d.test()}) {
    for (const Triple& t : *split) {
      EXPECT_TRUE(seen.insert(t.Key()).second) << d.TripleToString(t);
    }
  }
  // Eval facts never orphan an entity.
  for (const auto* split : {&d.valid(), &d.test()}) {
    for (const Triple& t : *split) {
      EXPECT_GT(d.train_graph().Degree(t.head), 0u);
      EXPECT_GT(d.train_graph().Degree(t.tail), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorPropertyTest,
    ::testing::Values(GenCase{BenchmarkDataset::kFb15k, 0.3, 1},
                      GenCase{BenchmarkDataset::kFb15k, 0.7, 2},
                      GenCase{BenchmarkDataset::kFb15k237, 0.4, 3},
                      GenCase{BenchmarkDataset::kWn18, 0.4, 4},
                      GenCase{BenchmarkDataset::kWn18rr, 0.6, 5},
                      GenCase{BenchmarkDataset::kYago310, 0.4, 6},
                      GenCase{BenchmarkDataset::kYago310, 0.8, 7}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      std::string name(BenchmarkDatasetName(info.param.dataset));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// BFS invariants on random graphs.
// ---------------------------------------------------------------------------

class BfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BfsPropertyTest, TriangleInequalityOverRandomGraph) {
  Rng rng(GetParam());
  const size_t n = 30;
  std::vector<Triple> triples;
  for (int i = 0; i < 60; ++i) {
    EntityId h = static_cast<EntityId>(rng.UniformUint64(n));
    EntityId t = static_cast<EntityId>(rng.UniformUint64(n));
    if (h == t) continue;
    triples.emplace_back(h, 0, t);
  }
  GraphIndex graph(triples, n);
  std::vector<int32_t> from0 = DistancesFrom(graph, 0);
  std::vector<int32_t> from1 = DistancesFrom(graph, 1);
  // d(0, x) <= d(0, 1) + d(1, x) whenever both are defined.
  if (from0[1] >= 0) {
    for (size_t x = 0; x < n; ++x) {
      if (from1[x] >= 0) {
        ASSERT_GE(from0[x], 0);  // reachable via 1
        EXPECT_LE(from0[x], from0[1] + from1[x]);
      }
    }
  }
  // Distances are symmetric for the undirected BFS.
  EXPECT_EQ(from0[1], from1[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsPropertyTest,
                         ::testing::Values(3, 7, 31, 127, 8191));

// ---------------------------------------------------------------------------
// Explanation Builder visit-order properties.
// ---------------------------------------------------------------------------

TEST(BuilderOrderTest, VisitsPreliminaryRelevanceInNonIncreasingOrder) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  Triple prediction = dataset.test().front();
  PreFilter prefilter(dataset, {});
  RelevanceEngine engine(*model, dataset, {});
  ExplanationBuilderOptions options;
  options.necessary_threshold = 1e9;  // never accept: see all visits
  options.exhaustive = true;
  options.max_visits_per_size = 30;
  ExplanationBuilder builder(engine, prefilter, options);
  size_t last_size = 0;
  double last_preliminary = 0.0;
  builder.BuildNecessary(
      prediction, PredictionTarget::kTail,
      [&](size_t size, double preliminary, double /*true_rel*/) {
        if (size >= 2) {
          if (size == last_size) {
            EXPECT_LE(preliminary, last_preliminary + 1e-9)
                << "visit order must follow descending preliminary "
                   "relevance within a size class";
          }
          last_size = size;
          last_preliminary = preliminary;
        }
      });
}

TEST(BuilderOrderTest, SizesVisitedInIncreasingOrder) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  Triple prediction = dataset.test().front();
  PreFilter prefilter(dataset, {});
  RelevanceEngine engine(*model, dataset, {});
  ExplanationBuilderOptions options;
  options.necessary_threshold = 1e9;
  options.exhaustive = true;
  options.max_visits_per_size = 10;
  ExplanationBuilder builder(engine, prefilter, options);
  size_t last_size = 1;
  builder.BuildNecessary(prediction, PredictionTarget::kTail,
                         [&](size_t size, double, double) {
                           EXPECT_GE(size, last_size);
                           last_size = size;
                         });
}

}  // namespace
}  // namespace kelpie
