#include "kgraph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

// A small chain-with-branches graph:
//   0 -r0-> 1 -r0-> 2 -r1-> 3,  4 -r1-> 1,  5 isolated.
GraphIndex MakeGraph() {
  std::vector<Triple> triples{
      Triple(0, 0, 1),
      Triple(1, 0, 2),
      Triple(2, 1, 3),
      Triple(4, 1, 1),
  };
  return GraphIndex(std::move(triples), 6);
}

TEST(GraphIndexTest, BasicCounts) {
  GraphIndex g = MakeGraph();
  EXPECT_EQ(g.num_entities(), 6u);
  EXPECT_EQ(g.num_triples(), 4u);
}

TEST(GraphIndexTest, Contains) {
  GraphIndex g = MakeGraph();
  EXPECT_TRUE(g.Contains(Triple(0, 0, 1)));
  EXPECT_FALSE(g.Contains(Triple(1, 0, 0)));  // direction matters
  EXPECT_FALSE(g.Contains(Triple(0, 1, 1)));  // relation matters
}

TEST(GraphIndexTest, FactsOfCoversBothDirections) {
  GraphIndex g = MakeGraph();
  std::vector<Triple> facts = g.FactsOf(1);
  EXPECT_EQ(facts.size(), 3u);  // 0->1, 1->2, 4->1
  EXPECT_NE(std::find(facts.begin(), facts.end(), Triple(0, 0, 1)),
            facts.end());
  EXPECT_NE(std::find(facts.begin(), facts.end(), Triple(1, 0, 2)),
            facts.end());
  EXPECT_NE(std::find(facts.begin(), facts.end(), Triple(4, 1, 1)),
            facts.end());
}

TEST(GraphIndexTest, DegreeMatchesFactsOf) {
  GraphIndex g = MakeGraph();
  EXPECT_EQ(g.Degree(1), 3u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(GraphIndexTest, SelfLoopCountedOnce) {
  GraphIndex g({Triple(0, 0, 0)}, 1);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.FactsOf(0).size(), 1u);
}

TEST(GraphIndexTest, NeighborsAreDeduplicated) {
  GraphIndex g({Triple(0, 0, 1), Triple(0, 1, 1), Triple(1, 0, 2)}, 3);
  std::vector<EntityId> n = g.NeighborsOf(1);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<EntityId>{0, 2}));
}

TEST(BfsTest, DistancesIgnoreOrientation) {
  GraphIndex g = MakeGraph();
  std::vector<int32_t> dist = DistancesFrom(g, 3);
  EXPECT_EQ(dist[3], 0);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[1], 2);
  EXPECT_EQ(dist[0], 3);
  EXPECT_EQ(dist[4], 3);
  EXPECT_EQ(dist[5], -1);  // disconnected
}

TEST(BfsTest, IgnoredTripleIsNotTraversed) {
  // Two parallel routes 0 -> 2: direct edge and via 1.
  GraphIndex g({Triple(0, 0, 2), Triple(0, 0, 1), Triple(1, 0, 2)}, 3);
  Triple direct(0, 0, 2);
  std::vector<int32_t> dist = DistancesFrom(g, 0, &direct);
  EXPECT_EQ(dist[2], 2);  // must go through entity 1
}

TEST(BfsTest, ShortestPathLengthMatchesDistances) {
  GraphIndex g = MakeGraph();
  EXPECT_EQ(ShortestPathLength(g, 0, 3), 3);
  EXPECT_EQ(ShortestPathLength(g, 4, 2), 2);
  EXPECT_EQ(ShortestPathLength(g, 0, 0), 0);
  EXPECT_EQ(ShortestPathLength(g, 0, 5), -1);
}

TEST(BfsTest, ShortestPathWithIgnoredEdge) {
  GraphIndex g({Triple(0, 0, 2), Triple(0, 0, 1), Triple(1, 0, 2)}, 3);
  Triple direct(0, 0, 2);
  EXPECT_EQ(ShortestPathLength(g, 0, 2), 1);
  EXPECT_EQ(ShortestPathLength(g, 0, 2, &direct), 2);
}

TEST(BfsTest, EmptyGraphAllUnreachable) {
  GraphIndex g({}, 3);
  std::vector<int32_t> dist = DistancesFrom(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], -1);
  EXPECT_EQ(dist[2], -1);
}

}  // namespace
}  // namespace kelpie
