#include "xp/pattern_miner.h"

#include <gtest/gtest.h>

#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/ranking.h"
#include "tests/test_util.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

Explanation MakeExplanation(std::vector<Triple> facts, double relevance) {
  Explanation x;
  x.facts = std::move(facts);
  x.relevance = relevance;
  x.accepted = true;
  return x;
}

TEST(PatternMinerTest, EmptyMinerHasNoPatterns) {
  PatternMiner miner;
  EXPECT_TRUE(miner.AllPatterns().empty());
  EXPECT_EQ(miner.ExplanationCount(0), 0u);
}

TEST(PatternMinerTest, CountsSupportAndFactCounts) {
  PatternMiner miner;
  // Two predictions of relation 5; evidence via relation 1 (twice in the
  // first explanation) and relation 2.
  miner.Add(Triple(0, 5, 9),
            MakeExplanation({Triple(0, 1, 3), Triple(0, 1, 4)}, 10.0));
  miner.Add(Triple(1, 5, 9), MakeExplanation({Triple(1, 2, 3)}, 4.0));
  std::vector<EvidencePattern> patterns = miner.PatternsFor(5);
  ASSERT_EQ(patterns.size(), 2u);
  // Sorted by fact_count: relation 1 first (2 facts).
  EXPECT_EQ(patterns[0].evidence_relation, 1);
  EXPECT_EQ(patterns[0].fact_count, 2u);
  EXPECT_EQ(patterns[0].support, 1u);  // one explanation
  EXPECT_NEAR(patterns[0].share, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(patterns[0].mean_relevance, 10.0);
  EXPECT_EQ(patterns[1].evidence_relation, 2);
  EXPECT_EQ(patterns[1].support, 1u);
  EXPECT_EQ(miner.ExplanationCount(5), 2u);
}

TEST(PatternMinerTest, EmptyExplanationsIgnored) {
  PatternMiner miner;
  miner.Add(Triple(0, 5, 9), Explanation{});
  EXPECT_EQ(miner.ExplanationCount(5), 0u);
}

TEST(PatternMinerTest, BiasCandidatesRequireForeignDominance) {
  PatternMiner miner;
  // Relation 7 predictions dominated by relation-3 evidence: bias.
  for (int i = 0; i < 4; ++i) {
    miner.Add(Triple(i, 7, 20),
              MakeExplanation({Triple(i, 3, 10 + i)}, 5.0));
  }
  // Relation 8 predictions explained by relation-8 evidence: not a bias
  // (same relation — e.g. acted_in explained by other acted_in facts).
  for (int i = 0; i < 4; ++i) {
    miner.Add(Triple(i, 8, 30),
              MakeExplanation({Triple(i, 8, 25 + i)}, 5.0));
  }
  std::vector<EvidencePattern> biases = miner.BiasCandidates(0.5);
  ASSERT_EQ(biases.size(), 1u);
  EXPECT_EQ(biases[0].prediction_relation, 7);
  EXPECT_EQ(biases[0].evidence_relation, 3);
  EXPECT_DOUBLE_EQ(biases[0].share, 1.0);
}

TEST(PatternMinerTest, BiasThresholdRespected) {
  PatternMiner miner;
  miner.Add(Triple(0, 7, 20),
            MakeExplanation({Triple(0, 3, 1), Triple(0, 4, 2)}, 1.0));
  // Both foreign relations have share 0.5.
  EXPECT_EQ(miner.BiasCandidates(0.6).size(), 0u);
  EXPECT_EQ(miner.BiasCandidates(0.5).size(), 2u);
}

TEST(PatternMinerTest, AllPatternsCoverEveryPredictionRelation) {
  PatternMiner miner;
  miner.Add(Triple(0, 1, 2), MakeExplanation({Triple(0, 0, 5)}, 1.0));
  miner.Add(Triple(0, 2, 2), MakeExplanation({Triple(0, 0, 5)}, 1.0));
  std::vector<EvidencePattern> all = miner.AllPatterns();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].prediction_relation, 1);
  EXPECT_EQ(all[1].prediction_relation, 2);
}

TEST(PatternMinerTest, ReportUsesRelationNames) {
  Dataset dataset = testing_util::MakeToyDataset();
  PatternMiner miner;
  // nationality (relation 2) explained by born_in (relation 0).
  miner.Add(dataset.test().front(),
            MakeExplanation(
                {dataset.train_graph().FactsOf(dataset.test().front().head)
                     .front()},
                8.0));
  std::string report = miner.Report(dataset);
  EXPECT_NE(report.find("nationality"), std::string::npos);
  EXPECT_NE(report.find("share="), std::string::npos);
}

TEST(PatternMinerTest, EndToEndOnYagoBias) {
  // Full-stack: mine patterns from real Kelpie explanations on the
  // YAGO3-10 stand-in and confirm the born_in -> football bias surfaces.
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kYago310, 0.4, 7);
  auto model = CreateAndTrain(ModelKind::kComplEx, dataset, 11);
  Result<int32_t> born = dataset.relations().Find("born_in");
  ASSERT_TRUE(born.ok());

  KelpieOptions options;
  options.engine.conversion_set_size = 3;
  options.builder.max_visits_per_size = 10;
  Kelpie kelpie(*model, dataset, options);
  PatternMiner miner;
  Rng rng(5);
  size_t explained = 0;
  for (const Triple& t : dataset.test()) {
    if (explained >= 5) break;
    if (t.relation != born.value()) continue;
    if (FilteredTailRank(*model, dataset, t) != 1) continue;
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        *model, dataset, t, PredictionTarget::kTail, 3, rng);
    if (conversion_set.empty()) continue;
    Explanation x = kelpie.ExplainSufficientWithSet(
        t, PredictionTarget::kTail, conversion_set);
    if (x.empty()) continue;
    miner.Add(t, x);
    ++explained;
  }
  if (explained < 2) GTEST_SKIP() << "not enough explainable predictions";
  std::vector<EvidencePattern> patterns = miner.PatternsFor(born.value());
  ASSERT_FALSE(patterns.empty());
  // The dominant evidence relation should be a football relation.
  const std::string& top =
      dataset.relations().NameOf(patterns.front().evidence_relation);
  EXPECT_TRUE(top == "plays_for" || top == "affiliated_to")
      << "dominant evidence was " << top;
}

}  // namespace
}  // namespace kelpie
