#ifndef KELPIE_TESTS_TEST_UTIL_H_
#define KELPIE_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "kgraph/dataset.h"
#include "models/factory.h"

namespace kelpie {
namespace testing_util {

/// A small, fully deterministic dataset with a clean compositional pattern:
///
///   born_in(Person_i, City_{i % cities})          [train]
///   located_in(City_j, Country_{j % countries})   [train]
///   nationality(Person_i, Country_*)              [train for most people,
///                                                  test for every 7th]
///
/// nationality is entailed by born_in ∘ located_in, so the test facts are
/// learnable and, more importantly, *explainable*: the born_in fact of a
/// person is the evidence for their nationality prediction.
inline Dataset MakeToyDataset(size_t num_people = 40, size_t num_cities = 8,
                              size_t num_countries = 3) {
  Dictionary entities, relations;
  std::vector<EntityId> people, cities, countries;
  for (size_t i = 0; i < num_people; ++i) {
    people.push_back(entities.GetOrAdd("Person_" + std::to_string(i)));
  }
  for (size_t i = 0; i < num_cities; ++i) {
    cities.push_back(entities.GetOrAdd("City_" + std::to_string(i)));
  }
  for (size_t i = 0; i < num_countries; ++i) {
    countries.push_back(entities.GetOrAdd("Country_" + std::to_string(i)));
  }
  RelationId born = relations.GetOrAdd("born_in");
  RelationId located = relations.GetOrAdd("located_in");
  RelationId nationality = relations.GetOrAdd("nationality");

  std::vector<Triple> train, valid, test;
  for (size_t j = 0; j < num_cities; ++j) {
    train.emplace_back(cities[j], located, countries[j % num_countries]);
  }
  for (size_t i = 0; i < num_people; ++i) {
    size_t city = i % num_cities;
    size_t country = city % num_countries;
    train.emplace_back(people[i], born, cities[city]);
    Triple nat(people[i], nationality, countries[country]);
    if (i % 7 == 3) {
      test.push_back(nat);
    } else if (i % 7 == 5) {
      valid.push_back(nat);
    } else {
      train.push_back(nat);
    }
  }
  return Dataset("toy-compositional", std::move(entities),
                 std::move(relations), std::move(train), std::move(valid),
                 std::move(test));
}

/// A quickly trainable config for tests.
inline TrainConfig FastConfig(ModelKind kind) {
  TrainConfig config;
  config.dim = 16;
  config.epochs = 30;
  config.batch_size = 64;
  config.post_training_epochs = 25;
  switch (kind) {
    case ModelKind::kTransE:
      config.learning_rate = 0.05f;
      config.margin = 2.0f;
      config.negatives_per_positive = 5;
      config.post_training_lr = 0.05f;
      break;
    case ModelKind::kRotatE:
      config.learning_rate = 0.08f;
      config.margin = 3.0f;
      config.negatives_per_positive = 5;
      config.post_training_lr = 0.08f;
      break;
    case ModelKind::kComplEx:
    case ModelKind::kDistMult:
      config.learning_rate = 0.1f;
      config.regularization = 1e-3f;
      config.post_training_lr = 0.1f;
      break;
    case ModelKind::kConvE:
      config.learning_rate = 0.1f;
      config.conv_lr = 0.01f;
      config.conv_channels = 8;
      config.conv_kernel = 3;
      config.reshape_height = 4;
      config.epochs = 80;
      config.post_training_lr = 0.1f;
      config.post_training_epochs = 40;
      break;
  }
  return config;
}

/// Creates and trains a model on the toy dataset with a fixed seed.
inline std::unique_ptr<LinkPredictionModel> TrainToyModel(
    ModelKind kind, const Dataset& dataset, uint64_t seed = 11) {
  auto model = CreateModel(kind, dataset, FastConfig(kind));
  Rng rng(seed);
  model->Train(dataset, rng);
  return model;
}

}  // namespace testing_util
}  // namespace kelpie

#endif  // KELPIE_TESTS_TEST_UTIL_H_
