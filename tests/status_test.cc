#include "common/status.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, NonOkStatusReportsFalse) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("entity 42");
  EXPECT_EQ(s.ToString(), "NotFound: entity 42");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x) {
  KELPIE_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(3).ok());
  Status s = Caller(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kelpie
