#include "datagen/generator.h"

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

GeneratorSpec SimpleSpec() {
  GeneratorSpec spec;
  spec.name = "test";
  spec.seed = 3;
  spec.types = {{"Person", 40}, {"City", 10}, {"Country", 3}};
  spec.relations = {
      {.name = "born_in", .domain = "Person", .range = "City",
       .facts_per_head = 1.0, .zipf_exponent = 1.5, .functional = true},
      {.name = "located_in", .domain = "City", .range = "Country",
       .facts_per_head = 1.0, .zipf_exponent = 0.0, .functional = true},
      {.name = "nationality", .domain = "Person", .range = "Country",
       .facts_per_head = 0.0},
  };
  spec.rules = {{.premise1 = "born_in", .premise2 = "located_in",
                 .conclusion = "nationality", .apply_prob = 1.0}};
  spec.valid_fraction = 0.1;
  spec.test_fraction = 0.2;
  return spec;
}

TEST(GeneratorTest, ProducesRequestedEntities) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_entities(), 53u);
  EXPECT_EQ(result->num_relations(), 3u);
  EXPECT_TRUE(result->entities().Contains("Person_0"));
  EXPECT_TRUE(result->entities().Contains("City_9"));
  EXPECT_TRUE(result->entities().Contains("Country_2"));
}

TEST(GeneratorTest, SplitsAreDisjoint) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  std::unordered_set<uint64_t> train_keys;
  for (const Triple& t : result->train()) train_keys.insert(t.Key());
  for (const Triple& t : result->valid()) {
    EXPECT_EQ(train_keys.count(t.Key()), 0u);
  }
  for (const Triple& t : result->test()) {
    EXPECT_EQ(train_keys.count(t.Key()), 0u);
  }
}

TEST(GeneratorTest, TestFactsAreDerivedOnly) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  // Only nationality facts are derived in this spec.
  Result<int32_t> nat = result->relations().Find("nationality");
  ASSERT_TRUE(nat.ok());
  for (const Triple& t : result->test()) {
    EXPECT_EQ(t.relation, nat.value());
  }
}

TEST(GeneratorTest, TestFactsHavePremisesInTraining) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->test().empty());
  Result<int32_t> born = result->relations().Find("born_in");
  ASSERT_TRUE(born.ok());
  // Every person with a test nationality fact must keep their born_in fact
  // in training (premises are base facts, never moved to eval splits).
  for (const Triple& t : result->test()) {
    bool has_born = false;
    for (const Triple& f : result->train_graph().FactsOf(t.head)) {
      if (f.relation == born.value() && f.head == t.head) has_born = true;
    }
    EXPECT_TRUE(has_born) << "person " << t.head;
  }
}

TEST(GeneratorTest, NoEvalEntityIsOrphaned) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  for (const auto* split : {&result->valid(), &result->test()}) {
    for (const Triple& t : *split) {
      EXPECT_GT(result->train_graph().Degree(t.head), 0u);
      EXPECT_GT(result->train_graph().Degree(t.tail), 0u);
    }
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  Result<Dataset> a = GenerateDataset(SimpleSpec());
  Result<Dataset> b = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->train().size(), b->train().size());
  for (size_t i = 0; i < a->train().size(); ++i) {
    EXPECT_EQ(a->train()[i], b->train()[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorSpec spec1 = SimpleSpec();
  GeneratorSpec spec2 = SimpleSpec();
  spec2.seed = 4;
  Result<Dataset> a = GenerateDataset(spec1);
  Result<Dataset> b = GenerateDataset(spec2);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_difference = a->train().size() != b->train().size();
  if (!any_difference) {
    for (size_t i = 0; i < a->train().size(); ++i) {
      if (!(a->train()[i] == b->train()[i])) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, FunctionalRelationHasAtMostOneFactPerHead) {
  Result<Dataset> result = GenerateDataset(SimpleSpec());
  ASSERT_TRUE(result.ok());
  Result<int32_t> born = result->relations().Find("born_in");
  ASSERT_TRUE(born.ok());
  std::unordered_map<EntityId, int> counts;
  for (const auto* split :
       {&result->train(), &result->valid(), &result->test()}) {
    for (const Triple& t : *split) {
      if (t.relation == born.value()) ++counts[t.head];
    }
  }
  for (const auto& [head, count] : counts) {
    EXPECT_LE(count, 1) << "person " << head;
  }
}

TEST(GeneratorTest, SymmetricRelationHasReversePairs) {
  GeneratorSpec spec;
  spec.name = "sym";
  spec.seed = 5;
  spec.types = {{"Word", 60}};
  spec.relations = {{.name = "similar_to", .domain = "Word",
                     .range = "Word", .facts_per_head = 1.5,
                     .zipf_exponent = 0.0, .symmetric = true,
                     .symmetric_prob = 1.0}};
  spec.test_fraction = 0.0;
  spec.valid_fraction = 0.0;
  Result<Dataset> result = GenerateDataset(spec);
  ASSERT_TRUE(result.ok());
  size_t with_reverse = 0, total = 0;
  for (const Triple& t : result->train()) {
    ++total;
    if (result->train_graph().Contains(
            Triple(t.tail, t.relation, t.head))) {
      ++with_reverse;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_EQ(with_reverse, total);  // symmetric_prob = 1.0
}

TEST(GeneratorTest, InverseRelationMirrorsBase) {
  GeneratorSpec spec;
  spec.name = "inv";
  spec.seed = 6;
  spec.types = {{"A", 30}, {"B", 10}};
  spec.relations = {
      {.name = "fwd", .domain = "A", .range = "B", .facts_per_head = 1.0,
       .zipf_exponent = 0.0},
      {.name = "bwd", .domain = "B", .range = "A", .inverse_of = "fwd",
       .inverse_prob = 1.0},
  };
  spec.test_fraction = 0.0;
  spec.valid_fraction = 0.0;
  Result<Dataset> result = GenerateDataset(spec);
  ASSERT_TRUE(result.ok());
  Result<int32_t> fwd = result->relations().Find("fwd");
  Result<int32_t> bwd = result->relations().Find("bwd");
  ASSERT_TRUE(fwd.ok() && bwd.ok());
  for (const Triple& t : result->train()) {
    if (t.relation == fwd.value()) {
      EXPECT_TRUE(
          result->train_graph().Contains(Triple(t.tail, bwd.value(), t.head)));
    }
  }
}

TEST(GeneratorTest, ClustersLinkMembersToSharedItems) {
  GeneratorSpec spec;
  spec.name = "clusters";
  spec.seed = 7;
  spec.types = {{"Actor", 30}, {"Film", 40}};
  spec.relations = {{.name = "acted_in", .domain = "Actor", .range = "Film",
                     .facts_per_head = 0.0}};
  spec.clusters = {{.member_type = "Actor", .relation = "acted_in",
                    .item_type = "Film", .num_groups = 3,
                    .members_per_group = 4, .items_per_group = 5,
                    .membership_prob = 1.0}};
  spec.test_fraction = 0.0;
  spec.valid_fraction = 0.0;
  Result<Dataset> result = GenerateDataset(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->train().size(), 3u * 4u * 5u);
}

TEST(GeneratorTest, CorrelationBiasesTargetRelation) {
  GeneratorSpec spec;
  spec.name = "corr";
  spec.seed = 8;
  spec.types = {{"Player", 200}, {"Team", 10}, {"City", 10}};
  spec.relations = {
      {.name = "plays_for", .domain = "Player", .range = "Team",
       .facts_per_head = 1.0, .zipf_exponent = 0.0, .functional = true},
      {.name = "based_in", .domain = "Team", .range = "City",
       .facts_per_head = 1.0, .zipf_exponent = 0.0, .functional = true},
      {.name = "born_in", .domain = "Player", .range = "City",
       .facts_per_head = 0.0},
  };
  spec.correlations = {{.subject_type = "Player", .via_relation = "plays_for",
                        .anchor_relation = "based_in",
                        .target_relation = "born_in", .strength = 0.9}};
  spec.test_fraction = 0.0;
  spec.valid_fraction = 0.0;
  Result<Dataset> result = GenerateDataset(spec);
  ASSERT_TRUE(result.ok());
  // Count how often a player's birthplace equals their team's city.
  Result<int32_t> plays = result->relations().Find("plays_for");
  Result<int32_t> based = result->relations().Find("based_in");
  Result<int32_t> born = result->relations().Find("born_in");
  ASSERT_TRUE(plays.ok() && based.ok() && born.ok());
  std::unordered_map<EntityId, EntityId> team_of, city_of;
  for (const Triple& t : result->train()) {
    if (t.relation == plays.value()) team_of.emplace(t.head, t.tail);
    if (t.relation == based.value()) city_of.emplace(t.head, t.tail);
  }
  size_t matches = 0, total = 0;
  for (const Triple& t : result->train()) {
    if (t.relation != born.value()) continue;
    auto team = team_of.find(t.head);
    if (team == team_of.end()) continue;
    auto city = city_of.find(team->second);
    if (city == city_of.end()) continue;
    ++total;
    if (city->second == t.tail) ++matches;
  }
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(matches) / static_cast<double>(total), 0.8);
}

TEST(GeneratorTest, RejectsUnknownTypeInRelation) {
  GeneratorSpec spec = SimpleSpec();
  spec.relations.push_back({.name = "bad", .domain = "Ghost",
                            .range = "City", .facts_per_head = 1.0});
  Result<Dataset> result = GenerateDataset(spec);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneratorTest, RejectsUnknownRelationInRule) {
  GeneratorSpec spec = SimpleSpec();
  spec.rules.push_back(
      {.premise1 = "ghost", .premise2 = "located_in",
       .conclusion = "nationality"});
  Result<Dataset> result = GenerateDataset(spec);
  EXPECT_FALSE(result.ok());
}

TEST(GeneratorTest, RejectsEmptySpec) {
  GeneratorSpec spec;
  spec.name = "empty";
  Result<Dataset> result = GenerateDataset(spec);
  EXPECT_FALSE(result.ok());
}

TEST(GeneratorTest, RejectsOversizedCluster) {
  GeneratorSpec spec = SimpleSpec();
  spec.clusters = {{.member_type = "Person", .relation = "born_in",
                    .item_type = "City", .num_groups = 100,
                    .members_per_group = 10, .items_per_group = 10}};
  Result<Dataset> result = GenerateDataset(spec);
  EXPECT_FALSE(result.ok());
}

TEST(GeneratorTest, ZipfSkewsTailPopularity) {
  GeneratorSpec spec;
  spec.name = "skew";
  spec.seed = 9;
  spec.types = {{"Person", 400}, {"City", 50}};
  spec.relations = {{.name = "born_in", .domain = "Person", .range = "City",
                     .facts_per_head = 1.0, .zipf_exponent = 1.8,
                     .functional = true}};
  spec.test_fraction = 0.0;
  spec.valid_fraction = 0.0;
  Result<Dataset> result = GenerateDataset(spec);
  ASSERT_TRUE(result.ok());
  std::unordered_map<EntityId, size_t> tail_counts;
  for (const Triple& t : result->train()) ++tail_counts[t.tail];
  size_t max_count = 0;
  for (const auto& [tail, count] : tail_counts) {
    max_count = std::max(max_count, count);
  }
  // With heavy skew, the most popular city gets far more than the uniform
  // share (400/50 = 8).
  EXPECT_GT(max_count, 40u);
}

}  // namespace
}  // namespace kelpie
