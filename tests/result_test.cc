#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsConvertedToInternalError) {
  Result<int> r = Status::Ok();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::NotFound("x");
  EXPECT_EQ(err.value_or(7), 7);
  Result<int> ok = 3;
  EXPECT_EQ(ok.value_or(7), 3);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 5);
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  int v = 0;
  KELPIE_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> ok = Doubled(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  Result<int> err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kelpie
