#include "models/rotate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(RotatETest, RequiresEvenDimension) {
  TrainConfig config;
  config.dim = 15;
  EXPECT_DEATH(RotatE(3, 1, config), "");
}

TEST(RotatETest, ZeroPhaseRotationIsIdentity) {
  // With θ = 0 (untrained relations), φ(h, r, t) = -||h - t||.
  TrainConfig config;
  config.dim = 4;
  RotatE model(2, 1, config);
  auto h = model.MutableEntityEmbedding(0);
  auto t = model.MutableEntityEmbedding(1);
  h[0] = 1.0f;
  h[2] = 2.0f;  // h = (1 + 2i, 0)
  t[0] = 4.0f;
  t[2] = 6.0f;  // t = (4 + 6i, 0)
  // ||h - t|| = ||(-3 - 4i, 0)|| = 5.
  EXPECT_NEAR(model.Score(Triple(0, 0, 1)), -5.0f, 1e-5);
}

TEST(RotatETest, ScoreIsNonPositiveAndMaximalAtRotatedMatch) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kRotatE, dataset);
  for (const Triple& t : dataset.train()) {
    EXPECT_LE(model->Score(t), 0.0f);
  }
}

TEST(RotatETest, RotationIsIsometryHeadAndTailQueriesAgree) {
  // ||e∘r - t|| == ||e - t∘r⁻¹|| must hold exactly, which is what lets
  // ScoreAllHeads reuse the tail machinery.
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kRotatE, dataset);
  Triple probe = dataset.test().front();
  std::vector<float> head_scores(model->num_entities());
  model->ScoreAllHeads(probe.relation, probe.tail, head_scores);
  for (EntityId e = 0; e < 20; ++e) {
    Triple t(e, probe.relation, probe.tail);
    EXPECT_NEAR(head_scores[static_cast<size_t>(e)], model->Score(t), 1e-4);
  }
}

TEST(RotatETest, LearnsToyCompositionalPattern) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kRotatE, dataset);
  MetricsAccumulator acc;
  for (const Triple& t : dataset.test()) {
    acc.AddRank(FilteredTailRank(*model, dataset, t));
  }
  EXPECT_GT(acc.Mrr(), 0.35);
}

TEST(RotatETest, HandlesSymmetricRelationsBetterThanTransE) {
  // The motivating property: on the WN18RR stand-in (dominated by
  // symmetric relations) RotatE must clearly beat TransE, which collapses
  // (a rotation by π is symmetric; a nonzero translation cannot be).
  Dataset dataset = MakeBenchmark(BenchmarkDataset::kWn18rr, 0.3, 7);
  auto rotate = CreateAndTrain(ModelKind::kRotatE, dataset, 11);
  auto transe = CreateAndTrain(ModelKind::kTransE, dataset, 11);
  EvalOptions options;
  options.include_heads = false;
  double rotate_mrr = Evaluate(*rotate, dataset, dataset.test(), options).Mrr();
  double transe_mrr = Evaluate(*transe, dataset, dataset.test(), options).Mrr();
  EXPECT_GT(rotate_mrr, transe_mrr + 0.1);
}

TEST(RotatETest, TrainingIsDeterministic) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto m1 = testing_util::TrainToyModel(ModelKind::kRotatE, dataset, 5);
  auto m2 = testing_util::TrainToyModel(ModelKind::kRotatE, dataset, 5);
  Triple probe = dataset.test().front();
  EXPECT_FLOAT_EQ(m1->Score(probe), m2->Score(probe));
}

TEST(RotatETest, FactoryRoundTrip) {
  Result<ModelKind> parsed = ParseModelKind("RotatE");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), ModelKind::kRotatE);
  EXPECT_EQ(ModelKindName(ModelKind::kRotatE), "RotatE");
}

}  // namespace
}  // namespace kelpie
