#include "common/failpoint.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedNeverFires) {
  EXPECT_FALSE(failpoint::Fire("nope"));
  EXPECT_FALSE(failpoint::Fire("nope", 42));
  EXPECT_EQ(failpoint::FireCount("nope"), 0u);
}

TEST_F(FailpointTest, FiresOnceByDefault) {
  failpoint::Arm("fp");
  EXPECT_TRUE(failpoint::Fire("fp"));
  EXPECT_FALSE(failpoint::Fire("fp"));
  EXPECT_EQ(failpoint::FireCount("fp"), 1u);
}

TEST_F(FailpointTest, MatchValueFilters) {
  failpoint::Arm("fp", 7);
  EXPECT_FALSE(failpoint::Fire("fp", 6));
  EXPECT_FALSE(failpoint::Fire("fp", 8));
  EXPECT_TRUE(failpoint::Fire("fp", 7));
  EXPECT_EQ(failpoint::FireCount("fp"), 1u);
}

TEST_F(FailpointTest, AnyValueMatchesEverything) {
  failpoint::Arm("fp", failpoint::kAnyValue, 2);
  EXPECT_TRUE(failpoint::Fire("fp", 1));
  EXPECT_TRUE(failpoint::Fire("fp", 999));
  EXPECT_FALSE(failpoint::Fire("fp", 3));  // budget of 2 exhausted
}

TEST_F(FailpointTest, ForeverFiresUntilDisarmed) {
  failpoint::Arm("fp", failpoint::kAnyValue, failpoint::kForever);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(failpoint::Fire("fp"));
  }
  EXPECT_EQ(failpoint::FireCount("fp"), 10u);
  failpoint::Disarm("fp");
  EXPECT_FALSE(failpoint::Fire("fp"));
}

TEST_F(FailpointTest, RearmResetsBudgetAndCount) {
  failpoint::Arm("fp");
  EXPECT_TRUE(failpoint::Fire("fp"));
  failpoint::Arm("fp");
  EXPECT_EQ(failpoint::FireCount("fp"), 0u);
  EXPECT_TRUE(failpoint::Fire("fp"));
}

TEST_F(FailpointTest, DisarmAllClearsEverything) {
  failpoint::Arm("a", failpoint::kAnyValue, failpoint::kForever);
  failpoint::Arm("b", failpoint::kAnyValue, failpoint::kForever);
  failpoint::DisarmAll();
  EXPECT_FALSE(failpoint::Fire("a"));
  EXPECT_FALSE(failpoint::Fire("b"));
}

TEST_F(FailpointTest, ScopedDisarmsOnDestruction) {
  {
    failpoint::Scoped scoped("fp", failpoint::kAnyValue, failpoint::kForever);
    EXPECT_TRUE(failpoint::Fire("fp"));
  }
  EXPECT_FALSE(failpoint::Fire("fp"));
}

TEST_F(FailpointTest, IndependentNames) {
  failpoint::Arm("a");
  EXPECT_FALSE(failpoint::Fire("b"));
  EXPECT_TRUE(failpoint::Fire("a"));
}

// ---- ArmFromSpec: the KELPIE_FAILPOINTS grammar. ----

TEST_F(FailpointTest, SpecNameOnlyFiresOnceOnAnyValue) {
  ASSERT_TRUE(failpoint::ArmFromSpec("fp").ok());
  EXPECT_TRUE(failpoint::Fire("fp", 123));
  EXPECT_FALSE(failpoint::Fire("fp", 123));
}

TEST_F(FailpointTest, SpecWithMatchAndTimes) {
  ASSERT_TRUE(failpoint::ArmFromSpec("fp:7:2").ok());
  EXPECT_FALSE(failpoint::Fire("fp", 6));
  EXPECT_TRUE(failpoint::Fire("fp", 7));
  EXPECT_TRUE(failpoint::Fire("fp", 7));
  EXPECT_FALSE(failpoint::Fire("fp", 7));
}

TEST_F(FailpointTest, SpecStarAndForever) {
  ASSERT_TRUE(failpoint::ArmFromSpec("fp:*:forever").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(failpoint::Fire("fp", static_cast<uint64_t>(i)));
  }
}

TEST_F(FailpointTest, SpecCommaSeparatedEntries) {
  ASSERT_TRUE(failpoint::ArmFromSpec("a:1,b:*:forever,c").ok());
  EXPECT_FALSE(failpoint::Fire("a", 2));
  EXPECT_TRUE(failpoint::Fire("a", 1));
  EXPECT_TRUE(failpoint::Fire("b", 9));
  EXPECT_TRUE(failpoint::Fire("b", 10));
  EXPECT_TRUE(failpoint::Fire("c"));
}

TEST_F(FailpointTest, SpecEmptyAndTrailingCommasAreTolerated) {
  ASSERT_TRUE(failpoint::ArmFromSpec("").ok());
  ASSERT_TRUE(failpoint::ArmFromSpec("a,,b,").ok());
  EXPECT_TRUE(failpoint::Fire("a"));
  EXPECT_TRUE(failpoint::Fire("b"));
}

TEST_F(FailpointTest, SpecRejectsMalformedEntries) {
  EXPECT_EQ(failpoint::ArmFromSpec("fp:xyz").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("fp:1:sometimes").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("fp:1:-2").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("fp:1:2:3").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec(":1").code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kelpie
