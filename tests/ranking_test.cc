#include "eval/ranking.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "math/rng.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

/// Sort-based reference for paper Equation (2): sort the kept candidates'
/// scores descending and count how many are >= the target's score. The
/// production RankFromScores computes the same rank with a single O(n)
/// counting pass; this pins the two against each other.
int SortBasedRank(std::span<const float> scores, EntityId target,
                  const std::unordered_set<EntityId>* filtered_out) {
  std::vector<float> kept;
  for (size_t e = 0; e < scores.size(); ++e) {
    EntityId id = static_cast<EntityId>(e);
    if (id != target && filtered_out != nullptr && filtered_out->count(id)) {
      continue;
    }
    kept.push_back(scores[e]);
  }
  std::sort(kept.begin(), kept.end(), std::greater<float>());
  const float target_score = scores[static_cast<size_t>(target)];
  auto worse = std::lower_bound(kept.begin(), kept.end(), target_score,
                                std::greater<float>());
  // `worse` points past the >= prefix in descending order... not quite:
  // lower_bound with greater<> finds the first element NOT > target_score,
  // so advance through the ties manually to count the >= prefix.
  int rank = static_cast<int>(worse - kept.begin());
  while (worse != kept.end() && *worse == target_score) {
    ++rank;
    ++worse;
  }
  return rank;
}

TEST(RankFromScoresTest, BestScoreRanksFirst) {
  std::vector<float> scores{0.1f, 0.9f, 0.5f};
  EXPECT_EQ(RankFromScores(scores, 1, nullptr), 1);
  EXPECT_EQ(RankFromScores(scores, 2, nullptr), 2);
  EXPECT_EQ(RankFromScores(scores, 0, nullptr), 3);
}

TEST(RankFromScoresTest, TiesCountAgainstTargetPerEquation2) {
  // Equation (2) uses >=, so an entity tied with the target worsens its
  // rank.
  std::vector<float> scores{0.5f, 0.5f, 0.1f};
  EXPECT_EQ(RankFromScores(scores, 0, nullptr), 2);
  EXPECT_EQ(RankFromScores(scores, 1, nullptr), 2);
}

TEST(RankFromScoresTest, FilteredEntitiesAreSkipped) {
  std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.1f};
  std::unordered_set<EntityId> known{0, 1};
  // Target 2: entities 0 and 1 outscore it but are filtered out.
  EXPECT_EQ(RankFromScores(scores, 2, &known), 1);
}

TEST(RankFromScoresTest, TargetNeverFiltersItself) {
  std::vector<float> scores{0.9f, 0.8f};
  std::unordered_set<EntityId> known{0, 1};
  EXPECT_EQ(RankFromScores(scores, 1, &known), 1);
  EXPECT_EQ(RankFromScores(scores, 0, &known), 1);
}

TEST(RankFromScoresTest, MatchesSortBasedReferenceOnRandomVectorsWithTies) {
  Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.UniformUint64(50);
    std::vector<float> scores(n);
    for (float& s : scores) {
      // Quantized draws so ties are common.
      s = static_cast<float>(rng.UniformUint64(8)) / 4.0f;
    }
    std::unordered_set<EntityId> filtered;
    for (size_t e = 0; e < n; ++e) {
      if (rng.Bernoulli(0.25)) filtered.insert(static_cast<EntityId>(e));
    }
    const EntityId target = static_cast<EntityId>(rng.UniformUint64(n));
    const std::unordered_set<EntityId>* filter =
        rng.Bernoulli(0.5) ? &filtered : nullptr;
    EXPECT_EQ(RankFromScores(scores, target, filter),
              SortBasedRank(scores, target, filter))
        << "trial " << trial << " n=" << n << " target=" << target;
  }
}

class FilteredRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
};

TEST_F(FilteredRankTest, RanksAreInValidRange) {
  for (const Triple& t : dataset_->test()) {
    int tail_rank = FilteredTailRank(*model_, *dataset_, t);
    int head_rank = FilteredHeadRank(*model_, *dataset_, t);
    EXPECT_GE(tail_rank, 1);
    EXPECT_LE(tail_rank, static_cast<int>(dataset_->num_entities()));
    EXPECT_GE(head_rank, 1);
    EXPECT_LE(head_rank, static_cast<int>(dataset_->num_entities()));
  }
}

TEST_F(FilteredRankTest, FilteredNeverWorseThanRaw) {
  // Filtering removes known competitors, so the filtered rank is <= the
  // raw rank.
  for (const Triple& t : dataset_->test()) {
    std::vector<float> scores(model_->num_entities());
    model_->ScoreAllTails(t.head, t.relation, scores);
    int raw = RankFromScores(scores, t.tail, nullptr);
    int filtered = FilteredTailRank(*model_, *dataset_, t);
    EXPECT_LE(filtered, raw);
  }
}

TEST_F(FilteredRankTest, OverrideWithStoredRowMatchesDirectRank) {
  Triple probe = dataset_->test().front();
  int direct = FilteredTailRank(*model_, *dataset_, probe);
  int via_override = FilteredTailRankWithHeadVec(
      *model_, *dataset_, probe.head, model_->EntityEmbedding(probe.head),
      probe.relation, probe.tail);
  EXPECT_EQ(direct, via_override);
}

TEST_F(FilteredRankTest, FilteredRankDispatchesOnTarget) {
  Triple probe = dataset_->test().front();
  EXPECT_EQ(FilteredRank(*model_, *dataset_, probe, PredictionTarget::kTail),
            FilteredTailRank(*model_, *dataset_, probe));
  EXPECT_EQ(FilteredRank(*model_, *dataset_, probe, PredictionTarget::kHead),
            FilteredHeadRank(*model_, *dataset_, probe));
}

}  // namespace
}  // namespace kelpie
