#include "eval/ranking.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(RankFromScoresTest, BestScoreRanksFirst) {
  std::vector<float> scores{0.1f, 0.9f, 0.5f};
  EXPECT_EQ(RankFromScores(scores, 1, nullptr), 1);
  EXPECT_EQ(RankFromScores(scores, 2, nullptr), 2);
  EXPECT_EQ(RankFromScores(scores, 0, nullptr), 3);
}

TEST(RankFromScoresTest, TiesCountAgainstTargetPerEquation2) {
  // Equation (2) uses >=, so an entity tied with the target worsens its
  // rank.
  std::vector<float> scores{0.5f, 0.5f, 0.1f};
  EXPECT_EQ(RankFromScores(scores, 0, nullptr), 2);
  EXPECT_EQ(RankFromScores(scores, 1, nullptr), 2);
}

TEST(RankFromScoresTest, FilteredEntitiesAreSkipped) {
  std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.1f};
  std::unordered_set<EntityId> known{0, 1};
  // Target 2: entities 0 and 1 outscore it but are filtered out.
  EXPECT_EQ(RankFromScores(scores, 2, &known), 1);
}

TEST(RankFromScoresTest, TargetNeverFiltersItself) {
  std::vector<float> scores{0.9f, 0.8f};
  std::unordered_set<EntityId> known{0, 1};
  EXPECT_EQ(RankFromScores(scores, 1, &known), 1);
  EXPECT_EQ(RankFromScores(scores, 0, &known), 1);
}

class FilteredRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
};

TEST_F(FilteredRankTest, RanksAreInValidRange) {
  for (const Triple& t : dataset_->test()) {
    int tail_rank = FilteredTailRank(*model_, *dataset_, t);
    int head_rank = FilteredHeadRank(*model_, *dataset_, t);
    EXPECT_GE(tail_rank, 1);
    EXPECT_LE(tail_rank, static_cast<int>(dataset_->num_entities()));
    EXPECT_GE(head_rank, 1);
    EXPECT_LE(head_rank, static_cast<int>(dataset_->num_entities()));
  }
}

TEST_F(FilteredRankTest, FilteredNeverWorseThanRaw) {
  // Filtering removes known competitors, so the filtered rank is <= the
  // raw rank.
  for (const Triple& t : dataset_->test()) {
    std::vector<float> scores(model_->num_entities());
    model_->ScoreAllTails(t.head, t.relation, scores);
    int raw = RankFromScores(scores, t.tail, nullptr);
    int filtered = FilteredTailRank(*model_, *dataset_, t);
    EXPECT_LE(filtered, raw);
  }
}

TEST_F(FilteredRankTest, OverrideWithStoredRowMatchesDirectRank) {
  Triple probe = dataset_->test().front();
  int direct = FilteredTailRank(*model_, *dataset_, probe);
  int via_override = FilteredTailRankWithHeadVec(
      *model_, *dataset_, probe.head, model_->EntityEmbedding(probe.head),
      probe.relation, probe.tail);
  EXPECT_EQ(direct, via_override);
}

TEST_F(FilteredRankTest, FilteredRankDispatchesOnTarget) {
  Triple probe = dataset_->test().front();
  EXPECT_EQ(FilteredRank(*model_, *dataset_, probe, PredictionTarget::kTail),
            FilteredTailRank(*model_, *dataset_, probe));
  EXPECT_EQ(FilteredRank(*model_, *dataset_, probe, PredictionTarget::kHead),
            FilteredHeadRank(*model_, *dataset_, probe));
}

}  // namespace
}  // namespace kelpie
