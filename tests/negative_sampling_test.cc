#include "ml/negative_sampling.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

GraphIndex DenseGraph() {
  // Entities 0..4; facts 0-r->1, 0-r->2, 3-r->1.
  return GraphIndex({Triple(0, 0, 1), Triple(0, 0, 2), Triple(3, 0, 1)}, 5);
}

TEST(NegativeSamplerTest, CorruptTailChangesOnlyTail) {
  GraphIndex g = DenseGraph();
  NegativeSampler sampler(g, /*filtered=*/false);
  Rng rng(1);
  Triple pos(0, 0, 1);
  for (int i = 0; i < 100; ++i) {
    Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/true, rng);
    EXPECT_EQ(neg.head, pos.head);
    EXPECT_EQ(neg.relation, pos.relation);
    EXPECT_NE(neg.tail, pos.tail);
  }
}

TEST(NegativeSamplerTest, CorruptHeadChangesOnlyHead) {
  GraphIndex g = DenseGraph();
  NegativeSampler sampler(g, false);
  Rng rng(2);
  Triple pos(0, 0, 1);
  for (int i = 0; i < 100; ++i) {
    Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/false, rng);
    EXPECT_NE(neg.head, pos.head);
    EXPECT_EQ(neg.tail, pos.tail);
  }
}

TEST(NegativeSamplerTest, FilteredAvoidsKnownFacts) {
  GraphIndex g = DenseGraph();
  NegativeSampler sampler(g, /*filtered=*/true);
  Rng rng(3);
  Triple pos(0, 0, 1);
  for (int i = 0; i < 200; ++i) {
    Triple neg = sampler.Corrupt(pos, true, rng);
    // <0, r, 2> is a known fact; filtering must avoid it.
    EXPECT_NE(neg, Triple(0, 0, 2));
  }
}

TEST(NegativeSamplerTest, UnfilteredMayProduceKnownFacts) {
  GraphIndex g = DenseGraph();
  NegativeSampler sampler(g, /*filtered=*/false);
  Rng rng(4);
  bool hit_known = false;
  for (int i = 0; i < 500 && !hit_known; ++i) {
    Triple neg = sampler.Corrupt(Triple(0, 0, 1), true, rng);
    hit_known = (neg == Triple(0, 0, 2));
  }
  EXPECT_TRUE(hit_known);
}

TEST(NegativeSamplerTest, EitherSideMixesBothCorruptions) {
  GraphIndex g = DenseGraph();
  NegativeSampler sampler(g, false);
  Rng rng(5);
  Triple pos(0, 0, 1);
  int head_corruptions = 0, tail_corruptions = 0;
  for (int i = 0; i < 300; ++i) {
    Triple neg = sampler.CorruptEitherSide(pos, rng);
    if (neg.head != pos.head) ++head_corruptions;
    if (neg.tail != pos.tail) ++tail_corruptions;
  }
  EXPECT_GT(head_corruptions, 50);
  EXPECT_GT(tail_corruptions, 50);
}

}  // namespace
}  // namespace kelpie
