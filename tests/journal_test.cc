#include "xp/journal.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

PredictionRecord MakeRecord(int i) {
  PredictionRecord r;
  r.prediction = Triple(i, i + 1, i + 2);
  r.facts = {Triple(i, 0, 7), Triple(i, 1, 8)};
  r.conversion_set = {10 + i, 20 + i};
  r.relevance = 0.25 * i;
  r.accepted = (i % 2 == 0);
  r.post_trainings = static_cast<uint64_t>(3 * i);
  r.visited_candidates = static_cast<uint64_t>(5 * i);
  return r;
}

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteAll(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_journal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "run.jnl").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(JournalTest, RoundTripRecords) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 0xABCD, false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(journal->Append(MakeRecord(i)).ok());
    }
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 0xABCD, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed->recovered()[i], MakeRecord(i));
  }
}

TEST_F(JournalTest, ResumeOfMissingFileStartsEmpty) {
  Result<RunJournal> journal = RunJournal::Open(path_, 1, true);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(journal->recovered().empty());
  ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
}

TEST_F(JournalTest, FreshOpenDiscardsExistingJournal) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 1, true);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->recovered().empty());
}

TEST_F(JournalTest, RunIdMismatchRefusesResume) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 2, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("different run configuration"),
            std::string::npos);
}

TEST_F(JournalTest, GarbageFileRejected) {
  WriteAll(path_, "certainly not a journal");
  Result<RunJournal> resumed = RunJournal::Open(path_, 1, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
}

TEST_F(JournalTest, TornTailIsTruncatedAndResumable) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 9, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
  }
  // Simulate a crash mid-append: chop the last record's final bytes.
  std::string bytes = ReadAll(path_);
  const size_t intact = bytes.size();
  WriteAll(path_, bytes.substr(0, bytes.size() - 5));

  Result<RunJournal> resumed = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Only the first record survives; the torn tail is gone from the file.
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
  EXPECT_LT(std::filesystem::file_size(path_), intact);

  // Appending after recovery yields a fully valid journal again.
  ASSERT_TRUE(resumed->Append(MakeRecord(1)).ok());
  Result<RunJournal> again = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->recovered().size(), 2u);
  EXPECT_EQ(again->recovered()[1], MakeRecord(1));
}

TEST_F(JournalTest, CorruptRecordByteStopsReplayThere) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 9, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
  }
  std::string bytes = ReadAll(path_);
  // Flip a payload byte of the *last* record (CRC trailer is its final 4
  // bytes; step back past it into the payload).
  bytes[bytes.size() - 10] ^= 0x40;
  WriteAll(path_, bytes);

  Result<RunJournal> resumed = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
}

TEST_F(JournalTest, EmptyRecordFieldsRoundTrip) {
  PredictionRecord r;
  r.prediction = Triple(1, 2, 3);
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 4, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(r).ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 4, true);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], r);
}

}  // namespace
}  // namespace kelpie
