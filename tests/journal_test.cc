#include "xp/journal.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"

namespace kelpie {
namespace {

PredictionRecord MakeRecord(int i) {
  PredictionRecord r;
  r.prediction = Triple(i, i + 1, i + 2);
  r.facts = {Triple(i, 0, 7), Triple(i, 1, 8)};
  r.conversion_set = {10 + i, 20 + i};
  r.relevance = 0.25 * i;
  r.accepted = (i % 2 == 0);
  r.post_trainings = static_cast<uint64_t>(3 * i);
  r.visited_candidates = static_cast<uint64_t>(5 * i);
  r.completeness = static_cast<uint64_t>(i % 4);
  r.skipped_candidates = static_cast<uint64_t>(2 * i);
  r.divergent_candidates = static_cast<uint64_t>(i);
  return r;
}

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void WriteAll(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_journal_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "run.jnl").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(JournalTest, RoundTripRecords) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 0xABCD, false);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(journal->Append(MakeRecord(i)).ok());
    }
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 0xABCD, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed->recovered()[i], MakeRecord(i));
  }
}

TEST_F(JournalTest, ResumeOfMissingFileStartsEmpty) {
  Result<RunJournal> journal = RunJournal::Open(path_, 1, true);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_TRUE(journal->recovered().empty());
  ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
}

TEST_F(JournalTest, FreshOpenDiscardsExistingJournal) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 1, true);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->recovered().empty());
}

TEST_F(JournalTest, RunIdMismatchRefusesResume) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 1, false);
    ASSERT_TRUE(journal.ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 2, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(resumed.status().message().find("different run configuration"),
            std::string::npos);
}

TEST_F(JournalTest, GarbageFileRejected) {
  WriteAll(path_, "certainly not a journal");
  Result<RunJournal> resumed = RunJournal::Open(path_, 1, true);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
}

TEST_F(JournalTest, TornTailIsTruncatedAndResumable) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 9, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
  }
  // Simulate a crash mid-append: chop the last record's final bytes.
  std::string bytes = ReadAll(path_);
  const size_t intact = bytes.size();
  WriteAll(path_, bytes.substr(0, bytes.size() - 5));

  Result<RunJournal> resumed = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  // Only the first record survives; the torn tail is gone from the file.
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
  EXPECT_LT(std::filesystem::file_size(path_), intact);

  // Appending after recovery yields a fully valid journal again.
  ASSERT_TRUE(resumed->Append(MakeRecord(1)).ok());
  Result<RunJournal> again = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->recovered().size(), 2u);
  EXPECT_EQ(again->recovered()[1], MakeRecord(1));
}

TEST_F(JournalTest, CorruptRecordByteStopsReplayThere) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 9, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
  }
  std::string bytes = ReadAll(path_);
  // Flip a payload byte of the *last* record (CRC trailer is its final 4
  // bytes; step back past it into the payload).
  bytes[bytes.size() - 10] ^= 0x40;
  WriteAll(path_, bytes);

  Result<RunJournal> resumed = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
}

TEST_F(JournalTest, EmptyRecordFieldsRoundTrip) {
  PredictionRecord r;
  r.prediction = Triple(1, 2, 3);
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 4, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(r).ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 4, true);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], r);
}

// ----------------------------------------------------- v1 compatibility ----
//
// Format v2 appended three u64 counters (completeness, skipped, divergent)
// to each record's payload. The tests below hand-craft v1 bytes from a v2
// journal: drop the trailing 24 payload bytes of a frame, re-frame with the
// recomputed length and CRC, and (for a pure v1 file) patch the header
// version. Parsing is keyed on payload length, so v1 records read back with
// the counters defaulted even when mixed with v2 records in one file.

constexpr size_t kHeaderSize = 24;           // magic + version + run_id
constexpr size_t kV2CounterBytes = 3 * 8;    // the payload bytes v2 added

uint64_t ReadU64At(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

/// [offset, length-of-whole-frame] of each record frame after the header.
std::vector<std::pair<size_t, size_t>> ListFrames(const std::string& bytes) {
  std::vector<std::pair<size_t, size_t>> frames;
  size_t offset = kHeaderSize;
  while (offset + 8 <= bytes.size()) {
    const size_t len = static_cast<size_t>(ReadU64At(bytes, offset));
    const size_t frame_size = 8 + len + 4;
    if (offset + frame_size > bytes.size()) break;
    frames.emplace_back(offset, frame_size);
    offset += frame_size;
  }
  return frames;
}

/// Re-frames the payload inside `frame` as a v1 record (counters dropped).
std::string ToV1Frame(const std::string& frame) {
  const size_t payload_size =
      static_cast<size_t>(ReadU64At(frame, 0)) - kV2CounterBytes;
  const std::string payload = frame.substr(8, payload_size);
  std::string v1;
  for (int i = 0; i < 8; ++i) {
    v1.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xFF));
  }
  v1 += payload;
  const uint32_t crc = Crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    v1.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return v1;
}

PredictionRecord WithDefaultedCounters(PredictionRecord r) {
  r.completeness = 0;
  r.skipped_candidates = 0;
  r.divergent_candidates = 0;
  return r;
}

TEST_F(JournalTest, V1RecordsParseWithDefaultedCounters) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 5, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
  }
  const std::string bytes = ReadAll(path_);
  const auto frames = ListFrames(bytes);
  ASSERT_EQ(frames.size(), 2u);

  // Rebuild the file as a genuine v1 journal: version byte 1, every record
  // without the v2 counters.
  std::string v1 = bytes.substr(0, kHeaderSize);
  v1[8] = 1;  // version lives at offset 8, little-endian
  for (const auto& [offset, size] : frames) {
    v1 += ToV1Frame(bytes.substr(offset, size));
  }
  WriteAll(path_, v1);

  Result<RunJournal> resumed = RunJournal::Open(path_, 5, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 2u);
  EXPECT_EQ(resumed->recovered()[0], WithDefaultedCounters(MakeRecord(0)));
  EXPECT_EQ(resumed->recovered()[1], WithDefaultedCounters(MakeRecord(1)));
}

TEST_F(JournalTest, MixedV1AndV2RecordsParse) {
  // A v1 journal resumed by a v2 writer keeps its v1 header and v1 records
  // and gains v2 records after them.
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 6, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  std::string bytes = ReadAll(path_);
  const auto frames = ListFrames(bytes);
  ASSERT_EQ(frames.size(), 1u);
  std::string v1 = bytes.substr(0, kHeaderSize);
  v1[8] = 1;
  v1 += ToV1Frame(bytes.substr(frames[0].first, frames[0].second));
  WriteAll(path_, v1);

  {
    Result<RunJournal> resumed = RunJournal::Open(path_, 6, true);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_EQ(resumed->recovered().size(), 1u);
    ASSERT_TRUE(resumed->Append(MakeRecord(1)).ok());  // a v2 record
  }
  Result<RunJournal> again = RunJournal::Open(path_, 6, true);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->recovered().size(), 2u);
  EXPECT_EQ(again->recovered()[0], WithDefaultedCounters(MakeRecord(0)));
  EXPECT_EQ(again->recovered()[1], MakeRecord(1));
}

// ------------------------------------------------------- v3 summaries ----

RunSummary MakeSummary() {
  RunSummary s;
  s.predictions = 3;
  s.accepted = 2;
  s.truncated = 1;
  s.post_trainings = 42;
  s.visited_candidates = 17;
  s.skipped_candidates = 5;
  s.divergent_candidates = 1;
  s.mean_relevance = 0.75;
  return s;
}

TEST_F(JournalTest, SummaryRoundTripsAndIsConsumedOnResume) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 7, false);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE(journal->supports_summary());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->Append(MakeRecord(1)).ok());
    ASSERT_TRUE(journal->AppendSummary(MakeSummary()).ok());
  }
  const size_t with_summary = std::filesystem::file_size(path_);

  Result<RunJournal> resumed = RunJournal::Open(path_, 7, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 2u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
  EXPECT_EQ(resumed->recovered()[1], MakeRecord(1));
  ASSERT_TRUE(resumed->recovered_summary().has_value());
  EXPECT_EQ(*resumed->recovered_summary(), MakeSummary());
  // The stale summary is truncated away: records now append after the last
  // data record, and the run writes a fresh summary when it finishes.
  EXPECT_LT(std::filesystem::file_size(path_), with_summary);

  ASSERT_TRUE(resumed->Append(MakeRecord(2)).ok());
  RunSummary updated = MakeSummary();
  updated.predictions = 4;
  ASSERT_TRUE(resumed->AppendSummary(updated).ok());

  Result<RunJournal> again = RunJournal::Open(path_, 7, true);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->recovered().size(), 3u);
  EXPECT_EQ(again->recovered()[2], MakeRecord(2));
  ASSERT_TRUE(again->recovered_summary().has_value());
  EXPECT_EQ(*again->recovered_summary(), updated);
}

TEST_F(JournalTest, ResumeWithoutSummaryRecoversNone) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 8, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 8, true);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->recovered().size(), 1u);
  EXPECT_FALSE(resumed->recovered_summary().has_value());
}

TEST_F(JournalTest, SummaryWithNonFiniteMeanRoundTrips) {
  // kDivergedRelevance runs can legitimately produce a non-finite mean if a
  // caller chooses to store one; the frame is raw double bits either way.
  RunSummary s = MakeSummary();
  s.mean_relevance = -std::numeric_limits<double>::infinity();
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 9, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->AppendSummary(s).ok());
  }
  Result<RunJournal> resumed = RunJournal::Open(path_, 9, true);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->recovered().empty());
  ASSERT_TRUE(resumed->recovered_summary().has_value());
  EXPECT_EQ(*resumed->recovered_summary(), s);
}

TEST_F(JournalTest, TornSummaryFrameIsTruncatedLikeAnyTail) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 10, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
    ASSERT_TRUE(journal->AppendSummary(MakeSummary()).ok());
  }
  std::string bytes = ReadAll(path_);
  WriteAll(path_, bytes.substr(0, bytes.size() - 3));

  Result<RunJournal> resumed = RunJournal::Open(path_, 10, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_FALSE(resumed->recovered_summary().has_value());
}

TEST_F(JournalTest, V1FilesStayAtVersionOneAndRefuseSummaries) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 11, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  std::string bytes = ReadAll(path_);
  const auto frames = ListFrames(bytes);
  ASSERT_EQ(frames.size(), 1u);
  std::string v1 = bytes.substr(0, kHeaderSize);
  v1[8] = 1;
  v1 += ToV1Frame(bytes.substr(frames[0].first, frames[0].second));
  WriteAll(path_, v1);

  Result<RunJournal> resumed = RunJournal::Open(path_, 11, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed->supports_summary());
  Status append = resumed->AppendSummary(MakeSummary());
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);
  // Records still append fine, and the header keeps its v1 version so older
  // readers can continue to consume the file.
  ASSERT_TRUE(resumed->Append(MakeRecord(1)).ok());
  EXPECT_EQ(ReadU64At(ReadAll(path_), 8), 1u);
}

TEST_F(JournalTest, V2FilesRefuseSummariesToo) {
  {
    Result<RunJournal> journal = RunJournal::Open(path_, 12, false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append(MakeRecord(0)).ok());
  }
  std::string bytes = ReadAll(path_);
  bytes[8] = 2;  // a journal written by the v2 code
  WriteAll(path_, bytes);

  Result<RunJournal> resumed = RunJournal::Open(path_, 12, true);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->recovered().size(), 1u);
  EXPECT_EQ(resumed->recovered()[0], MakeRecord(0));
  EXPECT_FALSE(resumed->supports_summary());
  EXPECT_EQ(resumed->AppendSummary(MakeSummary()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ReadU64At(ReadAll(path_), 8), 2u);
}

}  // namespace
}  // namespace kelpie
