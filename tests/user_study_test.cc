#include "xp/user_study.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(UserStudyTest, AnswersAreInValidRanges) {
  Rng rng(1);
  ExplanationFeatures features;
  for (int i = 0; i < 200; ++i) {
    RespondentAnswers a = SimulateRespondent(features, rng);
    EXPECT_GE(a.clarity, 1);
    EXPECT_LE(a.clarity, 10);
    EXPECT_GE(a.trust, 1);
    EXPECT_LE(a.trust, 10);
  }
}

TEST(UserStudyTest, ShortAcceptedExplanationsAreClearer) {
  Rng rng(2);
  ExplanationFeatures clear_features;
  clear_features.length = 1;
  clear_features.accepted = true;
  ExplanationFeatures murky_features;
  murky_features.length = 4;
  murky_features.accepted = false;
  double clear_sum = 0, murky_sum = 0;
  for (int i = 0; i < 500; ++i) {
    clear_sum += SimulateRespondent(clear_features, rng).clarity;
    murky_sum += SimulateRespondent(murky_features, rng).clarity;
  }
  EXPECT_GT(clear_sum / 500, murky_sum / 500 + 1.0);
}

TEST(UserStudyTest, StrongerRelevanceImprovesComprehension) {
  Rng rng(3);
  ExplanationFeatures strong;
  strong.relevance_margin = 1.6;
  ExplanationFeatures weak;
  weak.relevance_margin = 0.0;
  int strong_correct = 0, weak_correct = 0;
  for (int i = 0; i < 2000; ++i) {
    if (SimulateRespondent(strong, rng).effect ==
        EffectAnswer::kCorrectEffect) {
      ++strong_correct;
    }
    if (SimulateRespondent(weak, rng).effect ==
        EffectAnswer::kCorrectEffect) {
      ++weak_correct;
    }
  }
  EXPECT_GT(strong_correct, weak_correct);
}

TEST(UserStudyTest, CloserEvidenceEarnsMoreTrust) {
  Rng rng(4);
  ExplanationFeatures close;
  close.mean_closeness = 0.0;
  ExplanationFeatures distant;
  distant.mean_closeness = 3.0;
  double close_sum = 0, far_sum = 0;
  for (int i = 0; i < 500; ++i) {
    close_sum += SimulateRespondent(close, rng).trust;
    far_sum += SimulateRespondent(distant, rng).trust;
  }
  EXPECT_GT(close_sum / 500, far_sum / 500 + 2.0);
}

TEST(UserStudyTest, AggregationCountsAndNormalizes) {
  Rng rng(5);
  std::vector<ExplanationFeatures> pairs(3);
  UserStudyResult result = RunUserStudy(pairs, 10, rng);
  EXPECT_EQ(result.num_answers, 30u);
  double total = 0.0;
  for (double p : result.effect_distribution) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(result.mean_clarity, 1.0);
  EXPECT_GT(result.mean_trust, 1.0);
}

TEST(UserStudyTest, EmptyStudyIsZero) {
  Rng rng(6);
  UserStudyResult result = RunUserStudy({}, 10, rng);
  EXPECT_EQ(result.num_answers, 0u);
  EXPECT_DOUBLE_EQ(result.mean_clarity, 0.0);
}

TEST(UserStudyTest, ComputeFeaturesFromExplanation) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  Explanation x;
  x.relevance = 10.0;
  x.accepted = true;
  // Use the person's born_in fact: its endpoint (a City) is 1 hop from the
  // predicted Country.
  for (const Triple& f : dataset.train_graph().FactsOf(prediction.head)) {
    if (f.relation == 0) {
      x.facts = {f};
      break;
    }
  }
  ASSERT_FALSE(x.facts.empty());
  ExplanationFeatures features = ComputeFeatures(
      x, dataset, prediction, PredictionTarget::kTail, /*threshold=*/5.0);
  EXPECT_EQ(features.length, 1u);
  EXPECT_TRUE(features.accepted);
  EXPECT_DOUBLE_EQ(features.relevance_margin, 2.0);  // clamped 10/5
  EXPECT_DOUBLE_EQ(features.mean_closeness, 1.0);    // City -> Country
}

TEST(UserStudyTest, EmptyExplanationGetsDefaultCloseness) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  Explanation x;
  ExplanationFeatures features = ComputeFeatures(
      x, dataset, prediction, PredictionTarget::kTail, 5.0);
  EXPECT_DOUBLE_EQ(features.mean_closeness, 2.0);
}

}  // namespace
}  // namespace kelpie
