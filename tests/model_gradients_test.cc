// Parameterized consistency and gradient checks that every model must pass:
// the Kelpie Relevance Engine and both baselines rely on these contracts.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "models/factory.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class ModelContractTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(GetParam(), *dataset_, 17);
    probe_ = dataset_->test().front();
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  Triple probe_;
};

TEST_P(ModelContractTest, ScoreAllTailsMatchesScore) {
  std::vector<float> scores(model_->num_entities());
  model_->ScoreAllTails(probe_.head, probe_.relation, scores);
  for (EntityId e = 0; e < static_cast<EntityId>(model_->num_entities());
       e += 7) {
    Triple t(probe_.head, probe_.relation, e);
    EXPECT_NEAR(scores[static_cast<size_t>(e)], model_->Score(t), 1e-4)
        << "tail " << e;
  }
}

TEST_P(ModelContractTest, ScoreAllHeadsMatchesScore) {
  if (GetParam() == ModelKind::kConvE) {
    // ConvE ranks heads through the reciprocal query φ(t, r_inv, e), as in
    // its training protocol, so its head scores intentionally differ from
    // the tail-direction Score(); consistency is covered by
    // HeadScoresMatchReciprocalQuery below.
    GTEST_SKIP();
  }
  std::vector<float> scores(model_->num_entities());
  model_->ScoreAllHeads(probe_.relation, probe_.tail, scores);
  for (EntityId e = 0; e < static_cast<EntityId>(model_->num_entities());
       e += 7) {
    Triple t(e, probe_.relation, probe_.tail);
    EXPECT_NEAR(scores[static_cast<size_t>(e)], model_->Score(t), 1e-4)
        << "head " << e;
  }
}

TEST_P(ModelContractTest, HeadScoresMatchOverrideWithStoredTailRow) {
  std::vector<float> direct(model_->num_entities());
  model_->ScoreAllHeads(probe_.relation, probe_.tail, direct);
  std::vector<float> via_override(model_->num_entities());
  model_->ScoreAllHeadsWithTailVec(
      probe_.relation, model_->EntityEmbedding(probe_.tail), via_override);
  for (size_t e = 0; e < direct.size(); ++e) {
    EXPECT_NEAR(via_override[e], direct[e], 1e-5);
  }
}

TEST_P(ModelContractTest, OverrideWithStoredRowReproducesScores) {
  std::span<const float> row = model_->EntityEmbedding(probe_.head);
  std::vector<float> via_override(model_->num_entities());
  model_->ScoreAllTailsWithHeadVec(row, probe_.relation, via_override);
  std::vector<float> direct(model_->num_entities());
  model_->ScoreAllTails(probe_.head, probe_.relation, direct);
  for (size_t e = 0; e < direct.size(); ++e) {
    EXPECT_NEAR(via_override[e], direct[e], 1e-5);
  }
}

TEST_P(ModelContractTest, ScoreWithEntityVecUsesOverride) {
  std::span<const float> stored = model_->EntityEmbedding(probe_.head);
  // Stored row reproduces the plain score.
  EXPECT_NEAR(model_->ScoreWithEntityVec(probe_, probe_.head, stored),
              model_->Score(probe_), 1e-5);
  // A zero vector produces a different score (the models are non-trivial).
  std::vector<float> zeros(model_->entity_dim(), 0.0f);
  EXPECT_NE(model_->ScoreWithEntityVec(probe_, probe_.head, zeros),
            model_->Score(probe_));
}

TEST_P(ModelContractTest, HeadGradientMatchesFiniteDifferences) {
  std::vector<float> grad = model_->ScoreGradWrtHead(probe_);
  ASSERT_EQ(grad.size(), model_->entity_dim());
  std::vector<float> perturbed(model_->EntityEmbedding(probe_.head).begin(),
                               model_->EntityEmbedding(probe_.head).end());
  const float h = 1e-3f;
  for (size_t i = 0; i < perturbed.size(); i += 5) {
    float saved = perturbed[i];
    perturbed[i] = saved + h;
    float up = model_->ScoreWithEntityVec(probe_, probe_.head, perturbed);
    perturbed[i] = saved - h;
    float down = model_->ScoreWithEntityVec(probe_, probe_.head, perturbed);
    perturbed[i] = saved;
    float numeric = (up - down) / (2 * h);
    EXPECT_NEAR(grad[i], numeric, 5e-2) << "component " << i;
  }
}

TEST_P(ModelContractTest, TailGradientMatchesFiniteDifferences) {
  std::vector<float> grad = model_->ScoreGradWrtTail(probe_);
  ASSERT_EQ(grad.size(), model_->entity_dim());
  std::vector<float> perturbed(model_->EntityEmbedding(probe_.tail).begin(),
                               model_->EntityEmbedding(probe_.tail).end());
  const float h = 1e-3f;
  for (size_t i = 0; i < perturbed.size(); i += 5) {
    float saved = perturbed[i];
    perturbed[i] = saved + h;
    float up = model_->ScoreWithEntityVec(probe_, probe_.tail, perturbed);
    perturbed[i] = saved - h;
    float down = model_->ScoreWithEntityVec(probe_, probe_.tail, perturbed);
    perturbed[i] = saved;
    float numeric = (up - down) / (2 * h);
    EXPECT_NEAR(grad[i], numeric, 5e-2) << "component " << i;
  }
}

TEST_P(ModelContractTest, PostTrainedMimicBehavesLikeOriginal) {
  // A homologous mimic trained on the entity's own facts should rank the
  // true tail similarly to the original entity (Section 4.2's key
  // assumption). We check the mimic places the true tail in the top
  // quartile when the original ranks it first or near-first.
  const EntityId h = probe_.head;
  std::vector<Triple> facts = dataset_->train_graph().FactsOf(h);
  Rng rng(23);
  std::vector<float> mimic =
      model_->PostTrainMimic(*dataset_, h, facts, rng);
  ASSERT_EQ(mimic.size(), model_->entity_dim());

  std::vector<float> original_scores(model_->num_entities());
  model_->ScoreAllTails(h, probe_.relation, original_scores);
  std::vector<float> mimic_scores(model_->num_entities());
  model_->ScoreAllTailsWithHeadVec(mimic, probe_.relation, mimic_scores);

  auto rank_of_tail = [&](const std::vector<float>& scores) {
    int rank = 0;
    float target = scores[static_cast<size_t>(probe_.tail)];
    for (float s : scores) {
      if (s >= target) ++rank;
    }
    return rank;
  };
  int original_rank = rank_of_tail(original_scores);
  int mimic_rank = rank_of_tail(mimic_scores);
  if (original_rank <= 3) {
    EXPECT_LE(mimic_rank,
              static_cast<int>(model_->num_entities()) / 4)
        << "mimic diverged from original behaviour";
  }
}

TEST_P(ModelContractTest, PostTrainingIsDeterministicGivenSeed) {
  const EntityId h = probe_.head;
  std::vector<Triple> facts = dataset_->train_graph().FactsOf(h);
  Rng rng1(99), rng2(99);
  std::vector<float> m1 = model_->PostTrainMimic(*dataset_, h, facts, rng1);
  std::vector<float> m2 = model_->PostTrainMimic(*dataset_, h, facts, rng2);
  for (size_t i = 0; i < m1.size(); ++i) {
    EXPECT_FLOAT_EQ(m1[i], m2[i]);
  }
}

TEST_P(ModelContractTest, PostTrainingOnEmptyFactsReturnsInitOnly) {
  Rng rng(7);
  std::vector<float> mimic = model_->PostTrainMimic(*dataset_, 0, {}, rng);
  EXPECT_EQ(mimic.size(), model_->entity_dim());
}

TEST_P(ModelContractTest, DimensionsMatchDataset) {
  EXPECT_EQ(model_->num_entities(), dataset_->num_entities());
  EXPECT_EQ(model_->num_relations(), dataset_->num_relations());
  EXPECT_GT(model_->entity_dim(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelContractTest,
    ::testing::Values(ModelKind::kTransE, ModelKind::kComplEx,
                      ModelKind::kConvE, ModelKind::kDistMult,
                      ModelKind::kRotatE),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(ModelKindName(info.param));
    });

}  // namespace
}  // namespace kelpie
