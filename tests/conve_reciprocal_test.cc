// Tests of ConvE's reciprocal-relation protocol (the original paper's
// training setup): head queries answered through r_inv, the interaction of
// reciprocals with post-training, and dropout determinism.
#include "models/conve.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class ConvEReciprocalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kConvE, *dataset_);
    conve_ = dynamic_cast<ConvE*>(model_.get());
    ASSERT_NE(conve_, nullptr);
    probe_ = dataset_->test().front();
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  ConvE* conve_ = nullptr;
  Triple probe_;
};

TEST_F(ConvEReciprocalTest, ReciprocalIdsAreDisjointFromBase) {
  for (RelationId r = 0;
       r < static_cast<RelationId>(dataset_->num_relations()); ++r) {
    RelationId inv = conve_->ReciprocalOf(r);
    EXPECT_GE(inv, static_cast<RelationId>(dataset_->num_relations()));
    EXPECT_LT(inv, static_cast<RelationId>(2 * dataset_->num_relations()));
  }
}

TEST_F(ConvEReciprocalTest, HeadScoresComeFromReciprocalQuery) {
  std::vector<float> head_scores(model_->num_entities());
  model_->ScoreAllHeads(probe_.relation, probe_.tail, head_scores);
  std::vector<float> reciprocal_scores(model_->num_entities());
  model_->ScoreAllTailsWithHeadVec(model_->EntityEmbedding(probe_.tail),
                                   conve_->ReciprocalOf(probe_.relation),
                                   reciprocal_scores);
  for (size_t e = 0; e < head_scores.size(); ++e) {
    EXPECT_FLOAT_EQ(head_scores[e], reciprocal_scores[e]);
  }
}

TEST_F(ConvEReciprocalTest, ReciprocalTrainingMakesHeadPredictionsWork) {
  // The toy nationality facts are learnable in the head direction only
  // through the reciprocal samples; filtered head MRR should beat random.
  MetricsAccumulator acc;
  for (const Triple& t : dataset_->test()) {
    acc.AddRank(FilteredHeadRank(*model_, *dataset_, t));
  }
  EXPECT_GT(acc.Mrr(), 0.1);
}

TEST_F(ConvEReciprocalTest, NumRelationsReportsBaseCount) {
  EXPECT_EQ(model_->num_relations(), dataset_->num_relations());
}

TEST_F(ConvEReciprocalTest, MimicOfTailSideFactsLearns) {
  // A mimic post-trained only on facts where it is the *tail* must still
  // learn (it trains through the reciprocal samples). Use a Country: its
  // facts are all tail-side nationality facts.
  EntityId country = probe_.tail;
  std::vector<Triple> facts = dataset_->train_graph().FactsOf(country);
  ASSERT_FALSE(facts.empty());
  bool all_tail_side = true;
  for (const Triple& f : facts) {
    if (f.head == country) all_tail_side = false;
  }
  ASSERT_TRUE(all_tail_side);
  Rng rng(5);
  std::vector<float> mimic =
      model_->PostTrainMimic(*dataset_, country, facts, rng);
  // The mimic should rank the true head of the probe better than the
  // median entity when standing in for the country.
  int rank = FilteredHeadRankWithTailVec(*model_, *dataset_, country, mimic,
                                         probe_.relation, probe_.head);
  EXPECT_LT(rank, static_cast<int>(model_->num_entities()) / 2);
}

TEST_F(ConvEReciprocalTest, DropoutOnlyActiveWhenRequested) {
  // Inference scoring is deterministic (no dropout): repeated calls agree.
  float s1 = model_->Score(probe_);
  float s2 = model_->Score(probe_);
  EXPECT_FLOAT_EQ(s1, s2);
}

TEST_F(ConvEReciprocalTest, TrainingWithDropoutIsSeedDeterministic) {
  auto m1 = testing_util::TrainToyModel(ModelKind::kConvE, *dataset_, 99);
  auto m2 = testing_util::TrainToyModel(ModelKind::kConvE, *dataset_, 99);
  EXPECT_FLOAT_EQ(m1->Score(probe_), m2->Score(probe_));
}

}  // namespace
}  // namespace kelpie
