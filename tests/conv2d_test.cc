#include "ml/conv2d.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "math/vec.h"

namespace kelpie {
namespace {

TEST(Conv2dTest, OutputShape) {
  Conv2d conv(8, 8, 3, 3, 4);
  EXPECT_EQ(conv.out_h(), 6u);
  EXPECT_EQ(conv.out_w(), 6u);
  EXPECT_EQ(conv.OutputSize(), 4u * 36u);
}

TEST(Conv2dTest, IdentityKernelCopiesInput) {
  // 1x1 kernel with weight 1 reproduces the input per channel.
  Conv2d conv(2, 3, 1, 1, 1);
  conv.weights().At(0, 0) = 1.0f;
  std::vector<float> input{1, 2, 3, 4, 5, 6};
  std::vector<float> output(conv.OutputSize());
  conv.Forward(input, output);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(output[i], input[i]);
  }
}

TEST(Conv2dTest, KnownConvolutionValue) {
  // 2x2 input, 2x2 all-ones kernel: output = sum of input + bias.
  Conv2d conv(2, 2, 2, 2, 1);
  for (size_t i = 0; i < 4; ++i) conv.weights().At(0, i) = 1.0f;
  conv.bias()[0] = 0.5f;
  std::vector<float> input{1, 2, 3, 4};
  std::vector<float> output(1);
  conv.Forward(input, output);
  EXPECT_FLOAT_EQ(output[0], 10.5f);
}

// Finite-difference gradient check for the convolution backward pass.
TEST(Conv2dTest, BackwardMatchesFiniteDifferences) {
  Rng rng(3);
  Conv2d conv(5, 6, 3, 3, 2);
  conv.Init(rng);
  std::vector<float> input(30);
  for (float& v : input) v = static_cast<float>(rng.Normal(0.0, 1.0));
  // Scalar loss: L = sum(output * coeff).
  std::vector<float> coeff(conv.OutputSize());
  for (float& v : coeff) v = static_cast<float>(rng.Normal(0.0, 1.0));

  auto loss = [&]() {
    std::vector<float> out(conv.OutputSize());
    conv.Forward(input, out);
    float acc = 0.0f;
    for (size_t i = 0; i < out.size(); ++i) acc += out[i] * coeff[i];
    return acc;
  };

  std::vector<float> gw(conv.weights().size(), 0.0f);
  std::vector<float> gb(conv.bias().size(), 0.0f);
  std::vector<float> gi(input.size(), 0.0f);
  conv.Backward(input, coeff, gw, gb, gi);

  const float h = 1e-3f;
  // Check a few input gradients.
  for (size_t idx : {0u, 7u, 29u}) {
    float saved = input[idx];
    input[idx] = saved + h;
    float up = loss();
    input[idx] = saved - h;
    float down = loss();
    input[idx] = saved;
    EXPECT_NEAR(gi[idx], (up - down) / (2 * h), 5e-2) << "input " << idx;
  }
  // Check a few weight gradients.
  for (size_t idx : {0u, 5u, 17u}) {
    float& w = conv.weights().Data()[idx];
    float saved = w;
    w = saved + h;
    float up = loss();
    w = saved - h;
    float down = loss();
    w = saved;
    EXPECT_NEAR(gw[idx], (up - down) / (2 * h), 5e-2) << "weight " << idx;
  }
  // Check bias gradients.
  for (size_t idx : {0u, 1u}) {
    float saved = conv.bias()[idx];
    conv.bias()[idx] = saved + h;
    float up = loss();
    conv.bias()[idx] = saved - h;
    float down = loss();
    conv.bias()[idx] = saved;
    EXPECT_NEAR(gb[idx], (up - down) / (2 * h), 5e-2) << "bias " << idx;
  }
}

TEST(Conv2dTest, BackwardSkipsEmptySpans) {
  Rng rng(5);
  Conv2d conv(4, 4, 3, 3, 1);
  conv.Init(rng);
  std::vector<float> input(16, 1.0f);
  std::vector<float> grad_out(conv.OutputSize(), 1.0f);
  std::vector<float> gi(16, 0.0f);
  // No weight/bias buffers: must not crash, input grad still computed.
  conv.Backward(input, grad_out, {}, {}, gi);
  float total = 0.0f;
  for (float v : gi) total += std::fabs(v);
  EXPECT_GT(total, 0.0f);
}

TEST(DenseLayerTest, ForwardIsAffine) {
  DenseLayer fc(2, 2);
  fc.weights().At(0, 0) = 1.0f;
  fc.weights().At(0, 1) = 2.0f;
  fc.weights().At(1, 0) = -1.0f;
  fc.weights().At(1, 1) = 0.5f;
  fc.bias() = {0.1f, -0.1f};
  std::vector<float> in{3.0f, 4.0f};
  std::vector<float> out(2);
  fc.Forward(in, out);
  EXPECT_FLOAT_EQ(out[0], 11.1f);
  EXPECT_FLOAT_EQ(out[1], -1.1f);
}

TEST(DenseLayerTest, BackwardMatchesFiniteDifferences) {
  Rng rng(7);
  DenseLayer fc(5, 3);
  fc.Init(rng);
  std::vector<float> input(5);
  for (float& v : input) v = static_cast<float>(rng.Normal(0.0, 1.0));
  std::vector<float> coeff(3);
  for (float& v : coeff) v = static_cast<float>(rng.Normal(0.0, 1.0));

  auto loss = [&]() {
    std::vector<float> out(3);
    fc.Forward(input, out);
    return out[0] * coeff[0] + out[1] * coeff[1] + out[2] * coeff[2];
  };

  std::vector<float> gw(fc.weights().size(), 0.0f);
  std::vector<float> gb(3, 0.0f);
  std::vector<float> gi(5, 0.0f);
  fc.Backward(input, coeff, gw, gb, gi);

  const float h = 1e-3f;
  for (size_t idx = 0; idx < 5; ++idx) {
    float saved = input[idx];
    input[idx] = saved + h;
    float up = loss();
    input[idx] = saved - h;
    float down = loss();
    input[idx] = saved;
    EXPECT_NEAR(gi[idx], (up - down) / (2 * h), 5e-2);
  }
  for (size_t idx : {0u, 7u, 14u}) {
    float& w = fc.weights().Data()[idx];
    float saved = w;
    w = saved + h;
    float up = loss();
    w = saved - h;
    float down = loss();
    w = saved;
    EXPECT_NEAR(gw[idx], (up - down) / (2 * h), 5e-2);
  }
  for (size_t idx = 0; idx < 3; ++idx) {
    EXPECT_NEAR(gb[idx], coeff[idx], 1e-5);
  }
}

TEST(ReluTest, InPlaceClampsNegatives) {
  std::vector<float> x{-1.0f, 0.0f, 2.0f};
  ReluInPlace(x);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
}

TEST(ReluTest, BackwardMasksByActivation) {
  std::vector<float> act{0.0f, 1.0f, 0.0f};
  std::vector<float> grad{5.0f, 5.0f, -5.0f};
  ReluBackward(act, grad);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 5.0f);
  EXPECT_FLOAT_EQ(grad[2], 0.0f);
}

}  // namespace
}  // namespace kelpie
