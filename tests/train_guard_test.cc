#include "ml/train_guard.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class TrainGuardTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

/// Hooks over a tiny synthetic "model": one parameter vector that each
/// epoch shifts by lr_scale. Fully deterministic and inspectable.
struct ToyTrainer {
  std::vector<float> state{0.0f, 0.0f};
  uint64_t counter = 0;

  GuardedTrainHooks Hooks() {
    GuardedTrainHooks hooks;
    hooks.params = [this] {
      return std::vector<std::span<float>>{std::span<float>(state)};
    };
    hooks.run_epoch = [this](size_t, float lr_scale) {
      state[0] += lr_scale;
      state[1] += 1.0f;
      ++counter;
      return static_cast<double>(state[0]);
    };
    hooks.save_counters = [this] { return std::vector<uint64_t>{counter}; };
    hooks.restore_counters = [this](const std::vector<uint64_t>& c) {
      counter = c[0];
    };
    return hooks;
  }
};

TEST_F(TrainGuardTest, CleanRunExecutesAllEpochs) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 5;
  Result<TrainReport> report = RunGuardedEpochs(config, trainer.Hooks());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->epochs_run, 5u);
  EXPECT_EQ(report->recoveries, 0);
  EXPECT_FLOAT_EQ(report->lr_scale, 1.0f);
  EXPECT_FLOAT_EQ(trainer.state[1], 5.0f);
  EXPECT_EQ(trainer.counter, 5u);
}

TEST_F(TrainGuardTest, InjectedDivergenceRecoversWithBackoff) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 4;
  failpoint::Arm("train.diverge", /*match=*/2, /*times=*/1);

  Result<TrainReport> report = RunGuardedEpochs(config, trainer.Hooks());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Epoch 2 ran twice: once poisoned + discarded, once clean.
  EXPECT_EQ(report->epochs_run, 5u);
  EXPECT_EQ(report->recoveries, 1);
  EXPECT_FLOAT_EQ(report->lr_scale, 0.5f);
  ASSERT_EQ(report->events.size(), 1u);
  EXPECT_EQ(report->events[0].epoch, 2u);
  EXPECT_FLOAT_EQ(report->events[0].lr_scale, 0.5f);
  EXPECT_EQ(report->events[0].reason, "non-finite parameters");
  // Final state is finite, and the discarded epoch left no trace: epochs
  // 0,1 at scale 1.0 plus epochs 2,3 at scale 0.5.
  EXPECT_TRUE(std::isfinite(trainer.state[0]));
  EXPECT_FLOAT_EQ(trainer.state[0], 1.0f + 1.0f + 0.5f + 0.5f);
  EXPECT_FLOAT_EQ(trainer.state[1], 4.0f);
  // The rewound counter matches: 4 committed epochs, not 5.
  EXPECT_EQ(trainer.counter, 4u);
}

TEST_F(TrainGuardTest, NonFiniteLossTriggersRecovery) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 2;
  int calls = 0;
  GuardedTrainHooks hooks = trainer.Hooks();
  hooks.run_epoch = [&](size_t epoch, float lr_scale) {
    ++calls;
    if (epoch == 1 && calls == 2) {
      return std::numeric_limits<double>::infinity();
    }
    trainer.state[0] += lr_scale;
    return 0.0;
  };
  Result<TrainReport> report = RunGuardedEpochs(config, hooks);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recoveries, 1);
  EXPECT_EQ(report->events[0].reason, "non-finite loss");
}

TEST_F(TrainGuardTest, RecoveryDisabledAbortsAndRewinds) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 4;
  config.recover_on_divergence = false;
  failpoint::Arm("train.diverge", /*match=*/2, /*times=*/1);

  Result<TrainReport> report = RunGuardedEpochs(config, trainer.Hooks());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kAborted);
  EXPECT_NE(report.status().message().find("recovery disabled"),
            std::string::npos);
  // Parameters rewound to the last committed state (end of epoch 1).
  EXPECT_FLOAT_EQ(trainer.state[0], 2.0f);
  EXPECT_FLOAT_EQ(trainer.state[1], 2.0f);
  EXPECT_EQ(trainer.counter, 2u);
}

TEST_F(TrainGuardTest, BudgetExhaustionAborts) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 4;
  config.max_recoveries = 2;
  // Every retry of epoch 1 diverges again.
  failpoint::Arm("train.diverge", /*match=*/1, failpoint::kForever);

  Result<TrainReport> report = RunGuardedEpochs(config, trainer.Hooks());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kAborted);
  EXPECT_NE(report.status().message().find("after 2 recovery attempts"),
            std::string::npos);
  // Left at the end-of-epoch-0 snapshot, finite.
  EXPECT_FLOAT_EQ(trainer.state[1], 1.0f);
  EXPECT_TRUE(std::isfinite(trainer.state[0]));
}

TEST_F(TrainGuardTest, ChecksOffSkipGuardrails) {
  ToyTrainer trainer;
  GuardConfig config;
  config.epochs = 3;
  config.check_finite = false;
  // Armed, but the unguarded loop never reaches the failpoint.
  failpoint::Arm("train.diverge", failpoint::kAnyValue, failpoint::kForever);

  Result<TrainReport> report = RunGuardedEpochs(config, trainer.Hooks());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->epochs_run, 3u);
  EXPECT_EQ(failpoint::FireCount("train.diverge"), 0u);
}

// ---------------------------------------------------------------------------
// Model-level integration: real trainers route every epoch through the
// guard, so an injected NaN mid-training recovers (or aborts) end to end.
// ---------------------------------------------------------------------------

class GuardedModelTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
  }
  void TearDown() override { failpoint::DisarmAll(); }
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(GuardedModelTest, InjectedNanRecoversAndFinishesFinite) {
  TrainConfig config = testing_util::FastConfig(GetParam());
  auto model = CreateModel(GetParam(), *dataset_, config);
  failpoint::Arm("train.diverge", /*match=*/1, /*times=*/1);
  Rng rng(11);
  Status trained = model->Train(*dataset_, rng);
  ASSERT_TRUE(trained.ok()) << trained.ToString();
  const TrainReport& report = model->last_train_report();
  EXPECT_EQ(report.recoveries, 1);
  EXPECT_FLOAT_EQ(report.lr_scale, 0.5f);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].epoch, 1u);
  // The trained model scores are finite.
  for (const Triple& t : dataset_->test()) {
    EXPECT_TRUE(std::isfinite(model->Score(t)));
  }
}

TEST_P(GuardedModelTest, RecoveryDisabledReturnsAborted) {
  TrainConfig config = testing_util::FastConfig(GetParam());
  config.recover_on_divergence = false;
  auto model = CreateModel(GetParam(), *dataset_, config);
  failpoint::Arm("train.diverge", /*match=*/1, /*times=*/1);
  Rng rng(11);
  Status trained = model->Train(*dataset_, rng);
  ASSERT_FALSE(trained.ok());
  EXPECT_EQ(trained.code(), StatusCode::kAborted);
  // Aborted training still leaves finite (last committed) parameters.
  for (const Triple& t : dataset_->test()) {
    EXPECT_TRUE(std::isfinite(model->Score(t)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, GuardedModelTest,
    ::testing::Values(ModelKind::kTransE, ModelKind::kComplEx,
                      ModelKind::kConvE, ModelKind::kDistMult,
                      ModelKind::kRotatE),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(ModelKindName(info.param));
    });

TEST_F(TrainGuardTest, GuardedTrainingIsBitwiseIdenticalToUnguarded) {
  // The guardrails multiply by lr_scale == 1.0 and only *read* parameters
  // on the happy path, so seeded training must stay bitwise reproducible.
  Dataset dataset = testing_util::MakeToyDataset();
  TrainConfig config = testing_util::FastConfig(ModelKind::kComplEx);
  auto guarded = CreateModel(ModelKind::kComplEx, dataset, config);
  Rng rng1(42);
  ASSERT_TRUE(guarded->Train(dataset, rng1).ok());

  TrainConfig unguarded_config = config;
  unguarded_config.check_finite = false;
  auto unguarded = CreateModel(ModelKind::kComplEx, dataset, unguarded_config);
  Rng rng2(42);
  ASSERT_TRUE(unguarded->Train(dataset, rng2).ok());

  for (const Triple& t : dataset.test()) {
    EXPECT_EQ(guarded->Score(t), unguarded->Score(t));
  }
}

TEST_F(TrainGuardTest, GradientClippingTrainsUsably) {
  Dataset dataset = testing_util::MakeToyDataset();
  TrainConfig config = testing_util::FastConfig(ModelKind::kComplEx);
  config.grad_clip_norm = 1.0f;
  auto model = CreateModel(ModelKind::kComplEx, dataset, config);
  Rng rng(11);
  ASSERT_TRUE(model->Train(dataset, rng).ok());
  for (const Triple& t : dataset.test()) {
    EXPECT_TRUE(std::isfinite(model->Score(t)));
  }
}

}  // namespace
}  // namespace kelpie
