// Incremental KG update tests (DESIGN.md §16): delta parsing and
// validation, deterministic order-independent row repair, crash-safe
// journal resume, the last-triple-removal edge case, relevance-cache
// reconciliation, and agreement with a from-scratch retrain on unaffected
// predictions.
#include "xp/update.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/kelpie.h"
#include "core/relevance_cache.h"
#include "models/factory.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

using xp::AffectedEntities;
using xp::ApplyKgUpdate;
using xp::KgDelta;
using xp::ParseKgDelta;
using xp::UpdateOptions;
using xp::UpdateReport;

std::string ParamsBytes(const LinkPredictionModel& model) {
  std::ostringstream out;
  Status s = model.SaveParameters(out);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return std::move(out).str();
}

/// Deep copy through the parameter serialization (models are not
/// copyable): same config, same bytes.
std::unique_ptr<LinkPredictionModel> CloneModel(
    const LinkPredictionModel& model, ModelKind kind, const Dataset& dataset,
    const TrainConfig& config) {
  auto clone = CreateModel(kind, dataset, config);
  std::stringstream buffer;
  EXPECT_TRUE(model.SaveParameters(buffer).ok());
  EXPECT_TRUE(clone->LoadParameters(buffer).ok());
  return clone;
}

bool SpanBytesEqual(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

class UpdateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    config_ = new TrainConfig(testing_util::FastConfig(ModelKind::kTransE));
    base_ = TrainBase().release();
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("kelpie_update_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
    delete base_;
    base_ = nullptr;
    delete config_;
    config_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::unique_ptr<LinkPredictionModel> TrainBase() {
    auto model = CreateModel(ModelKind::kTransE, *dataset_, *config_);
    Rng rng(11);
    EXPECT_TRUE(model->Train(*dataset_, rng).ok());
    return model;
  }

  static std::unique_ptr<LinkPredictionModel> Clone() {
    return CloneModel(*base_, ModelKind::kTransE, *dataset_, *config_);
  }

  static std::string TempPath(const std::string& name) {
    return (*dir_ / name).string();
  }

  /// remove one born_in fact, add a different city for the same person.
  static KgDelta ToyDelta() {
    const EntityId person = *dataset_->entities().Find("Person_0");
    const EntityId old_city = *dataset_->entities().Find("City_0");
    const EntityId new_city = *dataset_->entities().Find("City_5");
    const RelationId born = *dataset_->relations().Find("born_in");
    KgDelta delta;
    delta.remove.push_back(Triple(person, born, old_city));
    delta.add.push_back(Triple(person, born, new_city));
    return delta;
  }

  static Dataset* dataset_;
  static TrainConfig* config_;
  static LinkPredictionModel* base_;
  static std::filesystem::path* dir_;
};

Dataset* UpdateTest::dataset_ = nullptr;
TrainConfig* UpdateTest::config_ = nullptr;
LinkPredictionModel* UpdateTest::base_ = nullptr;
std::filesystem::path* UpdateTest::dir_ = nullptr;

TEST_F(UpdateTest, ParseAcceptsOpsAliasesCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "\n"
      "add\tPerson_0\tborn_in\tCity_5\n"
      "+\tPerson_1\tborn_in\tCity_5\n"
      "remove\tPerson_0\tborn_in\tCity_0\n"
      "-\tPerson_1\tborn_in\tCity_1\r\n";
  Result<KgDelta> delta = ParseKgDelta(text, *dataset_);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->add.size(), 2u);
  EXPECT_EQ(delta->remove.size(), 2u);
  const std::vector<EntityId> affected = AffectedEntities(*delta);
  EXPECT_EQ(affected.size(), 5u);  // Person_0, Person_1, City_0/1/5
  EXPECT_TRUE(std::is_sorted(affected.begin(), affected.end()));
}

TEST_F(UpdateTest, ParseRejectsMalformedLinesWithLineNumbers) {
  auto expect_invalid = [&](const std::string& text,
                            const std::string& fragment) {
    Result<KgDelta> delta = ParseKgDelta(text, *dataset_, "delta.tsv");
    ASSERT_FALSE(delta.ok()) << text;
    EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(delta.status().ToString().find(fragment), std::string::npos)
        << delta.status().ToString();
  };
  expect_invalid("add\tPerson_0\tborn_in\n", "delta.tsv:1");
  expect_invalid("\n\nfrob\tPerson_0\tborn_in\tCity_0\n", "delta.tsv:3");
  expect_invalid("add\tNoSuchEntity\tborn_in\tCity_0\n", "NoSuchEntity");
  expect_invalid("add\tPerson_0\tno_such_relation\tCity_0\n",
                 "no_such_relation");
}

TEST_F(UpdateTest, ValidationRejectsInconsistentDeltas) {
  auto model = Clone();
  auto run = [&](const KgDelta& delta) {
    return ApplyKgUpdate(*model, *dataset_, delta, UpdateOptions{});
  };
  const RelationId born = *dataset_->relations().Find("born_in");
  const EntityId p0 = *dataset_->entities().Find("Person_0");
  const EntityId c0 = *dataset_->entities().Find("City_0");
  const EntityId c5 = *dataset_->entities().Find("City_5");

  KgDelta remove_missing;
  remove_missing.remove.push_back(Triple(p0, born, c5));
  EXPECT_EQ(run(remove_missing).status().code(),
            StatusCode::kInvalidArgument);

  KgDelta add_existing;
  add_existing.add.push_back(Triple(p0, born, c0));
  EXPECT_EQ(run(add_existing).status().code(), StatusCode::kInvalidArgument);

  KgDelta duplicate;
  duplicate.add.push_back(Triple(p0, born, c5));
  duplicate.add.push_back(Triple(p0, born, c5));
  EXPECT_EQ(run(duplicate).status().code(), StatusCode::kInvalidArgument);

  KgDelta both_sides;
  both_sides.add.push_back(Triple(p0, born, c5));
  both_sides.remove.push_back(Triple(p0, born, c5));
  EXPECT_EQ(run(both_sides).status().code(), StatusCode::kInvalidArgument);

  // Nothing above may have touched the parameters.
  EXPECT_EQ(ParamsBytes(*model), ParamsBytes(*base_));
}

TEST_F(UpdateTest, UpdateIsDeterministicAndTouchesOnlyAffectedRows) {
  const KgDelta delta = ToyDelta();
  auto a = Clone();
  auto b = Clone();
  UpdateOptions options;
  Result<UpdateReport> ra = ApplyKgUpdate(*a, *dataset_, delta, options);
  Result<UpdateReport> rb = ApplyKgUpdate(*b, *dataset_, delta, options);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ParamsBytes(*a), ParamsBytes(*b));
  EXPECT_TRUE(ra->params_changed);
  EXPECT_EQ(ra->rows_recomputed, ra->affected.size());
  EXPECT_NE(ra->fingerprint_before, ra->fingerprint_after);

  // Rows of entities outside the delta are bitwise untouched.
  std::vector<bool> affected(dataset_->num_entities(), false);
  for (EntityId e : ra->affected) affected[static_cast<size_t>(e)] = true;
  size_t changed = 0;
  for (size_t e = 0; e < dataset_->num_entities(); ++e) {
    const auto id = static_cast<EntityId>(e);
    if (affected[e]) {
      changed += SpanBytesEqual(a->EntityEmbedding(id),
                                base_->EntityEmbedding(id))
                     ? 0
                     : 1;
    } else {
      EXPECT_TRUE(SpanBytesEqual(a->EntityEmbedding(id),
                                 base_->EntityEmbedding(id)))
          << "unaffected entity " << e << " was modified";
    }
  }
  EXPECT_GT(changed, 0u);
}

TEST_F(UpdateTest, JournalResumeReplaysRowsByteIdentically) {
  const KgDelta delta = ToyDelta();
  const std::string journal = TempPath("resume.jnl");

  auto first = Clone();
  UpdateOptions options;
  options.journal_path = journal;
  Result<UpdateReport> r1 = ApplyKgUpdate(*first, *dataset_, delta, options);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->rows_recomputed, r1->affected.size());

  // A second process picking up the journal replays every row instead of
  // recomputing, and lands on the same bytes.
  auto second = Clone();
  options.resume = true;
  Result<UpdateReport> r2 = ApplyKgUpdate(*second, *dataset_, delta, options);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows_replayed, r2->affected.size());
  EXPECT_EQ(r2->rows_recomputed, 0u);
  EXPECT_EQ(ParamsBytes(*first), ParamsBytes(*second));
}

TEST_F(UpdateTest, TornJournalTailIsDroppedNotTrusted) {
  const KgDelta delta = ToyDelta();
  const std::string journal = TempPath("torn.jnl");
  auto first = Clone();
  UpdateOptions options;
  options.journal_path = journal;
  ASSERT_TRUE(ApplyKgUpdate(*first, *dataset_, delta, options).ok());

  // Simulate a crash mid-append: chop bytes off the last frame.
  std::string bytes;
  {
    std::ifstream in(journal, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 7));
  }

  auto second = Clone();
  options.resume = true;
  Result<UpdateReport> r = ApplyKgUpdate(*second, *dataset_, delta, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(r->rows_replayed, r->affected.size());
  EXPECT_EQ(r->rows_replayed + r->rows_recomputed, r->affected.size());
  EXPECT_EQ(ParamsBytes(*first), ParamsBytes(*second));
}

TEST_F(UpdateTest, JournalFromDifferentRunFailsCleanly) {
  const KgDelta delta = ToyDelta();
  const std::string journal = TempPath("foreign.jnl");
  auto first = Clone();
  UpdateOptions options;
  options.journal_path = journal;
  ASSERT_TRUE(ApplyKgUpdate(*first, *dataset_, delta, options).ok());

  // Same journal, different seed => different run id: refuse, don't mix.
  auto second = Clone();
  options.resume = true;
  options.seed = 8675309;
  Result<UpdateReport> r = ApplyKgUpdate(*second, *dataset_, delta, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ParamsBytes(*second), ParamsBytes(*base_));
}

TEST_F(UpdateTest, CancelledUpdateLeavesModelUntouched) {
  const KgDelta delta = ToyDelta();
  auto model = Clone();
  UpdateOptions options;
  options.cancel.RequestCancel();
  Result<UpdateReport> r = ApplyKgUpdate(*model, *dataset_, delta, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ParamsBytes(*model), ParamsBytes(*base_));
}

TEST(UpdateEdgeTest, RemovingAnEntitysLastTripleIsolatesItUnchanged) {
  // A four-entity graph where A-r-B is the only fact touching A and B:
  // removing it leaves both isolated, so their rows stay bitwise put and
  // the parameter fingerprint does not move.
  Dictionary entities, relations;
  const EntityId a = entities.GetOrAdd("A");
  const EntityId b = entities.GetOrAdd("B");
  const EntityId c = entities.GetOrAdd("C");
  const EntityId d = entities.GetOrAdd("D");
  const RelationId r = relations.GetOrAdd("r");
  std::vector<Triple> train = {Triple(a, r, b), Triple(c, r, d),
                               Triple(d, r, c)};
  Dataset tiny("tiny", std::move(entities), std::move(relations),
               std::move(train), {}, {Triple(c, r, d)});

  TrainConfig config = testing_util::FastConfig(ModelKind::kTransE);
  config.epochs = 5;
  auto model = CreateModel(ModelKind::kTransE, tiny, config);
  Rng rng(3);
  ASSERT_TRUE(model->Train(tiny, rng).ok());
  const std::string before = ParamsBytes(*model);

  KgDelta delta;
  delta.remove.push_back(Triple(a, r, b));
  Result<UpdateReport> report =
      ApplyKgUpdate(*model, tiny, delta, UpdateOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->affected, (std::vector<EntityId>{a, b}));
  EXPECT_EQ(report->isolated, (std::vector<EntityId>{a, b}));
  EXPECT_FALSE(report->params_changed);
  EXPECT_EQ(report->fingerprint_before, report->fingerprint_after);
  EXPECT_EQ(ParamsBytes(*model), before);
}

TEST(UpdateCacheTest, PurgeEntitiesDropsExactlyTheAffectedKeys) {
  Dataset dataset = testing_util::MakeToyDataset();
  RelevanceCacheOptions options;  // in-memory
  options.fingerprint = 42;
  auto cache = RelevanceCache::Open(options);

  const EntityId p0 = *dataset.entities().Find("Person_0");
  const EntityId p1 = *dataset.entities().Find("Person_1");
  const EntityId p2 = *dataset.entities().Find("Person_2");
  const auto facts_of = [&](EntityId e) {
    return dataset.train_graph().FactsOf(e);
  };
  const auto compute = [] { return std::vector<float>(4, 1.0f); };
  cache->GetOrCompute(p0, facts_of(p0), compute);
  cache->GetOrCompute(p1, facts_of(p1), compute);
  cache->GetOrCompute(p2, facts_of(p2), compute);
  ASSERT_EQ(cache->stats().entries, 3u);

  // Purging p0 drops its entry; p1/p2 mimics don't mention p0 (people only
  // relate to cities/countries), so they survive.
  EXPECT_EQ(cache->PurgeEntities({p0}), 1u);
  EXPECT_EQ(cache->stats().entries, 2u);

  // Purging a city shared by several fact sets drops every entry whose
  // stored facts mention it — dead keys under any delta touching the city.
  const EntityId city1 = *dataset.entities().Find("City_1");
  size_t dropped = cache->PurgeEntities({city1});
  EXPECT_EQ(dropped, 1u);  // Person_1 was born in City_1
  EXPECT_EQ(cache->stats().entries, 1u);

  EXPECT_EQ(cache->PurgeEntities({}), 0u);
}

TEST(UpdateParityTest, MatchesFromScratchRetrainOnUnaffectedPredictions) {
  // The acceptance scenario: apply a delta, then explain a prediction that
  // has nothing to do with the delta. The incrementally updated model must
  // produce the same explanation facts as a model retrained from scratch
  // on the updated graph — the discrete explanation output of unaffected
  // predictions is stable under incremental maintenance.
  Dataset dataset = testing_util::MakeToyDataset();
  const EntityId p0 = *dataset.entities().Find("Person_0");
  const EntityId c0 = *dataset.entities().Find("City_0");
  const EntityId c5 = *dataset.entities().Find("City_5");
  const RelationId born = *dataset.relations().Find("born_in");
  KgDelta delta;
  delta.remove.push_back(Triple(p0, born, c0));
  delta.add.push_back(Triple(p0, born, c5));
  const Dataset updated = dataset.WithModifiedTraining(delta.remove, delta.add);

  TrainConfig config = testing_util::FastConfig(ModelKind::kTransE);
  auto incremental = CreateModel(ModelKind::kTransE, dataset, config);
  {
    Rng rng(11);
    ASSERT_TRUE(incremental->Train(dataset, rng).ok());
  }
  Result<UpdateReport> report =
      ApplyKgUpdate(*incremental, dataset, delta, UpdateOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto retrained = CreateModel(ModelKind::kTransE, updated, config);
  {
    Rng rng(11);
    ASSERT_TRUE(retrained->Train(updated, rng).ok());
  }

  // An unaffected prediction: a test-split nationality fact of a person
  // the delta never mentions (Person_3 is the first test person).
  Triple prediction = updated.test().front();
  ASSERT_NE(prediction.head, p0);
  KelpieOptions options;
  Kelpie kelpie_incremental(*incremental, updated, options);
  Kelpie kelpie_retrained(*retrained, updated, options);
  Explanation xi =
      kelpie_incremental.ExplainNecessary(prediction, PredictionTarget::kTail);
  Explanation xr =
      kelpie_retrained.ExplainNecessary(prediction, PredictionTarget::kTail);
  ASSERT_FALSE(xi.empty());
  ASSERT_FALSE(xr.empty());
  EXPECT_EQ(xi.facts, xr.facts);
}

}  // namespace
}  // namespace kelpie
