// Kelpie-as-a-service determinism contract (DESIGN.md §12): the response
// bytes a pooled, batching, concurrent server produces must equal what a
// fresh one-shot process would produce for the same query — at any pool
// size, dispatcher count, extraction thread count, or request order. The
// golden test replays a mixed concurrent workload (scores, necessary and
// sufficient explains, duplicates) against a sequential fresh-Kelpie
// reference. Admission control (bounded queue shedding, expired admission
// deadlines) is exercised deterministically via start_paused.
#include "serve/server.h"

#include <unistd.h>

#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "math/rng.h"
#include "models/model_store.h"
#include "serve/line_protocol.h"
#include "serve/model_pool.h"
#include "tests/test_util.h"

namespace kelpie {
namespace serve {
namespace {

/// One request of the golden workload.
struct WorkItem {
  bool is_score = false;
  Triple triple{0, 0, 0};
  ExplanationKind kind = ExplanationKind::kNecessary;
};

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    auto model = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("kelpie_serve_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
    model_path_ = new std::string((*dir_ / "model.bin").string());
    ASSERT_TRUE(
        SaveModel(*model, ModelKind::kComplEx, *model_path_).ok());
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete model_path_;
    model_path_ = nullptr;
    delete dir_;
    dir_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  /// Small conversion sets keep the sufficient extractions fast; shared by
  /// the server and the reference so both sample identically.
  static KelpieOptions TestKelpieOptions(size_t num_threads) {
    KelpieOptions options;
    options.engine.conversion_set_size = 4;
    options.num_threads = num_threads;
    return options;
  }

  static Triple CityPrediction(int j) {
    const Dataset& d = *dataset_;
    int32_t city = d.entities().Find("City_" + std::to_string(j)).value();
    int32_t rel = d.relations().Find("located_in").value();
    int32_t country =
        d.entities().Find("Country_" + std::to_string(j % 3)).value();
    return Triple(city, rel, country);
  }

  /// What a fresh one-shot process answers for `item`: a brand-new Kelpie
  /// (cold caches, virgin RNG) over the same model file, rendered with the
  /// wire renderers. `id` is the response id baked into the line.
  static std::string ReferenceLine(const LinkPredictionModel& model,
                                   const WorkItem& item, uint64_t id) {
    if (item.is_score) {
      return ScoreResponseLine(id, model.Score(item.triple));
    }
    Kelpie kelpie(model, *dataset_, TestKelpieOptions(1));
    if (item.kind == ExplanationKind::kSufficient) {
      Rng rng(kelpie.engine().options().seed);
      std::vector<EntityId> conversion = kelpie.engine().SampleConversionSet(
          item.triple, PredictionTarget::kTail, rng);
      Explanation x = kelpie.ExplainSufficientWithSet(
          item.triple, PredictionTarget::kTail, conversion);
      return ExplainResponseLine(id, x, conversion, *dataset_);
    }
    Explanation x =
        kelpie.ExplainNecessary(item.triple, PredictionTarget::kTail);
    return ExplainResponseLine(id, x, {}, *dataset_);
  }

  static Dataset* dataset_;
  static std::filesystem::path* dir_;
  static std::string* model_path_;
};

Dataset* ServeTest::dataset_ = nullptr;
std::filesystem::path* ServeTest::dir_ = nullptr;
std::string* ServeTest::model_path_ = nullptr;

// ---------------------------------------------------------- model pool ----

TEST_F(ServeTest, PoolDispatchesRoundRobin) {
  Result<std::unique_ptr<ModelPool>> pool =
      ModelPool::LoadFromFile(*model_path_, *dataset_, 2, {});
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ((*pool)->size(), 2u);
  { ModelPool::Lease lease = (*pool)->Acquire(); EXPECT_EQ(lease.index(), 0u); }
  { ModelPool::Lease lease = (*pool)->Acquire(); EXPECT_EQ(lease.index(), 1u); }
  { ModelPool::Lease lease = (*pool)->Acquire(); EXPECT_EQ(lease.index(), 0u); }
}

TEST_F(ServeTest, PoolInstancesScoreIdentically) {
  Result<std::unique_ptr<ModelPool>> pool =
      ModelPool::LoadFromFile(*model_path_, *dataset_, 3, {});
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  const Triple probe = CityPrediction(0);
  ModelPool::Lease a = (*pool)->Acquire();
  ModelPool::Lease b = (*pool)->Acquire();
  EXPECT_EQ(a.model().Score(probe), b.model().Score(probe))
      << "pool instances must carry bitwise-identical parameters";
}

TEST_F(ServeTest, PoolLoadFailsCleanlyOnMissingFile) {
  Result<std::unique_ptr<ModelPool>> pool = ModelPool::LoadFromFile(
      (*dir_ / "no_such_model.bin").string(), *dataset_, 2, {});
  EXPECT_FALSE(pool.ok());
}

// -------------------------------------------------------------- golden ----

// The acceptance test: pool 2, 2 dispatchers, 2 extraction threads, 4
// concurrent submitter threads, duplicated requests — every response line
// byte-identical to the sequential fresh-process reference.
TEST_F(ServeTest, GoldenConcurrentWorkloadMatchesOneShotBytes) {
  // Workload: every test fact scored, necessary explains (duplicated),
  // sufficient explains (duplicated) — interleaved so consecutive requests
  // land on different pool instances.
  std::vector<WorkItem> workload;
  for (const Triple& t : dataset_->test()) {
    workload.push_back({true, t, ExplanationKind::kNecessary});
  }
  const Triple necessary = CityPrediction(0);
  const Triple sufficient = CityPrediction(1);
  workload.push_back({false, necessary, ExplanationKind::kNecessary});
  workload.push_back({false, sufficient, ExplanationKind::kSufficient});
  workload.push_back({true, necessary, ExplanationKind::kNecessary});
  workload.push_back({false, necessary, ExplanationKind::kNecessary});
  workload.push_back({false, sufficient, ExplanationKind::kSufficient});

  // Sequential reference, fresh Kelpie per request.
  Result<std::unique_ptr<LinkPredictionModel>> model =
      LoadModel(*model_path_);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::vector<std::string> expected;
  for (size_t i = 0; i < workload.size(); ++i) {
    expected.push_back(ReferenceLine(**model, workload[i], i));
  }

  // The served run: everything submitted concurrently from 4 threads.
  ServerOptions options;
  options.pool_size = 2;
  options.dispatchers = 2;
  options.kelpie = TestKelpieOptions(2);
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::vector<std::future<ScoreResult>> scores(workload.size());
  std::vector<std::future<ExplainResult>> explains(workload.size());
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = t; i < workload.size(); i += 4) {
        const WorkItem& item = workload[i];
        if (item.is_score) {
          scores[i] = (*server)->Submit(ScoreRequest{item.triple, {}});
        } else {
          ExplainRequest request;
          request.prediction = item.triple;
          request.kind = item.kind;
          explains[i] = (*server)->SubmitExplain(std::move(request));
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  std::vector<std::string> actual(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    if (workload[i].is_score) {
      ScoreResult r = scores[i].get();
      ASSERT_TRUE(r.status.ok()) << i << ": " << r.status.ToString();
      actual[i] = ScoreResponseLine(i, r.score);
    } else {
      ExplainResult r = explains[i].get();
      ASSERT_TRUE(r.status.ok()) << i << ": " << r.status.ToString();
      actual[i] =
          ExplainResponseLine(i, r.explanation, r.conversion_set, *dataset_);
    }
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request " << i;
  }
  (*server)->Stop();
}

// The Nth identical request must answer like the first: pooled instances
// carry caches and (historically) RNG state across requests, and none of it
// may leak into the bytes.
TEST_F(ServeTest, RepeatedRequestsOnAWarmPoolAnswerIdentically) {
  ServerOptions options;
  options.pool_size = 1;  // every request lands on the same warm instance
  options.dispatchers = 1;
  options.kelpie = TestKelpieOptions(1);
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const Triple prediction = CityPrediction(2);
  std::vector<std::string> lines;
  for (int round = 0; round < 3; ++round) {
    ExplainRequest request;
    request.prediction = prediction;
    request.kind = ExplanationKind::kSufficient;
    ExplainResult r = (*server)->SubmitExplain(std::move(request)).get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    lines.push_back(
        ExplainResponseLine(1, r.explanation, r.conversion_set, *dataset_));
  }
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[1], lines[2]);
}

// --------------------------------------------------- admission control ----

TEST_F(ServeTest, BoundedQueueShedsDeterministically) {
  ServerOptions options;
  options.pool_size = 1;
  options.dispatchers = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;  // nothing drains until Resume()
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const Triple probe = CityPrediction(0);
  std::future<ScoreResult> first = (*server)->Submit({probe, {}});
  std::future<ScoreResult> second = (*server)->Submit({probe, {}});
  std::future<ScoreResult> third = (*server)->Submit({probe, {}});
  EXPECT_EQ((*server)->queue_depth(), 2u);

  // The shed future is fulfilled synchronously — no dispatcher involved.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  ScoreResult shed = third.get();
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);

  (*server)->Resume();
  ScoreResult a = first.get();
  ScoreResult b = second.get();
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  EXPECT_EQ(a.score, b.score);
  (*server)->Stop();
}

TEST_F(ServeTest, ExpiredAdmissionDeadlineIsDeadlineExceededNotExecuted) {
  ServerOptions options;
  options.pool_size = 1;
  options.dispatchers = 1;
  options.start_paused = true;
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const Triple probe = CityPrediction(0);
  std::future<ScoreResult> late_score =
      (*server)->Submit({probe, Deadline::After(0.0)});
  ExplainRequest explain;
  explain.prediction = probe;
  explain.admission_deadline = Deadline::After(0.0);
  std::future<ExplainResult> late_explain =
      (*server)->SubmitExplain(std::move(explain));
  // An unconstrained request behind them still executes.
  std::future<ScoreResult> fine = (*server)->Submit({probe, {}});

  (*server)->Resume();
  EXPECT_EQ(late_score.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late_explain.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(fine.get().status.ok());
  (*server)->Stop();
}

TEST_F(ServeTest, OutOfRangeIdsAreRejectedWithoutTouchingTheQueue) {
  ServerOptions options;
  options.pool_size = 1;
  options.start_paused = true;  // a queued request would never resolve
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::future<ScoreResult> bad_score =
      (*server)->Submit({Triple(999999, 0, 0), {}});
  EXPECT_EQ(bad_score.get().status.code(), StatusCode::kInvalidArgument);
  ExplainRequest bad_explain;
  bad_explain.prediction = Triple(0, 999999, 0);
  EXPECT_EQ((*server)->SubmitExplain(std::move(bad_explain)).get()
                .status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*server)->queue_depth(), 0u);
  (*server)->Stop();
}

TEST_F(ServeTest, StopDrainsAcceptedWorkAndShedsLaterSubmits) {
  ServerOptions options;
  options.pool_size = 2;
  options.dispatchers = 2;
  Result<std::unique_ptr<Server>> server =
      Server::Create(*model_path_, *dataset_, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const Triple probe = CityPrediction(0);
  std::vector<std::future<ScoreResult>> accepted;
  for (int i = 0; i < 8; ++i) {
    accepted.push_back((*server)->Submit({probe, {}}));
  }
  (*server)->Stop();
  for (std::future<ScoreResult>& f : accepted) {
    // Every accepted future resolves: executed before the drain finished.
    EXPECT_TRUE(f.get().status.ok());
  }
  ScoreResult after = (*server)->Submit({probe, {}}).get();
  EXPECT_EQ(after.status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace serve
}  // namespace kelpie
