#include "math/stats.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, KnownMeanAndStd) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats s;
  s.Add(-1.0);
  s.Add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectPositiveCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, TooFewPointsGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{1, 8, 27, 64, 125};  // x^3: nonlinear but monotone
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(SpearmanTest, HandlesTies) {
  std::vector<double> x{1, 2, 2, 3};
  std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, AntiMonotone) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{10, 5, 2, 1};
  EXPECT_NEAR(SpearmanCorrelation(x, y), -1.0, 1e-12);
}

}  // namespace
}  // namespace kelpie
