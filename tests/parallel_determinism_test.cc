// Proves the chunked-visiting semantics of parallel extraction: for any
// num_threads, ExplainNecessary / ExplainSufficient return byte-identical
// Explanations (facts, relevance, accepted, visited_candidates) and emit
// the same observer stream as the sequential run, because every
// post-training is seeded from (engine seed, entity, fact set) alone and
// the stopping policy is replayed sequentially over each chunk.
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/kelpie.h"
#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

using ObserverLog = std::vector<std::tuple<size_t, double, double>>;

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    for (const Triple& t : dataset_->test()) {
      if (FilteredTailRank(*model_, *dataset_, t) == 1) {
        prediction_ = t;
        found_ = true;
        break;
      }
    }
  }

  /// Options that force a deep search (unreachable threshold) so the
  /// chunk-replay path, the ρ_i draws, and multiple size classes are all
  /// exercised — the hardest case for equivalence.
  KelpieOptions DeepSearchOptions(size_t num_threads) const {
    KelpieOptions options;
    options.num_threads = num_threads;
    options.engine.conversion_set_size = 4;
    options.builder.necessary_threshold = 1e9;
    options.builder.sufficient_threshold = 1e9;
    options.builder.max_visits_per_size = 15;
    options.builder.max_explanation_length = 3;
    return options;
  }

  static void ExpectIdentical(const Explanation& a, const Explanation& b) {
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.facts, b.facts);
    EXPECT_EQ(a.relevance, b.relevance);  // exact, not approximate
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.visited_candidates, b.visited_candidates);
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  Triple prediction_;
  bool found_ = false;
};

TEST_F(ParallelDeterminismTest, NecessaryIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(found_);
  Kelpie sequential(*model_, *dataset_, DeepSearchOptions(1));
  ObserverLog log1;
  Explanation a = sequential.ExplainNecessary(
      prediction_, PredictionTarget::kTail,
      [&](size_t size, double pre, double cur) {
        log1.emplace_back(size, pre, cur);
      });
  for (size_t threads : {2u, 4u}) {
    Kelpie parallel(*model_, *dataset_, DeepSearchOptions(threads));
    ObserverLog logn;
    Explanation b = parallel.ExplainNecessary(
        prediction_, PredictionTarget::kTail,
        [&](size_t size, double pre, double cur) {
          logn.emplace_back(size, pre, cur);
        });
    ExpectIdentical(a, b);
    EXPECT_EQ(log1, logn) << "observer stream diverged at " << threads
                          << " threads";
  }
}

TEST_F(ParallelDeterminismTest, SufficientIdenticalAcrossThreadCounts) {
  ASSERT_TRUE(found_);
  Kelpie sequential(*model_, *dataset_, DeepSearchOptions(1));
  std::vector<EntityId> conversion_set =
      sequential.engine().SampleConversionSet(prediction_,
                                              PredictionTarget::kTail);
  if (conversion_set.empty()) {
    GTEST_SKIP() << "no convertible entities for this prediction";
  }
  Explanation a = sequential.ExplainSufficientWithSet(
      prediction_, PredictionTarget::kTail, conversion_set);
  Kelpie parallel(*model_, *dataset_, DeepSearchOptions(4));
  Explanation b = parallel.ExplainSufficientWithSet(
      prediction_, PredictionTarget::kTail, conversion_set);
  ExpectIdentical(a, b);
}

TEST_F(ParallelDeterminismTest, AcceptingSearchIdenticalToo) {
  ASSERT_TRUE(found_);
  // Default thresholds: the search usually accepts early — the replay must
  // exit at the exact same candidate.
  KelpieOptions seq;
  seq.engine.conversion_set_size = 4;
  KelpieOptions par = seq;
  par.num_threads = 4;
  Kelpie sequential(*model_, *dataset_, seq);
  Kelpie parallel(*model_, *dataset_, par);
  ExpectIdentical(sequential.ExplainNecessary(prediction_),
                  parallel.ExplainNecessary(prediction_));
}

TEST_F(ParallelDeterminismTest, HeadDirectionIdenticalToo) {
  ASSERT_TRUE(found_);
  Kelpie sequential(*model_, *dataset_, DeepSearchOptions(1));
  Kelpie parallel(*model_, *dataset_, DeepSearchOptions(4));
  ExpectIdentical(
      sequential.ExplainNecessary(prediction_, PredictionTarget::kHead),
      parallel.ExplainNecessary(prediction_, PredictionTarget::kHead));
}

TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAreStable) {
  ASSERT_TRUE(found_);
  // Two independent parallel instances: no hidden schedule dependence.
  Kelpie first(*model_, *dataset_, DeepSearchOptions(4));
  Kelpie second(*model_, *dataset_, DeepSearchOptions(4));
  ExpectIdentical(first.ExplainNecessary(prediction_),
                  second.ExplainNecessary(prediction_));
}

}  // namespace
}  // namespace kelpie
