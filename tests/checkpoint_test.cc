#include "ml/checkpoint.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "common/failpoint.h"
#include "eval/evaluator.h"
#include "models/factory.h"
#include "models/model_store.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

/// The crash-safety contract under test: a training run interrupted at any
/// epoch boundary (failpoint stand-in for `kill -9` — the atomic write
/// means a mid-write crash just preserves the previous checkpoint) and
/// resumed from its checkpoint must converge to parameters bitwise
/// identical to an uninterrupted run, for every architecture; and every
/// corruption of the checkpoint file must degrade to retraining, never to
/// an error or to silently different bytes.
class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("kelpie_checkpoint_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }
  void TearDown() override { failpoint::DisarmAll(); }

  /// Fresh checkpoint directory per use so corruption never leaks.
  static std::string CkptDir(const std::string& name) {
    return (*dir_ / name).string();
  }

  /// Short schedule: long enough that the interrupt epoch is interior,
  /// short enough to train all five architectures in one suite.
  static TrainConfig Config(ModelKind kind) {
    TrainConfig config = testing_util::FastConfig(kind);
    config.epochs = 6;
    return config;
  }

  static uint64_t Fingerprint(ModelKind kind, uint64_t seed) {
    return ComputeTrainFingerprint(kind, Config(kind), *dataset_, seed);
  }

  /// Every learned parameter as raw bytes; byte equality here is the
  /// "bitwise identical model" acceptance criterion.
  static std::string ParamsBytes(const LinkPredictionModel& model) {
    std::ostringstream out;
    Status s = model.SaveParameters(out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::move(out).str();
  }

  /// Uninterrupted reference run (no checkpointing).
  static std::unique_ptr<LinkPredictionModel> TrainReference(ModelKind kind,
                                                             uint64_t seed) {
    auto model = CreateModel(kind, *dataset_, Config(kind));
    Rng rng(seed);
    EXPECT_TRUE(model->Train(*dataset_, rng).ok());
    return model;
  }

  /// Checkpointed run killed by the `train.interrupt` failpoint right after
  /// `interrupt_epoch` commits (and its checkpoint is flushed).
  static void TrainInterrupted(ModelKind kind, uint64_t seed,
                               const std::string& ckpt_dir,
                               uint64_t interrupt_epoch) {
    auto model = CreateModel(kind, *dataset_, Config(kind));
    CheckpointOptions options;
    options.directory = ckpt_dir;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    failpoint::Arm("train.interrupt", interrupt_epoch);
    Rng rng(seed);
    Status status = model->Train(*dataset_, rng, control);
    failpoint::DisarmAll();
    EXPECT_EQ(status.code(), StatusCode::kAborted) << status.ToString();
  }

  /// Fresh model resumed from `ckpt_dir` to completion.
  static std::unique_ptr<LinkPredictionModel> TrainResumed(
      ModelKind kind, uint64_t seed, const std::string& ckpt_dir,
      TrainCheckpointer* out_checkpointer = nullptr) {
    auto model = CreateModel(kind, *dataset_, Config(kind));
    CheckpointOptions options;
    options.directory = ckpt_dir;
    options.resume = true;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    Rng rng(seed);
    EXPECT_TRUE(model->Train(*dataset_, rng, control).ok());
    if (out_checkpointer != nullptr) *out_checkpointer = checkpointer;
    return model;
  }

  static Dataset* dataset_;
  static std::filesystem::path* dir_;
};

Dataset* CheckpointTest::dataset_ = nullptr;
std::filesystem::path* CheckpointTest::dir_ = nullptr;

constexpr ModelKind kAllKinds[] = {ModelKind::kTransE, ModelKind::kComplEx,
                                   ModelKind::kDistMult, ModelKind::kRotatE,
                                   ModelKind::kConvE};

// ---------------------------------------------------------------------------
// Byte-identical resume, every architecture.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, ResumeAfterInterruptIsByteIdenticalForAllModels) {
  for (ModelKind kind : kAllKinds) {
    SCOPED_TRACE(ModelKindName(kind));
    const uint64_t seed = 42;
    auto reference = TrainReference(kind, seed);
    const std::string ref_bytes = ParamsBytes(*reference);

    const std::string ckpt =
        CkptDir(std::string("resume_") + std::string(ModelKindName(kind)));
    TrainInterrupted(kind, seed, ckpt, /*interrupt_epoch=*/2);

    TrainCheckpointer checkpointer({});
    auto resumed = TrainResumed(kind, seed, ckpt, &checkpointer);
    EXPECT_EQ(checkpointer.last_restore_outcome(),
              CheckpointRestoreOutcome::kRestored);
    EXPECT_EQ(checkpointer.restored_epoch(), 3u);
    EXPECT_EQ(ParamsBytes(*resumed), ref_bytes);
    // The report is restored too: the resumed run's total equals an
    // uninterrupted run's, not just its own remaining epochs.
    EXPECT_EQ(resumed->last_train_report().epochs_run, 6u);
    EXPECT_EQ(resumed->last_train_report().completeness,
              Completeness::kComplete);
  }
}

TEST_F(CheckpointTest, ResumeAtFinalEpochRunsZeroEpochs) {
  const ModelKind kind = ModelKind::kTransE;
  const uint64_t seed = 7;
  auto reference = TrainReference(kind, seed);
  const std::string ckpt = CkptDir("resume_final");
  TrainInterrupted(kind, seed, ckpt, /*interrupt_epoch=*/5);  // last of 6
  auto resumed = TrainResumed(kind, seed, ckpt);
  EXPECT_EQ(ParamsBytes(*resumed), ParamsBytes(*reference));
}

TEST_F(CheckpointTest, ResumedModelEvaluatesIdenticallyAtAnyThreadCount) {
  const ModelKind kind = ModelKind::kComplEx;
  const uint64_t seed = 42;
  const std::string ckpt = CkptDir("resume_eval");
  TrainInterrupted(kind, seed, ckpt, /*interrupt_epoch=*/2);
  auto resumed = TrainResumed(kind, seed, ckpt);

  EvalOptions sequential;
  sequential.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  EvalResult a = EvaluateTest(*resumed, *dataset_, sequential);
  EvalResult b = EvaluateTest(*resumed, *dataset_, parallel);
  EXPECT_EQ(a.HitsAt1(), b.HitsAt1());
  EXPECT_EQ(a.Mrr(), b.Mrr());
}

// ---------------------------------------------------------------------------
// Optimizer state: the whole accumulator/step bundle round-trips bit-exact.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CheckpointStateRoundTripsBitExact) {
  // ConvE carries the richest optimizer state (Adagrad accumulators, Adam
  // moments AND step counters); ComplEx covers the plain Adagrad family.
  for (ModelKind kind : {ModelKind::kConvE, ModelKind::kComplEx}) {
    SCOPED_TRACE(ModelKindName(kind));
    const uint64_t seed = 13;
    const std::string first = CkptDir(std::string("roundtrip_a_") +
                                      std::string(ModelKindName(kind)));
    TrainInterrupted(kind, seed, first, /*interrupt_epoch=*/2);

    CheckpointOptions load;
    load.directory = first;
    load.resume = true;
    load.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer loader(load);
    std::optional<CheckpointState> state = loader.TryRestore();
    ASSERT_TRUE(state.has_value());
    if (kind == ModelKind::kConvE) {
      // Adam step counts: 3 committed epochs on each of the 4 Adam-managed
      // tensors — nonzero, or the bias correction would restart.
      ASSERT_FALSE(state->counters.empty());
      for (uint64_t c : state->counters) EXPECT_GT(c, 0u);
    }

    CheckpointOptions copy = load;
    copy.directory = CkptDir(std::string("roundtrip_b_") +
                             std::string(ModelKindName(kind)));
    copy.resume = true;
    TrainCheckpointer writer(copy);
    ASSERT_TRUE(writer.Save(*state).ok());
    std::optional<CheckpointState> reread = writer.TryRestore();
    ASSERT_TRUE(reread.has_value());

    EXPECT_EQ(reread->next_epoch, state->next_epoch);
    EXPECT_EQ(std::memcmp(&reread->lr_scale, &state->lr_scale, sizeof(float)),
              0);
    EXPECT_EQ(reread->recoveries_left, state->recoveries_left);
    EXPECT_EQ(reread->rng, state->rng);
    EXPECT_EQ(reread->counters, state->counters);
    ASSERT_EQ(reread->params.size(), state->params.size());
    for (size_t i = 0; i < state->params.size(); ++i) {
      ASSERT_EQ(reread->params[i].size(), state->params[i].size());
      EXPECT_EQ(std::memcmp(reread->params[i].data(), state->params[i].data(),
                            state->params[i].size() * sizeof(float)),
                0)
          << "param span " << i;
    }
    EXPECT_EQ(reread->report.epochs_run, state->report.epochs_run);
    EXPECT_EQ(reread->report.recoveries, state->report.recoveries);
    EXPECT_EQ(reread->report.events.size(), state->report.events.size());
  }
}

TEST_F(CheckpointTest, RecoveryLedgerSurvivesResume) {
  // Diverge at epoch 1 (recovery: rewind + lr backoff), interrupt at epoch
  // 3, resume: the final report must carry the recovery event and the
  // backed-off lr_scale, exactly like the uninterrupted run's.
  const ModelKind kind = ModelKind::kTransE;
  const uint64_t seed = 23;

  auto reference = CreateModel(kind, *dataset_, Config(kind));
  failpoint::Arm("train.diverge", 1);
  Rng ref_rng(seed);
  ASSERT_TRUE(reference->Train(*dataset_, ref_rng).ok());
  failpoint::DisarmAll();
  ASSERT_EQ(reference->last_train_report().recoveries, 1);
  const std::string ref_bytes = ParamsBytes(*reference);
  const float ref_lr_scale = reference->last_train_report().lr_scale;

  const std::string ckpt = CkptDir("ledger");
  {
    auto model = CreateModel(kind, *dataset_, Config(kind));
    CheckpointOptions options;
    options.directory = ckpt;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    failpoint::Arm("train.diverge", 1);
    failpoint::Arm("train.interrupt", 3);
    Rng rng(seed);
    Status status = model->Train(*dataset_, rng, control);
    failpoint::DisarmAll();
    ASSERT_EQ(status.code(), StatusCode::kAborted);
  }

  auto resumed = TrainResumed(kind, seed, ckpt);
  EXPECT_EQ(ParamsBytes(*resumed), ref_bytes);
  const TrainReport& report = resumed->last_train_report();
  EXPECT_EQ(report.recoveries, 1);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].epoch, 1u);
  EXPECT_EQ(report.events[0].reason, "non-finite parameters");
  EXPECT_EQ(report.lr_scale, ref_lr_scale);
}

// ---------------------------------------------------------------------------
// Corruption matrix: every damage mode degrades to scratch, never errors —
// and the degraded run still converges to the reference bytes.
// ---------------------------------------------------------------------------

class CheckpointCorruptionTest : public CheckpointTest {
 protected:
  /// A valid checkpoint file to damage (TransE, interrupted at epoch 2).
  std::string MakeGoodCheckpoint(const std::string& name) {
    const std::string ckpt = CkptDir(name);
    TrainInterrupted(ModelKind::kTransE, 42, ckpt, /*interrupt_epoch=*/2);
    return ckpt;
  }

  static CheckpointRestoreOutcome RestoreOutcome(const std::string& ckpt_dir,
                                                 uint64_t fingerprint) {
    CheckpointOptions options;
    options.directory = ckpt_dir;
    options.resume = true;
    options.fingerprint = fingerprint;
    TrainCheckpointer checkpointer(options);
    std::optional<CheckpointState> state = checkpointer.TryRestore();
    EXPECT_EQ(state.has_value(),
              checkpointer.last_restore_outcome() ==
                  CheckpointRestoreOutcome::kRestored);
    return checkpointer.last_restore_outcome();
  }

  static void Truncate(const std::string& path, size_t new_size) {
    std::filesystem::resize_file(path, new_size);
  }

  static void FlipByte(const std::string& path, size_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }
};

TEST_F(CheckpointCorruptionTest, MissingFileIsNoFile) {
  EXPECT_EQ(RestoreOutcome(CkptDir("never_written"), 0),
            CheckpointRestoreOutcome::kNoFile);
}

TEST_F(CheckpointCorruptionTest, ResumeNotRequestedIsNotAttempted) {
  CheckpointOptions options;
  options.directory = MakeGoodCheckpoint("not_attempted");
  options.resume = false;
  TrainCheckpointer checkpointer(options);
  EXPECT_FALSE(checkpointer.TryRestore().has_value());
  EXPECT_EQ(checkpointer.last_restore_outcome(),
            CheckpointRestoreOutcome::kNotAttempted);
}

TEST_F(CheckpointCorruptionTest, TornTailDegradesToScratchAndConverges) {
  const uint64_t seed = 42;
  const uint64_t fp = Fingerprint(ModelKind::kTransE, seed);
  const std::string ckpt = MakeGoodCheckpoint("torn");
  const std::string file = TrainCheckpointer({ckpt}).FilePath();
  const size_t size = std::filesystem::file_size(file);
  Truncate(file, size - 5);
  EXPECT_EQ(RestoreOutcome(ckpt, fp), CheckpointRestoreOutcome::kCorrupt);

  // The degraded resume retrains from scratch — and, because the scratch
  // trajectory is the reference trajectory, still lands on identical bytes.
  auto reference = TrainReference(ModelKind::kTransE, seed);
  auto resumed = TrainResumed(ModelKind::kTransE, seed, ckpt);
  EXPECT_EQ(ParamsBytes(*resumed), ParamsBytes(*reference));
}

TEST_F(CheckpointCorruptionTest, BitFlipInParamsIsCorrupt) {
  const std::string ckpt = MakeGoodCheckpoint("flip");
  const std::string file = TrainCheckpointer({ckpt}).FilePath();
  const size_t size = std::filesystem::file_size(file);
  FlipByte(file, size - size / 4);  // deep in the params section
  EXPECT_EQ(RestoreOutcome(ckpt, Fingerprint(ModelKind::kTransE, 42)),
            CheckpointRestoreOutcome::kCorrupt);
}

TEST_F(CheckpointCorruptionTest, PartialSectionIsCorrupt) {
  const std::string ckpt = MakeGoodCheckpoint("partial");
  const std::string file = TrainCheckpointer({ckpt}).FilePath();
  const size_t size = std::filesystem::file_size(file);
  Truncate(file, size / 2);  // ends inside a section payload
  EXPECT_EQ(RestoreOutcome(ckpt, Fingerprint(ModelKind::kTransE, 42)),
            CheckpointRestoreOutcome::kCorrupt);
}

TEST_F(CheckpointCorruptionTest, HeaderGarbageIsCorrupt) {
  const std::string ckpt = MakeGoodCheckpoint("garbage");
  const std::string file = TrainCheckpointer({ckpt}).FilePath();
  std::ofstream(file, std::ios::binary | std::ios::trunc)
      << "not a checkpoint";
  EXPECT_EQ(RestoreOutcome(ckpt, Fingerprint(ModelKind::kTransE, 42)),
            CheckpointRestoreOutcome::kCorrupt);
}

TEST_F(CheckpointCorruptionTest, WrongFingerprintIsStaleConfig) {
  const std::string ckpt = MakeGoodCheckpoint("stale");
  const uint64_t fp = Fingerprint(ModelKind::kTransE, 42);
  EXPECT_EQ(RestoreOutcome(ckpt, fp ^ 1),
            CheckpointRestoreOutcome::kStaleConfig);
  // Distinct seed, config or dataset => distinct fingerprint.
  EXPECT_NE(fp, Fingerprint(ModelKind::kTransE, 43));
  EXPECT_NE(fp, Fingerprint(ModelKind::kDistMult, 42));
}

TEST_F(CheckpointCorruptionTest, SaveFailpointsDamageOnlyDurability) {
  // Each save-side failpoint leaves a file the restore must reject — while
  // the interrupted training run itself is unaffected.
  struct Case {
    const char* failpoint;
    CheckpointRestoreOutcome expected;
  };
  for (const Case& c :
       {Case{"checkpoint.partial_write", CheckpointRestoreOutcome::kCorrupt},
        Case{"checkpoint.bit_flip", CheckpointRestoreOutcome::kCorrupt},
        Case{"checkpoint.stale_config",
             CheckpointRestoreOutcome::kStaleConfig}}) {
    SCOPED_TRACE(c.failpoint);
    const std::string ckpt = CkptDir(std::string("savefp_") + c.failpoint);
    failpoint::Arm(c.failpoint, failpoint::kAnyValue, failpoint::kForever);
    TrainInterrupted(ModelKind::kTransE, 42, ckpt, /*interrupt_epoch=*/2);
    failpoint::DisarmAll();
    EXPECT_EQ(RestoreOutcome(ckpt, Fingerprint(ModelKind::kTransE, 42)),
              c.expected);
  }
}

TEST_F(CheckpointCorruptionTest, ShapeMismatchDegradesToScratch) {
  // Same fingerprint (both sides pass 0 = unchecked), different model
  // shape: the guard detects the span disagreement and retrains from
  // scratch.
  const std::string ckpt = CkptDir("shape");
  {
    auto wide = CreateModel(ModelKind::kTransE, *dataset_,
                            Config(ModelKind::kTransE));
    CheckpointOptions write;
    write.directory = ckpt;  // fingerprint left 0
    TrainCheckpointer checkpointer(write);
    TrainControl control;
    control.checkpointer = &checkpointer;
    failpoint::Arm("train.interrupt", 2);
    Rng rng(42);
    Status status = wide->Train(*dataset_, rng, control);
    failpoint::DisarmAll();
    ASSERT_EQ(status.code(), StatusCode::kAborted);
  }

  TrainConfig narrow = Config(ModelKind::kTransE);
  narrow.dim = 8;
  auto model = CreateModel(ModelKind::kTransE, *dataset_, narrow);
  CheckpointOptions options;
  options.directory = ckpt;
  options.resume = true;  // fingerprint 0 on both sides: passes that gate
  TrainCheckpointer checkpointer(options);
  TrainControl control;
  control.checkpointer = &checkpointer;
  Rng rng(42);
  ASSERT_TRUE(model->Train(*dataset_, rng, control).ok());
  EXPECT_EQ(checkpointer.last_restore_outcome(),
            CheckpointRestoreOutcome::kShapeMismatch);

  auto reference = CreateModel(ModelKind::kTransE, *dataset_, narrow);
  Rng ref_rng(42);
  ASSERT_TRUE(reference->Train(*dataset_, ref_rng).ok());
  EXPECT_EQ(ParamsBytes(*model), ParamsBytes(*reference));
}

TEST_F(CheckpointCorruptionTest, UnwritableDirectoryCostsDurabilityNotTheRun) {
  // The checkpoint "directory" is an existing file: every save fails, is
  // logged, and training still completes with the reference bytes.
  const std::string bogus = CkptDir("not_a_directory");
  std::ofstream(bogus) << "occupied";

  auto model = CreateModel(ModelKind::kTransE, *dataset_, Config(ModelKind::kTransE));
  CheckpointOptions options;
  options.directory = bogus;
  options.fingerprint = Fingerprint(ModelKind::kTransE, 42);
  TrainCheckpointer checkpointer(options);
  TrainControl control;
  control.checkpointer = &checkpointer;
  Rng rng(42);
  ASSERT_TRUE(model->Train(*dataset_, rng, control).ok());

  auto reference = TrainReference(ModelKind::kTransE, 42);
  EXPECT_EQ(ParamsBytes(*model), ParamsBytes(*reference));
}

// ---------------------------------------------------------------------------
// Drain semantics: cancellation checkpoints and resumes cleanly.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, CancelDrainsWritesCheckpointAndResumesByteIdentical) {
  const ModelKind kind = ModelKind::kDistMult;
  const uint64_t seed = 42;
  const std::string ckpt = CkptDir("drain");

  auto model = CreateModel(kind, *dataset_, Config(kind));
  CheckpointOptions options;
  options.directory = ckpt;
  options.fingerprint = Fingerprint(kind, seed);
  TrainCheckpointer checkpointer(options);
  TrainControl control;
  control.checkpointer = &checkpointer;
  control.cancel.RequestCancel();  // already cancelled: drain immediately
  Rng rng(seed);
  Status status = model->Train(*dataset_, rng, control);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(model->last_train_report().completeness, Completeness::kCancelled);
  EXPECT_TRUE(std::filesystem::exists(checkpointer.FilePath()));

  // Fresh (uncancelled) resume converges to the uninterrupted bytes, and
  // its report is Complete — the drain marker belongs to the drained run.
  auto reference = TrainReference(kind, seed);
  auto resumed = TrainResumed(kind, seed, ckpt);
  EXPECT_EQ(ParamsBytes(*resumed), ParamsBytes(*reference));
  EXPECT_EQ(resumed->last_train_report().completeness,
            Completeness::kComplete);
}

// ---------------------------------------------------------------------------
// Interval + warm start.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, IntervalGovernsPeriodicSavesOnly) {
  CheckpointOptions options;
  options.interval_epochs = 3;
  TrainCheckpointer checkpointer(options);
  EXPECT_FALSE(checkpointer.ShouldSave(1));
  EXPECT_FALSE(checkpointer.ShouldSave(2));
  EXPECT_TRUE(checkpointer.ShouldSave(3));
  EXPECT_FALSE(checkpointer.ShouldSave(4));
  EXPECT_TRUE(checkpointer.ShouldSave(6));

  // Interval 0 would never save; it is coerced to 1.
  CheckpointOptions zero;
  zero.interval_epochs = 0;
  EXPECT_TRUE(TrainCheckpointer(zero).ShouldSave(1));
}

TEST_F(CheckpointTest, WarmStartRestoresParametersOnlyAndIsLoadOnly) {
  const ModelKind kind = ModelKind::kComplEx;
  const uint64_t seed = 42;
  const std::string ckpt = CkptDir("warm_base");
  // Full checkpointed base run (uninterrupted — final state on disk).
  {
    auto base = CreateModel(kind, *dataset_, Config(kind));
    CheckpointOptions options;
    options.directory = ckpt;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    Rng rng(seed);
    ASSERT_TRUE(base->Train(*dataset_, rng, control).ok());
  }
  const std::string file = TrainCheckpointer({ckpt}).FilePath();
  const size_t base_size = std::filesystem::file_size(file);
  const auto base_mtime = std::filesystem::last_write_time(file);

  // Short continuation from the warm base. The fingerprint is deliberately
  // different (different epochs): warm mode does not check it.
  TrainConfig short_config = Config(kind);
  short_config.epochs = 2;
  auto warm_once = [&] {
    auto model = CreateModel(kind, *dataset_, short_config);
    CheckpointOptions options;
    options.directory = ckpt;
    options.resume = true;
    options.mode = CheckpointMode::kWarmStart;
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    Rng rng(seed + 99);
    EXPECT_TRUE(model->Train(*dataset_, rng, control).ok());
    EXPECT_EQ(checkpointer.last_restore_outcome(),
              CheckpointRestoreOutcome::kRestored);
    // Warm start begins at epoch 0 regardless of the stored epoch counter.
    EXPECT_EQ(model->last_train_report().epochs_run, 2u);
    return ParamsBytes(*model);
  };
  const std::string warm_a = warm_once();
  const std::string warm_b = warm_once();
  // Warm runs are reproducible among themselves...
  EXPECT_EQ(warm_a, warm_b);
  // ...differ from a cold 2-epoch run...
  auto cold = CreateModel(kind, *dataset_, short_config);
  Rng cold_rng(seed + 99);
  ASSERT_TRUE(cold->Train(*dataset_, cold_rng).ok());
  EXPECT_NE(warm_a, ParamsBytes(*cold));
  // ...and never overwrite the base checkpoint (load-only).
  EXPECT_EQ(std::filesystem::file_size(file), base_size);
  EXPECT_EQ(std::filesystem::last_write_time(file), base_mtime);
}

// ---------------------------------------------------------------------------
// Warm-start post-training (the Relevance Engine side of warm starts).
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, WarmMimicInitIsDeterministicAndDistinctFromCold) {
  for (ModelKind kind : {ModelKind::kTransE, ModelKind::kComplEx}) {
    SCOPED_TRACE(ModelKindName(kind));
    auto model = testing_util::TrainToyModel(kind, *dataset_);
    const Triple& fact = dataset_->train().front();
    const EntityId entity = fact.head;
    const std::vector<Triple> facts{fact};

    Rng rng_a(77), rng_b(77), rng_c(77);
    std::vector<float> warm_a = model->PostTrainMimic(
        *dataset_, entity, facts, rng_a, model->EntityEmbedding(entity));
    std::vector<float> warm_b = model->PostTrainMimic(
        *dataset_, entity, facts, rng_b, model->EntityEmbedding(entity));
    std::vector<float> cold = model->PostTrainMimic(*dataset_, entity, facts,
                                                    rng_c);
    EXPECT_EQ(warm_a, warm_b);
    EXPECT_NE(warm_a, cold);
    // A wrong-sized warm vector falls back to the cold init scheme.
    std::vector<float> bad_init(model->entity_dim() + 1, 0.5f);
    Rng rng_d(77);
    EXPECT_EQ(model->PostTrainMimic(*dataset_, entity, facts, rng_d, bad_init),
              cold);
  }
}

}  // namespace
}  // namespace kelpie
