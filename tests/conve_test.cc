#include "models/conve.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "math/vec.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(ConvETest, RejectsDimNotDivisibleByReshapeHeight) {
  TrainConfig config;
  config.dim = 30;  // not divisible by reshape_height 4
  config.reshape_height = 4;
  EXPECT_DEATH(ConvE(5, 2, config), "");
}

TEST(ConvETest, TailGradientEqualsHiddenVector) {
  // φ is linear in the tail embedding: ∂φ/∂t is the MLP output v, so
  // φ(h, r, t) == <∂φ/∂t, t> + b_t.
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kConvE, dataset);
  Triple probe = dataset.test().front();
  std::vector<float> v = model->ScoreGradWrtTail(probe);
  auto* conve = dynamic_cast<ConvE*>(model.get());
  ASSERT_NE(conve, nullptr);
  float expected = Dot(v, model->EntityEmbedding(probe.tail)) +
                   conve->entity_bias()[static_cast<size_t>(probe.tail)];
  EXPECT_NEAR(model->Score(probe), expected, 1e-4);
}

TEST(ConvETest, TrainingLearnsCompositionalPattern) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kConvE, dataset);
  MetricsAccumulator acc;
  for (const Triple& t : dataset.test()) {
    acc.AddRank(FilteredTailRank(*model, dataset, t));
  }
  EXPECT_GT(acc.Mrr(), 0.3);
}

TEST(ConvETest, TrainingIsDeterministic) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto m1 = testing_util::TrainToyModel(ModelKind::kConvE, dataset, 5);
  auto m2 = testing_util::TrainToyModel(ModelKind::kConvE, dataset, 5);
  Triple probe = dataset.test().front();
  EXPECT_FLOAT_EQ(m1->Score(probe), m2->Score(probe));
}

TEST(ConvETest, EntityBiasAffectsScore) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kConvE, dataset);
  // After training the per-entity biases should have moved off zero.
  auto* conve = dynamic_cast<ConvE*>(model.get());
  ASSERT_NE(conve, nullptr);
  double total = 0.0;
  for (float b : conve->entity_bias()) total += std::abs(b);
  EXPECT_GT(total, 0.0);
}

TEST(ConvETest, MimicAsTailBiasExcludedFromOverrideScore) {
  // ScoreWithEntityVec with the tail overridden must not apply the stored
  // entity bias of the overridden tail (a mimic has no bias row).
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kConvE, dataset);
  auto* conve = dynamic_cast<ConvE*>(model.get());
  ASSERT_NE(conve, nullptr);
  Triple probe = dataset.test().front();
  std::span<const float> stored = model->EntityEmbedding(probe.tail);
  float with_override =
      model->ScoreWithEntityVec(probe, probe.tail, stored);
  float bias = conve->entity_bias()[static_cast<size_t>(probe.tail)];
  EXPECT_NEAR(with_override + bias, model->Score(probe), 1e-4);
}

TEST(ConvETest, ScoreAllTailsWithHeadVecConsistent) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kConvE, dataset);
  Triple probe = dataset.test().front();
  std::vector<float> scores(model->num_entities());
  model->ScoreAllTailsWithHeadVec(model->EntityEmbedding(probe.head),
                                  probe.relation, scores);
  EXPECT_NEAR(scores[static_cast<size_t>(probe.tail)], model->Score(probe),
              1e-4);
}

}  // namespace
}  // namespace kelpie
