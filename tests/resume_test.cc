// End-to-end resume semantics: an interrupted journaled run, resumed,
// produces byte-identical results to an uninterrupted one.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/data_poisoning.h"
#include "common/failpoint.h"
#include "tests/test_util.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

void ExpectSameExplanations(const std::vector<Explanation>& a,
                            const std::vector<Explanation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].facts, b[i].facts) << "explanation " << i;
    EXPECT_EQ(a[i].relevance, b[i].relevance) << "explanation " << i;
    EXPECT_EQ(a[i].accepted, b[i].accepted) << "explanation " << i;
    EXPECT_EQ(a[i].post_trainings, b[i].post_trainings) << "explanation " << i;
    EXPECT_EQ(a[i].visited_candidates, b[i].visited_candidates)
        << "explanation " << i;
    EXPECT_EQ(a[i].seconds, 0.0) << "journaled runs zero wall-clock";
    EXPECT_EQ(b[i].seconds, 0.0);
  }
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_resume_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    Rng rng(3);
    predictions_ =
        SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
    ASSERT_GE(predictions_.size(), 2u);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Journal(const std::string& name) {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  std::vector<Triple> predictions_;
};

TEST_F(ResumeTest, NecessaryInterruptedThenResumedIsByteIdentical) {
  DataPoisoningExplainer dp(*model_, *dataset_);

  // Reference: uninterrupted journaled run.
  Result<NecessaryRunResult> full = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("full.jnl"), false});
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Interrupted run: killed right after the first prediction is journaled.
  failpoint::Arm("pipeline.interrupt", /*match=*/0, /*times=*/1);
  Result<NecessaryRunResult> interrupted = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("kill.jnl"), false});
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kAborted);
  failpoint::DisarmAll();

  // Resume replays prediction 0 from disk and finishes the rest fresh.
  Result<NecessaryRunResult> resumed = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("kill.jnl"), true});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ExpectSameExplanations(full->explanations, resumed->explanations);
  EXPECT_EQ(full->after.hits_at_1, resumed->after.hits_at_1);
  EXPECT_EQ(full->after.mrr, resumed->after.mrr);
}

TEST_F(ResumeTest, SufficientInterruptedThenResumedIsByteIdentical) {
  DataPoisoningExplainer dp(*model_, *dataset_);
  const size_t conversion_set_size = 3;
  const uint64_t conversion_seed = 5;

  Result<SufficientRunResult> full = RunSufficientEndToEndResumable(
      dp, *model_, ModelKind::kComplEx, *dataset_, predictions_,
      conversion_set_size, conversion_seed, 7, PredictionTarget::kTail,
      {Journal("full.jnl"), false});
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  failpoint::Arm("pipeline.interrupt", /*match=*/0, /*times=*/1);
  Result<SufficientRunResult> interrupted = RunSufficientEndToEndResumable(
      dp, *model_, ModelKind::kComplEx, *dataset_, predictions_,
      conversion_set_size, conversion_seed, 7, PredictionTarget::kTail,
      {Journal("kill.jnl"), false});
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.status().code(), StatusCode::kAborted);
  failpoint::DisarmAll();

  Result<SufficientRunResult> resumed = RunSufficientEndToEndResumable(
      dp, *model_, ModelKind::kComplEx, *dataset_, predictions_,
      conversion_set_size, conversion_seed, 7, PredictionTarget::kTail,
      {Journal("kill.jnl"), true});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ExpectSameExplanations(full->explanations, resumed->explanations);
  EXPECT_EQ(full->conversion_sets, resumed->conversion_sets);
  EXPECT_EQ(full->before.hits_at_1, resumed->before.hits_at_1);
  EXPECT_EQ(full->before.mrr, resumed->before.mrr);
  EXPECT_EQ(full->after.hits_at_1, resumed->after.hits_at_1);
  EXPECT_EQ(full->after.mrr, resumed->after.mrr);
}

// Format v3 ends every finished run with a summary frame recomputed from
// the *complete* explanation set, so an interrupted-then-resumed run's
// journal — summary included — is byte-identical to an uninterrupted one:
// resuming never double-counts work that was already journaled.
TEST_F(ResumeTest, ResumedJournalSummaryMatchesUninterruptedByteForByte) {
  DataPoisoningExplainer dp(*model_, *dataset_);

  Result<NecessaryRunResult> full = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("full.jnl"), false});
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  failpoint::Arm("pipeline.interrupt", /*match=*/0, /*times=*/1);
  Result<NecessaryRunResult> interrupted = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("kill.jnl"), false});
  ASSERT_FALSE(interrupted.ok());
  failpoint::DisarmAll();

  Result<NecessaryRunResult> resumed = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("kill.jnl"), true});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
  };
  const std::string full_bytes = read_all(Journal("full.jnl"));
  const std::string resumed_bytes = read_all(Journal("kill.jnl"));
  ASSERT_FALSE(full_bytes.empty());
  EXPECT_EQ(full_bytes, resumed_bytes);

  // Re-resuming the finished journal surfaces the summary and replays all
  // records; the replayed run then re-appends an identical summary.
  Result<NecessaryRunResult> replay = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("kill.jnl"), true});
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(read_all(Journal("kill.jnl")), full_bytes);
}

TEST_F(ResumeTest, ResumeWithDifferentPredictionsRefuses) {
  DataPoisoningExplainer dp(*model_, *dataset_);
  Result<NecessaryRunResult> first = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), false});
  ASSERT_TRUE(first.ok());

  // Any change to the configuration (here: a different prediction sample)
  // changes the run id and resume must refuse.
  std::vector<Triple> other(predictions_.begin(), predictions_.end() - 1);
  Result<NecessaryRunResult> mismatch = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, other, 7, PredictionTarget::kTail,
      {Journal("run.jnl"), true});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ResumeTest, ResumeOfCompletedRunReplaysEverything) {
  DataPoisoningExplainer dp(*model_, *dataset_);
  Result<NecessaryRunResult> full = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), false});
  ASSERT_TRUE(full.ok());

  Result<NecessaryRunResult> replay = RunNecessaryEndToEndResumable(
      dp, ModelKind::kComplEx, *dataset_, predictions_, 7,
      PredictionTarget::kTail, {Journal("run.jnl"), true});
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ExpectSameExplanations(full->explanations, replay->explanations);
  EXPECT_EQ(full->after.mrr, replay->after.mrr);
}

}  // namespace
}  // namespace kelpie
