// Registry semantics (counters, gauges, histograms, labels, masking,
// scoped isolation) plus the golden determinism contract: the masked text
// exposition of a fixed-seed train + extract + eval workload is
// byte-identical at num_threads = 1 and num_threads = 4.
#include "common/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/explainer.h"
#include "common/thread_pool.h"
#include "eval/evaluator.h"
#include "tests/test_util.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace metrics {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Registry reg;
  Counter& c = reg.GetCounter("kelpie_apples_total");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, SameNameAndLabelsResolveToSameSeries) {
  Registry reg;
  Counter& a = reg.GetCounter("kelpie_apples_total", {{"color", "red"}});
  Counter& b = reg.GetCounter("kelpie_apples_total", {{"color", "red"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.GetCounter("kelpie_apples_total", {{"color", "green"}});
  EXPECT_NE(&a, &other);
}

TEST(CounterTest, LabelOrderIsCanonicalized) {
  Registry reg;
  Counter& a =
      reg.GetCounter("kelpie_x_total", {{"b", "2"}, {"a", "1"}});
  Counter& b =
      reg.GetCounter("kelpie_x_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(GaugeTest, LastWriteWins) {
  Registry reg;
  Gauge& g = reg.GetGauge("kelpie_level");
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_EQ(g.Value(), -3.25);
}

TEST(HistogramTest, LeBucketSemantics) {
  Registry reg;
  Histogram& h = reg.GetHistogram("kelpie_size", {1.0, 2.0, 4.0});
  // Prometheus `le`: a value lands in the first bucket whose bound is >= it.
  h.Observe(0.5);   // le=1
  h.Observe(1.0);   // le=1 (inclusive)
  h.Observe(1.5);   // le=2
  h.Observe(4.0);   // le=4 (inclusive)
  h.Observe(100.0); // +Inf
  h.Observe(-7.0);  // le=1 (below range falls in the first bucket)
  EXPECT_EQ(h.BucketCount(0), 3u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0 - 7.0);
}

TEST(HistogramTest, FirstRegistrationFixesBounds) {
  Registry reg;
  Histogram& a = reg.GetHistogram("kelpie_size", {1.0, 2.0});
  Histogram& b = reg.GetHistogram("kelpie_size", {99.0}, {{"k", "v"}});
  EXPECT_EQ(a.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(b.bounds(), a.bounds());  // later bounds are ignored
}

TEST(BucketHelpersTest, ExponentialAndLinearLadders) {
  EXPECT_EQ(ExponentialBuckets(0.5, 2.0, 4),
            (std::vector<double>{0.5, 1.0, 2.0, 4.0}));
  EXPECT_EQ(LinearBuckets(1.0, 1.5, 3),
            (std::vector<double>{1.0, 2.5, 4.0}));
}

TEST(FormatDoubleTest, CanonicalSpellings) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "+Inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-Inf");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "NaN");
}

TEST(TextExpositionTest, DeterministicFormat) {
  Registry reg;
  // Created out of name order on purpose: exposition sorts families.
  reg.GetGauge("kelpie_level", {}, Determinism::kDeterministic).Set(1.5);
  reg.GetCounter("kelpie_apples_total", {{"color", "red"}},
                 Determinism::kDeterministic, "Apples seen.")
      .Increment(3);
  reg.GetCounter("kelpie_apples_total", {{"color", "green"}},
                 Determinism::kDeterministic)
      .Increment(1);
  Histogram& h = reg.GetHistogram("kelpie_size", {1.0, 2.0}, {},
                                  Determinism::kDeterministic);
  h.Observe(0.5);
  h.Observe(3.0);
  EXPECT_EQ(reg.TextExposition(),
            "# HELP kelpie_apples_total Apples seen.\n"
            "# TYPE kelpie_apples_total counter\n"
            "kelpie_apples_total{color=\"green\"} 1\n"
            "kelpie_apples_total{color=\"red\"} 3\n"
            "# TYPE kelpie_level gauge\n"
            "kelpie_level 1.5\n"
            "# TYPE kelpie_size histogram\n"
            "kelpie_size_bucket{le=\"1\"} 1\n"
            "kelpie_size_bucket{le=\"2\"} 1\n"
            "kelpie_size_bucket{le=\"+Inf\"} 2\n"
            "kelpie_size_sum 3.5\n"
            "kelpie_size_count 2\n");
}

TEST(TextExpositionTest, LabelValuesAreEscaped) {
  Registry reg;
  reg.GetCounter("kelpie_x_total", {{"k", "a\"b\\c\nd"}},
                 Determinism::kDeterministic)
      .Increment();
  EXPECT_EQ(reg.TextExposition(),
            "# TYPE kelpie_x_total counter\n"
            "kelpie_x_total{k=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(MaskingTest, WallClockValuesMaskedButSeriesListed) {
  Registry reg;
  reg.GetCounter("kelpie_det_total", {}, Determinism::kDeterministic)
      .Increment(7);
  reg.GetCounter("kelpie_wall_total", {{"event", "hit"}},
                 Determinism::kWallClock)
      .Increment(9);
  Histogram& h = reg.GetHistogram("kelpie_wall_seconds", {1.0}, {},
                                  Determinism::kWallClock);
  h.Observe(0.5);
  EXPECT_EQ(reg.TextExposition(/*mask_wall_clock=*/true),
            "# TYPE kelpie_det_total counter\n"
            "kelpie_det_total 7\n"
            "# TYPE kelpie_wall_seconds histogram\n"
            "kelpie_wall_seconds_bucket{le=\"1\"} MASKED\n"
            "kelpie_wall_seconds_bucket{le=\"+Inf\"} MASKED\n"
            "kelpie_wall_seconds_sum MASKED\n"
            "kelpie_wall_seconds_count MASKED\n"
            "# TYPE kelpie_wall_total counter\n"
            "kelpie_wall_total{event=\"hit\"} MASKED\n");
}

TEST(JsonSnapshotTest, ShapeMaskingAndNonFiniteValues) {
  Registry reg;
  reg.GetCounter("kelpie_det_total", {}, Determinism::kDeterministic)
      .Increment(7);
  reg.GetGauge("kelpie_wall_level", {}, Determinism::kWallClock)
      .Set(std::numeric_limits<double>::infinity());
  const std::string unmasked = reg.JsonSnapshot();
  // Non-finite doubles are not valid JSON numbers and render as strings.
  EXPECT_NE(unmasked.find("\"value\":\"+Inf\""), std::string::npos);
  EXPECT_NE(unmasked.find("\"determinism\":\"deterministic\""),
            std::string::npos);
  EXPECT_NE(unmasked.find("\"determinism\":\"wall_clock\""),
            std::string::npos);
  const std::string masked = reg.JsonSnapshot(/*mask_wall_clock=*/true);
  EXPECT_NE(masked.find("\"value\":\"MASKED\""), std::string::npos);
  EXPECT_NE(masked.find("\"value\":7"), std::string::npos);
}

TEST(CounterFamilyTotalTest, SumsAllSeriesOfTheFamily) {
  Registry reg;
  reg.GetCounter("kelpie_work_total", {{"kind", "a"}}).Increment(3);
  reg.GetCounter("kelpie_work_total", {{"kind", "b"}}).Increment(4);
  reg.GetGauge("kelpie_level").Set(99.0);
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_work_total"), 7u);
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_missing_total"), 0u);
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_level"), 0u);  // not a counter
}

TEST(ScopedRegistryTest, CapturesAndRestores) {
  Counter& outer = Registry::Global().GetCounter("kelpie_scope_probe_total");
  const uint64_t before = outer.Value();
  {
    ScopedRegistry scoped;
    EXPECT_EQ(&Registry::Global(), &scoped.registry());
    Registry::Global().GetCounter("kelpie_scope_probe_total").Increment(5);
    EXPECT_EQ(scoped.registry().CounterFamilyTotal("kelpie_scope_probe_total"),
              5u);
  }
  // Increments inside the scope never reach the process registry.
  EXPECT_EQ(outer.Value(), before);
  EXPECT_NE(&Registry::Global(),
            static_cast<Registry*>(nullptr));  // restored and usable
}

TEST(ScopedRegistryTest, NestsLikeAStack) {
  ScopedRegistry a;
  Registry* a_ptr = &a.registry();
  {
    ScopedRegistry b;
    EXPECT_EQ(&Registry::Global(), &b.registry());
  }
  EXPECT_EQ(&Registry::Global(), a_ptr);
}

TEST(ConcurrencyTest, RelaxedIncrementsAndObservationsAreExact) {
  Registry reg;
  Counter& c = reg.GetCounter("kelpie_concurrent_total");
  Histogram& h = reg.GetHistogram("kelpie_concurrent_seconds", {2.0});
  constexpr size_t kIters = 4000;
  ThreadPool pool(4);
  ParallelFor(pool, kIters, [&](size_t) {
    c.Increment();
    h.Observe(1.0);
  });
  EXPECT_EQ(c.Value(), kIters);
  EXPECT_EQ(h.Count(), kIters);
  EXPECT_EQ(h.BucketCount(0), kIters);
  // 1.0 added kIters times is exact in double arithmetic.
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(kIters));
}

// ---------------------------------------------------------------------------
// Golden determinism contract (DESIGN §10): masked snapshots of the same
// seeded workload are byte-identical across thread counts. Deterministic
// families must agree exactly; wall-clock families are masked, but their
// series lists still compare — handles are resolved on schedule-invariant
// paths, so presence cannot depend on the schedule either.
// ---------------------------------------------------------------------------

std::string MaskedSnapshotAtThreads(size_t threads) {
  ScopedRegistry scoped;
  // Everything below instruments against the scoped registry. Training is
  // single-threaded by contract, so its metrics are identical by
  // construction; extraction and evaluation run with `threads` workers.
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);

  KelpieOptions options;
  options.num_threads = threads;
  options.builder.max_visits_per_size = 10;
  KelpieExplainer explainer(*model, dataset, options);

  Rng rng(3);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model, dataset, 2, rng);
  EXPECT_FALSE(predictions.empty());
  for (const Triple& p : predictions) {
    explainer.ExplainNecessary(p, PredictionTarget::kTail);
  }
  if (!predictions.empty()) {
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        *model, dataset, predictions[0], PredictionTarget::kTail, 3, rng);
    if (!conversion_set.empty()) {
      explainer.ExplainSufficient(predictions[0], PredictionTarget::kTail,
                                  conversion_set);
    }
  }

  EvalOptions eval;
  eval.num_threads = threads;
  EvaluateTest(*model, dataset, eval);

  return Registry::Global().TextExposition(/*mask_wall_clock=*/true);
}

TEST(GoldenSnapshotTest, MaskedExpositionByteIdenticalAcrossThreadCounts) {
  const std::string sequential = MaskedSnapshotAtThreads(1);
  const std::string parallel = MaskedSnapshotAtThreads(4);

  // Guard against a vacuously-equal comparison: the workload must actually
  // have populated the instrumented families.
  for (const char* family :
       {"kelpie_train_epochs_total", "kelpie_engine_post_trainings_total",
        "kelpie_builder_candidates_total", "kelpie_eval_ranks_total"}) {
    EXPECT_NE(sequential.find(family), std::string::npos) << family;
  }
  // Schedule-dependent raw counters are masked...
  EXPECT_NE(sequential.find("kelpie_engine_post_trainings_total"
                            "{kind=\"homologous\"} MASKED"),
            std::string::npos);
  // ...while replay-committed ones carry real values.
  EXPECT_EQ(sequential.find("kelpie_builder_candidates_total{kind=\"necessary"
                            "\",outcome=\"visited\",stage=\"1\"} MASKED"),
            std::string::npos);

  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace metrics
}  // namespace kelpie
