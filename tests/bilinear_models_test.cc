#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "models/complex.h"
#include "models/distmult.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(ComplExTest, ScoreMatchesHermitianProduct) {
  TrainConfig config;
  config.dim = 4;  // rank 2
  ComplEx model(2, 1, config);
  // h = (1+2i, 0), t = (3-1i, 0); relation left at zero -> score 0.
  auto h = model.MutableEntityEmbedding(0);
  h[0] = 1.0f;  // re_0
  h[2] = 2.0f;  // im_0
  auto t = model.MutableEntityEmbedding(1);
  t[0] = 3.0f;
  t[2] = -1.0f;
  EXPECT_NEAR(model.Score(Triple(0, 0, 1)), 0.0f, 1e-6);
}

TEST(ComplExTest, RankAccessor) {
  TrainConfig config;
  config.dim = 32;
  ComplEx model(5, 2, config);
  EXPECT_EQ(model.rank(), 16u);
  EXPECT_EQ(model.entity_dim(), 32u);
}

TEST(ComplExTest, CanModelAsymmetricRelations) {
  // After training on the toy data, born_in (asymmetric by construction)
  // should not score symmetrically.
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  Triple fact = dataset.train().front();  // a located_in fact
  Triple reversed(fact.tail, fact.relation, fact.head);
  EXPECT_NE(model->Score(fact), model->Score(reversed));
}

TEST(ComplExTest, TrainingLearnsCompositionalPattern) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  MetricsAccumulator acc;
  for (const Triple& t : dataset.test()) {
    acc.AddRank(FilteredTailRank(*model, dataset, t));
  }
  EXPECT_GT(acc.Mrr(), 0.5);
}

TEST(ComplExTest, KnownFactOutscoresCorruptions) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  // Training fact should score above the average corruption.
  Triple fact = dataset.train().back();
  double corrupt_mean = 0.0;
  int count = 0;
  for (EntityId e = 0; e < static_cast<EntityId>(dataset.num_entities());
       ++e) {
    if (e == fact.tail) continue;
    corrupt_mean += model->Score(Triple(fact.head, fact.relation, e));
    ++count;
  }
  corrupt_mean /= count;
  EXPECT_GT(model->Score(fact), corrupt_mean);
}

TEST(DistMultTest, ScoreIsTrilinearProduct) {
  TrainConfig config;
  config.dim = 3;
  DistMult model(2, 1, config);
  auto h = model.MutableEntityEmbedding(0);
  auto t = model.MutableEntityEmbedding(1);
  h[0] = 2.0f;
  h[1] = 1.0f;
  h[2] = -1.0f;
  t[0] = 0.5f;
  t[1] = 3.0f;
  t[2] = 2.0f;
  // Relation is zero -> score 0 regardless of entities.
  EXPECT_FLOAT_EQ(model.Score(Triple(0, 0, 1)), 0.0f);
}

TEST(DistMultTest, ScoreIsSymmetricInHeadAndTail) {
  // DistMult's well-known inherent symmetry: φ(h, r, t) == φ(t, r, h).
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kDistMult, dataset);
  for (const Triple& fact : dataset.test()) {
    Triple reversed(fact.tail, fact.relation, fact.head);
    EXPECT_NEAR(model->Score(fact), model->Score(reversed), 1e-4);
  }
}

TEST(DistMultTest, TrainingLearnsCompositionalPattern) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kDistMult, dataset);
  MetricsAccumulator acc;
  for (const Triple& t : dataset.test()) {
    acc.AddRank(FilteredTailRank(*model, dataset, t));
  }
  EXPECT_GT(acc.Mrr(), 0.4);
}

TEST(BilinearTest, RegularizationShrinksEmbeddings) {
  Dataset dataset = testing_util::MakeToyDataset();
  TrainConfig weak = testing_util::FastConfig(ModelKind::kComplEx);
  weak.regularization = 0.0f;
  // Adagrad's per-coordinate normalization makes mild regularization
  // non-monotone in the final norms; a dominating λ must shrink them.
  TrainConfig strong = weak;
  strong.regularization = 10.0f;
  ComplEx weak_model(dataset.num_entities(), dataset.num_relations(), weak);
  ComplEx strong_model(dataset.num_entities(), dataset.num_relations(),
                       strong);
  Rng r1(31), r2(31);
  weak_model.Train(dataset, r1);
  strong_model.Train(dataset, r2);
  auto total_norm = [&](const ComplEx& m) {
    double acc = 0.0;
    for (size_t e = 0; e < m.num_entities(); ++e) {
      for (float v : m.EntityEmbedding(static_cast<EntityId>(e))) {
        acc += std::fabs(v);
      }
    }
    return acc;
  };
  EXPECT_LT(total_norm(strong_model), total_norm(weak_model));
}

}  // namespace
}  // namespace kelpie
