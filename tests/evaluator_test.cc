#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kelpie {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
};

TEST_F(EvaluatorTest, EvaluatesBothDirectionsByDefault) {
  EvalResult result = EvaluateTest(*model_, *dataset_);
  EXPECT_EQ(result.tail_ranks.count(), dataset_->test().size());
  EXPECT_EQ(result.head_ranks.count(), dataset_->test().size());
}

TEST_F(EvaluatorTest, TailOnlyWhenHeadsDisabled) {
  EvalOptions options;
  options.include_heads = false;
  EvalResult result = EvaluateTest(*model_, *dataset_, options);
  EXPECT_EQ(result.head_ranks.count(), 0u);
  EXPECT_GT(result.tail_ranks.count(), 0u);
}

TEST_F(EvaluatorTest, CombinedMetricsAverageDirections) {
  EvalResult result = EvaluateTest(*model_, *dataset_);
  double expected_mrr =
      (result.tail_ranks.Mrr() + result.head_ranks.Mrr()) / 2.0;
  EXPECT_NEAR(result.Mrr(), expected_mrr, 1e-12);
  double expected_h1 =
      (result.tail_ranks.HitsAt(1) + result.head_ranks.HitsAt(1)) / 2.0;
  EXPECT_NEAR(result.HitsAt1(), expected_h1, 1e-12);
}

TEST_F(EvaluatorTest, TrainedModelBeatsUntrained) {
  auto untrained =
      CreateModel(ModelKind::kComplEx, *dataset_,
                  testing_util::FastConfig(ModelKind::kComplEx));
  // Initialize without training so scores are random.
  Rng rng(1);
  // (No Train call: embeddings are zero -> all scores equal -> worst-case
  // pessimistic ranks.)
  EvalResult random_result = EvaluateTest(*untrained, *dataset_);
  EvalResult trained_result = EvaluateTest(*model_, *dataset_);
  EXPECT_GT(trained_result.Mrr(), random_result.Mrr());
}

TEST_F(EvaluatorTest, EmptyFactListGivesEmptyResult) {
  EvalResult result = Evaluate(*model_, *dataset_, {});
  EXPECT_EQ(result.tail_ranks.count(), 0u);
  EXPECT_DOUBLE_EQ(result.Mrr(), 0.0);
}

}  // namespace
}  // namespace kelpie
