#include "models/model_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "ml/serialization.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class ModelStoreTest : public ::testing::TestWithParam<ModelKind> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_store_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::unique_ptr<Dataset> dataset_;
};

TEST_P(ModelStoreTest, SaveLoadRoundTripPreservesScores) {
  auto model = testing_util::TrainToyModel(GetParam(), *dataset_, 13);
  std::string path = (dir_ / "model.bin").string();
  ASSERT_TRUE(SaveModel(*model, GetParam(), path).ok());

  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Name(), model->Name());
  EXPECT_EQ((*loaded)->num_entities(), model->num_entities());
  EXPECT_EQ((*loaded)->num_relations(), model->num_relations());
  // Scores are preserved bit-for-bit.
  for (const Triple& t : dataset_->test()) {
    EXPECT_FLOAT_EQ((*loaded)->Score(t), model->Score(t));
  }
  // Full ranking agrees too.
  Triple probe = dataset_->test().front();
  std::vector<float> a(model->num_entities()), b(model->num_entities());
  model->ScoreAllTails(probe.head, probe.relation, a);
  (*loaded)->ScoreAllTails(probe.head, probe.relation, b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST_P(ModelStoreTest, LoadedModelSupportsPostTraining) {
  auto model = testing_util::TrainToyModel(GetParam(), *dataset_, 13);
  std::string path = (dir_ / "model.bin").string();
  ASSERT_TRUE(SaveModel(*model, GetParam(), path).ok());
  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  Triple probe = dataset_->test().front();
  std::vector<Triple> facts = dataset_->train_graph().FactsOf(probe.head);
  Rng rng1(5), rng2(5);
  std::vector<float> m1 =
      model->PostTrainMimic(*dataset_, probe.head, facts, rng1);
  std::vector<float> m2 =
      (*loaded)->PostTrainMimic(*dataset_, probe.head, facts, rng2);
  for (size_t i = 0; i < m1.size(); ++i) {
    EXPECT_FLOAT_EQ(m1[i], m2[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelStoreTest,
    ::testing::Values(ModelKind::kTransE, ModelKind::kComplEx,
                      ModelKind::kConvE, ModelKind::kDistMult,
                      ModelKind::kRotatE),
    [](const ::testing::TestParamInfo<ModelKind>& info) {
      return std::string(ModelKindName(info.param));
    });

TEST(ModelStoreErrorsTest, MissingFileFails) {
  Result<std::unique_ptr<LinkPredictionModel>> loaded =
      LoadModel("/nonexistent/kelpie/model.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(ModelStoreErrorsTest, GarbageFileRejected) {
  auto path = std::filesystem::temp_directory_path() / "kelpie_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a model";
  }
  Result<std::unique_ptr<LinkPredictionModel>> loaded =
      LoadModel(path.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(ModelStoreErrorsTest, TruncatedFileRejected) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 3);
  auto dir = std::filesystem::temp_directory_path();
  auto path = dir / "kelpie_truncate.bin";
  ASSERT_TRUE(SaveModel(*model, ModelKind::kTransE, path.string()).ok());
  // Truncate to half size.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  Result<std::unique_ptr<LinkPredictionModel>> loaded =
      LoadModel(path.string());
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Corruption matrix: every structural section of the file, truncated at its
// boundary and bit-flipped inside it, must be rejected by LoadModel.
// ---------------------------------------------------------------------------

class ModelStoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_corrupt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Dataset dataset = testing_util::MakeToyDataset();
    auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset, 3);
    path_ = (dir_ / "model.bin").string();
    ASSERT_TRUE(
        SaveModel(*model, ModelKind::kComplEx, path_, &sections_).ok());
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes_ = std::move(buf).str();
    ASSERT_FALSE(sections_.empty());
    ASSERT_EQ(sections_.back().name, "crc");
    ASSERT_EQ(sections_.back().end_offset, bytes_.size());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteBytes(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }

  std::filesystem::path dir_;
  std::string path_;
  std::string bytes_;
  std::vector<ModelFileSection> sections_;
};

TEST_F(ModelStoreCorruptionTest, SectionsCoverWholeFileInOrder) {
  size_t prev = 0;
  for (const ModelFileSection& s : sections_) {
    EXPECT_GT(s.end_offset, prev) << s.name;
    prev = s.end_offset;
  }
  EXPECT_EQ(prev, bytes_.size());
}

TEST_F(ModelStoreCorruptionTest, TruncationAtEverySectionBoundaryRejected) {
  for (const ModelFileSection& s : sections_) {
    if (s.end_offset == bytes_.size()) continue;  // full file is valid
    WriteBytes(bytes_.substr(0, s.end_offset));
    Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path_);
    EXPECT_FALSE(loaded.ok()) << "truncated after section " << s.name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "truncated after section " << s.name << ": "
        << loaded.status().ToString();
  }
}

TEST_F(ModelStoreCorruptionTest, BitFlipInEverySectionRejected) {
  for (const ModelFileSection& s : sections_) {
    std::string corrupted = bytes_;
    corrupted[s.end_offset - 1] ^= 0x01;  // last byte of the section
    WriteBytes(corrupted);
    Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path_);
    EXPECT_FALSE(loaded.ok()) << "bit flip in section " << s.name;
    EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss)
        << "bit flip in section " << s.name << ": "
        << loaded.status().ToString();
  }
}

TEST_F(ModelStoreCorruptionTest, FlippedMagicIsNotAModelFile) {
  std::string corrupted = bytes_;
  corrupted[0] ^= 0x01;
  WriteBytes(corrupted);
  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelStoreCorruptionTest, UncorruptedBaselineStillLoads) {
  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path_);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST(ModelStoreCrashTest, FailedSaveLeavesPreviousModelIntact) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto dir = std::filesystem::temp_directory_path() /
             ("kelpie_crash_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::string path = (dir / "model.bin").string();

  auto original = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 3);
  ASSERT_TRUE(SaveModel(*original, ModelKind::kTransE, path).ok());

  // A save that dies mid-write must not clobber the existing file.
  auto replacement =
      testing_util::TrainToyModel(ModelKind::kTransE, dataset, 99);
  failpoint::Arm("atomic_file.partial_write");
  EXPECT_FALSE(SaveModel(*replacement, ModelKind::kTransE, path).ok());
  failpoint::DisarmAll();

  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (const Triple& t : dataset.test()) {
    EXPECT_FLOAT_EQ((*loaded)->Score(t), original->Score(t));
  }
  std::filesystem::remove_all(dir);
}

TEST(SerializationTest, MatrixRoundTrip) {
  Matrix m(3, 4);
  for (size_t i = 0; i < m.size(); ++i) {
    m.Data()[i] = static_cast<float>(i) * 0.5f;
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteMatrix(stream, m).ok());
  Matrix restored;
  ASSERT_TRUE(ReadMatrix(stream, restored).ok());
  EXPECT_EQ(restored.rows(), 3u);
  EXPECT_EQ(restored.cols(), 4u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(restored.Data()[i], m.Data()[i]);
  }
}

TEST(SerializationTest, StringAndU64RoundTrip) {
  std::stringstream stream;
  ASSERT_TRUE(WriteU64(stream, 0xdeadbeefULL).ok());
  ASSERT_TRUE(WriteString(stream, "kelpie").ok());
  uint64_t v = 0;
  std::string s;
  ASSERT_TRUE(ReadU64(stream, v).ok());
  ASSERT_TRUE(ReadString(stream, s).ok());
  EXPECT_EQ(v, 0xdeadbeefULL);
  EXPECT_EQ(s, "kelpie");
}

TEST(SerializationTest, CorruptLengthHeaderRejected) {
  std::stringstream stream;
  ASSERT_TRUE(WriteU64(stream, 1ull << 60).ok());  // absurd string length
  std::string s;
  Status status = ReadString(stream, s);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace kelpie
