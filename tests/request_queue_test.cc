// The serving layer's waiting room: bounded admission (TryPush never
// blocks; rejection is the shed signal and must leave the caller's item
// intact), batch coalescing (PopBatch takes everything queued up to
// max_batch), and close-and-drain shutdown.
#include "serve/request_queue.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace kelpie {
namespace serve {
namespace {

TEST(RequestQueueTest, PushPopRoundTripInFifoOrder) {
  RequestQueue<int> queue;
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.depth(), 3u);
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 0), 3u);
  EXPECT_EQ(batch, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(RequestQueueTest, MaxBatchCapsTheCoalescedTake) {
  RequestQueue<int> queue;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(int(i)));
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 2), 2u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1}));
  EXPECT_EQ(queue.PopBatch(&batch, 2), 2u);
  EXPECT_EQ(batch, (std::vector<int>{2, 3}));
  EXPECT_EQ(queue.PopBatch(&batch, 2), 1u);
  EXPECT_EQ(batch, (std::vector<int>{4}));
}

TEST(RequestQueueTest, BoundedQueueShedsBeyondMaxDepth) {
  RequestQueue<int> queue(2);
  EXPECT_EQ(queue.max_depth(), 2u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  // Draining one slot re-opens admission.
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 1), 1u);
  EXPECT_TRUE(queue.TryPush(3));
}

// The shed path fulfils the promise the rejected request carries, so a
// rejected move-in must leave the item untouched (not moved-from).
TEST(RequestQueueTest, RejectedItemIsLeftIntact) {
  RequestQueue<std::unique_ptr<std::string>> queue(1);
  EXPECT_TRUE(queue.TryPush(std::make_unique<std::string>("first")));
  auto second = std::make_unique<std::string>("second");
  EXPECT_FALSE(queue.TryPush(std::move(second)));
  ASSERT_NE(second, nullptr) << "rejection must not consume the item";
  EXPECT_EQ(*second, "second");
}

TEST(RequestQueueTest, CloseRejectsPushesAndDrainsRemainder) {
  RequestQueue<int> queue;
  EXPECT_TRUE(queue.TryPush(7));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(8));
  std::vector<int> batch;
  EXPECT_EQ(queue.PopBatch(&batch, 0), 1u);
  EXPECT_EQ(batch, (std::vector<int>{7}));
  // Closed and drained: consumers get their exit signal, repeatedly.
  EXPECT_EQ(queue.PopBatch(&batch, 0), 0u);
  EXPECT_EQ(queue.PopBatch(&batch, 0), 0u);
}

TEST(RequestQueueTest, PopBlocksUntilAPushArrives) {
  RequestQueue<int> queue;
  std::vector<int> batch;
  std::thread consumer([&] { queue.PopBatch(&batch, 0); });
  queue.TryPush(42);
  consumer.join();
  EXPECT_EQ(batch, (std::vector<int>{42}));
}

// Concurrent producers and consumers: every accepted item comes out exactly
// once, across any batch partitioning, and Close() releases all consumers.
TEST(RequestQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  RequestQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (queue.PopBatch(&batch, 16) > 0) {
        for (int v : batch) {
          sum.fetch_add(v);
          popped.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.TryPush(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum.load(), static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace serve
}  // namespace kelpie
