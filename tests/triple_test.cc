#include "kgraph/triple.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(TripleTest, EqualityAndInequality) {
  Triple a(1, 2, 3), b(1, 2, 3), c(1, 2, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TripleTest, LexicographicOrder) {
  EXPECT_LT(Triple(1, 2, 3), Triple(2, 0, 0));
  EXPECT_LT(Triple(1, 2, 3), Triple(1, 3, 0));
  EXPECT_LT(Triple(1, 2, 3), Triple(1, 2, 4));
  EXPECT_FALSE(Triple(1, 2, 3) < Triple(1, 2, 3));
}

TEST(TripleTest, MentionsChecksBothSides) {
  Triple t(5, 1, 9);
  EXPECT_TRUE(t.Mentions(5));
  EXPECT_TRUE(t.Mentions(9));
  EXPECT_FALSE(t.Mentions(1));  // relation id, not an entity
  EXPECT_FALSE(t.Mentions(7));
}

TEST(TripleTest, KeyIsInjectiveOnDistinctTriples) {
  std::unordered_set<uint64_t> keys;
  for (EntityId h = 0; h < 20; ++h) {
    for (RelationId r = 0; r < 5; ++r) {
      for (EntityId t = 0; t < 20; ++t) {
        EXPECT_TRUE(keys.insert(Triple(h, r, t).Key()).second);
      }
    }
  }
}

TEST(TripleTest, HashUsableInUnorderedSet) {
  std::unordered_set<Triple, TripleHash> set;
  set.insert(Triple(1, 2, 3));
  set.insert(Triple(1, 2, 3));
  set.insert(Triple(3, 2, 1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Triple(1, 2, 3)));
}

TEST(TripleTest, DefaultIsSentinel) {
  Triple t;
  EXPECT_EQ(t.head, kNoEntity);
  EXPECT_EQ(t.relation, kNoRelation);
  EXPECT_EQ(t.tail, kNoEntity);
}

}  // namespace
}  // namespace kelpie
