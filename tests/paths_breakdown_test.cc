// Tests for the path-reconstruction utility, the ExplainWithPaths renderer
// and the per-relation evaluation breakdown.
#include <gtest/gtest.h>

#include "core/explanation.h"
#include "core/kelpie.h"
#include "eval/breakdown.h"
#include "kgraph/paths.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

GraphIndex ChainGraph() {
  // 0 -r0-> 1 -r1-> 2; 3 -r0-> 2 (so 0..3 connected); 4 isolated.
  return GraphIndex({Triple(0, 0, 1), Triple(1, 1, 2), Triple(3, 0, 2)}, 5);
}

TEST(ShortestPathTest, ReconstructsForwardChain) {
  GraphIndex g = ChainGraph();
  std::vector<PathStep> path = ShortestPath(g, 0, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].triple, Triple(0, 0, 1));
  EXPECT_TRUE(path[0].forward);
  EXPECT_EQ(path[1].triple, Triple(1, 1, 2));
  EXPECT_TRUE(path[1].forward);
}

TEST(ShortestPathTest, WalksEdgesBackwardWhenNeeded) {
  GraphIndex g = ChainGraph();
  // 0 -> ... -> 3 requires traversing <3, r0, 2> against its direction.
  std::vector<PathStep> path = ShortestPath(g, 0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_FALSE(path[2].forward);
  EXPECT_EQ(path[2].triple, Triple(3, 0, 2));
}

TEST(ShortestPathTest, PathLengthMatchesDistanceOracle) {
  GraphIndex g = ChainGraph();
  for (EntityId from = 0; from < 4; ++from) {
    for (EntityId to = 0; to < 4; ++to) {
      if (from == to) continue;
      int32_t expected = ShortestPathLength(g, from, to);
      std::vector<PathStep> path = ShortestPath(g, from, to);
      EXPECT_EQ(static_cast<int32_t>(path.size()), expected)
          << from << "->" << to;
    }
  }
}

TEST(ShortestPathTest, PathIsContiguous) {
  GraphIndex g = ChainGraph();
  std::vector<PathStep> path = ShortestPath(g, 0, 3);
  EntityId cur = 0;
  for (const PathStep& step : path) {
    EntityId from = step.forward ? step.triple.head : step.triple.tail;
    EntityId to = step.forward ? step.triple.tail : step.triple.head;
    EXPECT_EQ(from, cur);
    cur = to;
  }
  EXPECT_EQ(cur, 3);
}

TEST(ShortestPathTest, DisconnectedAndTrivialCases) {
  GraphIndex g = ChainGraph();
  EXPECT_TRUE(ShortestPath(g, 0, 4).empty());  // unreachable
  EXPECT_TRUE(ShortestPath(g, 2, 2).empty());  // trivial
}

TEST(ShortestPathTest, IgnoredTripleForcesDetour) {
  // Two routes 0 -> 2: direct and via 1.
  GraphIndex g({Triple(0, 0, 2), Triple(0, 0, 1), Triple(1, 0, 2)}, 3);
  Triple direct(0, 0, 2);
  std::vector<PathStep> path = ShortestPath(g, 0, 2, &direct);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].triple, Triple(0, 0, 1));
}

TEST(ExplainWithPathsTest, AnnotatesEvidenceWithSupportingPath) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  Explanation x;
  x.kind = ExplanationKind::kNecessary;
  // Use the person's born_in fact: City -> Country is the supporting path.
  for (const Triple& f : dataset.train_graph().FactsOf(prediction.head)) {
    if (f.relation == 0) {
      x.facts = {f};
      break;
    }
  }
  ASSERT_FALSE(x.facts.empty());
  std::string rendered = ExplainWithPaths(x, dataset, prediction,
                                          PredictionTarget::kTail);
  EXPECT_NE(rendered.find("born_in"), std::string::npos);
  EXPECT_NE(rendered.find("via "), std::string::npos);
  EXPECT_NE(rendered.find("located_in"), std::string::npos);
}

TEST(ExplainWithPathsTest, DirectMentionAnnotated) {
  Dataset dataset = testing_util::MakeToyDataset();
  Triple prediction = dataset.test().front();
  Explanation x;
  // A synthetic fact that mentions the predicted entity directly.
  x.facts = {Triple(prediction.head, 0, prediction.tail)};
  std::string rendered = ExplainWithPaths(x, dataset, prediction,
                                          PredictionTarget::kTail);
  EXPECT_NE(rendered.find("directly"), std::string::npos);
}

TEST(BreakdownTest, GroupsByRelationAndSortsByCount) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  std::vector<RelationMetrics> rows =
      EvaluatePerRelation(*model, dataset, dataset.test());
  // Toy test facts are all nationality.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(dataset.relations().NameOf(rows[0].relation), "nationality");
  EXPECT_EQ(rows[0].num_facts, dataset.test().size());
  EXPECT_GE(rows[0].mrr, 0.0);
  EXPECT_LE(rows[0].mrr, 1.0);
}

TEST(BreakdownTest, AggregateMatchesOverallEvaluator) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  std::vector<RelationMetrics> rows =
      EvaluatePerRelation(*model, dataset, dataset.test());
  EvalOptions options;
  options.include_heads = false;
  EvalResult overall = EvaluateTest(*model, dataset, options);
  // Single relation -> the breakdown row must equal the overall metrics.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NEAR(rows[0].mrr, overall.Mrr(), 1e-12);
  EXPECT_NEAR(rows[0].hits_at_1, overall.HitsAt1(), 1e-12);
}

TEST(BreakdownTest, IncludeHeadsDoublesRanksButNotFactCount) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  std::vector<RelationMetrics> rows = EvaluatePerRelation(
      *model, dataset, dataset.test(), /*include_heads=*/true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].num_facts, dataset.test().size());
}

TEST(BreakdownTest, FormatContainsNamesAndMetrics) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  std::vector<RelationMetrics> rows =
      EvaluatePerRelation(*model, dataset, dataset.test());
  std::string table = FormatBreakdown(rows, dataset);
  EXPECT_NE(table.find("nationality"), std::string::npos);
  EXPECT_NE(table.find("H@1="), std::string::npos);
  EXPECT_NE(table.find("MRR="), std::string::npos);
}

TEST(BreakdownTest, EmptyFactsGiveEmptyBreakdown) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  EXPECT_TRUE(EvaluatePerRelation(*model, dataset, {}).empty());
}

}  // namespace
}  // namespace kelpie
