// The serve wire format: flat newline-delimited JSON. Parsing must accept
// exactly the documented subset (flat object, unknown keys ignored) with
// byte-offset diagnostics, and rendering must be deterministic — the
// serve-smoke CI job byte-compares served responses against one-shot CLI
// output, so these strings are a compatibility surface.
#include "serve/line_protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace kelpie {
namespace serve {
namespace {

// ------------------------------------------------------------- parsing ----

TEST(ParseRequestLineTest, ScoreRequestWithAllFields) {
  Result<LineRequest> r = ParseRequestLine(
      R"({"id":7,"op":"score","head":"Person_8","relation":"nationality",)"
      R"("tail":"Country_4","shed_after":0.25})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->id, 7u);
  EXPECT_EQ(r->op, "score");
  EXPECT_EQ(r->head, "Person_8");
  EXPECT_EQ(r->relation, "nationality");
  EXPECT_EQ(r->tail, "Country_4");
  EXPECT_DOUBLE_EQ(r->shed_after_seconds, 0.25);
  // Explain-only fields keep their defaults.
  EXPECT_FALSE(r->sufficient);
  EXPECT_FALSE(r->head_query);
  EXPECT_EQ(r->work_budget, 0u);
  EXPECT_DOUBLE_EQ(r->timeout_seconds, 0.0);
}

TEST(ParseRequestLineTest, ExplainRequestWithLimits) {
  Result<LineRequest> r = ParseRequestLine(
      R"({"id":2,"op":"explain","head":"a","relation":"b","tail":"c",)"
      R"("sufficient":true,"head_query":true,"work_budget":200,)"
      R"("timeout":1.5})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->sufficient);
  EXPECT_TRUE(r->head_query);
  EXPECT_EQ(r->work_budget, 200u);
  EXPECT_DOUBLE_EQ(r->timeout_seconds, 1.5);
  // No shed_after means no admission deadline.
  EXPECT_LT(r->shed_after_seconds, 0.0);
}

TEST(ParseRequestLineTest, ControlOpsNeedNoTriple) {
  for (const char* op : {"ping", "stats", "shutdown"}) {
    Result<LineRequest> r = ParseRequestLine(
        std::string(R"({"id":1,"op":")") + op + R"("})");
    ASSERT_TRUE(r.ok()) << op << ": " << r.status().ToString();
    EXPECT_EQ(r->op, op);
  }
}

TEST(ParseRequestLineTest, UnknownKeysAreIgnoredForForwardCompatibility) {
  Result<LineRequest> r = ParseRequestLine(
      R"({"id":1,"op":"ping","future_field":"x","another":3,"flag":null})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParseRequestLineTest, EscapesInStringsRoundTrip) {
  Result<LineRequest> r = ParseRequestLine(
      R"({"id":1,"op":"score","head":"a\tb","relation":"r\"q\\","tail":"t\n"})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->head, "a\tb");
  EXPECT_EQ(r->relation, "r\"q\\");
  EXPECT_EQ(r->tail, "t\n");
}

TEST(ParseRequestLineTest, RejectsMalformedLines) {
  // Each entry: line, substring expected in the diagnostic.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"", "expected '{'"},
      {"not json", "expected '{'"},
      {R"({"id":1,"op":"score"} trailing)", "trailing bytes"},
      {R"({"id":1})", "missing \"op\""},
      {R"({"id":1,"op":"frobnicate"})", "unknown op"},
      {R"({"id":1,"op":"score"})", "needs \"head\""},
      {R"({"id":1,"op":"explain","head":"a","relation":"b"})",
       "needs \"head\""},
      {R"({"id":1,"op":"ping","nested":{"x":1}})", "nested"},
      {R"({"id":1,"op":"ping","arr":[1]})", "nested"},
      {R"({"id":-1,"op":"ping"})", "non-negative"},
      {R"({"id":1,"op":"ping","work_budget":-5})", "non-negative"},
      {R"({"id":1,"op":"explain","head":"a","relation":"b","tail":"c",)"
       R"("timeout":-1})",
       "non-negative"},
      {R"({"id":1,"op":"ping","sufficient":"yes"})", "must be a boolean"},
      {R"({"id":1,"op":"ping","timeout":"fast"})", "must be a number"},
      {R"({"id":1,"op":"ping","head":"unterminated)", "unterminated"},
      {R"({"id":1,"op":"ping","head":"bad\Aescape"})", "escape"},
  };
  for (const auto& [line, want] : cases) {
    Result<LineRequest> r = ParseRequestLine(line);
    ASSERT_FALSE(r.ok()) << "accepted: " << line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
    EXPECT_NE(r.status().message().find(want), std::string::npos)
        << "diagnostic for `" << line << "` was: " << r.status().message();
  }
}

TEST(PeekLineIdTest, ExtractsIdWithoutFullParse) {
  EXPECT_EQ(PeekLineId(R"({"id":42,"op":"ping"})"), 42u);
  EXPECT_EQ(PeekLineId(R"({"ok":false,"id":7})"), 7u);
  EXPECT_EQ(PeekLineId("garbage without an id"), 0u);
  EXPECT_EQ(PeekLineId(""), 0u);
}

// ----------------------------------------------------------- rendering ----

TEST(ResponseLineTest, ScoreIsRoundTripPrecise) {
  EXPECT_EQ(ScoreResponseLine(3, 0.5f),
            R"({"id":3,"ok":true,"op":"score","score":0.5})");
  // %.17g spells non-dyadic floats exactly; the bytes are the contract.
  EXPECT_EQ(ScoreResponseLine(1, 0.1f),
            R"({"id":1,"ok":true,"op":"score","score":0.10000000149011612})");
}

TEST(ResponseLineTest, ControlResponses) {
  EXPECT_EQ(PingResponseLine(4), R"({"id":4,"ok":true,"op":"ping"})");
  EXPECT_EQ(ShutdownResponseLine(9),
            R"({"id":9,"ok":true,"op":"shutdown"})");
  EXPECT_EQ(StatsResponseLine(5, 3, 2, 256),
            R"({"id":5,"ok":true,"op":"stats","queue_depth":3,)"
            R"("pool_size":2,"max_queue_depth":256})");
}

TEST(ResponseLineTest, ErrorCarriesCodeAndEscapedMessage) {
  EXPECT_EQ(
      ErrorResponseLine(8, Status::Unavailable("queue \"full\"")),
      R"({"id":8,"ok":false,"code":"Unavailable","error":"queue \"full\""})");
  EXPECT_EQ(ErrorResponseLine(0, Status::DeadlineExceeded("late")),
            R"({"id":0,"ok":false,"code":"DeadlineExceeded","error":"late"})");
}

TEST(ResponseLineTest, ExplainRendersNamesAndOmitsWallClockFields) {
  Dataset dataset = testing_util::MakeToyDataset();
  const int32_t person = dataset.entities().Find("Person_3").value();
  const int32_t born = dataset.relations().Find("born_in").value();
  const int32_t city = dataset.entities().Find("City_3").value();

  Explanation x;
  x.kind = ExplanationKind::kNecessary;
  x.facts = {Triple(person, born, city)};
  x.relevance = 1.5;
  x.accepted = true;
  x.completeness = Completeness::kComplete;
  x.skipped_candidates = 2;
  // Schedule-dependent fields must never reach the wire.
  x.post_trainings = 999;
  x.seconds = 123.456;

  EXPECT_EQ(ExplainResponseLine(6, x, {}, dataset),
            R"({"id":6,"ok":true,"op":"explain","kind":"necessary",)"
            R"("accepted":true,"completeness":"Complete","relevance":1.5,)"
            R"("facts":["Person_3\tborn_in\tCity_3"],"skipped":2})");
}

TEST(ResponseLineTest, SufficientExplainIncludesConversionSet) {
  Dataset dataset = testing_util::MakeToyDataset();
  Explanation x;
  x.kind = ExplanationKind::kSufficient;
  x.completeness = Completeness::kTruncatedBudget;
  std::vector<EntityId> conversion = {
      dataset.entities().Find("Person_1").value(),
      dataset.entities().Find("Person_2").value()};

  const std::string line = ExplainResponseLine(1, x, conversion, dataset);
  EXPECT_EQ(line,
            R"({"id":1,"ok":true,"op":"explain","kind":"sufficient",)"
            R"("accepted":false,"completeness":"TruncatedBudget",)"
            R"("relevance":0,"facts":[],"skipped":0,)"
            R"("conversion":["Person_1","Person_2"]})");
}

// The client orders responses by PeekLineId, so every renderer must emit an
// id the peek recovers.
TEST(ResponseLineTest, PeekRecoversTheIdOfEveryRenderedLine) {
  uint64_t id = 1;
  for (const std::string& line :
       {PingResponseLine(1), ShutdownResponseLine(2),
        StatsResponseLine(3, 0, 1, 0), ScoreResponseLine(4, 1.25f),
        ErrorResponseLine(5, Status::Internal("x"))}) {
    EXPECT_EQ(PeekLineId(line), id) << line;
    ++id;
  }
}

}  // namespace
}  // namespace serve
}  // namespace kelpie
