#include "core/relevance_engine.h"

#include <thread>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "eval/ranking.h"
#include "math/quant.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class RelevanceEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    // Pick a test prediction the model actually gets right, so relevance
    // semantics are meaningful.
    for (const Triple& t : dataset_->test()) {
      if (FilteredTailRank(*model_, *dataset_, t) == 1) {
        prediction_ = t;
        found_ = true;
        break;
      }
    }
  }

  Triple BornInFactOf(EntityId person) const {
    for (const Triple& f : dataset_->train_graph().FactsOf(person)) {
      if (f.relation == 0 && f.head == person) return f;  // born_in
    }
    return Triple();
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  Triple prediction_;
  bool found_ = false;
};

TEST_F(RelevanceEngineTest, NecessaryRelevanceOfKeyFactIsHigh) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  Triple born = BornInFactOf(prediction_.head);
  ASSERT_NE(born.head, kNoEntity);
  double key_rel = engine.NecessaryRelevance(
      prediction_, PredictionTarget::kTail, {born});
  // Removing the born_in fact removes the entire evidence chain for the
  // nationality prediction; the rank should deteriorate.
  EXPECT_GT(key_rel, 0.0);
}

TEST_F(RelevanceEngineTest, NecessaryRelevanceBoundedByEntityCount) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  Triple born = BornInFactOf(prediction_.head);
  double rel = engine.NecessaryRelevance(prediction_,
                                         PredictionTarget::kTail, {born});
  EXPECT_LE(rel, static_cast<double>(dataset_->num_entities()) - 1.0);
  EXPECT_GE(rel, -(static_cast<double>(dataset_->num_entities()) - 1.0));
}

TEST_F(RelevanceEngineTest, EmptyCandidateHasNearZeroNecessaryRelevance) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  // Removing nothing compares a homologous mimic against another
  // homologous mimic; the expected deterioration is ~0 (post-training
  // noise allows small fluctuations).
  double rel = engine.NecessaryRelevance(prediction_,
                                         PredictionTarget::kTail, {});
  EXPECT_LT(std::abs(rel), 8.0);
}

TEST_F(RelevanceEngineTest, PostTrainingCountIncreases) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  EXPECT_EQ(engine.post_training_count(), 0u);
  Triple born = BornInFactOf(prediction_.head);
  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  // One homologous + one non-homologous mimic.
  EXPECT_EQ(engine.post_training_count(), 2u);
  // The homologous mimic is cached for the same prediction.
  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  EXPECT_EQ(engine.post_training_count(), 3u);
}

TEST_F(RelevanceEngineTest, ClearCachesForcesRecomputation) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  Triple born = BornInFactOf(prediction_.head);
  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  size_t after_first = engine.post_training_count();
  engine.ClearCaches();
  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  EXPECT_EQ(engine.post_training_count(), after_first + 2);
}

TEST_F(RelevanceEngineTest, ConversionSetExcludesAlreadyCorrectEntities) {
  ASSERT_TRUE(found_);
  RelevanceEngineOptions options;
  options.conversion_set_size = 5;
  RelevanceEngine engine(*model_, *dataset_, options);
  std::vector<EntityId> set =
      engine.SampleConversionSet(prediction_, PredictionTarget::kTail);
  EXPECT_LE(set.size(), 5u);
  for (EntityId c : set) {
    EXPECT_NE(c, prediction_.head);
    Triple converted = prediction_;
    converted.head = c;
    EXPECT_FALSE(dataset_->IsKnown(converted));
    EXPECT_GT(FilteredTailRank(*model_, *dataset_, converted), 1);
  }
}

TEST_F(RelevanceEngineTest, SufficientRelevanceOfFullFactSetIsPositive) {
  ASSERT_TRUE(found_);
  RelevanceEngineOptions options;
  options.conversion_set_size = 4;
  RelevanceEngine engine(*model_, *dataset_, options);
  std::vector<EntityId> set =
      engine.SampleConversionSet(prediction_, PredictionTarget::kTail);
  ASSERT_FALSE(set.empty());
  // Transfer the strongest evidence: the whole fact set of the source.
  std::vector<Triple> facts =
      dataset_->train_graph().FactsOf(prediction_.head);
  double rel = engine.SufficientRelevance(prediction_,
                                          PredictionTarget::kTail, facts,
                                          set);
  EXPECT_GT(rel, 0.0);
  EXPECT_LE(rel, 1.0 + 1e-9);
}

TEST_F(RelevanceEngineTest, SufficientRelevanceEmptySetIsZero) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  double rel = engine.SufficientRelevance(
      prediction_, PredictionTarget::kTail, {BornInFactOf(prediction_.head)},
      {});
  EXPECT_DOUBLE_EQ(rel, 0.0);
}

TEST_F(RelevanceEngineTest, ConcurrentNecessaryRelevanceIsSingleFlight) {
  ASSERT_TRUE(found_);
  RelevanceEngine engine(*model_, *dataset_, {});
  const Triple born = BornInFactOf(prediction_.head);
  ASSERT_NE(born.head, kNoEntity);
  // The sequential reference value.
  RelevanceEngine reference(*model_, *dataset_, {});
  const double expected = reference.NecessaryRelevance(
      prediction_, PredictionTarget::kTail, {born});

  constexpr size_t kThreads = 8;
  std::vector<double> rels(kThreads, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      rels[i] = engine.NecessaryRelevance(prediction_,
                                          PredictionTarget::kTail, {born});
    });
  }
  for (std::thread& t : threads) t.join();

  // Post-trainings seeded from (seed, entity, fact set) make every thread
  // compute the exact same relevance as the sequential engine.
  for (size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(rels[i], expected) << "thread " << i;
  }
  // Single-flight on the homologous baseline: exactly one baseline
  // post-training ran, plus one removal post-training per thread.
  EXPECT_EQ(engine.post_training_count(), kThreads + 1);
}

TEST_F(RelevanceEngineTest, ParallelSufficientMatchesSequentialBitwise) {
  ASSERT_TRUE(found_);
  RelevanceEngineOptions sampler_options;
  sampler_options.conversion_set_size = 6;
  RelevanceEngine sampler(*model_, *dataset_, sampler_options);
  const std::vector<EntityId> set =
      sampler.SampleConversionSet(prediction_, PredictionTarget::kTail);
  ASSERT_FALSE(set.empty());
  const std::vector<Triple> candidate = {BornInFactOf(prediction_.head)};

  RelevanceEngineOptions sequential;
  sequential.num_threads = 1;
  RelevanceEngineOptions parallel;
  parallel.num_threads = 4;
  RelevanceEngine engine1(*model_, *dataset_, sequential);
  RelevanceEngine engine4(*model_, *dataset_, parallel);
  const double a = engine1.SufficientRelevance(
      prediction_, PredictionTarget::kTail, candidate, set);
  const double b = engine4.SufficientRelevance(
      prediction_, PredictionTarget::kTail, candidate, set);
  EXPECT_EQ(a, b);  // bitwise: contributions accumulate in set order
  EXPECT_EQ(engine1.post_training_count(), engine4.post_training_count());
}

TEST_F(RelevanceEngineTest, RepeatedPostTrainingsAreScheduleIndependent) {
  ASSERT_TRUE(found_);
  // Calling the same relevance twice (fresh caches in between) must yield
  // the same value: the post-training RNG depends only on the fact set,
  // not on how many post-trainings ran before it.
  RelevanceEngine engine(*model_, *dataset_, {});
  const Triple born = BornInFactOf(prediction_.head);
  const double first = engine.NecessaryRelevance(
      prediction_, PredictionTarget::kTail, {born});
  engine.ClearCaches();
  const double second = engine.NecessaryRelevance(
      prediction_, PredictionTarget::kTail, {born});
  EXPECT_EQ(first, second);
}

// At num_threads = 1 the engine's raw work counters are exact (DESIGN §10):
// no speculative chunk remainder, no contended cache entries. These tests
// pin the per-call arithmetic the registry must report.
TEST_F(RelevanceEngineTest, SequentialNecessaryCountersAreExact) {
  ASSERT_TRUE(found_);
  metrics::ScopedRegistry scoped;
  // Constructed after the swap: the engine resolves its handles from the
  // scoped registry.
  RelevanceEngine engine(*model_, *dataset_, {});
  const Triple born = BornInFactOf(prediction_.head);
  ASSERT_NE(born.head, kNoEntity);
  metrics::Registry& reg = metrics::Registry::Global();
  auto count = [&reg](const char* name, const metrics::Labels& labels) {
    return reg.GetCounter(name, labels).Value();
  };

  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  // First call: homologous baseline is a cache miss (one post-training)
  // plus the removal mimic.
  EXPECT_EQ(count("kelpie_engine_post_trainings_total",
                  {{"kind", "homologous"}}),
            1u);
  EXPECT_EQ(count("kelpie_engine_post_trainings_total",
                  {{"kind", "necessary"}}),
            1u);
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "miss"}}), 1u);
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "hit"}}), 0u);

  engine.NecessaryRelevance(prediction_, PredictionTarget::kTail, {born});
  // Second call: the baseline is served from the cache; only the removal
  // mimic re-runs.
  EXPECT_EQ(count("kelpie_engine_post_trainings_total",
                  {{"kind", "homologous"}}),
            1u);
  EXPECT_EQ(count("kelpie_engine_post_trainings_total",
                  {{"kind", "necessary"}}),
            2u);
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "miss"}}), 1u);
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "hit"}}), 1u);
  // A sequential engine can never block behind another computation.
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "wait"}}), 0u);
  EXPECT_EQ(count("kelpie_engine_diverged_post_trainings_total", {}), 0u);
  // The registry total is the engine's own ledger, series-by-series.
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_engine_post_trainings_total"),
            engine.post_training_count());
}

TEST_F(RelevanceEngineTest, SequentialSufficientCountersAreExact) {
  ASSERT_TRUE(found_);
  metrics::ScopedRegistry scoped;
  RelevanceEngineOptions options;
  options.conversion_set_size = 4;
  RelevanceEngine engine(*model_, *dataset_, options);
  const std::vector<EntityId> set =
      engine.SampleConversionSet(prediction_, PredictionTarget::kTail);
  ASSERT_FALSE(set.empty());
  metrics::Registry& reg = metrics::Registry::Global();
  auto count = [&reg](const char* name, const metrics::Labels& labels) {
    return reg.GetCounter(name, labels).Value();
  };
  // Sampling ranks against the original model — no post-training work yet.
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_engine_post_trainings_total"), 0u);

  engine.SufficientRelevance(prediction_, PredictionTarget::kTail,
                             {BornInFactOf(prediction_.head)}, set);
  // One homologous baseline per conversion entity, each a fresh cache miss.
  EXPECT_EQ(count("kelpie_engine_post_trainings_total",
                  {{"kind", "homologous"}}),
            set.size());
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "miss"}}),
            set.size());
  EXPECT_EQ(count("kelpie_engine_rank_cache_total", {{"event", "hit"}}), 0u);
  // Entities whose baseline already ranks 1 short-circuit before the
  // addition mimic, so the sufficient count is bounded by |C|.
  EXPECT_LE(count("kelpie_engine_post_trainings_total",
                  {{"kind", "sufficient"}}),
            set.size());
  EXPECT_EQ(reg.CounterFamilyTotal("kelpie_engine_post_trainings_total"),
            engine.post_training_count());
}

// The easiest silent-wrongness bug in the quantized-shortlist design: an
// entity row mutates (post-training-style writes, baseline perturbations)
// and the next sweep is served from a stale int8 table, classifying
// candidates against embeddings that no longer exist. MutableEntityEmbedding
// bumps the Matrix version; the per-model TableCache must rebuild before
// the next sweep, keeping quantized ranks equal to exact ranks across the
// mutation.
TEST_F(RelevanceEngineTest, QuantizedTableInvalidatedByEntityRowMutation) {
  ASSERT_TRUE(found_);
  const RankingOptions on{true};
  const RankingOptions off{false};
  const int before_on = FilteredTailRank(*model_, *dataset_, prediction_, on);
  const int before_off =
      FilteredTailRank(*model_, *dataset_, prediction_, off);
  EXPECT_EQ(before_on, before_off);
  // The quantized table is now cached for the current embeddings.
  std::shared_ptr<const quant::QuantizedTable> cached =
      model_->QuantizedEntityTable();
  ASSERT_NE(cached, nullptr);

  // Pick a competitor the filter keeps, and overwrite its row with the
  // target's: an engineered exact tie that must worsen the rank by one —
  // but only if the sweep sees the *new* row.
  const auto& filtered =
      dataset_->KnownTails(prediction_.head, prediction_.relation);
  EntityId competitor = kNoEntity;
  for (size_t e = 0; e < model_->num_entities(); ++e) {
    EntityId id = static_cast<EntityId>(e);
    if (id != prediction_.tail && filtered.count(id) == 0) {
      competitor = id;
      break;
    }
  }
  ASSERT_NE(competitor, kNoEntity);
  std::span<const float> target_row = model_->EntityEmbedding(prediction_.tail);
  std::vector<float> copy(target_row.begin(), target_row.end());
  std::copy(copy.begin(), copy.end(),
            model_->MutableEntityEmbedding(competitor).begin());

  const int after_off = FilteredTailRank(*model_, *dataset_, prediction_, off);
  const int after_on = FilteredTailRank(*model_, *dataset_, prediction_, on);
  EXPECT_EQ(after_off, before_off + 1);  // the tie counts against the target
  EXPECT_EQ(after_on, after_off) << "quantized sweep served a stale table";
  // The cache really rebuilt rather than the ranks agreeing by luck.
  std::shared_ptr<const quant::QuantizedTable> rebuilt =
      model_->QuantizedEntityTable();
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt.get(), cached.get());
  EXPECT_GT(rebuilt->source_version, cached->source_version);
}

TEST(TransferFactTest, ReplacesSourceEntityOnEitherSide) {
  Triple head_side(3, 1, 7);
  EXPECT_EQ(TransferFact(head_side, 3, 9), Triple(9, 1, 7));
  Triple tail_side(7, 1, 3);
  EXPECT_EQ(TransferFact(tail_side, 3, 9), Triple(7, 1, 9));
  Triple both(3, 1, 3);
  EXPECT_EQ(TransferFact(both, 3, 9), Triple(9, 1, 9));
}

}  // namespace
}  // namespace kelpie
