#include "ml/optimizer.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(RowAdagradTest, FirstStepHasUnitScale) {
  // With zero accumulator, step = lr * g / (|g| + eps) = lr * sign(g).
  Matrix params(2, 3);
  RowAdagrad opt(2, 3, /*learning_rate=*/0.5f);
  std::vector<float> grad{1.0f, -2.0f, 0.0f};
  opt.Step(params, 0, grad);
  EXPECT_NEAR(params.At(0, 0), -0.5f, 1e-4);
  EXPECT_NEAR(params.At(0, 1), +0.5f, 1e-4);
  EXPECT_NEAR(params.At(0, 2), 0.0f, 1e-6);
  // Row 1 untouched.
  EXPECT_FLOAT_EQ(params.At(1, 0), 0.0f);
}

TEST(RowAdagradTest, RepeatedGradientsShrinkSteps) {
  Matrix params(1, 1);
  RowAdagrad opt(1, 1, 1.0f);
  std::vector<float> grad{1.0f};
  opt.Step(params, 0, grad);
  float first_step = -params.At(0, 0);
  float before = params.At(0, 0);
  opt.Step(params, 0, grad);
  float second_step = before - params.At(0, 0);
  EXPECT_LT(second_step, first_step);
  EXPECT_NEAR(second_step, first_step / std::sqrt(2.0f), 1e-3);
}

TEST(RowAdagradTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 with gradient 2(x - 3).
  Matrix params(1, 1);
  RowAdagrad opt(1, 1, 0.5f);
  for (int i = 0; i < 2000; ++i) {
    std::vector<float> grad{2.0f * (params.At(0, 0) - 3.0f)};
    opt.Step(params, 0, grad);
  }
  EXPECT_NEAR(params.At(0, 0), 3.0f, 0.05);
}

TEST(RowAdagradTest, StepSpanMatchesStepOnSameState) {
  Matrix a(1, 2), b(1, 2);
  RowAdagrad opt_a(1, 2, 0.1f), opt_b(1, 2, 0.1f);
  std::vector<float> grad{0.5f, -0.5f};
  opt_a.Step(a, 0, grad);
  std::vector<float> row(2, 0.0f);
  opt_b.StepSpan(row, 0, grad);
  EXPECT_FLOAT_EQ(a.At(0, 0), row[0]);
  EXPECT_FLOAT_EQ(a.At(0, 1), row[1]);
}

TEST(DenseAdamTest, StepDirectionOpposesGradient) {
  Matrix params(1, 2);
  DenseAdam opt(1, 2, 0.1f);
  std::vector<float> grad{1.0f, -1.0f};
  opt.Step(params, grad);
  EXPECT_LT(params.At(0, 0), 0.0f);
  EXPECT_GT(params.At(0, 1), 0.0f);
}

TEST(DenseAdamTest, FirstStepMagnitudeApproxLearningRate) {
  // Adam's bias correction makes the first step ~lr regardless of gradient
  // scale.
  Matrix params(1, 1);
  DenseAdam opt(1, 1, 0.01f);
  std::vector<float> grad{1234.0f};
  opt.Step(params, grad);
  EXPECT_NEAR(params.At(0, 0), -0.01f, 1e-4);
}

TEST(DenseAdamTest, ConvergesOnQuadratic) {
  Matrix params(1, 1);
  DenseAdam opt(1, 1, 0.05f);
  for (int i = 0; i < 3000; ++i) {
    std::vector<float> grad{2.0f * (params.At(0, 0) + 2.0f)};
    opt.Step(params, grad);
  }
  EXPECT_NEAR(params.At(0, 0), -2.0f, 0.05);
}

TEST(SgdStepTest, AppliesScaledGradient) {
  std::vector<float> params{1.0f, 2.0f};
  std::vector<float> grad{0.5f, -0.5f};
  SgdStep(params, grad, 0.1f);
  EXPECT_FLOAT_EQ(params[0], 0.95f);
  EXPECT_FLOAT_EQ(params[1], 2.05f);
}

}  // namespace
}  // namespace kelpie
