#include "models/transe.h"

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(TransETest, ScoreIsNegativeTranslationDistance) {
  TrainConfig config;
  config.dim = 2;
  TransE model(3, 1, config);
  // h = (1, 0), r = (0, 1), t = (1, 1): h + r - t = 0 -> score 0.
  auto h = model.MutableEntityEmbedding(0);
  h[0] = 1.0f;
  h[1] = 0.0f;
  auto t = model.MutableEntityEmbedding(1);
  t[0] = 1.0f;
  t[1] = 1.0f;
  // Relation embedding is private; train is not run, so it's zero. Use a
  // zero relation: score = -||h - t|| = -1.
  EXPECT_NEAR(model.Score(Triple(0, 0, 1)), -1.0f, 1e-5);
}

TEST(TransETest, PerfectTranslationScoresZero) {
  TrainConfig config;
  config.dim = 4;
  TransE model(2, 1, config);
  auto h = model.MutableEntityEmbedding(0);
  auto t = model.MutableEntityEmbedding(1);
  for (size_t i = 0; i < 4; ++i) {
    h[i] = 0.3f;
    t[i] = 0.3f;
  }
  EXPECT_NEAR(model.Score(Triple(0, 0, 1)), 0.0f, 1e-6);
  // Zero is the maximum possible TransE score.
  EXPECT_LE(model.Score(Triple(0, 0, 1)), 0.0f);
}

TEST(TransETest, ScoresAreAlwaysNonPositive) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  for (const Triple& t : dataset.train()) {
    EXPECT_LE(model->Score(t), 0.0f);
  }
}

TEST(TransETest, TrainingLearnsCompositionalPattern) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  // The toy pattern is easy; the filtered MRR over test facts should be far
  // better than random (random MRR over 51 entities is ~0.09).
  MetricsAccumulator acc;
  for (const Triple& t : dataset.test()) {
    acc.AddRank(FilteredTailRank(*model, dataset, t));
  }
  EXPECT_GT(acc.Mrr(), 0.35);
}

TEST(TransETest, TrainingIsDeterministic) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto m1 = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 5);
  auto m2 = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 5);
  Triple probe = dataset.test().front();
  EXPECT_FLOAT_EQ(m1->Score(probe), m2->Score(probe));
}

TEST(TransETest, DifferentSeedsGiveDifferentModels) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto m1 = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 5);
  auto m2 = testing_util::TrainToyModel(ModelKind::kTransE, dataset, 6);
  Triple probe = dataset.test().front();
  EXPECT_NE(m1->Score(probe), m2->Score(probe));
}

TEST(TransETest, EntityNormsBoundedAfterTraining) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  // TransE projects entity embeddings onto the unit ball before each
  // update; after training no entity norm should wildly exceed 1 (small
  // overshoot from the final update is possible).
  for (size_t e = 0; e < model->num_entities(); ++e) {
    std::span<const float> row =
        model->EntityEmbedding(static_cast<EntityId>(e));
    float norm = 0.0f;
    for (float v : row) norm += v * v;
    EXPECT_LT(std::sqrt(norm), 1.6f) << "entity " << e;
  }
}

TEST(TransETest, HeadAndTailGradientsAreOpposite) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  Triple probe = dataset.test().front();
  std::vector<float> gh = model->ScoreGradWrtHead(probe);
  std::vector<float> gt = model->ScoreGradWrtTail(probe);
  for (size_t i = 0; i < gh.size(); ++i) {
    EXPECT_NEAR(gh[i], -gt[i], 1e-6);
  }
}

TEST(TransETest, MimicRankImprovesWithRelevantFact) {
  // Post-train a mimic of a test person with and without their born_in
  // fact: the fact is the evidence for the nationality prediction, so the
  // rank without it should not be better.
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  Triple probe = dataset.test().front();
  std::vector<Triple> facts = dataset.train_graph().FactsOf(probe.head);
  // Remove the born_in fact (relation id 0).
  std::vector<Triple> reduced;
  for (const Triple& f : facts) {
    if (f.relation != 0) reduced.push_back(f);
  }
  ASSERT_LT(reduced.size(), facts.size());
  Rng rng1(3), rng2(3);
  std::vector<float> full = model->PostTrainMimic(dataset, probe.head, facts, rng1);
  std::vector<float> reduced_mimic = model->PostTrainMimic(dataset, probe.head, reduced, rng2);
  int full_rank = FilteredTailRankWithHeadVec(*model, dataset, probe.head,
                                              full, probe.relation,
                                              probe.tail);
  int reduced_rank = FilteredTailRankWithHeadVec(*model, dataset, probe.head,
                                                 reduced_mimic, probe.relation,
                                                 probe.tail);
  EXPECT_LE(full_rank, reduced_rank + 2);
}

}  // namespace
}  // namespace kelpie
