#include "xp/pipeline.h"

#include <gtest/gtest.h>

#include "baselines/data_poisoning.h"
#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
  }
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
};

TEST_F(PipelineTest, SampledPredictionsAreCorrectAndFromTest) {
  Rng rng(3);
  std::vector<Triple> sample =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
  EXPECT_LE(sample.size(), 3u);
  for (const Triple& p : sample) {
    EXPECT_EQ(FilteredTailRank(*model_, *dataset_, p), 1);
    EXPECT_TRUE(dataset_->IsKnown(p));
    EXPECT_FALSE(dataset_->train_graph().Contains(p));
  }
}

TEST_F(PipelineTest, SampleIsDeterministicGivenSeed) {
  Rng rng1(3), rng2(3);
  std::vector<Triple> a =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng1);
  std::vector<Triple> b =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng2);
  EXPECT_EQ(a, b);
}

TEST_F(PipelineTest, ConversionEntitiesNotAlreadyPredicted) {
  Rng rng(5);
  std::vector<Triple> sample =
      SampleCorrectTailPredictions(*model_, *dataset_, 1, rng);
  ASSERT_FALSE(sample.empty());
  std::vector<EntityId> set = SampleConversionEntities(
      *model_, *dataset_, sample[0], PredictionTarget::kTail, 4, rng);
  for (EntityId c : set) {
    Triple converted = sample[0];
    converted.head = c;
    EXPECT_GT(FilteredTailRank(*model_, *dataset_, converted), 1);
  }
}

TEST_F(PipelineTest, RetrainAndMeasureRemovalHurtsPredictions) {
  Rng rng(7);
  std::vector<Triple> sample =
      SampleCorrectTailPredictions(*model_, *dataset_, 2, rng);
  ASSERT_FALSE(sample.empty());
  // Remove the entire fact set of each prediction head: retrained models
  // should lose those predictions almost surely.
  std::vector<Triple> removed;
  for (const Triple& p : sample) {
    for (const Triple& f : dataset_->train_graph().FactsOf(p.head)) {
      removed.push_back(f);
    }
  }
  LpMetrics after = RetrainAndMeasureTails(ModelKind::kComplEx, *dataset_,
                                           sample, removed, {}, 99);
  EXPECT_LT(after.mrr, 1.0);
}

TEST_F(PipelineTest, RetrainWithNoChangesKeepsMostPredictions) {
  Rng rng(9);
  std::vector<Triple> sample =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
  ASSERT_FALSE(sample.empty());
  LpMetrics after = RetrainAndMeasureTails(ModelKind::kComplEx, *dataset_,
                                           sample, {}, {}, 101);
  // A retrained model on the unchanged toy dataset should keep a clear
  // majority of the easy compositional predictions.
  EXPECT_GT(after.mrr, 0.4);
}

TEST_F(PipelineTest, NecessaryEndToEndWithDpBaseline) {
  Rng rng(11);
  std::vector<Triple> sample =
      SampleCorrectTailPredictions(*model_, *dataset_, 2, rng);
  ASSERT_FALSE(sample.empty());
  DataPoisoningExplainer dp(*model_, *dataset_);
  NecessaryRunResult result =
      RunNecessaryEndToEnd(dp, ModelKind::kComplEx, *dataset_, sample, 7);
  EXPECT_EQ(result.explanations.size(), sample.size());
  EXPECT_LE(result.delta_h1(), 0.0);   // can only get worse or stay
  EXPECT_LE(result.delta_mrr(), 0.0);
}

TEST_F(PipelineTest, ConversionPredictionsFlattenSets) {
  std::vector<Triple> predictions{Triple(0, 2, 41), Triple(1, 2, 42)};
  std::vector<std::vector<EntityId>> sets{{5, 6}, {7}};
  std::vector<Triple> converted = ConversionPredictions(predictions, sets);
  ASSERT_EQ(converted.size(), 3u);
  EXPECT_EQ(converted[0], Triple(5, 2, 41));
  EXPECT_EQ(converted[1], Triple(6, 2, 41));
  EXPECT_EQ(converted[2], Triple(7, 2, 42));
}

TEST_F(PipelineTest, TransferredFactsSubstituteSource) {
  std::vector<Triple> predictions{Triple(0, 2, 41)};
  std::vector<Explanation> explanations(1);
  explanations[0].facts = {Triple(0, 0, 8)};
  std::vector<std::vector<EntityId>> sets{{5, 6}};
  std::vector<Triple> added = TransferredFacts(predictions, explanations, sets);
  ASSERT_EQ(added.size(), 2u);
  EXPECT_EQ(added[0], Triple(5, 0, 8));
  EXPECT_EQ(added[1], Triple(6, 0, 8));
}

TEST_F(PipelineTest, TransferredFactsDeduplicated) {
  std::vector<Triple> predictions{Triple(0, 2, 41), Triple(0, 2, 42)};
  std::vector<Explanation> explanations(2);
  explanations[0].facts = {Triple(0, 0, 8)};
  explanations[1].facts = {Triple(0, 0, 8)};
  std::vector<std::vector<EntityId>> sets{{5}, {5}};
  std::vector<Triple> added = TransferredFacts(predictions, explanations, sets);
  EXPECT_EQ(added.size(), 1u);
}

TEST_F(PipelineTest, SubsampleShrinksOrEmptiesExplanations) {
  std::vector<Explanation> explanations(3);
  explanations[0].facts = {Triple(0, 0, 1)};
  explanations[1].facts = {Triple(0, 0, 1), Triple(0, 0, 2)};
  explanations[2].facts = {Triple(0, 0, 1), Triple(0, 0, 2), Triple(0, 0, 3),
                           Triple(0, 0, 4)};
  Rng rng(13);
  std::vector<std::vector<Triple>> sub =
      SubsampleExplanations(explanations, rng);
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_TRUE(sub[0].empty());  // length-1 -> null (footnote 7)
  EXPECT_GE(sub[1].size(), 1u);
  EXPECT_LT(sub[1].size(), 2u);
  EXPECT_GE(sub[2].size(), 1u);
  EXPECT_LT(sub[2].size(), 4u);
}

TEST_F(PipelineTest, HeadPredictionSamplingUsesHeadRank) {
  Rng rng(15);
  std::vector<Triple> sample = SampleCorrectPredictions(
      *model_, *dataset_, 3, PredictionTarget::kHead, rng);
  for (const Triple& p : sample) {
    EXPECT_EQ(FilteredHeadRank(*model_, *dataset_, p), 1);
  }
}

TEST_F(PipelineTest, HeadDirectionNecessaryEndToEnd) {
  Rng rng(17);
  std::vector<Triple> sample = SampleCorrectPredictions(
      *model_, *dataset_, 2, PredictionTarget::kHead, rng);
  if (sample.empty()) GTEST_SKIP() << "no correct head predictions";
  DataPoisoningExplainer dp(*model_, *dataset_);
  NecessaryRunResult result =
      RunNecessaryEndToEnd(dp, ModelKind::kComplEx, *dataset_, sample, 7,
                           PredictionTarget::kHead);
  EXPECT_EQ(result.explanations.size(), sample.size());
  // Facts come from the tail entity (the head-prediction source).
  for (size_t i = 0; i < sample.size(); ++i) {
    for (const Triple& f : result.explanations[i].facts) {
      EXPECT_TRUE(f.Mentions(sample[i].tail));
    }
  }
  EXPECT_LE(result.delta_h1(), 0.0);
}

TEST_F(PipelineTest, HeadDirectionConversionReplacesTail) {
  std::vector<Triple> predictions{Triple(0, 2, 41)};
  std::vector<std::vector<EntityId>> sets{{5, 6}};
  std::vector<Triple> converted = ConversionPredictions(
      predictions, sets, PredictionTarget::kHead);
  ASSERT_EQ(converted.size(), 2u);
  EXPECT_EQ(converted[0], Triple(0, 2, 5));
  EXPECT_EQ(converted[1], Triple(0, 2, 6));
}

TEST_F(PipelineTest, EffectivenessLossMatchesPaperExamples) {
  // Paper's necessary example: full -0.90, sub -0.30 -> -66.7%.
  EXPECT_NEAR(EffectivenessLoss(-0.90, -0.30), -0.667, 1e-3);
  // Paper's sufficient example: full +0.80, sub +0.20 -> -75%.
  EXPECT_NEAR(EffectivenessLoss(0.80, 0.20), -0.75, 1e-12);
  EXPECT_DOUBLE_EQ(EffectivenessLoss(0.0, 0.5), 0.0);
}

}  // namespace
}  // namespace kelpie
