#include "common/crc32c.h"

#include <string>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  EXPECT_EQ(Crc32c(std::string_view()), 0u);
}

TEST(Crc32cTest, KnownVectors) {
  // The classic check value for CRC32C (RFC 3720 / Castagnoli).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  // iSCSI test vectors: 32 bytes of zeros and 32 bytes of 0xFF.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::string ones(32, '\xFF');
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string a = "hello, ";
  const std::string b = "world";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
}

TEST(Crc32cTest, ExtendByteByByteMatchesOneShot) {
  const std::string data = "incremental checksumming";
  uint32_t crc = 0;
  for (char c : data) {
    crc = Crc32cExtend(crc, &c, 1);
  }
  EXPECT_EQ(crc, Crc32c(data));
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string data = "some serialized payload bytes";
  const uint32_t original = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string corrupted = data;
    corrupted[i] ^= 0x01;
    EXPECT_NE(Crc32c(corrupted), original) << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace kelpie
