#include "core/explanation_builder.h"

#include <gtest/gtest.h>

#include "eval/ranking.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(IndexCombinationsTest, EnumeratesAllPairs) {
  std::vector<std::vector<size_t>> combos = IndexCombinations(4, 2);
  ASSERT_EQ(combos.size(), 6u);
  EXPECT_EQ(combos[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(combos[5], (std::vector<size_t>{2, 3}));
}

TEST(IndexCombinationsTest, CountsMatchBinomials) {
  EXPECT_EQ(IndexCombinations(5, 1).size(), 5u);
  EXPECT_EQ(IndexCombinations(5, 3).size(), 10u);
  EXPECT_EQ(IndexCombinations(5, 5).size(), 1u);
  EXPECT_EQ(IndexCombinations(20, 2).size(), 190u);
}

TEST(IndexCombinationsTest, EdgeCases) {
  EXPECT_TRUE(IndexCombinations(3, 0).empty());
  EXPECT_TRUE(IndexCombinations(3, 4).empty());
  EXPECT_EQ(IndexCombinations(1, 1).size(), 1u);
}

TEST(IndexCombinationsTest, AllIndicesStrictlyIncreasing) {
  for (const auto& combo : IndexCombinations(7, 3)) {
    for (size_t i = 1; i < combo.size(); ++i) {
      EXPECT_LT(combo[i - 1], combo[i]);
    }
  }
}

class BuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    for (const Triple& t : dataset_->test()) {
      if (FilteredTailRank(*model_, *dataset_, t) == 1) {
        prediction_ = t;
        found_ = true;
        break;
      }
    }
    prefilter_ = std::make_unique<PreFilter>(*dataset_, PreFilterOptions{});
    engine_ = std::make_unique<RelevanceEngine>(*model_, *dataset_,
                                                RelevanceEngineOptions{});
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  std::unique_ptr<PreFilter> prefilter_;
  std::unique_ptr<RelevanceEngine> engine_;
  Triple prediction_;
  bool found_ = false;
};

TEST_F(BuilderTest, NecessaryExplanationIsNonEmptyAndFromSourceFacts) {
  ASSERT_TRUE(found_);
  ExplanationBuilder builder(*engine_, *prefilter_,
                             ExplanationBuilderOptions{});
  Explanation x = builder.BuildNecessary(prediction_,
                                         PredictionTarget::kTail);
  EXPECT_FALSE(x.empty());
  EXPECT_EQ(x.kind, ExplanationKind::kNecessary);
  for (const Triple& f : x.facts) {
    EXPECT_TRUE(f.Mentions(prediction_.head));
    EXPECT_TRUE(dataset_->train_graph().Contains(f));
  }
  EXPECT_GT(x.post_trainings, 0u);
  EXPECT_GT(x.visited_candidates, 0u);
  EXPECT_GE(x.seconds, 0.0);
}

TEST_F(BuilderTest, ExplanationSizeRespectsLimit) {
  ASSERT_TRUE(found_);
  ExplanationBuilderOptions options;
  options.max_explanation_length = 2;
  options.necessary_threshold = 1e9;  // unreachable: force full search
  options.max_visits_per_size = 10;
  ExplanationBuilder builder(*engine_, *prefilter_, options);
  Explanation x = builder.BuildNecessary(prediction_,
                                         PredictionTarget::kTail);
  EXPECT_LE(x.size(), 2u);
  EXPECT_FALSE(x.accepted);  // threshold unreachable -> best effort
}

TEST_F(BuilderTest, K1ModeReturnsSingleFact) {
  ASSERT_TRUE(found_);
  ExplanationBuilderOptions options;
  options.k1_only = true;
  ExplanationBuilder builder(*engine_, *prefilter_, options);
  Explanation x = builder.BuildNecessary(prediction_,
                                         PredictionTarget::kTail);
  EXPECT_EQ(x.size(), 1u);
}

TEST_F(BuilderTest, LowThresholdAcceptsQuickly) {
  ASSERT_TRUE(found_);
  ExplanationBuilderOptions options;
  options.necessary_threshold = -1e9;  // anything passes
  ExplanationBuilder builder(*engine_, *prefilter_, options);
  Explanation x = builder.BuildNecessary(prediction_,
                                         PredictionTarget::kTail);
  EXPECT_TRUE(x.accepted);
  EXPECT_EQ(x.size(), 1u);  // accepted during the S_1 sweep
}

TEST_F(BuilderTest, ObserverSeesEveryVisitedCandidate) {
  ASSERT_TRUE(found_);
  ExplanationBuilderOptions options;
  options.max_explanation_length = 2;
  options.necessary_threshold = 1e9;
  options.max_visits_per_size = 5;
  ExplanationBuilder builder(*engine_, *prefilter_, options);
  size_t observed = 0;
  Explanation x = builder.BuildNecessary(
      prediction_, PredictionTarget::kTail,
      [&](size_t size, double preliminary, double true_rel) {
        ++observed;
        EXPECT_GE(size, 1u);
        EXPECT_LE(size, 2u);
        (void)preliminary;
        (void)true_rel;
      });
  EXPECT_EQ(observed, x.visited_candidates);
}

TEST_F(BuilderTest, SufficientExplanationConvertsRanks) {
  ASSERT_TRUE(found_);
  std::vector<EntityId> conversion_set =
      engine_->SampleConversionSet(prediction_, PredictionTarget::kTail);
  ASSERT_FALSE(conversion_set.empty());
  ExplanationBuilderOptions options;
  options.sufficient_threshold = 0.5;
  ExplanationBuilder builder(*engine_, *prefilter_, options);
  Explanation x = builder.BuildSufficient(prediction_,
                                          PredictionTarget::kTail,
                                          conversion_set);
  EXPECT_EQ(x.kind, ExplanationKind::kSufficient);
  EXPECT_FALSE(x.empty());
  // On the toy compositional dataset a person's facts should convert other
  // entities at least partially.
  EXPECT_GT(x.relevance, 0.0);
}

TEST_F(BuilderTest, EmptyFactSetGivesEmptyExplanation) {
  // An entity with no training facts other than the prediction.
  Dictionary entities, relations;
  EntityId a = entities.GetOrAdd("a");
  EntityId b = entities.GetOrAdd("b");
  entities.GetOrAdd("c");
  RelationId r = relations.GetOrAdd("r");
  Dataset tiny("tiny", std::move(entities), std::move(relations),
               {Triple(a, r, b)}, {}, {});
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, tiny);
  PreFilter prefilter(tiny, {});
  RelevanceEngine engine(*model, tiny, {});
  ExplanationBuilder builder(engine, prefilter, {});
  // Explaining a prediction whose head (entity c = 2) has no facts.
  Explanation x =
      builder.BuildNecessary(Triple(2, r, b), PredictionTarget::kTail);
  EXPECT_TRUE(x.empty());
  EXPECT_FALSE(x.accepted);
}

TEST_F(BuilderTest, ToStringRendersFactsAndRelevance) {
  ASSERT_TRUE(found_);
  ExplanationBuilder builder(*engine_, *prefilter_,
                             ExplanationBuilderOptions{});
  Explanation x = builder.BuildNecessary(prediction_,
                                         PredictionTarget::kTail);
  std::string rendered = x.ToString(*dataset_);
  EXPECT_NE(rendered.find("necessary{"), std::string::npos);
  EXPECT_NE(rendered.find("relevance="), std::string::npos);
}

}  // namespace
}  // namespace kelpie
