// Full-stack integration: synthetic benchmark dataset -> training ->
// explanation extraction with Kelpie and both baselines -> end-to-end
// retraining verification. This is a miniature of the paper's Section 5.3
// methodology and the most important behavioural test in the suite.
#include <algorithm>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/criage.h"
#include "common/trace.h"
#include "baselines/data_poisoning.h"
#include "core/kelpie.h"
#include "datagen/datasets.h"
#include "eval/evaluator.h"
#include "xp/pipeline.h"

namespace kelpie {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Shared across tests: generation + training are the expensive steps.
    dataset_ = new Dataset(
        MakeBenchmark(BenchmarkDataset::kFb15k237, /*scale=*/0.35, 7));
    TrainConfig config = DefaultConfig(ModelKind::kComplEx, *dataset_);
    config.epochs = 15;
    auto model = CreateModel(ModelKind::kComplEx, *dataset_, config);
    Rng rng(21);
    model->Train(*dataset_, rng);
    model_ = model.release();
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
  }

  static Dataset* dataset_;
  static LinkPredictionModel* model_;
};

Dataset* IntegrationTest::dataset_ = nullptr;
LinkPredictionModel* IntegrationTest::model_ = nullptr;

TEST_F(IntegrationTest, ModelLearnsSomething) {
  EvalOptions options;
  options.include_heads = false;
  EvalResult result = EvaluateTest(*model_, *dataset_, options);
  // Far better than random (random MRR ~ 1e-2 at this entity count).
  EXPECT_GT(result.Mrr(), 0.15);
}

TEST_F(IntegrationTest, KelpieNecessaryBeatsRemovingNothing) {
  Rng rng(31);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model_, *dataset_, 4, rng);
  ASSERT_GE(predictions.size(), 2u);

  KelpieOptions options;
  options.engine.conversion_set_size = 4;
  options.builder.max_visits_per_size = 15;
  KelpieExplainer kelpie(*model_, *dataset_, options);
  NecessaryRunResult kelpie_run = RunNecessaryEndToEnd(
      kelpie, ModelKind::kComplEx, *dataset_, predictions, 77);

  LpMetrics unchanged = RetrainAndMeasureTails(
      ModelKind::kComplEx, *dataset_, predictions, {}, {}, 77);

  // Removing the Kelpie explanations must hurt the predictions more than
  // retraining alone.
  EXPECT_LT(kelpie_run.after.mrr, unchanged.mrr + 1e-9);
  for (const Explanation& x : kelpie_run.explanations) {
    EXPECT_FALSE(x.empty());
    EXPECT_LE(x.size(), 4u);
  }
}

TEST_F(IntegrationTest, SufficientExplanationsConvertEntities) {
  Rng rng(33);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
  ASSERT_GE(predictions.size(), 1u);

  KelpieOptions options;
  options.engine.conversion_set_size = 3;
  options.builder.max_visits_per_size = 10;
  KelpieExplainer kelpie(*model_, *dataset_, options);
  SufficientRunResult run = RunSufficientEndToEnd(
      kelpie, *model_, ModelKind::kComplEx, *dataset_, predictions, 3, rng,
      79);
  // Before: conversion entities do not predict the target (H@1 == 0).
  EXPECT_DOUBLE_EQ(run.before.hits_at_1, 0.0);
  // After adding the explanation facts and retraining, some conversions
  // should succeed.
  EXPECT_GT(run.after.mrr, run.before.mrr);
}

TEST_F(IntegrationTest, BaselinesRunEndToEnd) {
  Rng rng(35);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
  ASSERT_GE(predictions.size(), 1u);

  DataPoisoningExplainer dp(*model_, *dataset_);
  NecessaryRunResult dp_run = RunNecessaryEndToEnd(
      dp, ModelKind::kComplEx, *dataset_, predictions, 81);
  EXPECT_EQ(dp_run.explanations.size(), predictions.size());
  for (const Explanation& x : dp_run.explanations) {
    EXPECT_LE(x.size(), 1u);
  }

  CriageExplainer criage(*model_, *dataset_);
  NecessaryRunResult criage_run = RunNecessaryEndToEnd(
      criage, ModelKind::kComplEx, *dataset_, predictions, 83);
  EXPECT_EQ(criage_run.explanations.size(), predictions.size());
}

TEST_F(IntegrationTest, KelpieExplanationsBeatRandomRemovalOfSameSize) {
  // The core validity claim: the facts Kelpie selects are *the* enablers,
  // not just any facts. Removing the same number of random facts of the
  // same source entities must hurt the predictions strictly less.
  Rng rng(41);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model_, *dataset_, 6, rng);
  ASSERT_GE(predictions.size(), 3u);

  KelpieOptions options;
  options.builder.max_visits_per_size = 15;
  KelpieExplainer kelpie(*model_, *dataset_, options);
  NecessaryRunResult kelpie_run = RunNecessaryEndToEnd(
      kelpie, ModelKind::kComplEx, *dataset_, predictions, 91);

  // Random control: same per-prediction removal budget, drawn uniformly
  // from the same entity's facts.
  std::vector<Triple> random_removed;
  Rng control_rng(43);
  for (size_t i = 0; i < predictions.size(); ++i) {
    std::vector<Triple> facts =
        dataset_->train_graph().FactsOf(predictions[i].head);
    facts.erase(std::remove(facts.begin(), facts.end(), predictions[i]),
                facts.end());
    control_rng.Shuffle(facts);
    size_t budget =
        std::min(kelpie_run.explanations[i].size(), facts.size());
    random_removed.insert(random_removed.end(), facts.begin(),
                          facts.begin() + budget);
  }
  LpMetrics random_metrics = RetrainAndMeasureTails(
      ModelKind::kComplEx, *dataset_, predictions, random_removed, {}, 91);

  // Kelpie's removals must be at least as damaging as random ones (in MRR,
  // averaged over the sample; the margin absorbs small-sample retraining
  // noise — with |P| = 6 a single flipped prediction moves MRR by ~0.17).
  EXPECT_LE(kelpie_run.after.mrr, random_metrics.mrr + 0.15)
      << "kelpie " << kelpie_run.after.mrr << " vs random "
      << random_metrics.mrr;
}

TEST_F(IntegrationTest, MinimalitySubsamplingWeakensExplanations) {
  Rng rng(37);
  std::vector<Triple> predictions =
      SampleCorrectTailPredictions(*model_, *dataset_, 3, rng);
  ASSERT_GE(predictions.size(), 1u);

  KelpieOptions options;
  options.builder.max_visits_per_size = 10;
  KelpieExplainer kelpie(*model_, *dataset_, options);
  NecessaryRunResult full_run = RunNecessaryEndToEnd(
      kelpie, ModelKind::kComplEx, *dataset_, predictions, 85);

  std::vector<std::vector<Triple>> sub =
      SubsampleExplanations(full_run.explanations, rng);
  std::vector<Triple> sub_removed;
  for (const auto& facts : sub) {
    sub_removed.insert(sub_removed.end(), facts.begin(), facts.end());
  }
  LpMetrics sub_metrics = RetrainAndMeasureTails(
      ModelKind::kComplEx, *dataset_, predictions, sub_removed, {}, 85);
  // Sub-sampled explanations remove fewer facts, so the damage should not
  // exceed the full explanations' damage (equal is possible).
  EXPECT_GE(sub_metrics.mrr, full_run.after.mrr - 0.35);
}

// Runs last (declaration order): by now the process registry has absorbed
// training, extraction, evaluation and retraining work from every test
// above. Writes the combined observability snapshot next to the binary; CI
// uploads it as the `integration-metrics` artifact, giving each main-branch
// build a browsable record of the workload's counters and spans.
TEST_F(IntegrationTest, WritesObservabilitySnapshotArtifact) {
  trace::Collector::Global().Enable();
  {
    KelpieOptions options;
    options.builder.max_visits_per_size = 10;
    KelpieExplainer kelpie(*model_, *dataset_, options);
    Rng rng(45);
    std::vector<Triple> predictions =
        SampleCorrectTailPredictions(*model_, *dataset_, 1, rng);
    ASSERT_GE(predictions.size(), 1u);
    kelpie.ExplainNecessary(predictions[0], PredictionTarget::kTail);
  }
  trace::Collector::Global().Disable();

  const std::string json = trace::ObservabilitySnapshotJson();
  EXPECT_EQ(json.rfind("{\"metrics\":[", 0), 0u);
  EXPECT_NE(json.find("kelpie_engine_post_trainings_total"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kelpie.explain_necessary\""),
            std::string::npos);

  std::ofstream out("integration_metrics.json",
                    std::ios::binary | std::ios::trunc);
  out << json << "\n";
  out.close();
  ASSERT_TRUE(out.good()) << "failed to write integration_metrics.json";
}

}  // namespace
}  // namespace kelpie
