#include "math/matrix.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(MatrixTest, ConstructedZeroFilled) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (float v : m.Data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, RowViewsAliasStorage) {
  Matrix m(2, 3);
  m.Row(1)[2] = 7.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 7.0f);
  EXPECT_FLOAT_EQ(m.Data()[5], 7.0f);
}

TEST(MatrixTest, AtReadsAndWrites) {
  Matrix m(2, 2);
  m.At(0, 1) = 3.0f;
  const Matrix& cm = m;
  EXPECT_FLOAT_EQ(cm.At(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(cm.Row(0)[1], 3.0f);
}

TEST(MatrixTest, FillSetsAllElements) {
  Matrix m(2, 2);
  m.Fill(1.5f);
  for (float v : m.Data()) EXPECT_FLOAT_EQ(v, 1.5f);
}

TEST(MatrixTest, ResetChangesShapeAndZeroes) {
  Matrix m(2, 2);
  m.Fill(9.0f);
  m.Reset(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  for (float v : m.Data()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(1, 2);
  a.At(0, 0) = 1.0f;
  Matrix b = a;
  b.At(0, 0) = 2.0f;
  EXPECT_FLOAT_EQ(a.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.At(0, 0), 2.0f);
}

}  // namespace
}  // namespace kelpie
