#include "math/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformUint64StaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(13), 13u);
  }
}

TEST(RngTest, UniformUint64CoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.UniformUint64(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(9);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyMoves) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(23);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullPopulation) {
  Rng rng(29);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng forked = a.Fork();
  // Streams should diverge and the fork should be deterministic.
  Rng b(31);
  Rng forked2 = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(forked.NextUint64(), forked2.NextUint64());
  }
}

TEST(ZipfTest, StaysInRange) {
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    size_t v = SampleZipf(rng, 50, 1.5);
    EXPECT_LT(v, 50u);
  }
}

TEST(ZipfTest, IsSkewedTowardLowIndices) {
  Rng rng(41);
  const int n = 20000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleZipf(rng, 100, 1.7) < 5) ++low;
  }
  // A Zipf(1.7) over 100 items puts well over half its mass on the first 5.
  EXPECT_GT(static_cast<double>(low) / n, 0.5);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(43);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SampleZipf(rng, 1, 1.5), 0u);
  }
}

TEST(RngStateTest, ResumedStreamEqualsUninterrupted) {
  // The checkpoint-resume contract: capture mid-stream, keep drawing from
  // the original, and a generator loaded with the capture must produce
  // exactly the same continuation.
  Rng original(97);
  for (int i = 0; i < 37; ++i) original.NextUint64();
  const RngState state = original.SaveState();

  Rng resumed(1);  // different seed: LoadState must fully overwrite it
  resumed.LoadState(state);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original.NextUint64(), resumed.NextUint64()) << "draw " << i;
  }
}

TEST(RngStateTest, SaveLoadIsANoOp) {
  Rng rng(5);
  for (int i = 0; i < 9; ++i) rng.UniformDouble();
  const RngState state = rng.SaveState();
  rng.LoadState(state);
  EXPECT_EQ(rng.SaveState(), state);
}

TEST(RngStateTest, CachedNormalIsPartOfTheStreamPosition) {
  // Box–Muller produces normals in pairs and caches the second. Capture
  // while a value is cached: the resumed stream must emit that cached value
  // first, or every later Normal() draw shifts by one.
  Rng original(131);
  original.Normal();  // consumes one pair member, caches the other
  const RngState state = original.SaveState();
  EXPECT_TRUE(state.has_cached_normal);

  Rng resumed(2);
  resumed.LoadState(state);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(original.Normal(), resumed.Normal()) << "draw " << i;
  }
  // Mixed-draw continuation stays aligned too.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(original.NextUint64(), resumed.NextUint64());
    EXPECT_EQ(original.Normal(), resumed.Normal());
  }
}

TEST(RngStateTest, StateRoundTripsThroughValueCopy) {
  // RngState is a plain value type (it travels through checkpoint files);
  // equality and copying must cover every field.
  Rng rng(17);
  rng.Normal();
  RngState a = rng.SaveState();
  RngState b = a;
  EXPECT_EQ(a, b);
  b.cached_normal += 1.0;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace kelpie
