#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/budget.h"
#include "eval/evaluator.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZeroRequest) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(pool, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, PropagatesFirstExceptionAfterFinishingBatch) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(pool, 100,
                  [&](size_t i) {
                    ran.fetch_add(1);
                    if (i == 37) throw std::runtime_error("index 37");
                  }),
      std::runtime_error);
  // A throwing index does not cancel the batch: every index still runs.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // The caller participates in its own batch, so an inner ParallelFor
  // issued from a pool task drains even when every worker is occupied by
  // outer tasks (the Explanation Builder nests SufficientRelevance's
  // per-entity loop inside its candidate chunks this way).
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(pool, 4, [&](size_t) {
    ParallelFor(pool, 8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelMapTest, ResultsArriveInIndexOrder) {
  ThreadPool pool(4);
  std::vector<size_t> squares =
      ParallelMap(pool, 100, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMapTest, SingleIndexRunsOnCaller) {
  ThreadPool pool(2);
  std::vector<int> out = ParallelMap(pool, 1, [](size_t) { return 41; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 41);
}

TEST(CancellableParallelForTest, NoInterruptRunsEverything) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelOutcome outcome = CancellableParallelFor(
      pool, hits.size(), [&](size_t i) { hits[i].fetch_add(1); },
      [] { return Status::Ok(); });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.completed, hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(CancellableParallelForTest, EntryInterruptStartsNothing) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  ParallelOutcome outcome = CancellableParallelFor(
      pool, 100, [&](size_t) { ran.fetch_add(1); },
      [] { return Status::Cancelled("before anything started"); });
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(outcome.completed, 0u);
  EXPECT_EQ(ran.load(), 0);
}

// A token cancelled before the batch starts: nothing runs, and the pool is
// fully reusable afterwards — a serve dispatcher reuses its pool for the
// next request after a cancelled extraction.
TEST(CancellableParallelForTest, PreCancelledTokenLeavesPoolUsable) {
  ThreadPool pool(4);
  CancelToken cancel;
  cancel.RequestCancel();
  std::atomic<int> ran{0};
  ParallelOutcome outcome = CancellableParallelFor(
      pool, 64, [&](size_t) { ran.fetch_add(1); },
      [&]() -> Status {
        return cancel.cancelled() ? Status::Cancelled("pre-cancelled")
                                  : Status::Ok();
      });
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(outcome.completed, 0u);
  EXPECT_EQ(ran.load(), 0);

  // The same pool must run follow-up work to completion (fresh token).
  CancelToken fresh;
  ParallelOutcome next = CancellableParallelFor(
      pool, 64, [&](size_t) { ran.fetch_add(1); },
      [&]() -> Status {
        return fresh.cancelled() ? Status::Cancelled("unexpected")
                                 : Status::Ok();
      });
  EXPECT_TRUE(next.status.ok());
  EXPECT_EQ(next.completed, 64u);
  EXPECT_EQ(ran.load(), 64);
  pool.Submit([&] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 65);
}

TEST(CancellableParallelForTest, MidwayInterruptDrainsContiguousPrefix) {
  // Once the interrupt latches, no new index is claimed, but every index
  // claimed before the latch still runs — `completed` is an exactly-once
  // contiguous prefix, which is what lets callers trust partial results.
  ThreadPool pool(4);
  constexpr size_t kCount = 200;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<size_t> started{0};
  ParallelOutcome outcome = CancellableParallelFor(
      pool, kCount,
      [&](size_t i) {
        started.fetch_add(1);
        hits[i].fetch_add(1);
      },
      [&]() -> Status {
        if (started.load() >= 8) {
          return Status::DeadlineExceeded("enough");
        }
        return Status::Ok();
      });
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  // At least the 8 that tripped the interrupt, plus at most one in-flight
  // claim per strand (workers + caller) that passed its check first.
  EXPECT_GE(outcome.completed, 8u);
  EXPECT_LE(outcome.completed, 8u + pool.num_threads() + 1);
  for (size_t i = 0; i < kCount; ++i) {
    const int expected = i < outcome.completed ? 1 : 0;
    ASSERT_EQ(hits[i].load(), expected) << "index " << i;
  }
}

TEST(CancellableParallelForTest, ExceptionStopsNewIndicesAndRethrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  EXPECT_THROW(
      CancellableParallelFor(
          pool, hits.size(),
          [&](size_t i) {
            hits[i].fetch_add(1);
            if (i == 3) throw std::runtime_error("index 3");
          },
          [] { return Status::Ok(); }),
      std::runtime_error);
  // Unlike plain ParallelFor, an exception latches the stop bit: started
  // indices drain, unclaimed ones never run — and nothing runs twice.
  EXPECT_EQ(hits[3].load(), 1);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_LE(hits[i].load(), 1) << "index " << i;
  }
}

TEST(CancellableParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelOutcome outcome = CancellableParallelFor(
      pool, 0, [](size_t) { FAIL() << "must not be called"; },
      []() -> Status { ADD_FAILURE() << "no interrupt poll either"; return Status::Ok(); });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.completed, 0u);
}

TEST(CancellableParallelForTest, NestedCallsDoNotDeadlock) {
  // Same caller-participates guarantee as ParallelFor: the Explanation
  // Builder nests cancellable chunks inside pool tasks.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelOutcome outer = CancellableParallelFor(
      pool, 4,
      [&](size_t) {
        ParallelOutcome inner = CancellableParallelFor(
            pool, 8, [&](size_t) { counter.fetch_add(1); },
            [] { return Status::Ok(); });
        EXPECT_TRUE(inner.status.ok());
      },
      [] { return Status::Ok(); });
  EXPECT_TRUE(outer.status.ok());
  EXPECT_EQ(outer.completed, 4u);
  EXPECT_EQ(counter.load(), 32);
}

TEST(CancellableParallelMapTest, ReturnsExactlyTheCompletedPrefix) {
  ThreadPool pool(4);
  std::atomic<size_t> started{0};
  ParallelOutcome outcome;
  std::vector<size_t> out = CancellableParallelMap(
      pool, 200,
      [&](size_t i) {
        started.fetch_add(1);
        return i * i;
      },
      [&]() -> Status {
        if (started.load() >= 10) return Status::Cancelled("enough");
        return Status::Ok();
      },
      &outcome);
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  ASSERT_EQ(out.size(), outcome.completed);
  EXPECT_GE(out.size(), 10u);
  EXPECT_LT(out.size(), 200u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i) << "index " << i;
  }
}

TEST(CancellableParallelMapTest, UninterruptedMapMatchesPlainMap) {
  ThreadPool pool(4);
  ParallelOutcome outcome;
  std::vector<size_t> out = CancellableParallelMap(
      pool, 100, [](size_t i) { return i + 1; },
      [] { return Status::Ok(); }, &outcome);
  EXPECT_TRUE(outcome.status.ok());
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i + 1);
  }
}

TEST(ParallelEvalTest, MatchesSequentialBitForBit) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  EvalOptions sequential;
  sequential.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  EvalResult a = EvaluateTest(*model, dataset, sequential);
  EvalResult b = EvaluateTest(*model, dataset, parallel);
  EXPECT_EQ(a.tail_ranks.ranks(), b.tail_ranks.ranks());
  EXPECT_EQ(a.head_ranks.ranks(), b.head_ranks.ranks());
  EXPECT_DOUBLE_EQ(a.Mrr(), b.Mrr());
  EXPECT_DOUBLE_EQ(a.HitsAt1(), b.HitsAt1());
}

TEST(ParallelEvalTest, TailOnlyParallelMatchesToo) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  EvalOptions sequential;
  sequential.include_heads = false;
  EvalOptions parallel = sequential;
  parallel.num_threads = 3;
  EvalResult a = EvaluateTest(*model, dataset, sequential);
  EvalResult b = EvaluateTest(*model, dataset, parallel);
  EXPECT_EQ(a.tail_ranks.ranks(), b.tail_ranks.ranks());
  EXPECT_EQ(b.head_ranks.count(), 0u);
}

}  // namespace
}  // namespace kelpie
