#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZeroRequest) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  ParallelFor(pool, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, PropagatesFirstExceptionAfterFinishingBatch) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(pool, 100,
                  [&](size_t i) {
                    ran.fetch_add(1);
                    if (i == 37) throw std::runtime_error("index 37");
                  }),
      std::runtime_error);
  // A throwing index does not cancel the batch: every index still runs.
  EXPECT_EQ(ran.load(), 100);
}

TEST(ParallelForTest, NestedCallsDoNotDeadlock) {
  // The caller participates in its own batch, so an inner ParallelFor
  // issued from a pool task drains even when every worker is occupied by
  // outer tasks (the Explanation Builder nests SufficientRelevance's
  // per-entity loop inside its candidate chunks this way).
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(pool, 4, [&](size_t) {
    ParallelFor(pool, 8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelMapTest, ResultsArriveInIndexOrder) {
  ThreadPool pool(4);
  std::vector<size_t> squares =
      ParallelMap(pool, 100, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ParallelMapTest, SingleIndexRunsOnCaller) {
  ThreadPool pool(2);
  std::vector<int> out = ParallelMap(pool, 1, [](size_t) { return 41; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 41);
}

TEST(ParallelEvalTest, MatchesSequentialBitForBit) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kComplEx, dataset);
  EvalOptions sequential;
  sequential.num_threads = 1;
  EvalOptions parallel;
  parallel.num_threads = 4;
  EvalResult a = EvaluateTest(*model, dataset, sequential);
  EvalResult b = EvaluateTest(*model, dataset, parallel);
  EXPECT_EQ(a.tail_ranks.ranks(), b.tail_ranks.ranks());
  EXPECT_EQ(a.head_ranks.ranks(), b.head_ranks.ranks());
  EXPECT_DOUBLE_EQ(a.Mrr(), b.Mrr());
  EXPECT_DOUBLE_EQ(a.HitsAt1(), b.HitsAt1());
}

TEST(ParallelEvalTest, TailOnlyParallelMatchesToo) {
  Dataset dataset = testing_util::MakeToyDataset();
  auto model = testing_util::TrainToyModel(ModelKind::kTransE, dataset);
  EvalOptions sequential;
  sequential.include_heads = false;
  EvalOptions parallel = sequential;
  parallel.num_threads = 3;
  EvalResult a = EvaluateTest(*model, dataset, sequential);
  EvalResult b = EvaluateTest(*model, dataset, parallel);
  EXPECT_EQ(a.tail_ranks.ranks(), b.tail_ranks.ranks());
  EXPECT_EQ(b.head_ranks.count(), 0u);
}

}  // namespace
}  // namespace kelpie
