#include "common/string_util.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(SplitTest, SplitsOnSeparator) {
  std::vector<std::string> parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  std::vector<std::string> parts = Split("a\t\tb", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, SingleFieldWhenNoSeparator) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  std::vector<std::string> parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi there \t\n"), "hi there");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("kelpie", "kel"));
  EXPECT_TRUE(StartsWith("kelpie", ""));
  EXPECT_FALSE(StartsWith("kel", "kelpie"));
  EXPECT_FALSE(StartsWith("kelpie", "elp"));
}

TEST(FormatDoubleTest, RespectsPrecision) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormatSignedTest, AlwaysShowsSign) {
  EXPECT_EQ(FormatSigned(0.319, 3), "+0.319");
  EXPECT_EQ(FormatSigned(-0.49, 3), "-0.490");
  EXPECT_EQ(FormatSigned(0.0, 2), "+0.00");
}

}  // namespace
}  // namespace kelpie
