#include "math/vec.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace kelpie {
namespace {

TEST(VecTest, DotProduct) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
}

TEST(VecTest, DotOfEmptyIsZero) {
  std::vector<float> a, b;
  EXPECT_FLOAT_EQ(Dot(a, b), 0.0f);
}

TEST(VecTest, AxpyAccumulates) {
  std::vector<float> x{1, 1, 1};
  std::vector<float> y{1, 2, 3};
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
}

TEST(VecTest, ScaleMultiplies) {
  std::vector<float> x{2, -4};
  Scale(x, 0.5f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(VecTest, FillAndCopy) {
  std::vector<float> x(4);
  Fill(x, 3.5f);
  for (float v : x) EXPECT_FLOAT_EQ(v, 3.5f);
  std::vector<float> y(4);
  Copy(x, y);
  for (float v : y) EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(VecTest, Norms) {
  std::vector<float> x{3, 4};
  EXPECT_FLOAT_EQ(SquaredNorm(x), 25.0f);
  EXPECT_FLOAT_EQ(Norm(x), 5.0f);
  EXPECT_FLOAT_EQ(L1Norm(x), 7.0f);
}

TEST(VecTest, Distances) {
  std::vector<float> a{1, 2};
  std::vector<float> b{4, 6};
  EXPECT_FLOAT_EQ(SquaredDistance(a, b), 25.0f);
  EXPECT_FLOAT_EQ(L1Distance(a, b), 7.0f);
}

TEST(VecTest, ProjectToL2BallShrinksLongVectors) {
  std::vector<float> x{3, 4};  // norm 5
  ProjectToL2Ball(x, 1.0f);
  EXPECT_NEAR(Norm(x), 1.0f, 1e-6);
  EXPECT_NEAR(x[0] / x[1], 0.75f, 1e-6);  // direction preserved
}

TEST(VecTest, ProjectToL2BallLeavesShortVectors) {
  std::vector<float> x{0.3f, 0.4f};
  ProjectToL2Ball(x, 1.0f);
  EXPECT_FLOAT_EQ(x[0], 0.3f);
  EXPECT_FLOAT_EQ(x[1], 0.4f);
}

TEST(VecTest, ProjectToL2BallHandlesZeroVector) {
  std::vector<float> x{0, 0};
  ProjectToL2Ball(x, 1.0f);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
}

TEST(VecTest, LogSumExpMatchesDirectComputation) {
  std::vector<float> s{0.1f, 0.7f, -0.3f};
  double direct = std::log(std::exp(0.1) + std::exp(0.7) + std::exp(-0.3));
  EXPECT_NEAR(LogSumExp(s), direct, 1e-6);
}

TEST(VecTest, LogSumExpIsStableForLargeInputs) {
  std::vector<float> s{1000.0f, 1000.0f};
  EXPECT_NEAR(LogSumExp(s), 1000.0 + std::log(2.0), 1e-3);
}

TEST(VecTest, SoftmaxSumsToOneAndOrdersCorrectly) {
  std::vector<float> s{1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(s);
  EXPECT_NEAR(s[0] + s[1] + s[2], 1.0f, 1e-6);
  EXPECT_LT(s[0], s[1]);
  EXPECT_LT(s[1], s[2]);
}

TEST(VecTest, SoftmaxOfUniformIsUniform) {
  std::vector<float> s{5.0f, 5.0f, 5.0f, 5.0f};
  SoftmaxInPlace(s);
  for (float v : s) EXPECT_NEAR(v, 0.25f, 1e-6);
}

TEST(VecTest, SigmoidProperties) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(Sigmoid(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(Sigmoid(-100.0f), 0.0f, 1e-6);
  // Symmetry: σ(-x) = 1 - σ(x).
  EXPECT_NEAR(Sigmoid(-1.3f), 1.0f - Sigmoid(1.3f), 1e-6);
}

}  // namespace
}  // namespace kelpie
