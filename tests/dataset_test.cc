#include "kgraph/dataset.h"

#include <gtest/gtest.h>

namespace kelpie {
namespace {

Dataset MakeDataset() {
  Dictionary entities, relations;
  EntityId obama = entities.GetOrAdd("Barack_Obama");
  EntityId honolulu = entities.GetOrAdd("Honolulu");
  EntityId usa = entities.GetOrAdd("USA");
  EntityId xi = entities.GetOrAdd("Xi_Jinping");
  RelationId born = relations.GetOrAdd("born_in");
  RelationId located = relations.GetOrAdd("located_in");
  RelationId nationality = relations.GetOrAdd("nationality");
  std::vector<Triple> train{
      Triple(obama, born, honolulu),
      Triple(honolulu, located, usa),
      Triple(xi, born, honolulu),
  };
  std::vector<Triple> valid{Triple(xi, nationality, usa)};
  std::vector<Triple> test{Triple(obama, nationality, usa)};
  return Dataset("toy", std::move(entities), std::move(relations),
                 std::move(train), std::move(valid), std::move(test));
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeDataset();
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.num_entities(), 4u);
  EXPECT_EQ(d.num_relations(), 3u);
  EXPECT_EQ(d.train().size(), 3u);
  EXPECT_EQ(d.valid().size(), 1u);
  EXPECT_EQ(d.test().size(), 1u);
}

TEST(DatasetTest, TrainGraphOnlyIndexesTrainSplit) {
  Dataset d = MakeDataset();
  EXPECT_EQ(d.train_graph().num_triples(), 3u);
  EXPECT_TRUE(d.train_graph().Contains(Triple(0, 0, 1)));
  EXPECT_FALSE(d.train_graph().Contains(Triple(0, 2, 2)));  // test fact
}

TEST(DatasetTest, IsKnownCoversAllSplits) {
  Dataset d = MakeDataset();
  EXPECT_TRUE(d.IsKnown(Triple(0, 0, 1)));  // train
  EXPECT_TRUE(d.IsKnown(Triple(3, 2, 2)));  // valid
  EXPECT_TRUE(d.IsKnown(Triple(0, 2, 2)));  // test
  EXPECT_FALSE(d.IsKnown(Triple(3, 2, 1)));
}

TEST(DatasetTest, KnownTailsAggregatesSplits) {
  Dataset d = MakeDataset();
  // born_in tails of Obama.
  const auto& tails = d.KnownTails(0, 0);
  EXPECT_EQ(tails.size(), 1u);
  EXPECT_TRUE(tails.count(1));
  // nationality of Obama is a test fact — still known.
  EXPECT_TRUE(d.KnownTails(0, 2).count(2));
  // Unknown pair gives the empty set.
  EXPECT_TRUE(d.KnownTails(2, 0).empty());
}

TEST(DatasetTest, KnownHeadsAggregatesSplits) {
  Dataset d = MakeDataset();
  // Heads born in Honolulu: Obama and Xi.
  const auto& heads = d.KnownHeads(0, 1);
  EXPECT_EQ(heads.size(), 2u);
  EXPECT_TRUE(heads.count(0));
  EXPECT_TRUE(heads.count(3));
}

TEST(DatasetTest, TripleToStringUsesNames) {
  Dataset d = MakeDataset();
  EXPECT_EQ(d.TripleToString(Triple(0, 0, 1)),
            "<Barack_Obama, born_in, Honolulu>");
}

TEST(DatasetTest, WithModifiedTrainingRemoves) {
  Dataset d = MakeDataset();
  Dataset d2 = d.WithModifiedTraining({Triple(0, 0, 1)}, {});
  EXPECT_EQ(d2.train().size(), 2u);
  EXPECT_FALSE(d2.train_graph().Contains(Triple(0, 0, 1)));
  // Original unchanged.
  EXPECT_TRUE(d.train_graph().Contains(Triple(0, 0, 1)));
  // Valid/test preserved.
  EXPECT_EQ(d2.valid().size(), 1u);
  EXPECT_EQ(d2.test().size(), 1u);
}

TEST(DatasetTest, WithModifiedTrainingAddsAndDeduplicates) {
  Dataset d = MakeDataset();
  Triple added(3, 2, 2);
  Dataset d2 = d.WithModifiedTraining({}, {added, added, Triple(0, 0, 1)});
  // 'added' once; the duplicate of an existing train fact is dropped.
  EXPECT_EQ(d2.train().size(), 4u);
  EXPECT_TRUE(d2.train_graph().Contains(added));
}

TEST(DatasetTest, WithModifiedTrainingRemovalWinsOverAddition) {
  Dataset d = MakeDataset();
  Triple t(0, 0, 1);
  Dataset d2 = d.WithModifiedTraining({t}, {t});
  EXPECT_FALSE(d2.train_graph().Contains(t));
}

TEST(DatasetStatsTest, ComputesTable1Shape) {
  Dataset d = MakeDataset();
  DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.name, "toy");
  EXPECT_EQ(stats.num_entities, 4u);
  EXPECT_EQ(stats.num_relations, 3u);
  EXPECT_EQ(stats.num_train, 3u);
  EXPECT_EQ(stats.num_valid, 1u);
  EXPECT_EQ(stats.num_test, 1u);
  // Degrees: obama 1, honolulu 3, usa 1, xi 1 -> mean 1.5, max 3.
  EXPECT_DOUBLE_EQ(stats.mean_entity_degree, 1.5);
  EXPECT_EQ(stats.max_entity_degree, 3u);
}

}  // namespace
}  // namespace kelpie
