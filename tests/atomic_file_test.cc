#include "common/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace kelpie {
namespace {

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

size_t CountFilesIn(const std::filesystem::path& dir) {
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++n;
  }
  return n;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kelpie_atomic_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::DisarmAll();
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WritesContents) {
  auto path = dir_ / "out.txt";
  ASSERT_TRUE(WriteFileAtomic(path.string(), "hello\nworld\n").ok());
  EXPECT_EQ(ReadAll(path), "hello\nworld\n");
  // No leftover temp files.
  EXPECT_EQ(CountFilesIn(dir_), 1u);
}

TEST_F(AtomicFileTest, OverwritesExisting) {
  auto path = dir_ / "out.txt";
  ASSERT_TRUE(WriteFileAtomic(path.string(), "old contents").ok());
  ASSERT_TRUE(WriteFileAtomic(path.string(), "new").ok());
  EXPECT_EQ(ReadAll(path), "new");
}

TEST_F(AtomicFileTest, WritesEmptyFile) {
  auto path = dir_ / "empty.txt";
  ASSERT_TRUE(WriteFileAtomic(path.string(), "").ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(ReadAll(path), "");
}

TEST_F(AtomicFileTest, MissingDirectoryFails) {
  Status s = WriteFileAtomic((dir_ / "no_such_dir" / "f.txt").string(), "x");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST_F(AtomicFileTest, PartialWriteLeavesPreviousFileIntact) {
  auto path = dir_ / "model.bin";
  ASSERT_TRUE(WriteFileAtomic(path.string(), "previous good contents").ok());

  failpoint::Scoped fault("atomic_file.partial_write");
  Status s = WriteFileAtomic(path.string(), "replacement that gets cut off");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // The crash simulation abandoned the temp file mid-write: the original is
  // untouched and the temp has been cleaned up.
  EXPECT_EQ(ReadAll(path), "previous good contents");
  EXPECT_EQ(CountFilesIn(dir_), 1u);
}

TEST_F(AtomicFileTest, RenameFailureLeavesPreviousFileIntact) {
  auto path = dir_ / "model.bin";
  ASSERT_TRUE(WriteFileAtomic(path.string(), "previous good contents").ok());

  failpoint::Scoped fault("atomic_file.rename");
  Status s = WriteFileAtomic(path.string(), "replacement");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(ReadAll(path), "previous good contents");
  EXPECT_EQ(CountFilesIn(dir_), 1u);
}

TEST_F(AtomicFileTest, PartialWriteWithNoPreviousFileLeavesNothing) {
  auto path = dir_ / "fresh.bin";
  failpoint::Scoped fault("atomic_file.partial_write");
  EXPECT_FALSE(WriteFileAtomic(path.string(), "contents").ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_EQ(CountFilesIn(dir_), 0u);
}

TEST_F(AtomicFileTest, SucceedsAfterFaultConsumed) {
  auto path = dir_ / "retry.bin";
  failpoint::Arm("atomic_file.partial_write");  // fires once
  EXPECT_FALSE(WriteFileAtomic(path.string(), "first try").ok());
  EXPECT_TRUE(WriteFileAtomic(path.string(), "second try").ok());
  EXPECT_EQ(ReadAll(path), "second try");
}

}  // namespace
}  // namespace kelpie
