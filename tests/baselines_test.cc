#include <gtest/gtest.h>

#include "baselines/criage.h"
#include "baselines/data_poisoning.h"
#include "eval/ranking.h"
#include "xp/pipeline.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = std::make_unique<Dataset>(testing_util::MakeToyDataset());
    model_ = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_);
    for (const Triple& t : dataset_->test()) {
      if (FilteredTailRank(*model_, *dataset_, t) == 1) {
        prediction_ = t;
        found_ = true;
        break;
      }
    }
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<LinkPredictionModel> model_;
  Triple prediction_;
  bool found_ = false;
};

TEST_F(BaselinesTest, DpNecessaryReturnsSingleSourceFact) {
  ASSERT_TRUE(found_);
  DataPoisoningExplainer dp(*model_, *dataset_);
  Explanation x = dp.ExplainNecessary(prediction_, PredictionTarget::kTail);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_TRUE(x.facts[0].Mentions(prediction_.head));
  EXPECT_TRUE(dataset_->train_graph().Contains(x.facts[0]));
  EXPECT_EQ(std::string(dp.Name()), "DP");
}

TEST_F(BaselinesTest, DpNecessaryPicksAlignedFact) {
  ASSERT_TRUE(found_);
  // On the toy dataset the born_in fact carries the nationality evidence;
  // DP should pick it over, say, an unrelated nationality fact of the same
  // person (there is none in train for test people, so born_in is the
  // strongest aligned fact).
  DataPoisoningExplainer dp(*model_, *dataset_);
  Explanation x = dp.ExplainNecessary(prediction_, PredictionTarget::kTail);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(dataset_->relations().NameOf(x.facts[0].relation), "born_in");
}

TEST_F(BaselinesTest, DpSufficientUsesConversionSet) {
  ASSERT_TRUE(found_);
  DataPoisoningExplainer dp(*model_, *dataset_);
  Rng rng(7);
  std::vector<EntityId> conversion_set;
  for (EntityId c = 0; c < 5; ++c) {
    if (c != prediction_.head) conversion_set.push_back(c);
  }
  Explanation x = dp.ExplainSufficient(prediction_, PredictionTarget::kTail,
                                       conversion_set);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_TRUE(x.facts[0].Mentions(prediction_.head));
}

TEST_F(BaselinesTest, DpHandlesEmptyConversionSet) {
  ASSERT_TRUE(found_);
  DataPoisoningExplainer dp(*model_, *dataset_);
  Explanation x =
      dp.ExplainSufficient(prediction_, PredictionTarget::kTail, {});
  EXPECT_TRUE(x.empty());
}

TEST_F(BaselinesTest, CriageOnlyConsidersRestrictedCandidates) {
  ASSERT_TRUE(found_);
  CriageExplainer criage(*model_, *dataset_);
  Explanation x =
      criage.ExplainNecessary(prediction_, PredictionTarget::kTail);
  // Criage candidates must have tail == prediction head or tail.
  for (const Triple& f : x.facts) {
    EXPECT_TRUE(f.tail == prediction_.head || f.tail == prediction_.tail);
  }
  EXPECT_EQ(std::string(criage.Name()), "Criage");
}

TEST_F(BaselinesTest, CriageReturnsAtMostOneFact) {
  ASSERT_TRUE(found_);
  CriageExplainer criage(*model_, *dataset_);
  Explanation x =
      criage.ExplainNecessary(prediction_, PredictionTarget::kTail);
  EXPECT_LE(x.size(), 1u);
}

TEST_F(BaselinesTest, CriageSufficientRespectsRestriction) {
  ASSERT_TRUE(found_);
  CriageExplainer criage(*model_, *dataset_);
  std::vector<EntityId> conversion_set{0, 1};
  Explanation x = criage.ExplainSufficient(
      prediction_, PredictionTarget::kTail, conversion_set);
  for (const Triple& f : x.facts) {
    EXPECT_TRUE(f.tail == prediction_.head || f.tail == prediction_.tail);
  }
}

TEST_F(BaselinesTest, KelpieExplainerAdapterNamesAndK1) {
  ASSERT_TRUE(found_);
  KelpieOptions options;
  options.builder.max_visits_per_size = 10;
  KelpieExplainer full(*model_, *dataset_, options, /*k1_only=*/false);
  KelpieExplainer k1(*model_, *dataset_, options, /*k1_only=*/true);
  EXPECT_EQ(std::string(full.Name()), "Kelpie");
  EXPECT_EQ(std::string(k1.Name()), "K1");
  Explanation x1 = k1.ExplainNecessary(prediction_, PredictionTarget::kTail);
  EXPECT_LE(x1.size(), 1u);
}

TEST_F(BaselinesTest, DpAdversarialAdditionsAreNovelSourceFacts) {
  ASSERT_TRUE(found_);
  DataPoisoningExplainer dp(*model_, *dataset_);
  std::vector<Triple> fakes =
      dp.AdversarialAdditions(prediction_, PredictionTarget::kTail, 5);
  ASSERT_EQ(fakes.size(), 5u);
  for (const Triple& f : fakes) {
    EXPECT_EQ(f.head, prediction_.head);  // attack the source entity
    EXPECT_FALSE(dataset_->train_graph().Contains(f));  // novel facts
    EXPECT_NE(f, prediction_);
  }
  // Deterministic across calls.
  std::vector<Triple> again =
      dp.AdversarialAdditions(prediction_, PredictionTarget::kTail, 5);
  EXPECT_EQ(fakes, again);
}

TEST_F(BaselinesTest, DpAdversarialAdditionsWeakenPredictionWhenApplied) {
  ASSERT_TRUE(found_);
  // End-to-end poisoning check: adding the top adversarial fakes and
  // retraining should not make the attacked prediction rank better on
  // average than adding nothing.
  DataPoisoningExplainer dp(*model_, *dataset_);
  std::vector<Triple> fakes =
      dp.AdversarialAdditions(prediction_, PredictionTarget::kTail, 3);
  LpMetrics clean = RetrainAndMeasureTails(ModelKind::kComplEx, *dataset_,
                                           {prediction_}, {}, {}, 17);
  LpMetrics poisoned = RetrainAndMeasureTails(
      ModelKind::kComplEx, *dataset_, {prediction_}, {}, fakes, 17);
  EXPECT_LE(poisoned.mrr, clean.mrr + 1e-9);
}

TEST_F(BaselinesTest, DpEpsilonAffectsSelection) {
  ASSERT_TRUE(found_);
  // With a huge epsilon the perturbation dominates; results may differ
  // from the small-epsilon regime but the API contract (single training
  // fact of the source) must hold.
  DataPoisoningOptions options;
  options.epsilon = 10.0f;
  DataPoisoningExplainer dp(*model_, *dataset_, options);
  Explanation x = dp.ExplainNecessary(prediction_, PredictionTarget::kTail);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_TRUE(dataset_->train_graph().Contains(x.facts[0]));
}

}  // namespace
}  // namespace kelpie
