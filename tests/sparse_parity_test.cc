// Sparse/dense byte-identity across every architecture (DESIGN.md §16):
// TrainConfig::sparse_updates changes optimizer *storage*, never
// arithmetic, so parameters, mimics, checkpoints and resumed runs must be
// bitwise indistinguishable between the two paths.
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "ml/checkpoint.h"
#include "ml/optimizer.h"
#include "models/factory.h"
#include "models/model_store.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

const ModelKind kAllKinds[] = {ModelKind::kTransE, ModelKind::kComplEx,
                               ModelKind::kConvE, ModelKind::kDistMult,
                               ModelKind::kRotatE};

class SparseParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("kelpie_sparse_parity_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }
  void TearDown() override { failpoint::DisarmAll(); }

  static std::string CkptDir(const std::string& name) {
    return (*dir_ / name).string();
  }

  static TrainConfig Config(ModelKind kind, bool sparse) {
    TrainConfig config = testing_util::FastConfig(kind);
    config.epochs = 6;
    config.sparse_updates = sparse;
    return config;
  }

  static std::string ParamsBytes(const LinkPredictionModel& model) {
    std::ostringstream out;
    Status s = model.SaveParameters(out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::move(out).str();
  }

  static std::unique_ptr<LinkPredictionModel> TrainPlain(ModelKind kind,
                                                         bool sparse,
                                                         uint64_t seed) {
    auto model = CreateModel(kind, *dataset_, Config(kind, sparse));
    Rng rng(seed);
    EXPECT_TRUE(model->Train(*dataset_, rng).ok());
    return model;
  }

  /// sparse_updates is deliberately excluded from the train fingerprint
  /// (models trained either way are interchangeable), so both modes share
  /// one checkpoint identity.
  static uint64_t Fingerprint(ModelKind kind, uint64_t seed) {
    return ComputeTrainFingerprint(kind, Config(kind, false), *dataset_,
                                   seed);
  }

  static void TrainInterrupted(ModelKind kind, bool sparse, uint64_t seed,
                               const std::string& ckpt_dir,
                               uint64_t interrupt_epoch) {
    auto model = CreateModel(kind, *dataset_, Config(kind, sparse));
    CheckpointOptions options;
    options.directory = ckpt_dir;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    failpoint::Arm("train.interrupt", interrupt_epoch);
    Rng rng(seed);
    Status status = model->Train(*dataset_, rng, control);
    failpoint::DisarmAll();
    EXPECT_EQ(status.code(), StatusCode::kAborted) << status.ToString();
  }

  static std::unique_ptr<LinkPredictionModel> TrainResumed(
      ModelKind kind, bool sparse, uint64_t seed, const std::string& ckpt_dir,
      CheckpointRestoreOutcome* outcome = nullptr) {
    auto model = CreateModel(kind, *dataset_, Config(kind, sparse));
    CheckpointOptions options;
    options.directory = ckpt_dir;
    options.resume = true;
    options.fingerprint = Fingerprint(kind, seed);
    TrainCheckpointer checkpointer(options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    Rng rng(seed);
    EXPECT_TRUE(model->Train(*dataset_, rng, control).ok());
    if (outcome != nullptr) *outcome = checkpointer.last_restore_outcome();
    return model;
  }

  static Dataset* dataset_;
  static std::filesystem::path* dir_;
};

Dataset* SparseParityTest::dataset_ = nullptr;
std::filesystem::path* SparseParityTest::dir_ = nullptr;

TEST_F(SparseParityTest, SparseTrainingIsByteIdenticalForEveryModel) {
  for (ModelKind kind : kAllKinds) {
    SCOPED_TRACE(ModelKindName(kind));
    auto dense = TrainPlain(kind, /*sparse=*/false, /*seed=*/11);
    auto sparse = TrainPlain(kind, /*sparse=*/true, /*seed=*/11);
    EXPECT_EQ(ParamsBytes(*dense), ParamsBytes(*sparse));
  }
}

TEST_F(SparseParityTest, PostTrainMimicAgreesAcrossModes) {
  // The mimic optimizer rides the same seam; with identical base
  // parameters the post-trained rows must agree bitwise, cold and warm.
  for (ModelKind kind : kAllKinds) {
    SCOPED_TRACE(ModelKindName(kind));
    auto dense = TrainPlain(kind, /*sparse=*/false, /*seed=*/11);
    auto sparse = TrainPlain(kind, /*sparse=*/true, /*seed=*/11);
    const EntityId entity = 3;
    const std::vector<Triple> facts =
        dataset_->train_graph().FactsOf(entity);
    ASSERT_FALSE(facts.empty());
    Rng rng_a(99), rng_b(99);
    EXPECT_EQ(dense->PostTrainMimic(*dataset_, entity, facts, rng_a),
              sparse->PostTrainMimic(*dataset_, entity, facts, rng_b));
    Rng rng_c(99), rng_d(99);
    EXPECT_EQ(dense->PostTrainMimic(*dataset_, entity, facts, rng_c,
                                    dense->EntityEmbedding(entity)),
              sparse->PostTrainMimic(*dataset_, entity, facts, rng_d,
                                     sparse->EntityEmbedding(entity)));
  }
}

TEST_F(SparseParityTest, SparseCheckpointResumeIsByteIdentical) {
  // Interrupt a sparse checkpointed run mid-schedule and resume: the
  // "sparse" checkpoint section must restore the touched-row state exactly,
  // converging to the bytes of an uninterrupted sparse run — which are the
  // bytes of the dense run.
  for (ModelKind kind : kAllKinds) {
    SCOPED_TRACE(ModelKindName(kind));
    const std::string reference =
        ParamsBytes(*TrainPlain(kind, /*sparse=*/true, /*seed=*/21));
    const std::string ckpt =
        CkptDir(std::string("sparse_resume_") +
                std::string(ModelKindName(kind)));
    TrainInterrupted(kind, /*sparse=*/true, /*seed=*/21, ckpt,
                     /*interrupt_epoch=*/3);
    CheckpointRestoreOutcome outcome = CheckpointRestoreOutcome::kNotAttempted;
    auto resumed =
        TrainResumed(kind, /*sparse=*/true, /*seed=*/21, ckpt, &outcome);
    EXPECT_EQ(outcome, CheckpointRestoreOutcome::kRestored);
    EXPECT_EQ(ParamsBytes(*resumed), reference);
    EXPECT_EQ(reference,
              ParamsBytes(*TrainPlain(kind, /*sparse=*/false, /*seed=*/21)));
  }
}

TEST_F(SparseParityTest, CrossToggleResumeDegradesToScratchSafely) {
  // A dense checkpoint offered to a sparse trainer (or vice versa) has a
  // different parameter-span layout for the stateful models; the guard must
  // degrade to scratch — and scratch still converges to the right bytes —
  // rather than misapply spans. ComplEx exercises the bilinear layout.
  const ModelKind kind = ModelKind::kComplEx;
  const std::string ckpt = CkptDir("cross_toggle");
  TrainInterrupted(kind, /*sparse=*/false, /*seed=*/31, ckpt,
                   /*interrupt_epoch=*/3);
  CheckpointRestoreOutcome outcome = CheckpointRestoreOutcome::kNotAttempted;
  auto resumed =
      TrainResumed(kind, /*sparse=*/true, /*seed=*/31, ckpt, &outcome);
  EXPECT_EQ(outcome, CheckpointRestoreOutcome::kShapeMismatch);
  EXPECT_EQ(ParamsBytes(*resumed),
            ParamsBytes(*TrainPlain(kind, /*sparse=*/true, /*seed=*/31)));
}

TEST_F(SparseParityTest, CheckpointRoundTripsRowTouchedOnlyBeforeResume) {
  // Satellite edge case: a row touched only in the epochs *before* the
  // checkpoint must come back with its accumulator bytes intact even
  // though nothing touches it afterwards. Driven at the checkpoint layer:
  // the sparse blob is an opaque section, so preserving it exactly is the
  // whole contract.
  SparseRowAdagrad adagrad(8, 4, 0.1f);
  SparseAdam adam(8, 4, 0.05f);
  std::vector<float> row(4, 0.5f);
  const std::vector<float> grad = {0.1f, -0.2f, 0.3f, -0.4f};
  adagrad.StepSpan(row, 2, grad);  // row 2: touched once, never again
  adam.StepSpan(row, 5, grad);
  adam.StepSpan(row, 5, grad);

  CheckpointState state;
  state.next_epoch = 3;
  state.sparse = ComposeSparseBlobs({adagrad.SaveState(), adam.SaveState()});

  CheckpointOptions options;
  options.directory = CkptDir("sparse_row_epoch_n");
  options.resume = true;
  options.fingerprint = 0x5eedf00d;
  TrainCheckpointer checkpointer(options);
  ASSERT_TRUE(checkpointer.Save(state).ok());
  std::optional<CheckpointState> restored = checkpointer.TryRestore();
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->sparse, state.sparse);

  std::vector<std::string> parts;
  ASSERT_TRUE(SplitSparseBlobs(restored->sparse, 2, parts));
  SparseRowAdagrad adagrad2(8, 4, 0.1f);
  SparseAdam adam2(8, 4, 0.05f);
  ASSERT_TRUE(adagrad2.RestoreState(parts[0]));
  ASSERT_TRUE(adam2.RestoreState(parts[1]));
  EXPECT_EQ(adagrad2.SaveState(), parts[0]);
  EXPECT_EQ(adam2.SaveState(), parts[1]);
  EXPECT_EQ(adam2.row_step_count(5), 2);

  // Touch *different* rows after the resume, then step the old row once
  // more in both the original and the restored optimizer: identical
  // updates prove the old accumulator bytes survived untouched.
  adagrad2.StepSpan(row, 7, grad);
  adam2.StepSpan(row, 1, grad);
  EXPECT_EQ(adagrad2.touched_rows(), 2u);
  std::vector<float> original_row = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> restored_row = original_row;
  adagrad.StepSpan(original_row, 2, grad);
  adagrad2.StepSpan(restored_row, 2, grad);
  EXPECT_EQ(original_row, restored_row);
}

}  // namespace
}  // namespace kelpie
