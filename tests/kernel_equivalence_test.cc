// Bitwise equivalence of the dispatching simd:: kernels against the
// always-compiled scalar reference (math/simd.h). The reference is the
// lane-determinism contract written out in plain code, so these tests pin
// the active backend (scalar, SSE2, or AVX2 — whatever KELPIE_SIMD chose)
// to the contract: same result bits for every dimension, including the
// odd remainders a vector backend handles in its scalar tail, and for
// special values (signed zeros, denormals, infinities).
#include "math/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "math/rng.h"
#include "math/vec.h"

namespace kelpie {
namespace {

uint32_t Bits(float f) { return std::bit_cast<uint32_t>(f); }

/// EXPECT_EQ on the raw bit patterns: distinguishes +0 from -0 and treats
/// NaN == NaN when the payloads match.
void ExpectBitEqual(float a, float b, const std::string& what) {
  EXPECT_EQ(Bits(a), Bits(b)) << what << ": " << a << " vs " << b;
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  return v;
}

constexpr size_t kMaxDim = 67;  // covers every remainder mod 8 twice, plus 3

TEST(KernelEquivalenceTest, BackendNameMatchesEnum) {
  const std::string name = simd::BackendName();
  switch (simd::ActiveBackend()) {
    case simd::Backend::kScalar:
      EXPECT_EQ(name, "scalar");
      break;
    case simd::Backend::kSse2:
      EXPECT_EQ(name, "sse2");
      break;
    case simd::Backend::kAvx2:
      EXPECT_EQ(name, "avx2");
      break;
  }
}

TEST(KernelEquivalenceTest, DotMatchesScalarReferenceAllDims) {
  Rng rng(101);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::Dot(a, b), simd::scalar::Dot(a, b),
                   "Dot n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, SquaredDistanceMatchesScalarReferenceAllDims) {
  Rng rng(102);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::SquaredDistance(a, b),
                   simd::scalar::SquaredDistance(a, b),
                   "SquaredDistance n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, L1DistanceMatchesScalarReferenceAllDims) {
  Rng rng(103);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::L1Distance(a, b), simd::scalar::L1Distance(a, b),
                   "L1Distance n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, AxpyMatchesScalarReferenceAllDims) {
  Rng rng(104);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> x = RandomVec(n, rng);
    std::vector<float> y = RandomVec(n, rng);
    const float alpha = static_cast<float>(rng.UniformDouble(-1.5, 1.5));
    std::vector<float> y_simd = y;
    std::vector<float> y_ref = y;
    simd::Axpy(alpha, x, y_simd);
    simd::scalar::Axpy(alpha, x, y_ref);
    for (size_t i = 0; i < n; ++i) {
      ExpectBitEqual(y_simd[i], y_ref[i],
                     "Axpy n=" + std::to_string(n) + " i=" + std::to_string(i));
    }
  }
}

TEST(KernelEquivalenceTest, ScaleMatchesScalarReferenceAllDims) {
  Rng rng(105);
  // Includes alpha = 0 (produces signed zeros from negative inputs) and a
  // negative alpha.
  const float alphas[] = {0.0f, -1.25f, 0.731f};
  for (float alpha : alphas) {
    for (size_t n = 1; n <= kMaxDim; ++n) {
      std::vector<float> x = RandomVec(n, rng);
      std::vector<float> x_simd = x;
      std::vector<float> x_ref = x;
      simd::Scale(std::span<float>(x_simd), alpha);
      simd::scalar::Scale(std::span<float>(x_ref), alpha);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEqual(x_simd[i], x_ref[i],
                       "Scale n=" + std::to_string(n) +
                           " alpha=" + std::to_string(alpha));
      }
    }
  }
}

TEST(KernelEquivalenceTest, GemvMatchesScalarReference) {
  Rng rng(106);
  for (size_t rows = 1; rows <= 19; ++rows) {
    for (size_t cols : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u,
                        64u, 67u}) {
      std::vector<float> m = RandomVec(rows * cols, rng);
      std::vector<float> x = RandomVec(cols, rng);
      std::vector<float> out_simd(rows), out_ref(rows);
      simd::GemvRowMajor(m.data(), rows, cols, x.data(), out_simd.data());
      simd::scalar::GemvRowMajor(m.data(), rows, cols, x.data(),
                                 out_ref.data());
      for (size_t r = 0; r < rows; ++r) {
        ExpectBitEqual(out_simd[r], out_ref[r],
                       "Gemv rows=" + std::to_string(rows) +
                           " cols=" + std::to_string(cols) +
                           " r=" + std::to_string(r));
        // Each row must also equal a standalone Dot of that row (the
        // blocking must not change per-row results).
        std::span<const float> row(m.data() + r * cols, cols);
        ExpectBitEqual(out_simd[r], simd::Dot(row, x),
                       "Gemv-vs-Dot rows=" + std::to_string(rows));
      }
    }
  }
}

TEST(KernelEquivalenceTest, SquaredDistanceRowsMatchesScalarReference) {
  Rng rng(107);
  for (size_t rows = 1; rows <= 19; ++rows) {
    for (size_t cols : {1u, 3u, 8u, 9u, 16u, 17u, 33u, 64u, 67u}) {
      std::vector<float> m = RandomVec(rows * cols, rng);
      std::vector<float> x = RandomVec(cols, rng);
      std::vector<float> out_simd(rows), out_ref(rows);
      simd::SquaredDistanceRows(m.data(), rows, cols, x.data(),
                                out_simd.data());
      simd::scalar::SquaredDistanceRows(m.data(), rows, cols, x.data(),
                                        out_ref.data());
      for (size_t r = 0; r < rows; ++r) {
        ExpectBitEqual(out_simd[r], out_ref[r],
                       "SqDistRows rows=" + std::to_string(rows) +
                           " cols=" + std::to_string(cols));
        std::span<const float> row(m.data() + r * cols, cols);
        ExpectBitEqual(out_simd[r], simd::SquaredDistance(row, x),
                       "SqDistRows-vs-SquaredDistance");
      }
    }
  }
}

/// Special values: signed zeros, denormals, and infinities must flow
/// through every backend identically (no FTZ/DAZ divergence, no reordering
/// that turns Inf - Inf into a different NaN path).
std::vector<float> SpecialVec(size_t n, uint32_t salt) {
  const float denorm_min = std::numeric_limits<float>::denorm_min();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {+0.0f,       -0.0f,  denorm_min, -denorm_min,
                            1e-40f,      -1e-40f, inf,       -inf,
                            1.5f,        -2.75f,  1e30f,     -1e30f};
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = specials[(i * 7 + salt) % (sizeof(specials) / sizeof(float))];
  }
  return v;
}

TEST(KernelEquivalenceTest, SpecialValuesMatchScalarReference) {
  for (size_t n = 1; n <= kMaxDim; ++n) {
    for (uint32_t salt = 0; salt < 5; ++salt) {
      std::vector<float> a = SpecialVec(n, salt);
      std::vector<float> b = SpecialVec(n, salt + 3);
      ExpectBitEqual(simd::Dot(a, b), simd::scalar::Dot(a, b),
                     "special Dot n=" + std::to_string(n));
      ExpectBitEqual(simd::SquaredDistance(a, b),
                     simd::scalar::SquaredDistance(a, b),
                     "special SquaredDistance n=" + std::to_string(n));
      ExpectBitEqual(simd::L1Distance(a, b), simd::scalar::L1Distance(a, b),
                     "special L1Distance n=" + std::to_string(n));
      std::vector<float> y_simd = b, y_ref = b;
      simd::Axpy(-1.0f, a, y_simd);
      simd::scalar::Axpy(-1.0f, a, y_ref);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEqual(y_simd[i], y_ref[i], "special Axpy");
      }
    }
  }
}

/// Pins the scalar reference itself to the documented contract with an
/// independent test-local reimplementation: term i goes to lane i & 7,
/// lanes reduce in the fixed tree. If the reference ever drifts (e.g. to a
/// sequential sum), this catches it even though reference and backend
/// would still agree with each other.
TEST(KernelEquivalenceTest, ScalarReferenceFollowsLaneContract) {
  Rng rng(108);
  for (size_t n : {1u, 7u, 8u, 9u, 16u, 23u, 64u, 67u}) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < n; ++i) {
      lanes[i & 7] += a[i] * b[i];
    }
    const float expected = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                           ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    ExpectBitEqual(simd::scalar::Dot(a, b), expected,
                   "contract n=" + std::to_string(n));
  }
}

/// The vec.h entry points must expose the same kernels (they delegate to
/// simd::), so every caller in the models inherits the lane contract.
TEST(KernelEquivalenceTest, VecEntryPointsDelegate) {
  Rng rng(109);
  std::vector<float> a = RandomVec(37, rng);
  std::vector<float> b = RandomVec(37, rng);
  ExpectBitEqual(Dot(a, b), simd::Dot(a, b), "vec Dot");
  ExpectBitEqual(SquaredDistance(a, b), simd::SquaredDistance(a, b),
                 "vec SquaredDistance");
  ExpectBitEqual(L1Distance(a, b), simd::L1Distance(a, b), "vec L1Distance");
  ExpectBitEqual(SquaredNorm(a), simd::Dot(a, a), "vec SquaredNorm");
}

}  // namespace
}  // namespace kelpie
