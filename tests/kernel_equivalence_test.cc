// Bitwise equivalence of the dispatching simd:: kernels against the
// always-compiled scalar reference (math/simd.h). The reference is the
// lane-determinism contract written out in plain code, so these tests pin
// the active backend (scalar, SSE2, or AVX2 — whatever KELPIE_SIMD chose)
// to the contract: same result bits for every dimension, including the
// odd remainders a vector backend handles in its scalar tail, and for
// special values (signed zeros, denormals, infinities).
#include "math/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "math/matrix.h"
#include "math/quant.h"
#include "math/rng.h"
#include "math/vec.h"

namespace kelpie {
namespace {

uint32_t Bits(float f) { return std::bit_cast<uint32_t>(f); }

/// EXPECT_EQ on the raw bit patterns: distinguishes +0 from -0 and treats
/// NaN == NaN when the payloads match.
void ExpectBitEqual(float a, float b, const std::string& what) {
  EXPECT_EQ(Bits(a), Bits(b)) << what << ": " << a << " vs " << b;
}

std::vector<float> RandomVec(size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
  }
  return v;
}

constexpr size_t kMaxDim = 67;  // covers every remainder mod 8 twice, plus 3

TEST(KernelEquivalenceTest, BackendNameMatchesEnum) {
  const std::string name = simd::BackendName();
  switch (simd::ActiveBackend()) {
    case simd::Backend::kScalar:
      EXPECT_EQ(name, "scalar");
      break;
    case simd::Backend::kSse2:
      EXPECT_EQ(name, "sse2");
      break;
    case simd::Backend::kAvx2:
      EXPECT_EQ(name, "avx2");
      break;
  }
}

TEST(KernelEquivalenceTest, DotMatchesScalarReferenceAllDims) {
  Rng rng(101);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::Dot(a, b), simd::scalar::Dot(a, b),
                   "Dot n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, SquaredDistanceMatchesScalarReferenceAllDims) {
  Rng rng(102);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::SquaredDistance(a, b),
                   simd::scalar::SquaredDistance(a, b),
                   "SquaredDistance n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, L1DistanceMatchesScalarReferenceAllDims) {
  Rng rng(103);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    ExpectBitEqual(simd::L1Distance(a, b), simd::scalar::L1Distance(a, b),
                   "L1Distance n=" + std::to_string(n));
  }
}

TEST(KernelEquivalenceTest, AxpyMatchesScalarReferenceAllDims) {
  Rng rng(104);
  for (size_t n = 1; n <= kMaxDim; ++n) {
    std::vector<float> x = RandomVec(n, rng);
    std::vector<float> y = RandomVec(n, rng);
    const float alpha = static_cast<float>(rng.UniformDouble(-1.5, 1.5));
    std::vector<float> y_simd = y;
    std::vector<float> y_ref = y;
    simd::Axpy(alpha, x, y_simd);
    simd::scalar::Axpy(alpha, x, y_ref);
    for (size_t i = 0; i < n; ++i) {
      ExpectBitEqual(y_simd[i], y_ref[i],
                     "Axpy n=" + std::to_string(n) + " i=" + std::to_string(i));
    }
  }
}

TEST(KernelEquivalenceTest, ScaleMatchesScalarReferenceAllDims) {
  Rng rng(105);
  // Includes alpha = 0 (produces signed zeros from negative inputs) and a
  // negative alpha.
  const float alphas[] = {0.0f, -1.25f, 0.731f};
  for (float alpha : alphas) {
    for (size_t n = 1; n <= kMaxDim; ++n) {
      std::vector<float> x = RandomVec(n, rng);
      std::vector<float> x_simd = x;
      std::vector<float> x_ref = x;
      simd::Scale(std::span<float>(x_simd), alpha);
      simd::scalar::Scale(std::span<float>(x_ref), alpha);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEqual(x_simd[i], x_ref[i],
                       "Scale n=" + std::to_string(n) +
                           " alpha=" + std::to_string(alpha));
      }
    }
  }
}

TEST(KernelEquivalenceTest, GemvMatchesScalarReference) {
  Rng rng(106);
  for (size_t rows = 1; rows <= 19; ++rows) {
    for (size_t cols : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u,
                        64u, 67u}) {
      std::vector<float> m = RandomVec(rows * cols, rng);
      std::vector<float> x = RandomVec(cols, rng);
      std::vector<float> out_simd(rows), out_ref(rows);
      simd::GemvRowMajor(m.data(), rows, cols, x.data(), out_simd.data());
      simd::scalar::GemvRowMajor(m.data(), rows, cols, x.data(),
                                 out_ref.data());
      for (size_t r = 0; r < rows; ++r) {
        ExpectBitEqual(out_simd[r], out_ref[r],
                       "Gemv rows=" + std::to_string(rows) +
                           " cols=" + std::to_string(cols) +
                           " r=" + std::to_string(r));
        // Each row must also equal a standalone Dot of that row (the
        // blocking must not change per-row results).
        std::span<const float> row(m.data() + r * cols, cols);
        ExpectBitEqual(out_simd[r], simd::Dot(row, x),
                       "Gemv-vs-Dot rows=" + std::to_string(rows));
      }
    }
  }
}

TEST(KernelEquivalenceTest, SquaredDistanceRowsMatchesScalarReference) {
  Rng rng(107);
  for (size_t rows = 1; rows <= 19; ++rows) {
    for (size_t cols : {1u, 3u, 8u, 9u, 16u, 17u, 33u, 64u, 67u}) {
      std::vector<float> m = RandomVec(rows * cols, rng);
      std::vector<float> x = RandomVec(cols, rng);
      std::vector<float> out_simd(rows), out_ref(rows);
      simd::SquaredDistanceRows(m.data(), rows, cols, x.data(),
                                out_simd.data());
      simd::scalar::SquaredDistanceRows(m.data(), rows, cols, x.data(),
                                        out_ref.data());
      for (size_t r = 0; r < rows; ++r) {
        ExpectBitEqual(out_simd[r], out_ref[r],
                       "SqDistRows rows=" + std::to_string(rows) +
                           " cols=" + std::to_string(cols));
        std::span<const float> row(m.data() + r * cols, cols);
        ExpectBitEqual(out_simd[r], simd::SquaredDistance(row, x),
                       "SqDistRows-vs-SquaredDistance");
      }
    }
  }
}

/// Special values: signed zeros, denormals, and infinities must flow
/// through every backend identically (no FTZ/DAZ divergence, no reordering
/// that turns Inf - Inf into a different NaN path).
std::vector<float> SpecialVec(size_t n, uint32_t salt) {
  const float denorm_min = std::numeric_limits<float>::denorm_min();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {+0.0f,       -0.0f,  denorm_min, -denorm_min,
                            1e-40f,      -1e-40f, inf,       -inf,
                            1.5f,        -2.75f,  1e30f,     -1e30f};
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = specials[(i * 7 + salt) % (sizeof(specials) / sizeof(float))];
  }
  return v;
}

TEST(KernelEquivalenceTest, SpecialValuesMatchScalarReference) {
  for (size_t n = 1; n <= kMaxDim; ++n) {
    for (uint32_t salt = 0; salt < 5; ++salt) {
      std::vector<float> a = SpecialVec(n, salt);
      std::vector<float> b = SpecialVec(n, salt + 3);
      ExpectBitEqual(simd::Dot(a, b), simd::scalar::Dot(a, b),
                     "special Dot n=" + std::to_string(n));
      ExpectBitEqual(simd::SquaredDistance(a, b),
                     simd::scalar::SquaredDistance(a, b),
                     "special SquaredDistance n=" + std::to_string(n));
      ExpectBitEqual(simd::L1Distance(a, b), simd::scalar::L1Distance(a, b),
                     "special L1Distance n=" + std::to_string(n));
      std::vector<float> y_simd = b, y_ref = b;
      simd::Axpy(-1.0f, a, y_simd);
      simd::scalar::Axpy(-1.0f, a, y_ref);
      for (size_t i = 0; i < n; ++i) {
        ExpectBitEqual(y_simd[i], y_ref[i], "special Axpy");
      }
    }
  }
}

/// Pins the scalar reference itself to the documented contract with an
/// independent test-local reimplementation: term i goes to lane i & 7,
/// lanes reduce in the fixed tree. If the reference ever drifts (e.g. to a
/// sequential sum), this catches it even though reference and backend
/// would still agree with each other.
TEST(KernelEquivalenceTest, ScalarReferenceFollowsLaneContract) {
  Rng rng(108);
  for (size_t n : {1u, 7u, 8u, 9u, 16u, 23u, 64u, 67u}) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    float lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t i = 0; i < n; ++i) {
      lanes[i & 7] += a[i] * b[i];
    }
    const float expected = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
                           ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    ExpectBitEqual(simd::scalar::Dot(a, b), expected,
                   "contract n=" + std::to_string(n));
  }
}

/// The vec.h entry points must expose the same kernels (they delegate to
/// simd::), so every caller in the models inherits the lane contract.
TEST(KernelEquivalenceTest, VecEntryPointsDelegate) {
  Rng rng(109);
  std::vector<float> a = RandomVec(37, rng);
  std::vector<float> b = RandomVec(37, rng);
  ExpectBitEqual(Dot(a, b), simd::Dot(a, b), "vec Dot");
  ExpectBitEqual(SquaredDistance(a, b), simd::SquaredDistance(a, b),
                 "vec SquaredDistance");
  ExpectBitEqual(L1Distance(a, b), simd::L1Distance(a, b), "vec L1Distance");
  ExpectBitEqual(SquaredNorm(a), simd::Dot(a, a), "vec SquaredNorm");
}

// ---------------------------------------------------------------------------
// int8 quantized kernels (math/quant.h). The accumulation is exact int32,
// so the dispatching kernel must equal the scalar reference to the integer
// on every backend — no tolerance, no lane contract needed.
// ---------------------------------------------------------------------------

std::vector<int8_t> RandomI8(size_t n, Rng& rng) {
  std::vector<int8_t> v(n);
  for (int8_t& x : v) {
    x = static_cast<int8_t>(
        std::lround(rng.UniformDouble(-127.49, 127.49)));
  }
  return v;
}

TEST(QuantKernelEquivalenceTest, GemvI8MatchesScalarReferenceAllDims) {
  Rng rng(201);
  for (size_t rows = 1; rows <= 19; ++rows) {
    for (size_t cols : {1u, 2u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 33u,
                        64u, 67u}) {
      std::vector<int8_t> m = RandomI8(rows * cols, rng);
      std::vector<int8_t> x = RandomI8(cols, rng);
      std::vector<int32_t> out(rows), ref(rows);
      quant::GemvRowMajorI8(m.data(), rows, cols, x.data(), out.data());
      quant::scalar::GemvRowMajorI8(m.data(), rows, cols, x.data(),
                                    ref.data());
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(out[r], ref[r]) << "GemvI8 rows=" << rows
                                  << " cols=" << cols << " r=" << r;
      }
    }
  }
}

/// Saturation extremes: every code at +/-127 maximizes the products. A
/// maddubs-based kernel (u8 x s8, saturating pair adds) breaks exactly
/// here; the sign-extended madd path must return the analytic integer.
TEST(QuantKernelEquivalenceTest, GemvI8SaturationExtremes) {
  for (size_t cols : {1u, 15u, 16u, 17u, 64u, 67u, 128u, 1024u}) {
    std::vector<int8_t> pos(cols, static_cast<int8_t>(127));
    std::vector<int8_t> neg(cols, static_cast<int8_t>(-127));
    int32_t out = 0;
    quant::GemvRowMajorI8(pos.data(), 1, cols, neg.data(), &out);
    EXPECT_EQ(out, -16129 * static_cast<int32_t>(cols)) << "cols=" << cols;
    quant::GemvRowMajorI8(neg.data(), 1, cols, neg.data(), &out);
    EXPECT_EQ(out, 16129 * static_cast<int32_t>(cols)) << "cols=" << cols;
    // Alternating signs cancel pairwise within madd's 16-bit pair sums.
    std::vector<int8_t> alt(cols);
    for (size_t j = 0; j < cols; ++j) {
      alt[j] = static_cast<int8_t>(j % 2 == 0 ? 127 : -127);
    }
    quant::GemvRowMajorI8(alt.data(), 1, cols, pos.data(), &out);
    const int32_t expected =
        16129 * static_cast<int32_t>((cols + 1) / 2) -
        16129 * static_cast<int32_t>(cols / 2);
    EXPECT_EQ(out, expected) << "cols=" << cols;
  }
}

/// Degenerate rows: all-zero (zero scale), all-equal, and non-finite rows
/// must quantize to the documented canonical forms on every backend.
TEST(QuantKernelEquivalenceTest, QuantizeDegenerateRows) {
  Matrix m(4, 8);
  // Row 0 stays all-zero. Row 1: all elements equal.
  for (size_t j = 0; j < 8; ++j) m.At(1, j) = -0.625f;
  // Row 2: one NaN poisons the row.
  m.At(2, 3) = std::numeric_limits<float>::quiet_NaN();
  m.At(2, 0) = 1.0f;
  // Row 3: ordinary values.
  for (size_t j = 0; j < 8; ++j) m.At(3, j) = 0.125f * static_cast<float>(j);
  std::shared_ptr<const quant::QuantizedTable> qt = quant::QuantizeRowMajor(m);
  ASSERT_NE(qt, nullptr);
  EXPECT_EQ(qt->scale[0], 0.0);
  EXPECT_EQ(qt->recon_l1[0], 0.0);
  EXPECT_TRUE(qt->finite[0]);
  for (int8_t c : qt->Row(0)) EXPECT_EQ(c, 0);
  // All-equal row: every code is exactly -127, reconstruction exact in
  // double (|v| = scale * 127 by construction).
  EXPECT_TRUE(qt->finite[1]);
  for (int8_t c : qt->Row(1)) EXPECT_EQ(c, -127);
  EXPECT_LT(qt->recon_l1[1], 1e-12);
  // Non-finite row: zero codes, finite flag cleared.
  EXPECT_FALSE(qt->finite[2]);
  for (int8_t c : qt->Row(2)) EXPECT_EQ(c, 0);
  EXPECT_TRUE(qt->finite[3]);
}

uint64_t Bits64(double d) { return std::bit_cast<uint64_t>(d); }

/// The certified-interval contract: for every row, the exact float kernel
/// value lies within [approx - err, approx + err]. Exercised over random
/// tables, duplicated rows, near-ties, and degenerate rows — this is the
/// inequality the byte-identical quantized rank path rests on.
TEST(QuantKernelEquivalenceTest, CertifiedIntervalContainsExactKernelValue) {
  Rng rng(202);
  for (size_t cols : {1u, 3u, 8u, 16u, 17u, 33u, 64u, 67u}) {
    Matrix m(23, cols);
    for (size_t r = 0; r < 20; ++r) {
      for (size_t j = 0; j < cols; ++j) {
        m.At(r, j) = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      }
    }
    // Row 20 duplicates row 0; row 21 is row 0 nudged by one ulp in one
    // element (adversarial near-tie); row 22 stays all-zero.
    for (size_t j = 0; j < cols; ++j) {
      m.At(20, j) = m.At(0, j);
      m.At(21, j) = m.At(0, j);
    }
    m.At(21, 0) = std::nextafter(m.At(0, 0), 10.0f);
    std::vector<float> x(cols);
    for (float& v : x) v = static_cast<float>(rng.UniformDouble(-2.0, 2.0));

    std::shared_ptr<const quant::QuantizedTable> qt =
        quant::QuantizeRowMajor(m);
    ASSERT_NE(qt, nullptr);
    quant::QuantizedVec qx = quant::QuantizeVec(x);
    ASSERT_TRUE(qx.finite);
    std::vector<double> approx(m.rows()), err(m.rows());
    quant::ApproxDots(*qt, qx, approx, err);
    for (size_t r = 0; r < m.rows(); ++r) {
      const double exact = static_cast<double>(simd::Dot(m.Row(r), x));
      EXPECT_LE(std::fabs(exact - approx[r]), err[r])
          << "dot cols=" << cols << " r=" << r;
    }
    std::vector<double> approx_d(m.rows()), err_d(m.rows());
    quant::ApproxSquaredDistances(*qt, qx, approx_d, err_d);
    for (size_t r = 0; r < m.rows(); ++r) {
      const double exact =
          static_cast<double>(simd::SquaredDistance(m.Row(r), x));
      EXPECT_LE(std::fabs(exact - approx_d[r]), err_d[r])
          << "sqdist cols=" << cols << " r=" << r;
    }
    // approx/err are pure double arithmetic over exact integers: a second
    // evaluation must reproduce them bit for bit (the backends only differ
    // in the int32 kernel, already pinned above).
    std::vector<double> approx2(m.rows()), err2(m.rows());
    quant::ApproxDots(*qt, qx, approx2, err2);
    for (size_t r = 0; r < m.rows(); ++r) {
      EXPECT_EQ(Bits64(approx[r]), Bits64(approx2[r]));
      EXPECT_EQ(Bits64(err[r]), Bits64(err2[r]));
    }
  }
}

/// Non-finite table rows get err = +Inf — never a finite bound that could
/// silently misclassify them.
TEST(QuantKernelEquivalenceTest, NonFiniteRowsGetInfiniteError) {
  Matrix m(2, 8);
  for (size_t j = 0; j < 8; ++j) m.At(0, j) = 1.0f;
  m.At(1, 0) = std::numeric_limits<float>::infinity();
  std::vector<float> x(8, 0.5f);
  std::shared_ptr<const quant::QuantizedTable> qt = quant::QuantizeRowMajor(m);
  ASSERT_NE(qt, nullptr);
  quant::QuantizedVec qx = quant::QuantizeVec(x);
  std::vector<double> approx(2), err(2);
  quant::ApproxDots(*qt, qx, approx, err);
  EXPECT_TRUE(std::isfinite(err[0]));
  EXPECT_TRUE(std::isinf(err[1]));
  quant::ApproxSquaredDistances(*qt, qx, approx, err);
  EXPECT_TRUE(std::isfinite(err[0]));
  EXPECT_TRUE(std::isinf(err[1]));
}

}  // namespace
}  // namespace kelpie
