// Crash-safety contract of the persistent relevance cache (DESIGN.md §13):
// a cached mimic is bitwise identical to a recompute, corruption of any
// shape (torn tail, bit flip, stale fingerprint, crashed writer) degrades
// to a cache miss — never an error, never wrong bytes — and explanations
// are byte-identical with the cache off, cold, warm, or
// corrupted-then-recovered, at any thread count.
#include "core/relevance_cache.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/kelpie.h"
#include "models/model_store.h"
#include "serve/line_protocol.h"
#include "tests/test_util.h"

namespace kelpie {
namespace {

class RelevanceCacheTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(testing_util::MakeToyDataset());
    model_ =
        testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_).release();
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("kelpie_relevance_cache_test_" + std::to_string(::getpid())));
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }
  void TearDown() override { failpoint::DisarmAll(); }

  /// Fresh file path per test so corruption never leaks across tests.
  std::string CachePath(const std::string& name) {
    return (*dir_ / name).string();
  }

  /// A deterministic stand-in for a post-trained mimic: a pure function of
  /// (entity, facts), like the real thing.
  static std::vector<float> FakeMimic(EntityId entity,
                                      const std::vector<Triple>& facts) {
    std::vector<float> mimic(4);
    for (size_t i = 0; i < mimic.size(); ++i) {
      mimic[i] = static_cast<float>(entity) * 10.0f +
                 static_cast<float>(facts.size()) + static_cast<float>(i);
    }
    return mimic;
  }

  static std::vector<Triple> Facts(int n) {
    std::vector<Triple> facts;
    for (int i = 0; i < n; ++i) facts.emplace_back(i, 0, i + 1);
    return facts;
  }

  /// Computes through the cache, counting real computations.
  static std::vector<float> Get(RelevanceCache& cache, EntityId entity,
                                const std::vector<Triple>& facts,
                                std::atomic<int>& computes) {
    return cache.GetOrCompute(entity, facts, [&] {
      computes.fetch_add(1);
      return FakeMimic(entity, facts);
    });
  }

  static Dataset* dataset_;
  static LinkPredictionModel* model_;
  static std::filesystem::path* dir_;
};

Dataset* RelevanceCacheTest::dataset_ = nullptr;
LinkPredictionModel* RelevanceCacheTest::model_ = nullptr;
std::filesystem::path* RelevanceCacheTest::dir_ = nullptr;

// ------------------------------------------------------- single flight ----

TEST_F(RelevanceCacheTest, SingleFlightComputesOnceAcrossThreads) {
  auto cache = RelevanceCache::Open({});  // in-memory
  const std::vector<Triple> facts = Facts(3);
  std::atomic<int> computes{0};
  std::vector<std::vector<float>> results(8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back(
        [&, t] { results[t] = Get(*cache, 5, facts, computes); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1)
      << "concurrent lookups of one key must share one computation";
  for (const std::vector<float>& r : results) {
    EXPECT_EQ(r, FakeMimic(5, facts));
  }
  RelevanceCacheStats stats = cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.waits, results.size() - 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(RelevanceCacheTest, DistinctFactSetsDoNotAlias) {
  auto cache = RelevanceCache::Open({});
  std::atomic<int> computes{0};
  const std::vector<float> a = Get(*cache, 5, Facts(2), computes);
  const std::vector<float> b = Get(*cache, 5, Facts(3), computes);
  EXPECT_EQ(computes.load(), 2);
  EXPECT_NE(a, b);
  // And repeating either is a hit, not a recompute.
  EXPECT_EQ(Get(*cache, 5, Facts(2), computes), a);
  EXPECT_EQ(computes.load(), 2);
}

TEST_F(RelevanceCacheTest, DivergedResultsAreServedButNeverStored) {
  auto cache = RelevanceCache::Open({});
  std::atomic<int> computes{0};
  const std::vector<Triple> facts = Facts(1);
  std::vector<float> poisoned = cache->GetOrCompute(9, facts, [&] {
    computes.fetch_add(1);
    std::vector<float> mimic = FakeMimic(9, facts);
    mimic[0] = std::numeric_limits<float>::quiet_NaN();
    return mimic;
  });
  EXPECT_TRUE(std::isnan(poisoned[0]));
  // The next caller recomputes: poison must not outlive its request.
  EXPECT_EQ(Get(*cache, 9, facts, computes), FakeMimic(9, facts));
  EXPECT_EQ(computes.load(), 2);
  EXPECT_EQ(Get(*cache, 9, facts, computes), FakeMimic(9, facts));
  EXPECT_EQ(computes.load(), 2) << "the finite result is cached";
}

// ----------------------------------------------------------------- lru ----

TEST_F(RelevanceCacheTest, LruEvictionKeepsBytesBounded) {
  RelevanceCacheOptions options;
  options.max_bytes = 200;  // room for only a few 4-float entries
  auto cache = RelevanceCache::Open(std::move(options));
  std::atomic<int> computes{0};
  for (EntityId e = 0; e < 10; ++e) Get(*cache, e, Facts(1), computes);
  RelevanceCacheStats stats = cache->stats();
  EXPECT_GT(stats.evict_lru, 0u);
  EXPECT_LE(stats.bytes, 200u);
  EXPECT_LT(stats.entries, 10u);
  // The most recent entry survived; the oldest was evicted and recomputes.
  EXPECT_EQ(computes.load(), 10);
  Get(*cache, 9, Facts(1), computes);
  EXPECT_EQ(computes.load(), 10) << "hottest entry must still be cached";
  Get(*cache, 0, Facts(1), computes);
  EXPECT_EQ(computes.load(), 11) << "coldest entry must have been evicted";
}

// ------------------------------------------------------ persistence ----

TEST_F(RelevanceCacheTest, FlushReopenServesHitsWithoutComputing) {
  RelevanceCacheOptions options;
  options.path = CachePath("roundtrip.kelprc");
  options.fingerprint = 42;
  std::atomic<int> computes{0};
  std::vector<std::vector<float>> first;
  {
    auto cache = RelevanceCache::Open(options);
    for (EntityId e = 0; e < 3; ++e) {
      first.push_back(Get(*cache, e, Facts(2), computes));
    }
    ASSERT_TRUE(cache->Flush().ok());
  }
  EXPECT_EQ(computes.load(), 3);
  auto reopened = RelevanceCache::Open(options);
  EXPECT_EQ(reopened->stats().entries, 3u);
  for (EntityId e = 0; e < 3; ++e) {
    std::vector<float> served = reopened->GetOrCompute(e, Facts(2), [&] {
      ADD_FAILURE() << "entity " << e << " must be served from disk";
      return FakeMimic(e, Facts(2));
    });
    EXPECT_EQ(served, first[static_cast<size_t>(e)])
        << "persisted bytes must round-trip exactly";
  }
}

TEST_F(RelevanceCacheTest, MissingFileIsAValidEmptyCache) {
  RelevanceCacheOptions options;
  options.path = CachePath("never_written.kelprc");
  auto cache = RelevanceCache::Open(options);
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_EQ(cache->stats().evict_corrupt, 0u);
}

TEST_F(RelevanceCacheTest, GarbageFileLoadsAsEmptyWithoutError) {
  RelevanceCacheOptions options;
  options.path = CachePath("garbage.kelprc");
  {
    std::ofstream out(options.path, std::ios::binary);
    out << "this is not a cache file at all, but it is nonempty";
  }
  auto cache = RelevanceCache::Open(options);
  EXPECT_EQ(cache->stats().entries, 0u);
  EXPECT_GT(cache->stats().evict_corrupt, 0u)
      << "an unreadable non-empty file counts as dropped content";
}

TEST_F(RelevanceCacheTest, PurgeDropsEverythingInMemoryAndOnDisk) {
  RelevanceCacheOptions options;
  options.path = CachePath("purge.kelprc");
  options.fingerprint = 7;
  std::atomic<int> computes{0};
  auto cache = RelevanceCache::Open(options);
  Get(*cache, 1, Facts(1), computes);
  ASSERT_TRUE(cache->Flush().ok());
  ASSERT_TRUE(cache->Purge().ok());
  EXPECT_EQ(cache->stats().entries, 0u);
  Result<RelevanceCacheFileInfo> info = RelevanceCache::Inspect(options.path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->header_ok);
  EXPECT_EQ(info->entries, 0u);
  // And a reopen sees nothing.
  EXPECT_EQ(RelevanceCache::Open(options)->stats().entries, 0u);
}

// ----------------------------------------------- corruption matrix ----
// Every corruption shape recovers to recomputed-but-identical bytes.

TEST_F(RelevanceCacheTest, TornTailTruncatesAndRecomputesIdentically) {
  RelevanceCacheOptions options;
  options.path = CachePath("torn.kelprc");
  options.fingerprint = 42;
  std::atomic<int> computes{0};
  {
    auto cache = RelevanceCache::Open(options);
    for (EntityId e = 0; e < 4; ++e) Get(*cache, e, Facts(2), computes);
    failpoint::Scoped fault("cache.partial_write");
    ASSERT_TRUE(cache->Flush().ok());
  }
  auto reopened = RelevanceCache::Open(options);
  RelevanceCacheStats stats = reopened->stats();
  EXPECT_EQ(stats.torn_tail, 1u);
  EXPECT_EQ(stats.entries, 3u) << "only the torn last frame is lost";
  std::atomic<int> recomputes{0};
  for (EntityId e = 0; e < 4; ++e) {
    EXPECT_EQ(Get(*reopened, e, Facts(2), recomputes), FakeMimic(e, Facts(2)));
  }
  EXPECT_EQ(recomputes.load(), 1) << "exactly the torn entry recomputes";
}

TEST_F(RelevanceCacheTest, BitFlipEvictsOnlyTheCorruptEntry) {
  RelevanceCacheOptions options;
  options.path = CachePath("bitflip.kelprc");
  options.fingerprint = 42;
  std::atomic<int> computes{0};
  {
    auto cache = RelevanceCache::Open(options);
    for (EntityId e = 0; e < 4; ++e) Get(*cache, e, Facts(2), computes);
    failpoint::Scoped fault("cache.bit_flip");
    ASSERT_TRUE(cache->Flush().ok());
  }
  auto reopened = RelevanceCache::Open(options);
  RelevanceCacheStats stats = reopened->stats();
  EXPECT_EQ(stats.evict_corrupt, 1u);
  EXPECT_EQ(stats.entries, 3u);
  std::atomic<int> recomputes{0};
  for (EntityId e = 0; e < 4; ++e) {
    EXPECT_EQ(Get(*reopened, e, Facts(2), recomputes), FakeMimic(e, Facts(2)));
  }
  EXPECT_EQ(recomputes.load(), 1);
}

TEST_F(RelevanceCacheTest, StaleFingerprintInvalidatesWholesale) {
  RelevanceCacheOptions options;
  options.path = CachePath("stale.kelprc");
  options.fingerprint = 42;
  std::atomic<int> computes{0};
  {
    auto cache = RelevanceCache::Open(options);
    for (EntityId e = 0; e < 3; ++e) Get(*cache, e, Facts(2), computes);
    failpoint::Scoped fault("cache.stale_fingerprint");
    ASSERT_TRUE(cache->Flush().ok());
  }
  // The file is structurally valid — just written by "another model".
  Result<RelevanceCacheFileInfo> info = RelevanceCache::Inspect(options.path);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->header_ok);
  EXPECT_EQ(info->entries, 3u);
  EXPECT_NE(info->fingerprint, 42u);

  auto reopened = RelevanceCache::Open(options);
  RelevanceCacheStats stats = reopened->stats();
  EXPECT_GT(stats.evict_fingerprint, 0u);
  EXPECT_EQ(stats.entries, 0u) << "wrong-model entries must never be served";
  std::atomic<int> recomputes{0};
  for (EntityId e = 0; e < 3; ++e) {
    EXPECT_EQ(Get(*reopened, e, Facts(2), recomputes), FakeMimic(e, Facts(2)));
  }
  EXPECT_EQ(recomputes.load(), 3);
}

TEST_F(RelevanceCacheTest, CrashedWriterKeepsThePreviousGeneration) {
  RelevanceCacheOptions options;
  options.path = CachePath("crash.kelprc");
  options.fingerprint = 42;
  std::atomic<int> computes{0};
  auto cache = RelevanceCache::Open(options);
  Get(*cache, 1, Facts(2), computes);
  ASSERT_TRUE(cache->Flush().ok());
  Get(*cache, 2, Facts(2), computes);
  {
    // The atomic-write layer crashes mid-write: Flush fails, and the
    // temp+rename discipline means the previous file is untouched.
    failpoint::Scoped fault("atomic_file.partial_write");
    EXPECT_FALSE(cache->Flush().ok());
  }
  auto reopened = RelevanceCache::Open(options);
  EXPECT_EQ(reopened->stats().entries, 1u)
      << "the first generation survives a crashed rewrite";
  std::atomic<int> recomputes{0};
  EXPECT_EQ(Get(*reopened, 1, Facts(2), recomputes), FakeMimic(1, Facts(2)));
  EXPECT_EQ(recomputes.load(), 0);
}

// ----------------------------------------------------- fingerprint ----

TEST_F(RelevanceCacheTest, FingerprintIsStableAcrossSaveLoad) {
  const uint64_t fp = ComputeModelFingerprint(*model_, 1234);
  EXPECT_EQ(fp, ComputeModelFingerprint(*model_, 1234));
  const std::string path = CachePath("fp_model.bin");
  ASSERT_TRUE(SaveModel(*model_, ModelKind::kComplEx, path).ok());
  Result<std::unique_ptr<LinkPredictionModel>> loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ComputeModelFingerprint(**loaded, 1234), fp)
      << "a pool instance loaded from file must share the CLI fingerprint";
}

TEST_F(RelevanceCacheTest, FingerprintSeparatesSeedsAndParameters) {
  const uint64_t fp = ComputeModelFingerprint(*model_, 1234);
  EXPECT_NE(ComputeModelFingerprint(*model_, 1235), fp)
      << "engine seed feeds the post-training RNG: different mimics";
  auto other = testing_util::TrainToyModel(ModelKind::kComplEx, *dataset_,
                                           /*seed=*/13);
  EXPECT_NE(ComputeModelFingerprint(*other, 1234), fp)
      << "different learned parameters: different mimics";
}

// -------------------------------------------- golden byte identity ----
// The acceptance test: one-shot explanations rendered in the serve wire
// format, with the cache off / cold / warm-reopened / corrupted-then-
// recovered, at 1 and 4 extraction threads — all byte-identical.

class RelevanceCacheGoldenTest : public RelevanceCacheTest {
 protected:
  /// One fresh one-shot run (new Kelpie, cold engine caches), optionally
  /// backed by a persistent relevance cache.
  static std::string RunExplain(std::shared_ptr<RelevanceCache> cache,
                                size_t threads, bool sufficient) {
    KelpieOptions options;
    options.engine.conversion_set_size = 4;
    options.num_threads = threads;
    options.engine.relevance_cache = std::move(cache);
    Kelpie kelpie(*model_, *dataset_, options);
    const Triple prediction = Prediction();
    if (sufficient) {
      std::vector<EntityId> converted;
      Explanation x = kelpie.ExplainSufficient(
          prediction, PredictionTarget::kTail, &converted);
      return serve::ExplainResponseLine(7, x, converted, *dataset_);
    }
    Explanation x =
        kelpie.ExplainNecessary(prediction, PredictionTarget::kTail);
    return serve::ExplainResponseLine(7, x, {}, *dataset_);
  }

  static Triple Prediction() {
    const Dataset& d = *dataset_;
    return Triple(d.entities().Find("City_1").value(),
                  d.relations().Find("located_in").value(),
                  d.entities().Find("Country_1").value());
  }
};

TEST_F(RelevanceCacheGoldenTest, ExplanationsAreByteIdenticalInEveryMode) {
  for (const bool sufficient : {false, true}) {
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE((sufficient ? "sufficient" : "necessary") +
                   std::string(" threads=") + std::to_string(threads));
      RelevanceCacheOptions options;
      options.path = CachePath("golden_" + std::to_string(sufficient) + "_" +
                               std::to_string(threads) + ".kelprc");
      options.fingerprint = ComputeModelFingerprint(*model_, 1234);

      const std::string baseline = RunExplain(nullptr, threads, sufficient);

      auto cold = RelevanceCache::Open(options);
      EXPECT_EQ(RunExplain(cold, threads, sufficient), baseline)
          << "cold cache must not change a single byte";
      EXPECT_GT(cold->stats().misses, 0u) << "the cache must have been used";
      ASSERT_TRUE(cold->Flush().ok());

      auto warm = RelevanceCache::Open(options);
      ASSERT_GT(warm->stats().entries, 0u);
      EXPECT_EQ(RunExplain(warm, threads, sufficient), baseline)
          << "warm cache must serve bitwise-identical mimics";
      RelevanceCacheStats warm_stats = warm->stats();
      EXPECT_GT(warm_stats.hits, 0u);
      EXPECT_EQ(warm_stats.misses, 0u)
          << "a repeated extraction is fully served from the cache";
      {
        failpoint::Scoped fault("cache.bit_flip");
        ASSERT_TRUE(warm->Flush().ok());
      }

      auto recovered = RelevanceCache::Open(options);
      EXPECT_EQ(recovered->stats().evict_corrupt, 1u);
      EXPECT_EQ(RunExplain(recovered, threads, sufficient), baseline)
          << "a corrupted entry must recompute to the same bytes";
    }
  }
}

}  // namespace
}  // namespace kelpie
