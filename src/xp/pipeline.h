#ifndef KELPIE_XP_PIPELINE_H_
#define KELPIE_XP_PIPELINE_H_

#include <string>
#include <vector>

#include "baselines/explainer.h"
#include "common/budget.h"
#include "common/result.h"
#include "eval/evaluator.h"
#include "math/rng.h"
#include "models/factory.h"
#include "xp/journal.h"

namespace kelpie {

/// -----------------------------------------------------------------------
/// End-to-end experiment pipeline (paper Section 5.3).
///
/// The methodology is retraining-based: explanations are extracted for a
/// sample P of correct test tail predictions, their facts are applied to
/// G_train (removed in the necessary scenario; transferred onto the
/// conversion entities and added in the sufficient scenario), the model is
/// retrained from scratch, and the change in H@1 / MRR over the involved
/// predictions is the measured effectiveness.
/// -----------------------------------------------------------------------

/// Samples up to `count` distinct test facts whose filtered rank on the
/// predicted side is 1 (correct predictions). The paper's experiments use
/// tail predictions; the head direction uses the analogous methodology the
/// paper describes.
std::vector<Triple> SampleCorrectPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    PredictionTarget target, Rng& rng);

/// Tail-direction convenience wrapper.
std::vector<Triple> SampleCorrectTailPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    Rng& rng);

/// Samples `count` entities c (with at least one training fact) for which
/// the converted prediction is not already rank 1 and not a known fact —
/// the conversion set C shared by all frameworks.
std::vector<EntityId> SampleConversionEntities(
    const LinkPredictionModel& model, const Dataset& dataset,
    const Triple& prediction, PredictionTarget target, size_t count,
    Rng& rng);

/// Warm-start policy of end-to-end verification retrains. Default (empty
/// checkpoint path) = historical behavior: every retrain starts from random
/// initialization with the full default epoch schedule.
struct RetrainOptions {
  /// Directory of a training checkpoint (ml/checkpoint.h) written by a
  /// base-model `kelpie train --checkpoint` run. When non-empty, each
  /// verification retrain seeds its parameters and optimizer state from
  /// that checkpoint (warm start, load-only) instead of random init, then
  /// trains on the modified dataset. Deterministic: every retrain loads the
  /// same base state, so warm runs are reproducible among themselves.
  std::string warm_start_checkpoint;
  /// Epoch count override for warm-started retrains (0 = keep the default
  /// schedule). A converged base state typically needs far fewer epochs to
  /// adapt to a few removed/added facts — this is where the warm-start
  /// speedup comes from (EXPERIMENTS.md).
  size_t warm_epochs = 0;
};

/// (H@1, MRR) of the predictions in `predictions` (measured on the
/// `target` side) under a model retrained on `dataset` modified by
/// removing `removed` and adding `added`. Retraining uses
/// DefaultConfig(kind, ...) and `retrain_seed`, warm-started per `retrain`.
LpMetrics RetrainAndMeasure(ModelKind kind, const Dataset& dataset,
                            const std::vector<Triple>& predictions,
                            const std::vector<Triple>& removed,
                            const std::vector<Triple>& added,
                            PredictionTarget target, uint64_t retrain_seed,
                            const RetrainOptions& retrain = {});

/// Tail-direction convenience wrapper.
LpMetrics RetrainAndMeasureTails(ModelKind kind, const Dataset& dataset,
                                 const std::vector<Triple>& predictions,
                                 const std::vector<Triple>& removed,
                                 const std::vector<Triple>& added,
                                 uint64_t retrain_seed);

/// Result of one necessary-scenario end-to-end run.
struct NecessaryRunResult {
  /// Metrics over P after removal + retraining; the originals are 1.0 by
  /// construction, so Δ = after - 1.0.
  LpMetrics after;
  double delta_h1() const { return after.hits_at_1 - 1.0; }
  double delta_mrr() const { return after.mrr - 1.0; }
  std::vector<Explanation> explanations;
};

/// Extracts necessary explanations for every prediction with `explainer`,
/// removes their union from the training set, retrains and measures on the
/// `target` side.
NecessaryRunResult RunNecessaryEndToEnd(
    Explainer& explainer, ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, uint64_t retrain_seed,
    PredictionTarget target = PredictionTarget::kTail);

/// Result of one sufficient-scenario end-to-end run.
struct SufficientRunResult {
  /// Metrics over the fictitious conversion predictions P_C before
  /// (original model) and after (facts added + retraining).
  LpMetrics before;
  LpMetrics after;
  double delta_h1() const { return after.hits_at_1 - before.hits_at_1; }
  double delta_mrr() const { return after.mrr - before.mrr; }
  std::vector<Explanation> explanations;
  /// The conversion set of each prediction (aligned with `explanations`).
  std::vector<std::vector<EntityId>> conversion_sets;
};

/// Extracts sufficient explanations (with per-prediction conversion sets of
/// size `conversion_set_size` sampled from `rng`), adds the transferred
/// facts, retrains and measures over P_C.
SufficientRunResult RunSufficientEndToEnd(
    Explainer& explainer, const LinkPredictionModel& original_model,
    ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, size_t conversion_set_size,
    Rng& rng, uint64_t retrain_seed,
    PredictionTarget target = PredictionTarget::kTail);

/// The conversion predictions of a sufficient run, flattened: each entity
/// of a prediction's conversion set substitutes the source entity (the
/// head for tail predictions).
std::vector<Triple> ConversionPredictions(
    const std::vector<Triple>& predictions,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target = PredictionTarget::kTail);

/// The facts a sufficient explanation adds to G_train: each explanation
/// fact transferred from the prediction's source entity onto every entity
/// of its conversion set.
std::vector<Triple> TransferredFacts(
    const std::vector<Triple>& predictions,
    const std::vector<Explanation>& explanations,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target = PredictionTarget::kTail);

/// Where a resumable run keeps its journal, and whether to resume from it.
struct JournalOptions {
  std::string path;
  /// True: replay complete records from an existing journal and continue
  /// after them. False: start fresh, discarding any existing journal.
  bool resume = false;
};

/// Run-level interruption and retry policy of a resumable run. The
/// per-prediction extraction limits live on the Explainer
/// (Explainer::SetExtractionLimits); this bundle governs the loop around
/// it.
struct RunControl {
  /// Checked before each fresh extraction and before retraining; a run that
  /// observes it journals nothing further and returns kCancelled, so every
  /// finished prediction (including a truncated in-flight one the shared
  /// token stopped) is already flushed to disk.
  CancelToken cancel;
  /// Run-level absolute deadline; infinite by default. Checked at the same
  /// points as `cancel` and returns kDeadlineExceeded.
  Deadline deadline;
  /// With JournalOptions::resume: journaled predictions whose completeness
  /// is not kComplete are re-extracted under the explainer's current limits
  /// instead of replayed, and the journal is rewritten in place (complete
  /// records re-appended byte-identically). An upgrade run with larger
  /// limits thus converges to the journal an uninterrupted run would have
  /// produced — exactly for the explanation content (facts, relevance,
  /// completeness, the resulting metrics); the `post_trainings` cost
  /// counter of a *re-extracted* record can differ when predictions share
  /// relevance-engine baseline-cache entries, because the uninterrupted
  /// run extracted with a cache warmed by the predictions the retry run
  /// merely replays.
  bool retry_truncated = false;
  /// Warm-start policy of the run's verification retrains. Non-default
  /// options are folded into the journal run id (cold runs keep their
  /// historical ids), so a warm journal never resumes a cold run or vice
  /// versa.
  RetrainOptions retrain;
};

/// Journaled variant of RunNecessaryEndToEnd: each prediction's extracted
/// explanation is appended to the journal at `journal.path` before the next
/// extraction starts, so a killed run restarted with `journal.resume`
/// replays the finished predictions from disk and produces byte-identical
/// final results (extraction is deterministic per prediction; journaled
/// runs zero the wall-clock `seconds` field so replayed and fresh
/// explanations compare equal). Returns `Status::FailedPrecondition` when
/// the journal belongs to a different run configuration.
///
/// Test hook: failpoint `"pipeline.interrupt"` (value = prediction index)
/// aborts the run right after that prediction's record is journaled,
/// simulating a kill at a deterministic point.
Result<NecessaryRunResult> RunNecessaryEndToEndResumable(
    Explainer& explainer, ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, uint64_t retrain_seed,
    PredictionTarget target, const JournalOptions& journal,
    const RunControl& control = {});

/// Journaled variant of RunSufficientEndToEnd. Unlike the non-resumable
/// function (which draws all conversion sets from one shared Rng), each
/// prediction's conversion set is sampled from an independent stream seeded
/// by (conversion_seed, prediction, index) — so a resumed run reproduces
/// exactly the sets an uninterrupted run would draw.
Result<SufficientRunResult> RunSufficientEndToEndResumable(
    Explainer& explainer, const LinkPredictionModel& original_model,
    ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, size_t conversion_set_size,
    uint64_t conversion_seed, uint64_t retrain_seed, PredictionTarget target,
    const JournalOptions& journal, const RunControl& control = {});

/// Minimality study (paper Section 5.4): replaces each explanation by a
/// random strict subset (uniform removal size in [1, len); length-1
/// explanations become empty) and returns the sub-sampled fact lists.
std::vector<std::vector<Triple>> SubsampleExplanations(
    const std::vector<Explanation>& explanations, Rng& rng);

/// The paper's effectiveness-loss percentage: (sub - full) / full, e.g.
/// full ΔH@1 = -0.90 and sub ΔH@1 = -0.30 give -66.7%.
double EffectivenessLoss(double full_delta, double sub_delta);

}  // namespace kelpie

#endif  // KELPIE_XP_PIPELINE_H_
