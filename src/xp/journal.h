#ifndef KELPIE_XP_JOURNAL_H_
#define KELPIE_XP_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kgraph/triple.h"

namespace kelpie {

/// Per-prediction progress of an end-to-end experiment run, as persisted in
/// the journal: everything needed to reconstruct the prediction's
/// explanation without re-running the (expensive) extraction.
struct PredictionRecord {
  Triple prediction;
  /// Explanation facts (X*).
  std::vector<Triple> facts;
  /// Conversion set (sufficient scenario; empty for necessary).
  std::vector<EntityId> conversion_set;
  double relevance = 0.0;
  bool accepted = false;
  uint64_t post_trainings = 0;
  uint64_t visited_candidates = 0;
  /// Numeric value of the extraction's kelpie::Completeness; 0 = complete.
  /// A non-zero value marks a truncated prediction that `--resume
  /// --retry-truncated` may re-extract under larger limits. Records written
  /// by format v1 read back as complete (the only state v1 could journal).
  uint64_t completeness = 0;
  uint64_t skipped_candidates = 0;
  uint64_t divergent_candidates = 0;

  bool operator==(const PredictionRecord&) const = default;
};

/// Deterministic per-run aggregate appended as the journal's final frame
/// (format v3). It is recomputed from the complete result set each time the
/// run finishes, so an interrupted-and-resumed run converges to the same
/// summary as an uninterrupted one — resuming never double-counts work that
/// was already journaled.
struct RunSummary {
  uint64_t predictions = 0;
  uint64_t accepted = 0;
  /// Predictions whose extraction completeness was not kComplete.
  uint64_t truncated = 0;
  uint64_t post_trainings = 0;
  uint64_t visited_candidates = 0;
  uint64_t skipped_candidates = 0;
  uint64_t divergent_candidates = 0;
  /// Mean relevance over non-divergent (finite) explanations; 0 if none.
  double mean_relevance = 0.0;

  bool operator==(const RunSummary&) const = default;
};

/// Append-only, CRC-framed journal of per-prediction progress.
///
/// File layout: a header (magic "KELPIEJL", format version, the run id)
/// followed by records, each framed as [u64 length][payload][u32 CRC32C of
/// payload]. Appends are flushed record-by-record, so a killed run loses at
/// most the record being written; on reopen a torn or corrupt tail is
/// detected by the framing, truncated away, and the run resumes from the
/// last complete record.
///
/// Format v2 appends completeness/skipped/divergent counters to each
/// record. Reading is backward compatible: v1 files (and v1 records inside
/// a resumed-then-appended file) parse with those fields defaulted, keyed
/// on the frame's payload length rather than the header version.
///
/// Format v3 may end with one summary frame whose payload starts with an
/// all-ones u64 marker — unambiguous, because every record payload starts
/// with an entity id widened from 32 bits. Resuming consumes the stale
/// summary (exposed as recovered_summary()) and truncates it away, so new
/// records append after the last data record and the finished run appends a
/// fresh summary. Files with v1/v2 headers keep their version on resume and
/// never receive summary frames (supports_summary() is false), preserving
/// read compatibility with older readers.
///
/// The run id is a fingerprint of everything that determines the run's
/// results (scenario, model, dataset, predictions, seeds — see
/// ComputeRunId in pipeline.h callers). Resuming with a mismatched id
/// fails: replaying records from a different configuration would silently
/// produce wrong results.
class RunJournal {
 public:
  /// Opens `path` for appending. With `resume` false the file is created
  /// fresh (an existing journal is discarded). With `resume` true an
  /// existing file is validated against `run_id` and its complete records
  /// become `recovered()`; a missing file starts an empty journal.
  static Result<RunJournal> Open(const std::string& path, uint64_t run_id,
                                 bool resume);

  /// Appends one record and flushes it to the file.
  Status Append(const PredictionRecord& record);

  /// Appends the run summary frame and flushes it. Fails on journals whose
  /// on-disk format predates summaries (supports_summary() false).
  Status AppendSummary(const RunSummary& summary);

  /// Records recovered from a resumed journal, in append order.
  const std::vector<PredictionRecord>& recovered() const {
    return recovered_;
  }

  /// The summary frame recovered from a resumed journal, if the previous
  /// run finished and wrote one. The frame itself has already been
  /// truncated from the file (see class comment).
  const std::optional<RunSummary>& recovered_summary() const {
    return recovered_summary_;
  }

  /// True when the journal's on-disk format (v3+) carries summary frames.
  /// False for journals resumed from v1/v2 files, which stay at their
  /// original version for older readers.
  bool supports_summary() const { return version_ >= 3; }

  /// An inert journal (no file); assign from Open() before use.
  RunJournal() = default;
  RunJournal(RunJournal&&) = default;
  RunJournal& operator=(RunJournal&&) = default;

 private:
  std::string path_;
  std::ofstream out_;
  /// On-disk header version: 3 for fresh journals, the stored version when
  /// resuming an existing file.
  uint64_t version_ = 3;
  std::vector<PredictionRecord> recovered_;
  std::optional<RunSummary> recovered_summary_;
};

}  // namespace kelpie

#endif  // KELPIE_XP_JOURNAL_H_
