#ifndef KELPIE_XP_JOURNAL_H_
#define KELPIE_XP_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kgraph/triple.h"

namespace kelpie {

/// Per-prediction progress of an end-to-end experiment run, as persisted in
/// the journal: everything needed to reconstruct the prediction's
/// explanation without re-running the (expensive) extraction.
struct PredictionRecord {
  Triple prediction;
  /// Explanation facts (X*).
  std::vector<Triple> facts;
  /// Conversion set (sufficient scenario; empty for necessary).
  std::vector<EntityId> conversion_set;
  double relevance = 0.0;
  bool accepted = false;
  uint64_t post_trainings = 0;
  uint64_t visited_candidates = 0;
  /// Numeric value of the extraction's kelpie::Completeness; 0 = complete.
  /// A non-zero value marks a truncated prediction that `--resume
  /// --retry-truncated` may re-extract under larger limits. Records written
  /// by format v1 read back as complete (the only state v1 could journal).
  uint64_t completeness = 0;
  uint64_t skipped_candidates = 0;
  uint64_t divergent_candidates = 0;

  bool operator==(const PredictionRecord&) const = default;
};

/// Append-only, CRC-framed journal of per-prediction progress.
///
/// File layout: a header (magic "KELPIEJL", format version, the run id)
/// followed by records, each framed as [u64 length][payload][u32 CRC32C of
/// payload]. Appends are flushed record-by-record, so a killed run loses at
/// most the record being written; on reopen a torn or corrupt tail is
/// detected by the framing, truncated away, and the run resumes from the
/// last complete record.
///
/// Format v2 appends completeness/skipped/divergent counters to each
/// record. Reading is backward compatible: v1 files (and v1 records inside
/// a resumed-then-appended file) parse with those fields defaulted, keyed
/// on the frame's payload length rather than the header version.
///
/// The run id is a fingerprint of everything that determines the run's
/// results (scenario, model, dataset, predictions, seeds — see
/// ComputeRunId in pipeline.h callers). Resuming with a mismatched id
/// fails: replaying records from a different configuration would silently
/// produce wrong results.
class RunJournal {
 public:
  /// Opens `path` for appending. With `resume` false the file is created
  /// fresh (an existing journal is discarded). With `resume` true an
  /// existing file is validated against `run_id` and its complete records
  /// become `recovered()`; a missing file starts an empty journal.
  static Result<RunJournal> Open(const std::string& path, uint64_t run_id,
                                 bool resume);

  /// Appends one record and flushes it to the file.
  Status Append(const PredictionRecord& record);

  /// Records recovered from a resumed journal, in append order.
  const std::vector<PredictionRecord>& recovered() const {
    return recovered_;
  }

  /// An inert journal (no file); assign from Open() before use.
  RunJournal() = default;
  RunJournal(RunJournal&&) = default;
  RunJournal& operator=(RunJournal&&) = default;

 private:
  std::string path_;
  std::ofstream out_;
  std::vector<PredictionRecord> recovered_;
};

}  // namespace kelpie

#endif  // KELPIE_XP_JOURNAL_H_
