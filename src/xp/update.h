#ifndef KELPIE_XP_UPDATE_H_
#define KELPIE_XP_UPDATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/budget.h"
#include "common/result.h"
#include "common/status.h"
#include "kgraph/dataset.h"
#include "kgraph/triple.h"
#include "models/model.h"

namespace kelpie::xp {

/// -----------------------------------------------------------------------
/// Incremental knowledge-graph updates (DESIGN.md §16).
///
/// A trained model answers queries against a KG snapshot; real graphs
/// drift. `ApplyKgUpdate` ingests a delta (triples added and removed from
/// the training split) and repairs the model without a full retrain: each
/// entity mentioned by the delta gets its embedding row re-fit against its
/// *updated* fact set via PostTrainMimic, warm-started from its current
/// row, with every other parameter frozen — the dynamic-KG analogue of the
/// paper's post-training step, and a bounded first-order maintenance of
/// the embedding (cost O(affected entities), not O(graph)).
///
/// Determinism and order-independence: every new row is computed against
/// the ORIGINAL pre-update parameters (rows are staged and committed only
/// after all are computed), and each row's RNG stream is seeded purely
/// from (seed, entity, updated fact set). Affected entities can therefore
/// be processed in any order — or across a crash — and converge to the
/// same bytes.
///
/// Durability: with a journal path, each completed row is appended as a
/// CRC32C-framed record under a run id that binds (model parameters,
/// delta, seed). A killed update resumed with the same arguments replays
/// journaled rows byte-identically and computes only the remainder; a torn
/// trailing frame is truncated, and a journal from a different run fails
/// with FailedPrecondition rather than silently mixing state.
///
/// Cache contract: mimics depend on the full parameter vector, so any
/// committed row change flips ComputeModelFingerprint and invalidates
/// persistent relevance caches wholesale at their next Open (tier 1,
/// correctness). When parameters are unchanged (e.g. a delta that only
/// removes an entity's last triple leaves its row untouched), affected
/// entities' cache entries are still dead keys — their fact-set hashes can
/// never be queried again — and RelevanceCache::PurgeEntities garbage-
/// collects them (tier 2, hygiene).
/// -----------------------------------------------------------------------

/// A training-split delta: triples to add and triples to drop. Both lists
/// refer to the existing vocabulary — incremental update repairs rows, it
/// does not grow the embedding tables.
struct KgDelta {
  std::vector<Triple> add;
  std::vector<Triple> remove;

  bool empty() const { return add.empty() && remove.empty(); }
};

/// Parses a delta file: one operation per line,
///   add <TAB> head <TAB> relation <TAB> tail
///   remove <TAB> head <TAB> relation <TAB> tail
/// ('+' and '-' are accepted as aliases). Blank lines and lines starting
/// with '#' are skipped. Malformed lines, unknown operations and names
/// outside the dataset's vocabulary fail with InvalidArgument naming the
/// line number; `source` labels the input in error messages.
Result<KgDelta> ParseKgDelta(std::string_view text, const Dataset& dataset,
                             std::string_view source = "<delta>");

/// Sorted, de-duplicated entities mentioned by the delta — the rows an
/// update touches and the keys a cache purge targets.
std::vector<EntityId> AffectedEntities(const KgDelta& delta);

struct UpdateOptions {
  /// Seeds every per-entity post-training RNG stream (mixed with the
  /// entity and its updated fact set, mirroring the relevance engine's
  /// seeding contract). Part of the journal run id.
  uint64_t seed = 7;
  /// Row journal for crash-safe resume; empty = in-memory only.
  std::string journal_path;
  /// Replay completed rows from an existing journal (same model, delta and
  /// seed required — enforced via the run id).
  bool resume = false;
  /// Checked between entities; a cancelled update returns kCancelled with
  /// every completed row already journaled and the model untouched.
  CancelToken cancel;
};

struct UpdateReport {
  size_t triples_added = 0;
  size_t triples_removed = 0;
  /// All entities the delta mentions, ascending.
  std::vector<EntityId> affected;
  /// Affected entities left with no incident training facts; their rows
  /// are (by the warm-init contract) unchanged.
  std::vector<EntityId> isolated;
  /// Rows computed by this invocation.
  size_t rows_recomputed = 0;
  /// Rows replayed byte-identically from the resume journal.
  size_t rows_replayed = 0;
  /// ComputeModelFingerprint(model, seed) before/after the commit; equal
  /// iff no row byte actually changed.
  uint64_t fingerprint_before = 0;
  uint64_t fingerprint_after = 0;
  bool params_changed = false;
};

/// Applies `delta` to `model` in place, as described above. Validates the
/// delta first (removed triples must exist in the training split, added
/// ones must not, and the two lists must be internally duplicate-free);
/// nothing is mutated on any error path. The caller owns persistence of
/// the updated model (SaveModel) and the dataset rewrite.
Result<UpdateReport> ApplyKgUpdate(LinkPredictionModel& model,
                                   const Dataset& dataset,
                                   const KgDelta& delta,
                                   const UpdateOptions& options);

}  // namespace kelpie::xp

#endif  // KELPIE_XP_UPDATE_H_
