#include "xp/pattern_miner.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace kelpie {

void PatternMiner::Add(const Triple& prediction,
                       const Explanation& explanation) {
  if (explanation.empty()) return;
  auto& row = cells_[prediction.relation];
  ++explanation_counts_[prediction.relation];
  std::set<RelationId> seen_in_this_explanation;
  for (const Triple& fact : explanation.facts) {
    Cell& cell = row[fact.relation];
    ++cell.fact_count;
    ++total_facts_[prediction.relation];
    if (seen_in_this_explanation.insert(fact.relation).second) {
      ++cell.support;
      cell.relevance_sum += explanation.relevance;
    }
  }
}

std::vector<EvidencePattern> PatternMiner::PatternsFor(
    RelationId relation) const {
  std::vector<EvidencePattern> out;
  auto row_it = cells_.find(relation);
  if (row_it == cells_.end()) return out;
  auto total_it = total_facts_.find(relation);
  const double total =
      total_it == total_facts_.end() ? 0.0
                                     : static_cast<double>(total_it->second);
  for (const auto& [evidence, cell] : row_it->second) {
    EvidencePattern pattern;
    pattern.prediction_relation = relation;
    pattern.evidence_relation = evidence;
    pattern.support = cell.support;
    pattern.fact_count = cell.fact_count;
    pattern.share =
        total > 0.0 ? static_cast<double>(cell.fact_count) / total : 0.0;
    pattern.mean_relevance =
        cell.support > 0
            ? cell.relevance_sum / static_cast<double>(cell.support)
            : 0.0;
    out.push_back(pattern);
  }
  std::sort(out.begin(), out.end(),
            [](const EvidencePattern& a, const EvidencePattern& b) {
              if (a.fact_count != b.fact_count) {
                return a.fact_count > b.fact_count;
              }
              return a.evidence_relation < b.evidence_relation;
            });
  return out;
}

std::vector<EvidencePattern> PatternMiner::AllPatterns() const {
  std::vector<RelationId> relations;
  for (const auto& [relation, row] : cells_) {
    relations.push_back(relation);
  }
  std::sort(relations.begin(), relations.end());
  std::vector<EvidencePattern> out;
  for (RelationId r : relations) {
    std::vector<EvidencePattern> row = PatternsFor(r);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

std::vector<EvidencePattern> PatternMiner::BiasCandidates(
    double share_threshold) const {
  std::vector<EvidencePattern> out;
  for (const EvidencePattern& pattern : AllPatterns()) {
    if (pattern.evidence_relation != pattern.prediction_relation &&
        pattern.share >= share_threshold) {
      out.push_back(pattern);
    }
  }
  return out;
}

size_t PatternMiner::ExplanationCount(RelationId relation) const {
  auto it = explanation_counts_.find(relation);
  return it == explanation_counts_.end() ? 0 : it->second;
}

std::string PatternMiner::Report(const Dataset& dataset,
                                 size_t top_k) const {
  std::string out;
  std::vector<RelationId> relations;
  for (const auto& [relation, row] : cells_) {
    relations.push_back(relation);
  }
  std::sort(relations.begin(), relations.end());
  for (RelationId r : relations) {
    out += "predictions of '" + dataset.relations().NameOf(r) + "' (" +
           std::to_string(ExplanationCount(r)) + " explanations):\n";
    std::vector<EvidencePattern> patterns = PatternsFor(r);
    for (size_t i = 0; i < patterns.size() && i < top_k; ++i) {
      const EvidencePattern& p = patterns[i];
      out += "  <- " + dataset.relations().NameOf(p.evidence_relation) +
             "  share=" + FormatDouble(p.share, 2) +
             " support=" + std::to_string(p.support) + "\n";
    }
  }
  return out;
}

}  // namespace kelpie
