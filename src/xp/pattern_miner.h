#ifndef KELPIE_XP_PATTERN_MINER_H_
#define KELPIE_XP_PATTERN_MINER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/explanation.h"
#include "kgraph/dataset.h"

namespace kelpie {

/// A relation-level evidence pattern: predictions of `prediction_relation`
/// tend to be explained through facts of `evidence_relation`.
struct EvidencePattern {
  RelationId prediction_relation = kNoRelation;
  RelationId evidence_relation = kNoRelation;
  /// Number of explanations (predictions) containing this evidence
  /// relation at least once.
  size_t support = 0;
  /// Total evidence facts of this relation across the explanations.
  size_t fact_count = 0;
  /// Fraction of all evidence facts for the prediction relation.
  double share = 0.0;
  /// Mean relevance of the explanations contributing the pattern.
  double mean_relevance = 0.0;
};

/// Aggregates per-prediction explanations into global, relation-level
/// patterns — the "Kelpie in action" workflow of the paper's Sections 5.6
/// and 1: single explanations are local, but their aggregation exposes
/// what a model systematically leans on (e.g. YAGO3-10's football bias) or
/// which rules it has internalized (e.g. acting ensembles).
///
/// Usage: Add() every (prediction, explanation) pair, then query.
class PatternMiner {
 public:
  /// Records one explanation of `prediction`.
  void Add(const Triple& prediction, const Explanation& explanation);

  /// All patterns for predictions of `relation`, sorted by descending
  /// fact_count (deterministic tie-break on relation id).
  std::vector<EvidencePattern> PatternsFor(RelationId relation) const;

  /// All patterns across all prediction relations, same ordering within
  /// each prediction relation.
  std::vector<EvidencePattern> AllPatterns() const;

  /// A pattern is flagged as a *bias candidate* when predictions of one
  /// relation are dominated by evidence of a single different relation
  /// (share >= threshold and evidence relation != prediction relation).
  std::vector<EvidencePattern> BiasCandidates(double share_threshold = 0.5) const;

  /// Number of explanations recorded for `relation`.
  size_t ExplanationCount(RelationId relation) const;

  /// Human-readable report of the top patterns per prediction relation.
  std::string Report(const Dataset& dataset, size_t top_k = 3) const;

 private:
  struct Cell {
    size_t support = 0;
    size_t fact_count = 0;
    double relevance_sum = 0.0;
  };
  // prediction relation -> evidence relation -> counts
  std::unordered_map<RelationId, std::unordered_map<RelationId, Cell>>
      cells_;
  std::unordered_map<RelationId, size_t> explanation_counts_;
  std::unordered_map<RelationId, size_t> total_facts_;
};

}  // namespace kelpie

#endif  // KELPIE_XP_PATTERN_MINER_H_
