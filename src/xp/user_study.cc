#include "xp/user_study.h"

#include <algorithm>
#include <cmath>

#include "kgraph/graph.h"

namespace kelpie {

namespace {

int ClampScore(double v) {
  return static_cast<int>(std::clamp(std::lround(v), 1L, 10L));
}

}  // namespace

RespondentAnswers SimulateRespondent(const ExplanationFeatures& features,
                                     Rng& rng) {
  RespondentAnswers out;

  // Q1: clarity. Short, accepted explanations read best.
  double clarity = 9.2 - 0.35 * static_cast<double>(features.length - 1);
  if (!features.accepted) clarity -= 2.0;
  out.clarity = ClampScore(rng.Normal(clarity, 0.9));

  // Q2: practical comprehension. Stronger explanations are easier to
  // reason about.
  double p_correct =
      std::clamp(0.55 + 0.25 * features.relevance_margin, 0.0, 0.95);
  double draw = rng.UniformDouble();
  if (draw < p_correct) {
    out.effect = EffectAnswer::kCorrectEffect;
  } else if (draw < p_correct + 0.4 * (1.0 - p_correct)) {
    out.effect = EffectAnswer::kNothingWouldChange;
  } else if (draw < p_correct + 0.8 * (1.0 - p_correct)) {
    out.effect = EffectAnswer::kDontKnow;
  } else {
    out.effect = EffectAnswer::kNonsense;
  }

  // Q3: trust. Explanations whose facts sit close to the predicted entity
  // look like human-intuitive evidence; distant facts look spurious.
  double trust = 8.5 - 1.6 * features.mean_closeness;
  if (!features.accepted) trust -= 1.5;
  out.trust = ClampScore(rng.Normal(trust, 1.1));
  return out;
}

UserStudyResult RunUserStudy(const std::vector<ExplanationFeatures>& pairs,
                             size_t num_participants, Rng& rng) {
  UserStudyResult result;
  double clarity_sum = 0.0, trust_sum = 0.0;
  std::array<size_t, 4> effect_counts = {0, 0, 0, 0};
  for (size_t p = 0; p < num_participants; ++p) {
    for (const ExplanationFeatures& features : pairs) {
      RespondentAnswers answers = SimulateRespondent(features, rng);
      clarity_sum += answers.clarity;
      trust_sum += answers.trust;
      ++effect_counts[static_cast<size_t>(answers.effect)];
      ++result.num_answers;
    }
  }
  if (result.num_answers > 0) {
    const double n = static_cast<double>(result.num_answers);
    result.mean_clarity = clarity_sum / n;
    result.mean_trust = trust_sum / n;
    for (size_t i = 0; i < 4; ++i) {
      result.effect_distribution[i] =
          static_cast<double>(effect_counts[i]) / n;
    }
  }
  return result;
}

ExplanationFeatures ComputeFeatures(const Explanation& explanation,
                                    const Dataset& dataset,
                                    const Triple& prediction,
                                    PredictionTarget target,
                                    double threshold) {
  ExplanationFeatures features;
  features.length = std::max<size_t>(1, explanation.size());
  features.accepted = explanation.accepted;
  features.relevance_margin =
      threshold > 0.0
          ? std::clamp(explanation.relevance / threshold, 0.0, 2.0)
          : 1.0;
  // Mean BFS distance of the explanation facts' other endpoints to the
  // predicted entity.
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::vector<int32_t> dist =
      DistancesFrom(dataset.train_graph(), predicted, &prediction);
  double total = 0.0;
  size_t counted = 0;
  for (const Triple& fact : explanation.facts) {
    EntityId other = fact.head == source ? fact.tail : fact.head;
    int32_t d = dist[static_cast<size_t>(other)];
    total += d < 0 ? 4.0 : static_cast<double>(d);
    ++counted;
  }
  features.mean_closeness =
      counted == 0 ? 2.0 : total / static_cast<double>(counted);
  return features;
}

}  // namespace kelpie
