#ifndef KELPIE_XP_USER_STUDY_H_
#define KELPIE_XP_USER_STUDY_H_

#include <array>
#include <vector>

#include "core/explanation.h"
#include "math/rng.h"

namespace kelpie {

/// -----------------------------------------------------------------------
/// Simulated end-user study (paper Section 5.7, Figure 7).
///
/// The original is a 44-participant human study; humans cannot be re-run in
/// this environment, so this module reproduces the *harness* — the three
/// questions, their answer categories and the aggregation — with a
/// stochastic respondent model whose behaviour depends on measurable
/// explanation quality:
///  - clarity (Q1) decreases mildly with explanation length and sharply for
///    best-effort (non-accepted) explanations;
///  - the practical-effect answer (Q2) is correct with a probability that
///    grows with the explanation's relevance margin over its threshold;
///  - trust in the model (Q3) grows with the topological closeness of the
///    explanation facts to the predicted entity (a proxy for "matches
///    human intuition").
/// This is explicitly a simulation; see EXPERIMENTS.md.
/// -----------------------------------------------------------------------

/// Q2 answer categories (paper Section 5.7).
enum class EffectAnswer {
  kCorrectEffect = 0,
  kNothingWouldChange = 1,
  kDontKnow = 2,
  kNonsense = 3,
};

/// Measured quality features of one prediction-explanation pair, the
/// inputs of the respondent model.
struct ExplanationFeatures {
  size_t length = 1;
  bool accepted = true;
  /// relevance / acceptance-threshold, clamped to [0, 2].
  double relevance_margin = 1.0;
  /// Mean BFS distance of explanation-fact endpoints to the predicted
  /// entity (0 = the facts mention it directly).
  double mean_closeness = 1.0;
};

/// One respondent's answers to the three questions about one pair.
struct RespondentAnswers {
  int clarity = 0;  // Q1, 1..10
  EffectAnswer effect = EffectAnswer::kDontKnow;
  int trust = 0;  // Q3, 1..10
};

/// Aggregate over all respondents and pairs.
struct UserStudyResult {
  double mean_clarity = 0.0;
  std::array<double, 4> effect_distribution = {0, 0, 0, 0};
  double mean_trust = 0.0;
  size_t num_answers = 0;
};

/// Draws one simulated respondent's answers for a pair.
RespondentAnswers SimulateRespondent(const ExplanationFeatures& features,
                                     Rng& rng);

/// Runs `num_participants` simulated respondents over every pair and
/// aggregates.
UserStudyResult RunUserStudy(const std::vector<ExplanationFeatures>& pairs,
                             size_t num_participants, Rng& rng);

/// Extracts the respondent-model features from an explanation.
/// `threshold` is the acceptance threshold the explanation was extracted
/// with.
ExplanationFeatures ComputeFeatures(const Explanation& explanation,
                                    const Dataset& dataset,
                                    const Triple& prediction,
                                    PredictionTarget target,
                                    double threshold);

}  // namespace kelpie

#endif  // KELPIE_XP_USER_STUDY_H_
