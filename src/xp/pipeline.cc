#include "xp/pipeline.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "eval/ranking.h"

namespace kelpie {

std::vector<Triple> SampleCorrectPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    PredictionTarget target, Rng& rng) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<size_t> order(test.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<Triple> out;
  for (size_t idx : order) {
    if (out.size() >= count) break;
    const Triple& fact = test[idx];
    if (dataset.train_graph().Degree(SourceEntity(fact, target)) == 0) {
      continue;
    }
    if (FilteredRank(model, dataset, fact, target) == 1) {
      out.push_back(fact);
    }
  }
  return out;
}

std::vector<Triple> SampleCorrectTailPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    Rng& rng) {
  return SampleCorrectPredictions(model, dataset, count,
                                  PredictionTarget::kTail, rng);
}

std::vector<EntityId> SampleConversionEntities(
    const LinkPredictionModel& model, const Dataset& dataset,
    const Triple& prediction, PredictionTarget target, size_t count,
    Rng& rng) {
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::vector<EntityId> out;
  const size_t n = dataset.num_entities();
  size_t attempts = 0;
  const size_t max_attempts = 50 * count + 200;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    EntityId c = static_cast<EntityId>(rng.UniformUint64(n));
    if (c == source || c == predicted) continue;
    if (std::find(out.begin(), out.end(), c) != out.end()) continue;
    if (dataset.train_graph().Degree(c) == 0) continue;
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    if (dataset.IsKnown(converted)) continue;
    if (FilteredRank(model, dataset, converted, target) <= 1) continue;
    out.push_back(c);
  }
  return out;
}

LpMetrics RetrainAndMeasure(ModelKind kind, const Dataset& dataset,
                            const std::vector<Triple>& predictions,
                            const std::vector<Triple>& removed,
                            const std::vector<Triple>& added,
                            PredictionTarget target, uint64_t retrain_seed) {
  Dataset modified = dataset.WithModifiedTraining(removed, added);
  std::unique_ptr<LinkPredictionModel> model =
      CreateModel(kind, modified, DefaultConfig(kind, modified));
  Rng rng(retrain_seed);
  model->Train(modified, rng);
  MetricsAccumulator acc;
  for (const Triple& p : predictions) {
    acc.AddRank(FilteredRank(*model, modified, p, target));
  }
  return LpMetrics{acc.HitsAt(1), acc.Mrr()};
}

LpMetrics RetrainAndMeasureTails(ModelKind kind, const Dataset& dataset,
                                 const std::vector<Triple>& predictions,
                                 const std::vector<Triple>& removed,
                                 const std::vector<Triple>& added,
                                 uint64_t retrain_seed) {
  return RetrainAndMeasure(kind, dataset, predictions, removed, added,
                           PredictionTarget::kTail, retrain_seed);
}

NecessaryRunResult RunNecessaryEndToEnd(
    Explainer& explainer, ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, uint64_t retrain_seed,
    PredictionTarget target) {
  NecessaryRunResult result;
  std::vector<Triple> to_remove;
  std::unordered_set<uint64_t> seen;
  for (const Triple& prediction : predictions) {
    Explanation x = explainer.ExplainNecessary(prediction, target);
    for (const Triple& fact : x.facts) {
      if (seen.insert(fact.Key()).second) {
        to_remove.push_back(fact);
      }
    }
    result.explanations.push_back(std::move(x));
  }
  result.after = RetrainAndMeasure(kind, dataset, predictions, to_remove, {},
                                   target, retrain_seed);
  return result;
}

std::vector<Triple> ConversionPredictions(
    const std::vector<Triple>& predictions,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target) {
  KELPIE_CHECK(predictions.size() == conversion_sets.size());
  std::vector<Triple> out;
  for (size_t i = 0; i < predictions.size(); ++i) {
    for (EntityId c : conversion_sets[i]) {
      Triple converted = predictions[i];
      if (target == PredictionTarget::kTail) {
        converted.head = c;
      } else {
        converted.tail = c;
      }
      out.push_back(converted);
    }
  }
  return out;
}

std::vector<Triple> TransferredFacts(
    const std::vector<Triple>& predictions,
    const std::vector<Explanation>& explanations,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target) {
  KELPIE_CHECK(predictions.size() == explanations.size());
  KELPIE_CHECK(predictions.size() == conversion_sets.size());
  std::vector<Triple> out;
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const EntityId source = SourceEntity(predictions[i], target);
    for (EntityId c : conversion_sets[i]) {
      for (const Triple& fact : explanations[i].facts) {
        Triple transferred = TransferFact(fact, source, c);
        if (seen.insert(transferred.Key()).second) {
          out.push_back(transferred);
        }
      }
    }
  }
  return out;
}

SufficientRunResult RunSufficientEndToEnd(
    Explainer& explainer, const LinkPredictionModel& original_model,
    ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, size_t conversion_set_size,
    Rng& rng, uint64_t retrain_seed, PredictionTarget target) {
  SufficientRunResult result;
  for (const Triple& prediction : predictions) {
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        original_model, dataset, prediction, target, conversion_set_size,
        rng);
    Explanation x =
        explainer.ExplainSufficient(prediction, target, conversion_set);
    result.conversion_sets.push_back(std::move(conversion_set));
    result.explanations.push_back(std::move(x));
  }

  // Baseline metrics of the fictitious predictions under the original
  // model (H@1 is 0 by construction of the conversion sets).
  std::vector<Triple> converted =
      ConversionPredictions(predictions, result.conversion_sets, target);
  MetricsAccumulator before;
  for (const Triple& p : converted) {
    before.AddRank(FilteredRank(original_model, dataset, p, target));
  }
  result.before = LpMetrics{before.HitsAt(1), before.Mrr()};

  std::vector<Triple> added = TransferredFacts(
      predictions, result.explanations, result.conversion_sets, target);
  result.after = RetrainAndMeasure(kind, dataset, converted, {}, added,
                                   target, retrain_seed);
  return result;
}

std::vector<std::vector<Triple>> SubsampleExplanations(
    const std::vector<Explanation>& explanations, Rng& rng) {
  std::vector<std::vector<Triple>> out;
  out.reserve(explanations.size());
  for (const Explanation& x : explanations) {
    std::vector<Triple> kept = x.facts;
    if (kept.size() <= 1) {
      // Length-1 explanations are minimal by definition; sub-sampling them
      // yields the null explanation (paper footnote 7).
      kept.clear();
    } else {
      size_t remove_count = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(kept.size()) - 1));
      rng.Shuffle(kept);
      kept.resize(kept.size() - remove_count);
    }
    out.push_back(std::move(kept));
  }
  return out;
}

double EffectivenessLoss(double full_delta, double sub_delta) {
  if (full_delta == 0.0) return 0.0;
  return (sub_delta - full_delta) / full_delta;
}

}  // namespace kelpie
