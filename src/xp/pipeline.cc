#include "xp/pipeline.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "eval/ranking.h"
#include "ml/checkpoint.h"

namespace kelpie {

namespace {

/// Per-prediction progress counter. Deterministic class: the xp loop is
/// sequential, and replay/fresh attribution depends only on the journal
/// contents, not on any schedule.
metrics::Counter& PredictionCounter(const char* scenario,
                                    const char* source) {
  return metrics::Registry::Global().GetCounter(
      "kelpie_xp_predictions_total",
      {{"scenario", scenario}, {"source", source}},
      metrics::Determinism::kDeterministic,
      "Predictions processed by scenario and whether the explanation was "
      "freshly extracted or replayed from the journal.");
}

/// The run summary is recomputed from the *complete* explanation set every
/// time the run finishes — replayed and fresh explanations contribute
/// identically, so resuming never double-counts journaled work.
RunSummary SummaryOfExplanations(
    const std::vector<Explanation>& explanations) {
  RunSummary s;
  s.predictions = explanations.size();
  double total_relevance = 0.0;
  uint64_t finite = 0;
  for (const Explanation& x : explanations) {
    if (x.accepted) ++s.accepted;
    if (x.completeness != Completeness::kComplete) ++s.truncated;
    s.post_trainings += x.post_trainings;
    s.visited_candidates += x.visited_candidates;
    s.skipped_candidates += x.skipped_candidates;
    s.divergent_candidates += x.divergent_candidates;
    if (std::isfinite(x.relevance)) {
      total_relevance += x.relevance;
      ++finite;
    }
  }
  if (finite > 0) {
    s.mean_relevance = total_relevance / static_cast<double>(finite);
  }
  return s;
}

/// SplitMix64 finalizer: full-avalanche 64-bit mixing.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Fingerprint of everything that determines a journaled run's results.
/// Two runs with the same fingerprint replay each other's journals; any
/// difference (scenario, model, dataset, predictions, seeds) makes resume
/// refuse.
uint64_t ComputeRunId(std::string_view scenario, ModelKind kind,
                      const Dataset& dataset,
                      const std::vector<Triple>& predictions,
                      PredictionTarget target, uint64_t retrain_seed,
                      size_t conversion_set_size, uint64_t conversion_seed,
                      const RetrainOptions& retrain = {}) {
  std::string s(scenario);
  s += '|';
  s += ModelKindName(kind);
  s += '|';
  s += dataset.name();
  s += '|';
  s += std::to_string(static_cast<int>(target));
  s += '|';
  s += std::to_string(retrain_seed);
  s += '|';
  s += std::to_string(conversion_set_size);
  s += '|';
  s += std::to_string(conversion_seed);
  // Appended only when warm start is on: cold runs keep the ids their
  // journals were written with.
  if (!retrain.warm_start_checkpoint.empty()) {
    s += "|warm:";
    s += retrain.warm_start_checkpoint;
    s += ':';
    s += std::to_string(retrain.warm_epochs);
  }
  uint64_t id = Crc32c(s);
  for (const Triple& p : predictions) {
    id = Mix64(id ^ p.Key());
  }
  return id;
}

/// Rebuilds the Explanation a journal record captured. `seconds` is zero by
/// construction — journaled runs do not preserve wall-clock timings, so
/// replayed and freshly extracted explanations compare byte-identical.
Explanation RecordToExplanation(const PredictionRecord& record,
                                ExplanationKind kind) {
  Explanation x;
  x.kind = kind;
  x.facts = record.facts;
  x.relevance = record.relevance;
  x.accepted = record.accepted;
  x.post_trainings = record.post_trainings;
  x.visited_candidates = record.visited_candidates;
  x.completeness = static_cast<Completeness>(record.completeness);
  x.skipped_candidates = record.skipped_candidates;
  x.divergent_candidates = record.divergent_candidates;
  return x;
}

/// The journal record of a freshly extracted explanation. `seconds` is not
/// captured: journaled runs zero it so replayed and fresh explanations
/// compare byte-identical.
PredictionRecord ExplanationToRecord(const Triple& prediction,
                                     const Explanation& x) {
  PredictionRecord record;
  record.prediction = prediction;
  record.facts = x.facts;
  record.relevance = x.relevance;
  record.accepted = x.accepted;
  record.post_trainings = x.post_trainings;
  record.visited_candidates = x.visited_candidates;
  record.completeness = static_cast<uint64_t>(x.completeness);
  record.skipped_candidates = x.skipped_candidates;
  record.divergent_candidates = x.divergent_candidates;
  return record;
}

/// A record is final when its extraction ran to the natural end; anything
/// else is a truncation that --retry-truncated may upgrade.
bool RecordComplete(const PredictionRecord& record) {
  return record.completeness ==
         static_cast<uint64_t>(Completeness::kComplete);
}

/// Run-level interrupt check between predictions. Every journaled record is
/// already flushed, so stopping here loses nothing.
Status CheckRunInterrupt(const RunControl& control, size_t done,
                         size_t total) {
  const std::string progress =
      std::to_string(done) + "/" + std::to_string(total) +
      " predictions journaled; resume with --resume to continue";
  if (control.cancel.cancelled()) {
    return Status::Cancelled("run cancelled: " + progress);
  }
  if (control.deadline.Expired()) {
    return Status::DeadlineExceeded("run deadline expired: " + progress);
  }
  return Status::Ok();
}

Status CheckRecordedPrediction(const PredictionRecord& record,
                               const Triple& expected, size_t index) {
  if (!(record.prediction == expected)) {
    return Status::FailedPrecondition(
        "journal record " + std::to_string(index) +
        " does not match prediction " + std::to_string(index) +
        " of this run");
  }
  return Status::Ok();
}

}  // namespace

std::vector<Triple> SampleCorrectPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    PredictionTarget target, Rng& rng) {
  const std::vector<Triple>& test = dataset.test();
  std::vector<size_t> order(test.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  std::vector<Triple> out;
  for (size_t idx : order) {
    if (out.size() >= count) break;
    const Triple& fact = test[idx];
    if (dataset.train_graph().Degree(SourceEntity(fact, target)) == 0) {
      continue;
    }
    if (FilteredRank(model, dataset, fact, target) == 1) {
      out.push_back(fact);
    }
  }
  return out;
}

std::vector<Triple> SampleCorrectTailPredictions(
    const LinkPredictionModel& model, const Dataset& dataset, size_t count,
    Rng& rng) {
  return SampleCorrectPredictions(model, dataset, count,
                                  PredictionTarget::kTail, rng);
}

std::vector<EntityId> SampleConversionEntities(
    const LinkPredictionModel& model, const Dataset& dataset,
    const Triple& prediction, PredictionTarget target, size_t count,
    Rng& rng) {
  const EntityId source = SourceEntity(prediction, target);
  const EntityId predicted = PredictedEntity(prediction, target);
  std::vector<EntityId> out;
  const size_t n = dataset.num_entities();
  size_t attempts = 0;
  const size_t max_attempts = 50 * count + 200;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    EntityId c = static_cast<EntityId>(rng.UniformUint64(n));
    if (c == source || c == predicted) continue;
    if (std::find(out.begin(), out.end(), c) != out.end()) continue;
    if (dataset.train_graph().Degree(c) == 0) continue;
    Triple converted = prediction;
    if (target == PredictionTarget::kTail) {
      converted.head = c;
    } else {
      converted.tail = c;
    }
    if (dataset.IsKnown(converted)) continue;
    if (FilteredRank(model, dataset, converted, target) <= 1) continue;
    out.push_back(c);
  }
  return out;
}

LpMetrics RetrainAndMeasure(ModelKind kind, const Dataset& dataset,
                            const std::vector<Triple>& predictions,
                            const std::vector<Triple>& removed,
                            const std::vector<Triple>& added,
                            PredictionTarget target, uint64_t retrain_seed,
                            const RetrainOptions& retrain) {
  trace::Span span("xp.retrain");
  metrics::Registry::Global()
      .GetCounter("kelpie_xp_retrains_total", {},
                  metrics::Determinism::kDeterministic,
                  "Full model retrainings for end-to-end verification.")
      .Increment();
  Dataset modified = dataset.WithModifiedTraining(removed, added);
  TrainConfig config = DefaultConfig(kind, modified);
  const bool warm = !retrain.warm_start_checkpoint.empty();
  if (warm && retrain.warm_epochs > 0) config.epochs = retrain.warm_epochs;
  std::unique_ptr<LinkPredictionModel> model =
      CreateModel(kind, modified, config);
  Rng rng(retrain_seed);
  if (warm) {
    CheckpointOptions ckpt_options;
    ckpt_options.directory = retrain.warm_start_checkpoint;
    ckpt_options.resume = true;
    ckpt_options.mode = CheckpointMode::kWarmStart;
    TrainCheckpointer checkpointer(ckpt_options);
    TrainControl control;
    control.checkpointer = &checkpointer;
    model->Train(modified, rng, control);
  } else {
    model->Train(modified, rng);
  }
  MetricsAccumulator acc;
  for (const Triple& p : predictions) {
    acc.AddRank(FilteredRank(*model, modified, p, target));
  }
  return LpMetrics{acc.HitsAt(1), acc.Mrr()};
}

LpMetrics RetrainAndMeasureTails(ModelKind kind, const Dataset& dataset,
                                 const std::vector<Triple>& predictions,
                                 const std::vector<Triple>& removed,
                                 const std::vector<Triple>& added,
                                 uint64_t retrain_seed) {
  return RetrainAndMeasure(kind, dataset, predictions, removed, added,
                           PredictionTarget::kTail, retrain_seed);
}

NecessaryRunResult RunNecessaryEndToEnd(
    Explainer& explainer, ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, uint64_t retrain_seed,
    PredictionTarget target) {
  trace::Span run_span("xp.necessary");
  NecessaryRunResult result;
  std::vector<Triple> to_remove;
  std::unordered_set<uint64_t> seen;
  for (const Triple& prediction : predictions) {
    trace::Span pred_span("xp.prediction");
    PredictionCounter("necessary", "fresh").Increment();
    Explanation x = explainer.ExplainNecessary(prediction, target);
    for (const Triple& fact : x.facts) {
      if (seen.insert(fact.Key()).second) {
        to_remove.push_back(fact);
      }
    }
    result.explanations.push_back(std::move(x));
  }
  result.after = RetrainAndMeasure(kind, dataset, predictions, to_remove, {},
                                   target, retrain_seed);
  return result;
}

std::vector<Triple> ConversionPredictions(
    const std::vector<Triple>& predictions,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target) {
  KELPIE_CHECK(predictions.size() == conversion_sets.size());
  std::vector<Triple> out;
  for (size_t i = 0; i < predictions.size(); ++i) {
    for (EntityId c : conversion_sets[i]) {
      Triple converted = predictions[i];
      if (target == PredictionTarget::kTail) {
        converted.head = c;
      } else {
        converted.tail = c;
      }
      out.push_back(converted);
    }
  }
  return out;
}

std::vector<Triple> TransferredFacts(
    const std::vector<Triple>& predictions,
    const std::vector<Explanation>& explanations,
    const std::vector<std::vector<EntityId>>& conversion_sets,
    PredictionTarget target) {
  KELPIE_CHECK(predictions.size() == explanations.size());
  KELPIE_CHECK(predictions.size() == conversion_sets.size());
  std::vector<Triple> out;
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const EntityId source = SourceEntity(predictions[i], target);
    for (EntityId c : conversion_sets[i]) {
      for (const Triple& fact : explanations[i].facts) {
        Triple transferred = TransferFact(fact, source, c);
        if (seen.insert(transferred.Key()).second) {
          out.push_back(transferred);
        }
      }
    }
  }
  return out;
}

SufficientRunResult RunSufficientEndToEnd(
    Explainer& explainer, const LinkPredictionModel& original_model,
    ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, size_t conversion_set_size,
    Rng& rng, uint64_t retrain_seed, PredictionTarget target) {
  trace::Span run_span("xp.sufficient");
  SufficientRunResult result;
  for (const Triple& prediction : predictions) {
    trace::Span pred_span("xp.prediction");
    PredictionCounter("sufficient", "fresh").Increment();
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        original_model, dataset, prediction, target, conversion_set_size,
        rng);
    Explanation x =
        explainer.ExplainSufficient(prediction, target, conversion_set);
    result.conversion_sets.push_back(std::move(conversion_set));
    result.explanations.push_back(std::move(x));
  }

  // Baseline metrics of the fictitious predictions under the original
  // model (H@1 is 0 by construction of the conversion sets).
  std::vector<Triple> converted =
      ConversionPredictions(predictions, result.conversion_sets, target);
  MetricsAccumulator before;
  for (const Triple& p : converted) {
    before.AddRank(FilteredRank(original_model, dataset, p, target));
  }
  result.before = LpMetrics{before.HitsAt(1), before.Mrr()};

  std::vector<Triple> added = TransferredFacts(
      predictions, result.explanations, result.conversion_sets, target);
  result.after = RetrainAndMeasure(kind, dataset, converted, {}, added,
                                   target, retrain_seed);
  return result;
}

Result<NecessaryRunResult> RunNecessaryEndToEndResumable(
    Explainer& explainer, ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, uint64_t retrain_seed,
    PredictionTarget target, const JournalOptions& journal_options,
    const RunControl& control) {
  trace::Span run_span("xp.necessary");
  const uint64_t run_id =
      ComputeRunId("necessary", kind, dataset, predictions, target,
                   retrain_seed, /*conversion_set_size=*/0,
                   /*conversion_seed=*/0, control.retrain);
  RunJournal journal;
  KELPIE_ASSIGN_OR_RETURN(
      journal,
      RunJournal::Open(journal_options.path, run_id, journal_options.resume));
  if (journal.recovered().size() > predictions.size()) {
    return Status::FailedPrecondition(
        "journal has more records than this run has predictions");
  }
  // Copy before any reopen: the journal's own vector dies with it.
  const std::vector<PredictionRecord> recovered = journal.recovered();
  const bool rewrite =
      control.retry_truncated &&
      std::any_of(recovered.begin(), recovered.end(),
                  [](const PredictionRecord& r) { return !RecordComplete(r); });
  if (rewrite) {
    // Truncated records get re-extracted under the explainer's current
    // limits; complete ones are re-appended byte-identically, so the
    // journal is rewritten in place rather than appended to.
    KELPIE_ASSIGN_OR_RETURN(
        journal,
        RunJournal::Open(journal_options.path, run_id, /*resume=*/false));
    KELPIE_LOG(Info) << "retrying truncated predictions of necessary run ("
                     << recovered.size() << " journaled)";
  } else if (!recovered.empty()) {
    KELPIE_LOG(Info) << "resuming necessary run: " << recovered.size() << "/"
                     << predictions.size() << " predictions journaled";
  }

  NecessaryRunResult result;
  std::vector<Triple> to_remove;
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < predictions.size(); ++i) {
    trace::Span pred_span("xp.prediction");
    Explanation x;
    const bool replay =
        i < recovered.size() && (!rewrite || RecordComplete(recovered[i]));
    if (i < recovered.size()) {
      KELPIE_RETURN_IF_ERROR(
          CheckRecordedPrediction(recovered[i], predictions[i], i));
    }
    PredictionCounter("necessary", replay ? "replayed" : "fresh").Increment();
    if (replay) {
      x = RecordToExplanation(recovered[i], ExplanationKind::kNecessary);
      if (rewrite) {
        KELPIE_RETURN_IF_ERROR(journal.Append(recovered[i]));
      }
    } else {
      KELPIE_RETURN_IF_ERROR(CheckRunInterrupt(control, i,
                                               predictions.size()));
      x = explainer.ExplainNecessary(predictions[i], target);
      x.seconds = 0.0;
      {
        trace::Span append_span("xp.journal.append");
        KELPIE_RETURN_IF_ERROR(
            journal.Append(ExplanationToRecord(predictions[i], x)));
      }
      if (failpoint::Fire("pipeline.interrupt", i)) {
        return Status::Aborted("injected interrupt after prediction " +
                               std::to_string(i));
      }
    }
    for (const Triple& fact : x.facts) {
      if (seen.insert(fact.Key()).second) {
        to_remove.push_back(fact);
      }
    }
    result.explanations.push_back(std::move(x));
  }
  KELPIE_RETURN_IF_ERROR(
      CheckRunInterrupt(control, predictions.size(), predictions.size()));
  result.after = RetrainAndMeasure(kind, dataset, predictions, to_remove, {},
                                   target, retrain_seed, control.retrain);
  if (journal.supports_summary()) {
    KELPIE_RETURN_IF_ERROR(
        journal.AppendSummary(SummaryOfExplanations(result.explanations)));
  }
  return result;
}

Result<SufficientRunResult> RunSufficientEndToEndResumable(
    Explainer& explainer, const LinkPredictionModel& original_model,
    ModelKind kind, const Dataset& dataset,
    const std::vector<Triple>& predictions, size_t conversion_set_size,
    uint64_t conversion_seed, uint64_t retrain_seed, PredictionTarget target,
    const JournalOptions& journal_options, const RunControl& control) {
  trace::Span run_span("xp.sufficient");
  const uint64_t run_id =
      ComputeRunId("sufficient", kind, dataset, predictions, target,
                   retrain_seed, conversion_set_size, conversion_seed,
                   control.retrain);
  RunJournal journal;
  KELPIE_ASSIGN_OR_RETURN(
      journal,
      RunJournal::Open(journal_options.path, run_id, journal_options.resume));
  if (journal.recovered().size() > predictions.size()) {
    return Status::FailedPrecondition(
        "journal has more records than this run has predictions");
  }
  // Copy before any reopen: the journal's own vector dies with it.
  const std::vector<PredictionRecord> recovered = journal.recovered();
  const bool rewrite =
      control.retry_truncated &&
      std::any_of(recovered.begin(), recovered.end(),
                  [](const PredictionRecord& r) { return !RecordComplete(r); });
  if (rewrite) {
    KELPIE_ASSIGN_OR_RETURN(
        journal,
        RunJournal::Open(journal_options.path, run_id, /*resume=*/false));
    KELPIE_LOG(Info) << "retrying truncated predictions of sufficient run ("
                     << recovered.size() << " journaled)";
  } else if (!recovered.empty()) {
    KELPIE_LOG(Info) << "resuming sufficient run: " << recovered.size() << "/"
                     << predictions.size() << " predictions journaled";
  }

  SufficientRunResult result;
  for (size_t i = 0; i < predictions.size(); ++i) {
    trace::Span pred_span("xp.prediction");
    const bool replay =
        i < recovered.size() && (!rewrite || RecordComplete(recovered[i]));
    if (i < recovered.size()) {
      KELPIE_RETURN_IF_ERROR(
          CheckRecordedPrediction(recovered[i], predictions[i], i));
    }
    PredictionCounter("sufficient", replay ? "replayed" : "fresh")
        .Increment();
    if (replay) {
      const PredictionRecord& record = recovered[i];
      if (rewrite) {
        KELPIE_RETURN_IF_ERROR(journal.Append(record));
      }
      result.conversion_sets.push_back(record.conversion_set);
      result.explanations.push_back(
          RecordToExplanation(record, ExplanationKind::kSufficient));
      continue;
    }
    KELPIE_RETURN_IF_ERROR(CheckRunInterrupt(control, i, predictions.size()));
    // Per-prediction conversion stream: a pure function of the seed, the
    // prediction and its index, independent of how many predictions ran
    // before — the property that makes resumed draws match fresh ones (and
    // retried truncated extractions reuse the exact set they were first
    // given).
    Rng conversion_rng(
        Mix64(Mix64(conversion_seed ^ predictions[i].Key()) ^ i));
    std::vector<EntityId> conversion_set = SampleConversionEntities(
        original_model, dataset, predictions[i], target, conversion_set_size,
        conversion_rng);
    Explanation x =
        explainer.ExplainSufficient(predictions[i], target, conversion_set);
    x.seconds = 0.0;
    PredictionRecord record = ExplanationToRecord(predictions[i], x);
    record.conversion_set = conversion_set;
    {
      trace::Span append_span("xp.journal.append");
      KELPIE_RETURN_IF_ERROR(journal.Append(record));
    }
    result.conversion_sets.push_back(std::move(conversion_set));
    result.explanations.push_back(std::move(x));
    if (failpoint::Fire("pipeline.interrupt", i)) {
      return Status::Aborted("injected interrupt after prediction " +
                             std::to_string(i));
    }
  }
  KELPIE_RETURN_IF_ERROR(
      CheckRunInterrupt(control, predictions.size(), predictions.size()));

  std::vector<Triple> converted =
      ConversionPredictions(predictions, result.conversion_sets, target);
  MetricsAccumulator before;
  for (const Triple& p : converted) {
    before.AddRank(FilteredRank(original_model, dataset, p, target));
  }
  result.before = LpMetrics{before.HitsAt(1), before.Mrr()};

  std::vector<Triple> added = TransferredFacts(
      predictions, result.explanations, result.conversion_sets, target);
  result.after = RetrainAndMeasure(kind, dataset, converted, {}, added,
                                   target, retrain_seed, control.retrain);
  if (journal.supports_summary()) {
    KELPIE_RETURN_IF_ERROR(
        journal.AppendSummary(SummaryOfExplanations(result.explanations)));
  }
  return result;
}

std::vector<std::vector<Triple>> SubsampleExplanations(
    const std::vector<Explanation>& explanations, Rng& rng) {
  std::vector<std::vector<Triple>> out;
  out.reserve(explanations.size());
  for (const Explanation& x : explanations) {
    std::vector<Triple> kept = x.facts;
    if (kept.size() <= 1) {
      // Length-1 explanations are minimal by definition; sub-sampling them
      // yields the null explanation (paper footnote 7).
      kept.clear();
    } else {
      size_t remove_count = static_cast<size_t>(
          rng.UniformInt(1, static_cast<int64_t>(kept.size()) - 1));
      rng.Shuffle(kept);
      kept.resize(kept.size() - remove_count);
    }
    out.push_back(std::move(kept));
  }
  return out;
}

double EffectivenessLoss(double full_delta, double sub_delta) {
  if (full_delta == 0.0) return 0.0;
  return (sub_delta - full_delta) / full_delta;
}

}  // namespace kelpie
