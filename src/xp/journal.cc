#include "xp/journal.h"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/crc32c.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

constexpr std::string_view kMagic = "KELPIEJL";
/// v1: prediction/facts/conversion/relevance/accepted/counters.
/// v2: + completeness, skipped_candidates, divergent_candidates.
/// v3: + optional trailing run-summary frame (marker-led payload).
constexpr uint64_t kVersion = 3;
constexpr uint64_t kOldestReadableVersion = 1;
/// First u64 of a summary payload. Record payloads start with an entity id
/// widened from uint32, so the all-ones marker can never collide.
constexpr uint64_t kSummaryMarker = 0xFFFFFFFFFFFFFFFFull;
constexpr size_t kHeaderSize = 8 + 8 + 8;  // magic + version + run_id
// Defense against corrupt length prefixes: no legitimate record (a few
// dozen triples) comes anywhere near this.
constexpr uint64_t kMaxRecordSize = 1ull << 24;

uint64_t ReadU64At(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

Status WriteTriple(std::ostream& out, const Triple& t) {
  KELPIE_RETURN_IF_ERROR(
      WriteU64(out, static_cast<uint64_t>(static_cast<uint32_t>(t.head))));
  KELPIE_RETURN_IF_ERROR(WriteU64(
      out, static_cast<uint64_t>(static_cast<uint32_t>(t.relation))));
  return WriteU64(out, static_cast<uint64_t>(static_cast<uint32_t>(t.tail)));
}

Status ReadTriple(std::istream& in, Triple& t) {
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  t.head = static_cast<EntityId>(static_cast<uint32_t>(v));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  t.relation = static_cast<RelationId>(static_cast<uint32_t>(v));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  t.tail = static_cast<EntityId>(static_cast<uint32_t>(v));
  return Status::Ok();
}

Result<std::string> SerializeRecord(const PredictionRecord& r) {
  std::ostringstream out;
  KELPIE_RETURN_IF_ERROR(WriteTriple(out, r.prediction));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.facts.size()));
  for (const Triple& f : r.facts) {
    KELPIE_RETURN_IF_ERROR(WriteTriple(out, f));
  }
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.conversion_set.size()));
  for (EntityId e : r.conversion_set) {
    KELPIE_RETURN_IF_ERROR(
        WriteU64(out, static_cast<uint64_t>(static_cast<uint32_t>(e))));
  }
  KELPIE_RETURN_IF_ERROR(WriteU64(out, std::bit_cast<uint64_t>(r.relevance)));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.accepted ? 1 : 0));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.post_trainings));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.visited_candidates));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.completeness));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.skipped_candidates));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, r.divergent_candidates));
  return std::move(out).str();
}

Status ParseRecord(const std::string& payload, PredictionRecord& r) {
  std::istringstream in(payload);
  KELPIE_RETURN_IF_ERROR(ReadTriple(in, r.prediction));
  uint64_t count = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, count));
  if (count > kMaxRecordSize / 24) {
    return Status::DataLoss("journal record fact count out of range");
  }
  r.facts.resize(count);
  for (Triple& f : r.facts) {
    KELPIE_RETURN_IF_ERROR(ReadTriple(in, f));
  }
  KELPIE_RETURN_IF_ERROR(ReadU64(in, count));
  if (count > kMaxRecordSize / 8) {
    return Status::DataLoss("journal record conversion count out of range");
  }
  r.conversion_set.resize(count);
  for (EntityId& e : r.conversion_set) {
    uint64_t v = 0;
    KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
    e = static_cast<EntityId>(static_cast<uint32_t>(v));
  }
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  r.relevance = std::bit_cast<double>(v);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  r.accepted = (v != 0);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, r.post_trainings));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, r.visited_candidates));
  // Format v2 appends three counters; a v1 record's payload ends here and
  // reads back with them defaulted (a v1 run could only journal complete
  // extractions). Keyed on payload length, not header version, so files
  // that mix v1 and v2 records parse correctly.
  if (in.peek() == std::char_traits<char>::eof()) {
    return Status::Ok();
  }
  KELPIE_RETURN_IF_ERROR(ReadU64(in, r.completeness));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, r.skipped_candidates));
  return ReadU64(in, r.divergent_candidates);
}

Result<std::string> SerializeSummary(const RunSummary& s) {
  std::ostringstream out;
  KELPIE_RETURN_IF_ERROR(WriteU64(out, kSummaryMarker));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.predictions));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.accepted));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.truncated));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.post_trainings));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.visited_candidates));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.skipped_candidates));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, s.divergent_candidates));
  KELPIE_RETURN_IF_ERROR(
      WriteU64(out, std::bit_cast<uint64_t>(s.mean_relevance)));
  return std::move(out).str();
}

/// True when `payload` is a summary frame (marker-led) rather than a
/// prediction record.
bool IsSummaryPayload(const std::string& payload) {
  return payload.size() >= 8 && ReadU64At(payload, 0) == kSummaryMarker;
}

Status ParseSummary(const std::string& payload, RunSummary& s) {
  std::istringstream in(payload);
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  if (v != kSummaryMarker) {
    return Status::DataLoss("journal summary frame missing marker");
  }
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.predictions));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.accepted));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.truncated));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.post_trainings));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.visited_candidates));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.skipped_candidates));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, s.divergent_candidates));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  s.mean_relevance = std::bit_cast<double>(v);
  return Status::Ok();
}

std::string FrameRecord(const std::string& payload) {
  std::string frame;
  frame.reserve(8 + payload.size() + 4);
  for (int i = 0; i < 8; ++i) {
    frame.push_back(
        static_cast<char>((payload.size() >> (8 * i)) & 0xFF));
  }
  frame += payload;
  const uint32_t crc = Crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  return frame;
}

std::string MakeHeader(uint64_t run_id) {
  std::string header(kMagic);
  for (int i = 0; i < 8; ++i) {
    header.push_back(static_cast<char>((kVersion >> (8 * i)) & 0xFF));
  }
  for (int i = 0; i < 8; ++i) {
    header.push_back(static_cast<char>((run_id >> (8 * i)) & 0xFF));
  }
  return header;
}

}  // namespace

Result<RunJournal> RunJournal::Open(const std::string& path, uint64_t run_id,
                                    bool resume) {
  RunJournal journal;
  journal.path_ = path;

  std::string existing;
  if (resume) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      existing = std::move(buf).str();
    }
  }

  size_t good_end = 0;
  if (!existing.empty()) {
    if (existing.size() < kHeaderSize ||
        std::string_view(existing).substr(0, kMagic.size()) != kMagic) {
      return Status::DataLoss("not a kelpie journal file: " + path);
    }
    const uint64_t version = ReadU64At(existing, kMagic.size());
    if (version < kOldestReadableVersion || version > kVersion) {
      return Status::InvalidArgument("unsupported journal version " +
                                     std::to_string(version));
    }
    const uint64_t stored_run_id = ReadU64At(existing, kMagic.size() + 8);
    if (stored_run_id != run_id) {
      return Status::FailedPrecondition(
          "journal " + path +
          " belongs to a different run configuration; refusing to resume "
          "(delete it or drop --resume to start over)");
    }
    journal.version_ = version;
    // Replay complete records; stop at the first torn or corrupt frame.
    // Anything after it is a casualty of the interrupted write and is
    // truncated away below. A valid summary frame is consumed separately
    // and does not advance `last_record_end`: the file is truncated back to
    // the last data record, so appends resume there and the finished run
    // writes a fresh summary.
    size_t offset = kHeaderSize;
    good_end = offset;
    size_t last_record_end = offset;
    while (offset + 8 <= existing.size()) {
      const uint64_t len = ReadU64At(existing, offset);
      if (len > kMaxRecordSize || offset + 8 + len + 4 > existing.size()) {
        break;
      }
      const std::string payload = existing.substr(offset + 8, len);
      uint32_t stored_crc = 0;
      for (int i = 0; i < 4; ++i) {
        stored_crc |= static_cast<uint32_t>(static_cast<unsigned char>(
                          existing[offset + 8 + len + i]))
                      << (8 * i);
      }
      if (stored_crc != Crc32c(payload)) break;
      if (IsSummaryPayload(payload)) {
        RunSummary summary;
        KELPIE_RETURN_IF_ERROR(ParseSummary(payload, summary));
        journal.recovered_summary_ = summary;
      } else {
        PredictionRecord record;
        KELPIE_RETURN_IF_ERROR(ParseRecord(payload, record));
        journal.recovered_.push_back(std::move(record));
        last_record_end = offset + 8 + len + 4;
      }
      offset += 8 + len + 4;
      good_end = offset;
    }
    const size_t keep =
        journal.recovered_summary_.has_value() ? last_record_end : good_end;
    if (keep < existing.size()) {
      std::error_code ec;
      std::filesystem::resize_file(path, keep, ec);
      if (ec) {
        return Status::IoError("cannot truncate torn journal tail of " +
                               path + ": " + ec.message());
      }
    }
    journal.out_.open(path, std::ios::binary | std::ios::app);
    if (!journal.out_) {
      return Status::IoError("cannot open journal for appending: " + path);
    }
    return journal;
  }

  journal.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!journal.out_) {
    return Status::IoError("cannot open journal for writing: " + path);
  }
  const std::string header = MakeHeader(run_id);
  journal.out_.write(header.data(),
                     static_cast<std::streamsize>(header.size()));
  journal.out_.flush();
  if (!journal.out_) {
    return Status::IoError("journal header write failed: " + path);
  }
  return journal;
}

Status RunJournal::Append(const PredictionRecord& record) {
  std::string payload;
  KELPIE_ASSIGN_OR_RETURN(payload, SerializeRecord(record));
  const std::string frame = FrameRecord(payload);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    return Status::IoError("journal append failed: " + path_);
  }
  return Status::Ok();
}

Status RunJournal::AppendSummary(const RunSummary& summary) {
  if (!supports_summary()) {
    return Status::FailedPrecondition(
        "journal " + path_ + " uses format v" + std::to_string(version_) +
        ", which predates summary frames");
  }
  std::string payload;
  KELPIE_ASSIGN_OR_RETURN(payload, SerializeSummary(summary));
  const std::string frame = FrameRecord(payload);
  out_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    return Status::IoError("journal summary append failed: " + path_);
  }
  return Status::Ok();
}

}  // namespace kelpie
