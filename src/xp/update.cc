#include "xp/update.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "core/relevance_cache.h"
#include "math/rng.h"

namespace kelpie::xp {

namespace {

/// Update journal layout (host-endian, single-host artifact):
///   magic "KELPIEUD" | u64 version | u64 run_id | u32 crc32c(header)
/// followed by one frame per completed row:
///   u64 payload_len | payload | u32 crc32c(payload)
/// payload = u64 entity | u64 dim | dim * f32
/// The run id binds the journal to (model parameters, delta, seed); frames
/// replay in any order, so a torn tail only costs recomputing its row.
constexpr char kJournalMagic[8] = {'K', 'E', 'L', 'P', 'I', 'E', 'U', 'D'};
constexpr uint64_t kJournalVersion = 1;
constexpr size_t kJournalHeaderSize = 8 + 8 + 8 + 4;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename T>
void AppendRaw(std::string& out, T value) {
  const char* p = reinterpret_cast<const char*>(&value);
  out.append(p, sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view bytes, size_t& off, T* value) {
  if (bytes.size() - off < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + off, sizeof(T));
  off += sizeof(T);
  return true;
}

/// Seed of one affected entity's post-training stream: a pure function of
/// the update seed, the entity, and its exact updated fact sequence — the
/// same chain shape as the relevance engine's PostTrainSeed and the
/// cache's KeyHash, under a third salt so the three streams stay
/// independent.
uint64_t UpdateRowSeed(uint64_t seed, EntityId entity,
                       const std::vector<Triple>& facts) {
  uint64_t h = Mix64(seed ^ 0x1d0ba7e5ca1ab1e5ULL);
  h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(entity)));
  h = Mix64(h ^ static_cast<uint64_t>(facts.size()));
  for (const Triple& f : facts) {
    h = Mix64(h ^ f.Key());
  }
  return h;
}

/// Run id binding a journal to this exact update: pre-update parameter
/// fingerprint (already covers architecture, shapes and seedless state),
/// the update seed, and a CRC over the canonical delta bytes.
uint64_t ComputeRunId(uint64_t params_fingerprint, uint64_t seed,
                      const KgDelta& delta) {
  std::string canon;
  AppendRaw(canon, static_cast<uint64_t>(delta.add.size()));
  for (const Triple& t : delta.add) {
    AppendRaw(canon, t.head);
    AppendRaw(canon, t.relation);
    AppendRaw(canon, t.tail);
  }
  AppendRaw(canon, static_cast<uint64_t>(delta.remove.size()));
  for (const Triple& t : delta.remove) {
    AppendRaw(canon, t.head);
    AppendRaw(canon, t.relation);
    AppendRaw(canon, t.tail);
  }
  uint64_t h = Mix64(params_fingerprint ^ 0x5eed0fUL);
  h = Mix64(h ^ seed);
  h = Mix64(h ^ static_cast<uint64_t>(Crc32c(canon)));
  return h;
}

std::string SerializeJournalHeader(uint64_t run_id) {
  std::string out(kJournalMagic, sizeof(kJournalMagic));
  AppendRaw(out, kJournalVersion);
  AppendRaw(out, run_id);
  AppendRaw(out, Crc32c(out.data(), out.size()));
  return out;
}

std::string SerializeRowFrame(EntityId entity,
                              const std::vector<float>& row) {
  std::string payload;
  AppendRaw(payload, static_cast<uint64_t>(static_cast<uint32_t>(entity)));
  AppendRaw(payload, static_cast<uint64_t>(row.size()));
  payload.append(reinterpret_cast<const char*>(row.data()),
                 row.size() * sizeof(float));
  std::string frame;
  AppendRaw(frame, static_cast<uint64_t>(payload.size()));
  frame += payload;
  AppendRaw(frame, Crc32c(payload));
  return frame;
}

/// What a resume recovered from an existing journal file.
struct JournalRecovery {
  /// Rows whose frames verified; replayed byte-identically.
  std::unordered_map<EntityId, std::vector<float>> rows;
  /// The verified prefix (header + good frames) to rewrite, dropping any
  /// torn or corrupt tail.
  std::string verified_prefix;
  bool header_ok = false;
  uint64_t run_id = 0;
};

/// Parses with the persistence-is-untrusted rules of the checkpoint and
/// relevance-cache files: a bad header loads as empty, a bad frame
/// truncates the tail. Only a *verifying* header with the wrong run id is
/// reported by the caller as FailedPrecondition — that file is healthy, it
/// just belongs to a different update.
JournalRecovery RecoverJournal(const std::string& bytes, size_t dim,
                               size_t num_entities) {
  JournalRecovery out;
  if (bytes.size() < kJournalHeaderSize) return out;
  size_t off = 0;
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return out;
  }
  off = sizeof(kJournalMagic);
  uint64_t version = 0;
  uint32_t header_crc = 0;
  if (!ReadRaw(bytes, off, &version)) return out;
  if (!ReadRaw(bytes, off, &out.run_id)) return out;
  if (!ReadRaw(bytes, off, &header_crc)) return out;
  if (version != kJournalVersion ||
      header_crc != Crc32c(bytes.data(), kJournalHeaderSize - 4)) {
    return out;
  }
  out.header_ok = true;
  size_t verified_end = off;
  while (off < bytes.size()) {
    const size_t frame_start = off;
    uint64_t payload_len = 0;
    if (!ReadRaw(bytes, off, &payload_len)) break;
    if (payload_len < 16 || payload_len > bytes.size() - off) break;
    const std::string_view payload(bytes.data() + off, payload_len);
    off += payload_len;
    uint32_t crc = 0;
    if (!ReadRaw(bytes, off, &crc)) break;
    if (crc != Crc32c(payload.data(), payload.size())) break;
    size_t poff = 0;
    uint64_t entity_raw = 0;
    uint64_t row_dim = 0;
    ReadRaw(payload, poff, &entity_raw);
    ReadRaw(payload, poff, &row_dim);
    if (entity_raw >= num_entities || row_dim != dim ||
        payload.size() - poff != dim * sizeof(float)) {
      break;
    }
    std::vector<float> row(dim);
    std::memcpy(row.data(), payload.data() + poff, dim * sizeof(float));
    out.rows.emplace(static_cast<EntityId>(entity_raw), std::move(row));
    verified_end = off;
    (void)frame_start;
  }
  out.verified_prefix = bytes.substr(0, verified_end);
  return out;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("cannot read " + path);
  return buffer.str();
}

/// One tab-separated field; empty fields are malformed (caught by the
/// caller's count check plus the name lookups).
std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

Status DeltaLineError(std::string_view source, size_t line_number,
                      const std::string& what) {
  std::ostringstream msg;
  msg << source << ":" << line_number << ": " << what;
  return Status::InvalidArgument(msg.str());
}

}  // namespace

Result<KgDelta> ParseKgDelta(std::string_view text, const Dataset& dataset,
                             std::string_view source) {
  KgDelta delta;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() != 4) {
      return DeltaLineError(source, line_number,
                            "expected 4 tab-separated fields "
                            "(op, head, relation, tail), got " +
                                std::to_string(fields.size()));
    }
    const std::string_view op = fields[0];
    const bool is_add = op == "add" || op == "+";
    const bool is_remove = op == "remove" || op == "-";
    if (!is_add && !is_remove) {
      return DeltaLineError(source, line_number,
                            "unknown operation '" + std::string(op) +
                                "' (expected add/remove)");
    }
    Result<int32_t> head = dataset.entities().Find(fields[1]);
    if (!head.ok()) {
      return DeltaLineError(source, line_number,
                            "unknown entity '" + std::string(fields[1]) +
                                "' (incremental update does not grow the "
                                "vocabulary)");
    }
    Result<int32_t> relation = dataset.relations().Find(fields[2]);
    if (!relation.ok()) {
      return DeltaLineError(source, line_number,
                            "unknown relation '" + std::string(fields[2]) +
                                "'");
    }
    Result<int32_t> tail = dataset.entities().Find(fields[3]);
    if (!tail.ok()) {
      return DeltaLineError(source, line_number,
                            "unknown entity '" + std::string(fields[3]) +
                                "' (incremental update does not grow the "
                                "vocabulary)");
    }
    const Triple t{*head, *relation, *tail};
    (is_add ? delta.add : delta.remove).push_back(t);
  }
  return delta;
}

std::vector<EntityId> AffectedEntities(const KgDelta& delta) {
  std::vector<EntityId> affected;
  affected.reserve(2 * (delta.add.size() + delta.remove.size()));
  for (const std::vector<Triple>* list : {&delta.add, &delta.remove}) {
    for (const Triple& t : *list) {
      affected.push_back(t.head);
      affected.push_back(t.tail);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected;
}

Result<UpdateReport> ApplyKgUpdate(LinkPredictionModel& model,
                                   const Dataset& dataset,
                                   const KgDelta& delta,
                                   const UpdateOptions& options) {
  if (model.num_entities() != dataset.num_entities() ||
      model.num_relations() != dataset.num_relations()) {
    return Status::InvalidArgument(
        "model/dataset vocabulary mismatch: model has " +
        std::to_string(model.num_entities()) + " entities / " +
        std::to_string(model.num_relations()) + " relations, dataset has " +
        std::to_string(dataset.num_entities()) + " / " +
        std::to_string(dataset.num_relations()));
  }

  // Validate before touching anything: ids in range, removes present in
  // (and adds absent from) the training split, no duplicates, no triple on
  // both sides. ParseKgDelta guarantees the range checks for parsed
  // deltas; programmatic ones get them here.
  const auto check_range = [&](const Triple& t) -> Status {
    if (t.head < 0 || t.tail < 0 || t.relation < 0 ||
        static_cast<size_t>(t.head) >= dataset.num_entities() ||
        static_cast<size_t>(t.tail) >= dataset.num_entities() ||
        static_cast<size_t>(t.relation) >= dataset.num_relations()) {
      return Status::InvalidArgument("delta triple out of vocabulary range");
    }
    return Status::Ok();
  };
  std::unordered_set<Triple, TripleHash> seen_add;
  std::unordered_set<Triple, TripleHash> seen_remove;
  const GraphIndex& train = dataset.train_graph();
  for (const Triple& t : delta.add) {
    Status s = check_range(t);
    if (!s.ok()) return s;
    if (!seen_add.insert(t).second) {
      return Status::InvalidArgument("duplicate added triple " +
                                     dataset.TripleToString(t));
    }
    if (train.Contains(t)) {
      return Status::InvalidArgument("added triple already in training set: " +
                                     dataset.TripleToString(t));
    }
  }
  for (const Triple& t : delta.remove) {
    Status s = check_range(t);
    if (!s.ok()) return s;
    if (!seen_remove.insert(t).second) {
      return Status::InvalidArgument("duplicate removed triple " +
                                     dataset.TripleToString(t));
    }
    if (seen_add.count(t) > 0) {
      return Status::InvalidArgument(
          "triple both added and removed: " + dataset.TripleToString(t));
    }
    if (!train.Contains(t)) {
      return Status::InvalidArgument(
          "removed triple not in training set: " + dataset.TripleToString(t));
    }
  }

  UpdateReport report;
  report.triples_added = delta.add.size();
  report.triples_removed = delta.remove.size();
  report.affected = AffectedEntities(delta);
  report.fingerprint_before = ComputeModelFingerprint(model, options.seed);
  report.fingerprint_after = report.fingerprint_before;
  if (delta.empty()) return report;

  const size_t dim = model.entity_dim();
  const Dataset updated = dataset.WithModifiedTraining(delta.remove, delta.add);
  const uint64_t run_id =
      ComputeRunId(report.fingerprint_before, options.seed, delta);

  // Rows completed so far, staged off to the side: every PostTrainMimic
  // below sees the original parameters, which is what makes the schedule
  // (and a crash/resume split) irrelevant to the final bytes.
  std::unordered_map<EntityId, std::vector<float>> staged;

  std::ofstream journal;
  if (!options.journal_path.empty()) {
    std::string prefix = SerializeJournalHeader(run_id);
    if (options.resume) {
      Result<std::string> bytes = ReadWholeFile(options.journal_path);
      if (bytes.ok()) {
        JournalRecovery recovered =
            RecoverJournal(*bytes, dim, model.num_entities());
        if (recovered.header_ok && recovered.run_id != run_id) {
          return Status::FailedPrecondition(
              "journal " + options.journal_path +
              " belongs to a different update run (model, delta or seed "
              "changed); delete it or point --journal elsewhere");
        }
        if (recovered.header_ok) {
          staged = std::move(recovered.rows);
          report.rows_replayed = staged.size();
          prefix = std::move(recovered.verified_prefix);
        }
      }
    }
    // Rewrite the verified prefix (or a fresh header) atomically, then
    // append: a torn tail from a previous crash is dropped exactly once.
    Status s = WriteFileAtomic(options.journal_path, prefix);
    if (!s.ok()) return s;
    journal.open(options.journal_path,
                 std::ios::binary | std::ios::app);
    if (!journal) {
      return Status::IoError("cannot append to journal " +
                             options.journal_path);
    }
  }

  for (EntityId entity : report.affected) {
    if (updated.train_graph().Degree(entity) == 0) {
      // The delta removed this entity's last triple: there is nothing to
      // post-train against, so its row stays bitwise put (and is never
      // journaled — replaying a resume reaches the same conclusion).
      report.isolated.push_back(entity);
      continue;
    }
    if (staged.count(entity) > 0) continue;
    if (options.cancel.cancelled()) {
      return Status::Cancelled(
          "update cancelled; completed rows are journaled, re-run with "
          "--resume");
    }
    const std::vector<Triple> facts = updated.train_graph().FactsOf(entity);
    Rng rng(UpdateRowSeed(options.seed, entity, facts));
    std::span<const float> current = model.EntityEmbedding(entity);
    std::vector<float> row =
        model.PostTrainMimic(updated, entity, facts, rng, current);
    if (row.size() != dim) {
      return Status::Internal("post-training returned a row of " +
                              std::to_string(row.size()) + " floats, want " +
                              std::to_string(dim));
    }
    if (journal.is_open()) {
      const std::string frame = SerializeRowFrame(entity, row);
      journal.write(frame.data(),
                    static_cast<std::streamsize>(frame.size()));
      journal.flush();
      if (!journal) {
        return Status::IoError("failed appending to journal " +
                               options.journal_path);
      }
    }
    staged.emplace(entity, std::move(row));
    ++report.rows_recomputed;
  }

  // Commit: all rows verified present, swap them in together. Isolated
  // entities have no staged row — theirs stay bitwise put.
  for (EntityId entity : report.affected) {
    auto it = staged.find(entity);
    if (it == staged.end()) continue;
    const std::vector<float>& row = it->second;
    std::span<float> dst = model.MutableEntityEmbedding(entity);
    std::copy(row.begin(), row.end(), dst.begin());
  }
  report.fingerprint_after = ComputeModelFingerprint(model, options.seed);
  report.params_changed =
      report.fingerprint_after != report.fingerprint_before;
  return report;
}

}  // namespace kelpie::xp
