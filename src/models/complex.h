#ifndef KELPIE_MODELS_COMPLEX_H_
#define KELPIE_MODELS_COMPLEX_H_

#include "models/bilinear.h"

namespace kelpie {

/// ComplEx (Trouillon et al., ICML 2016): tensor-decomposition model with
/// embeddings in ℂ^rank, scored with the Hermitian product
/// φ(h, r, t) = Re(Σ_k h_k · r_k · conj(t_k)). The asymmetric conjugation
/// lets it model asymmetric relations. Trained, as in the paper, with the
/// multiclass NLL + N3 regularizer recipe of Lacroix et al. (ICML 2018).
///
/// Storage layout: each embedding row is [real half | imaginary half], so
/// `entity_dim() == 2 * rank` and TrainConfig::dim must be even.
class ComplEx final : public BilinearModel {
 public:
  ComplEx(size_t num_entities, size_t num_relations, TrainConfig config);

  std::string_view Name() const override { return "ComplEx"; }

  /// Complex rank (= dim / 2).
  size_t rank() const { return entity_dim() / 2; }

 protected:
  void TailQuery(std::span<const float> h, std::span<const float> r,
                 std::span<float> out) const override;
  void HeadQuery(std::span<const float> r, std::span<const float> t,
                 std::span<float> out) const override;
  void BackpropTailQuery(std::span<const float> h, std::span<const float> r,
                         std::span<const float> dq, std::span<float> gh,
                         std::span<float> gr) const override;
  void BackpropHeadQuery(std::span<const float> r, std::span<const float> t,
                         std::span<const float> dw, std::span<float> gr,
                         std::span<float> gt) const override;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_COMPLEX_H_
