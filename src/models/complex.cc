#include "models/complex.h"

#include "common/logging.h"

namespace kelpie {

ComplEx::ComplEx(size_t num_entities, size_t num_relations,
                 TrainConfig config)
    : BilinearModel(num_entities, num_relations, std::move(config)) {
  KELPIE_CHECK(config_.dim % 2 == 0);
}

// Notation: h = a + bi, r = c + di, t = e + fi (componentwise).
// φ = Re(<h ∘ r, conj(t)>) = Σ e(ac - bd) + f(ad + bc).

void ComplEx::TailQuery(std::span<const float> h, std::span<const float> r,
                        std::span<float> out) const {
  const size_t k = rank();
  for (size_t i = 0; i < k; ++i) {
    const float a = h[i], b = h[k + i];
    const float c = r[i], d = r[k + i];
    out[i] = a * c - b * d;      // real part of h∘r
    out[k + i] = a * d + b * c;  // imaginary part of h∘r
  }
}

void ComplEx::HeadQuery(std::span<const float> r, std::span<const float> t,
                        std::span<float> out) const {
  const size_t k = rank();
  for (size_t i = 0; i < k; ++i) {
    const float c = r[i], d = r[k + i];
    const float e = t[i], f = t[k + i];
    out[i] = c * e + d * f;      // ∂φ/∂a
    out[k + i] = c * f - d * e;  // ∂φ/∂b
  }
}

void ComplEx::BackpropTailQuery(std::span<const float> h,
                                std::span<const float> r,
                                std::span<const float> dq,
                                std::span<float> gh,
                                std::span<float> gr) const {
  const size_t k = rank();
  for (size_t i = 0; i < k; ++i) {
    const float a = h[i], b = h[k + i];
    const float c = r[i], d = r[k + i];
    const float dre = dq[i], dim = dq[k + i];
    if (!gh.empty()) {
      gh[i] += dre * c + dim * d;
      gh[k + i] += -dre * d + dim * c;
    }
    if (!gr.empty()) {
      gr[i] += dre * a + dim * b;
      gr[k + i] += -dre * b + dim * a;
    }
  }
}

void ComplEx::BackpropHeadQuery(std::span<const float> r,
                                std::span<const float> t,
                                std::span<const float> dw,
                                std::span<float> gr,
                                std::span<float> gt) const {
  const size_t k = rank();
  for (size_t i = 0; i < k; ++i) {
    const float c = r[i], d = r[k + i];
    const float e = t[i], f = t[k + i];
    const float dre = dw[i], dim = dw[k + i];
    if (!gr.empty()) {
      gr[i] += dre * e + dim * f;
      gr[k + i] += dre * f - dim * e;
    }
    if (!gt.empty()) {
      gt[i] += dre * c - dim * d;
      gt[k + i] += dre * d + dim * c;
    }
  }
}

}  // namespace kelpie
