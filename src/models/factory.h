#ifndef KELPIE_MODELS_FACTORY_H_
#define KELPIE_MODELS_FACTORY_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "models/model.h"

namespace kelpie {

/// The model families exercised by the experiments: the paper's three
/// representatives (geometric, tensor-decomposition, deep learning) plus
/// DistMult as an extra multiplicative model.
enum class ModelKind { kTransE, kComplEx, kConvE, kDistMult, kRotatE };

/// Stable display name ("TransE", ...).
std::string_view ModelKindName(ModelKind kind);

/// Parses a display name back to a kind (case-sensitive).
Result<ModelKind> ParseModelKind(std::string_view name);

/// Per-model hyperparameter defaults, lightly adapted to the dataset size
/// (larger graphs get a few more epochs). These reproduce the training
/// recipes of the paper's Section 5.1 at the reduced scale of the synthetic
/// datasets.
TrainConfig DefaultConfig(ModelKind kind, const Dataset& dataset);

/// Checks user-supplied hyperparameters against a model's structural
/// requirements (dimension divisibility, positive epoch/batch counts,
/// sensible recovery knobs) before construction. The model constructors
/// enforce the same invariants with KELPIE_CHECK; calling this first turns
/// a bad `--dim` on the CLI into an error message instead of an abort.
Status ValidateConfig(ModelKind kind, const TrainConfig& config);

/// Instantiates an untrained model sized for `dataset`.
std::unique_ptr<LinkPredictionModel> CreateModel(ModelKind kind,
                                                 const Dataset& dataset,
                                                 const TrainConfig& config);

/// Convenience: instantiate with default config and train with `seed`.
std::unique_ptr<LinkPredictionModel> CreateAndTrain(ModelKind kind,
                                                    const Dataset& dataset,
                                                    uint64_t seed);

}  // namespace kelpie

#endif  // KELPIE_MODELS_FACTORY_H_
