#include "models/bilinear.h"

#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "math/simd.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

/// Per-thread scratch for the relation-composed query vector so the
/// scoring paths do not allocate per call.
std::span<float> QueryScratch(size_t dim) {
  thread_local std::vector<float> scratch;
  scratch.resize(dim);
  return scratch;
}

}  // namespace

BilinearModel::BilinearModel(size_t num_entities, size_t num_relations,
                             TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      entity_embeddings_(num_entities, config_.dim),
      relation_embeddings_(num_relations, config_.dim) {}

float BilinearModel::Score(const Triple& t) const {
  std::span<float> q = QueryScratch(entity_dim());
  TailQuery(entity_embeddings_.Row(static_cast<size_t>(t.head)),
            relation_embeddings_.Row(static_cast<size_t>(t.relation)), q);
  return Dot(q, entity_embeddings_.Row(static_cast<size_t>(t.tail)));
}

void BilinearModel::ScoreAllTails(EntityId h, RelationId r,
                                  std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void BilinearModel::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                             RelationId r,
                                             std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<float> q = QueryScratch(entity_dim());
  TailQuery(head_vec, relation_embeddings_.Row(static_cast<size_t>(r)), q);
  simd::GemvRowMajor(entity_embeddings_.Data().data(), num_entities(),
                     entity_dim(), q.data(), out.data());
}

void BilinearModel::ScoreAllHeads(RelationId r, EntityId t,
                                  std::span<float> out) const {
  ScoreAllHeadsWithTailVec(
      r, entity_embeddings_.Row(static_cast<size_t>(t)), out);
}

void BilinearModel::ScoreAllHeadsWithTailVec(RelationId r,
                                             std::span<const float> tail_vec,
                                             std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<float> w = QueryScratch(entity_dim());
  HeadQuery(relation_embeddings_.Row(static_cast<size_t>(r)), tail_vec, w);
  // Dot(e, w) == Dot(w, e) term for term (float multiply is commutative),
  // so the gemv sweep is bit-identical to the per-row Dot it replaces.
  simd::GemvRowMajor(entity_embeddings_.Data().data(), num_entities(),
                     entity_dim(), w.data(), out.data());
}

std::optional<CandidateSweep> BilinearModel::TailSweepWithHeadVec(
    std::span<const float> head_vec, RelationId r) const {
  // TailQuery() is the exact composite the gemv sweep consumes.
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kDot;
  sweep.query.resize(entity_dim());
  TailQuery(head_vec, relation_embeddings_.Row(static_cast<size_t>(r)),
            sweep.query);
  return sweep;
}

std::optional<CandidateSweep> BilinearModel::HeadSweepWithTailVec(
    RelationId r, std::span<const float> tail_vec) const {
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kDot;
  sweep.query.resize(entity_dim());
  HeadQuery(relation_embeddings_.Row(static_cast<size_t>(r)), tail_vec,
            sweep.query);
  return sweep;
}

float BilinearModel::ScoreWithEntityVec(const Triple& t, EntityId which,
                                        std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::span<float> q = QueryScratch(entity_dim());
  TailQuery(h, relation_embeddings_.Row(static_cast<size_t>(t.relation)), q);
  return Dot(q, tl);
}

std::vector<float> BilinearModel::ScoreGradWrtHead(const Triple& t) const {
  // φ = <h, HeadQuery(r, t)> so ∂φ/∂h = HeadQuery(r, t).
  std::vector<float> w(entity_dim());
  HeadQuery(relation_embeddings_.Row(static_cast<size_t>(t.relation)),
            entity_embeddings_.Row(static_cast<size_t>(t.tail)), w);
  return w;
}

std::vector<float> BilinearModel::ScoreGradWrtTail(const Triple& t) const {
  // φ = <TailQuery(h, r), t> so ∂φ/∂t = TailQuery(h, r).
  std::vector<float> q(entity_dim());
  TailQuery(entity_embeddings_.Row(static_cast<size_t>(t.head)),
            relation_embeddings_.Row(static_cast<size_t>(t.relation)), q);
  return q;
}

void BilinearModel::AddN3Gradient(std::span<const float> row,
                                  std::span<float> grad) const {
  const float lambda = config_.regularization;
  if (lambda <= 0.0f) return;
  for (size_t i = 0; i < row.size(); ++i) {
    grad[i] += lambda * 3.0f * std::fabs(row[i]) * row[i];
  }
}

Status BilinearModel::Train(const Dataset& dataset, Rng& rng,
                            const TrainControl& control) {
  InitMatrix(entity_embeddings_, InitScheme::kNormal, 0.1, rng);
  InitMatrix(relation_embeddings_, InitScheme::kNormal, 0.1, rng);
  last_train_report_ = TrainReport{};

  const std::vector<Triple>& train = dataset.train();
  if (train.empty()) return Status::Ok();
  const size_t n_ent = num_entities();
  const size_t dim = entity_dim();

  EmbeddingAdagrad entity_opt(config_.sparse_updates, n_ent, dim,
                              config_.learning_rate);
  EmbeddingAdagrad relation_opt(config_.sparse_updates, num_relations(), dim,
                                config_.learning_rate);
  Batcher batcher(train.size(), config_.batch_size);

  std::vector<float> scores(n_ent);
  std::vector<float> q(dim), w(dim);
  std::vector<float> dq(dim), dw(dim);
  std::vector<float> gh(dim), gr(dim), gt(dim), ge(dim);

  // Full-softmax gradients scale with the score spread, so this trainer can
  // genuinely blow up; optionally clip each per-row gradient to an L2 ball.
  const float clip = config_.grad_clip_norm;
  // Clip activations are tallied in a local (the clip sits inside the
  // innermost gradient loop) and flushed to the registry once per run.
  uint64_t clip_activations = 0;
  auto maybe_clip = [clip, &clip_activations](std::span<float> g) {
    if (clip > 0.0f && ProjectToL2Ball(g, clip)) ++clip_activations;
  };

  GuardedTrainHooks hooks;
  hooks.params = [&] {
    // Dense mode keeps the historical span layout (embeddings + both
    // accumulator tables), so pre-sparse checkpoints stay resumable. In
    // sparse mode the accumulators live in touched-row maps and travel
    // through the save_sparse/restore_sparse blob hooks instead.
    std::vector<std::span<float>> spans{entity_embeddings_.Data(),
                                        relation_embeddings_.Data()};
    if (!config_.sparse_updates) {
      spans.push_back(entity_opt.DenseAccumData());
      spans.push_back(relation_opt.DenseAccumData());
    }
    return spans;
  };
  if (config_.sparse_updates) {
    hooks.save_sparse = [&] {
      return ComposeSparseBlobs(
          {entity_opt.SaveSparseState(), relation_opt.SaveSparseState()});
    };
    hooks.restore_sparse = [&](const std::string& blob) {
      std::vector<std::string> parts;
      if (!SplitSparseBlobs(blob, 2, parts)) return false;
      // Validate both halves before mutating either, so a failed restore
      // leaves the optimizers untouched.
      EmbeddingAdagrad probe_e = entity_opt;
      EmbeddingAdagrad probe_r = relation_opt;
      if (!probe_e.RestoreSparseState(parts[0]) ||
          !probe_r.RestoreSparseState(parts[1])) {
        return false;
      }
      entity_opt = std::move(probe_e);
      relation_opt = std::move(probe_r);
      return true;
    };
    hooks.sparse_finite = [&] {
      return entity_opt.SparseFinite() && relation_opt.SparseFinite();
    };
  }
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    entity_opt.set_lr_scale(lr_scale);
    relation_opt.set_lr_scale(lr_scale);
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      for (size_t idx : batch) {
        const Triple& triple = train[idx];
        const size_t h = static_cast<size_t>(triple.head);
        const size_t r = static_cast<size_t>(triple.relation);
        const size_t t = static_cast<size_t>(triple.tail);

        // ---- Tail direction: -log p(t | h, r). ----
        TailQuery(entity_embeddings_.Row(h), relation_embeddings_.Row(r), q);
        simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                           q.data(), scores.data());
        SoftmaxInPlace(scores);
        epoch_loss += -std::log(std::max<double>(scores[t], 1e-30));
        Fill(std::span<float>(dq), 0.0f);
        for (size_t e = 0; e < n_ent; ++e) {
          float coeff = scores[e] - (e == t ? 1.0f : 0.0f);
          if (std::fabs(coeff) < 1e-7f) continue;
          // dL/dt_e = coeff * q  — applied immediately per candidate row.
          std::span<const float> qv = q;
          for (size_t i = 0; i < dim; ++i) {
            ge[i] = coeff * qv[i];
          }
          if (e == t) {
            AddN3Gradient(entity_embeddings_.Row(e), ge);
          }
          maybe_clip(ge);
          entity_opt.Step(entity_embeddings_, e, ge);
          Axpy(coeff, entity_embeddings_.Row(e), std::span<float>(dq));
        }
        Fill(std::span<float>(gh), 0.0f);
        Fill(std::span<float>(gr), 0.0f);
        BackpropTailQuery(entity_embeddings_.Row(h),
                          relation_embeddings_.Row(r), dq, gh, gr);
        AddN3Gradient(entity_embeddings_.Row(h), gh);
        AddN3Gradient(relation_embeddings_.Row(r), gr);
        maybe_clip(gh);
        maybe_clip(gr);
        entity_opt.Step(entity_embeddings_, h, gh);
        relation_opt.Step(relation_embeddings_, r, gr);

        // ---- Head direction: -log p(h | r, t). ----
        HeadQuery(relation_embeddings_.Row(r), entity_embeddings_.Row(t), w);
        simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                           w.data(), scores.data());
        SoftmaxInPlace(scores);
        epoch_loss += -std::log(std::max<double>(scores[h], 1e-30));
        Fill(std::span<float>(dw), 0.0f);
        for (size_t e = 0; e < n_ent; ++e) {
          float coeff = scores[e] - (e == h ? 1.0f : 0.0f);
          if (std::fabs(coeff) < 1e-7f) continue;
          for (size_t i = 0; i < dim; ++i) {
            ge[i] = coeff * w[i];
          }
          maybe_clip(ge);
          entity_opt.Step(entity_embeddings_, e, ge);
          Axpy(coeff, entity_embeddings_.Row(e), std::span<float>(dw));
        }
        Fill(std::span<float>(gr), 0.0f);
        Fill(std::span<float>(gt), 0.0f);
        BackpropHeadQuery(relation_embeddings_.Row(r),
                          entity_embeddings_.Row(t), dw, gr, gt);
        AddN3Gradient(relation_embeddings_.Row(r), gr);
        AddN3Gradient(entity_embeddings_.Row(t), gt);
        maybe_clip(gr);
        maybe_clip(gt);
        relation_opt.Step(relation_embeddings_, r, gr);
        entity_opt.Step(entity_embeddings_, t, gt);
      }
    }
    return epoch_loss;
  };

  hooks.save_rng = [&] { return rng.SaveState(); };
  hooks.restore_rng = [&](const RngState& state) { rng.LoadState(state); };

  Result<TrainReport> report =
      RunGuardedEpochs(MakeGuardConfig(control), hooks);
  metrics::Registry::Global()
      .GetCounter("kelpie_train_grad_clip_total", {},
                  metrics::Determinism::kDeterministic,
                  "Gradient clip activations (L2 projection rescales).")
      .Increment(clip_activations);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> BilinearModel::PostTrainMimic(
    const Dataset& dataset, EntityId entity,
    const std::vector<Triple>& facts, Rng& rng,
    std::span<const float> warm_init) const {
  (void)dataset;
  const size_t n_ent = num_entities();
  const size_t dim = entity_dim();
  std::vector<float> mimic(dim);
  if (warm_init.size() == mimic.size()) {
    std::copy(warm_init.begin(), warm_init.end(), mimic.begin());
  } else {
    InitRow(mimic, InitScheme::kNormal, 0.1, rng);
  }
  if (facts.empty()) return mimic;

  const float lr = config_.post_training_lr > 0 ? config_.post_training_lr
                                                : config_.learning_rate;
  // One-row optimizer for the mimic; under sparse_updates its accumulator
  // materializes on the first gradient (same bytes either way).
  EmbeddingAdagrad mimic_opt(config_.sparse_updates, 1, dim, lr);

  std::vector<float> scores(n_ent);
  std::vector<float> q(dim), w(dim);
  std::vector<float> dq(dim), dw(dim);
  std::vector<float> gm(dim);
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& fact = facts[idx];
      Fill(std::span<float>(gm), 0.0f);

      if (fact.head == entity) {
        // Mimic as head; tail direction trains the mimic through the query,
        // -log p(tail | mimic, r) over all real entities.
        const size_t r = static_cast<size_t>(fact.relation);
        const size_t t = static_cast<size_t>(fact.tail);
        TailQuery(mimic, relation_embeddings_.Row(r), q);
        simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                           q.data(), scores.data());
        SoftmaxInPlace(scores);
        Fill(std::span<float>(dq), 0.0f);
        for (size_t e = 0; e < n_ent; ++e) {
          float coeff = scores[e] - (e == t ? 1.0f : 0.0f);
          if (std::fabs(coeff) < 1e-7f) continue;
          Axpy(coeff, entity_embeddings_.Row(e), std::span<float>(dq));
        }
        BackpropTailQuery(mimic, relation_embeddings_.Row(r), dq, gm, {});
      } else {
        // Mimic as tail: the mimic is the true answer of the tail-direction
        // softmax; candidates are the real entities plus the mimic itself.
        const size_t h = static_cast<size_t>(fact.head);
        const size_t r = static_cast<size_t>(fact.relation);
        TailQuery(entity_embeddings_.Row(h), relation_embeddings_.Row(r), q);
        simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                           q.data(), scores.data());
        double max_s = -1e30;
        for (size_t e = 0; e < n_ent; ++e) {
          max_s = std::max<double>(max_s, scores[e]);
        }
        float mimic_score = Dot(q, mimic);
        max_s = std::max<double>(max_s, mimic_score);
        double denom = std::exp(static_cast<double>(mimic_score) - max_s);
        for (size_t e = 0; e < n_ent; ++e) {
          denom += std::exp(static_cast<double>(scores[e]) - max_s);
        }
        double p_mimic =
            std::exp(static_cast<double>(mimic_score) - max_s) / denom;
        // dL/dmimic = (p_mimic - 1) * q.
        Axpy(static_cast<float>(p_mimic - 1.0), q, std::span<float>(gm));
      }
      AddN3Gradient(mimic, gm);
      mimic_opt.StepSpan(mimic, 0, gm);
    }
  }
  return mimic;
}

Status BilinearModel::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  return WriteMatrix(out, relation_embeddings_);
}

Status BilinearModel::LoadParameters(std::istream& in) {
  Matrix entities, relations;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, relations));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      relations.rows() != relation_embeddings_.rows() ||
      relations.cols() != relation_embeddings_.cols()) {
    return Status::InvalidArgument("bilinear parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_embeddings_ = std::move(relations);
  return Status::Ok();
}

}  // namespace kelpie
