#include "models/factory.h"

#include "common/logging.h"
#include "models/complex.h"
#include "models/conve.h"
#include "models/distmult.h"
#include "models/rotate.h"
#include "models/transe.h"

namespace kelpie {

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTransE:
      return "TransE";
    case ModelKind::kComplEx:
      return "ComplEx";
    case ModelKind::kConvE:
      return "ConvE";
    case ModelKind::kDistMult:
      return "DistMult";
    case ModelKind::kRotatE:
      return "RotatE";
  }
  return "Unknown";
}

Result<ModelKind> ParseModelKind(std::string_view name) {
  if (name == "TransE") return ModelKind::kTransE;
  if (name == "ComplEx") return ModelKind::kComplEx;
  if (name == "ConvE") return ModelKind::kConvE;
  if (name == "DistMult") return ModelKind::kDistMult;
  if (name == "RotatE") return ModelKind::kRotatE;
  return Status::InvalidArgument("unknown model kind: " + std::string(name));
}

TrainConfig DefaultConfig(ModelKind kind, const Dataset& dataset) {
  TrainConfig config;
  config.dim = 32;
  // A little extra optimization for larger graphs.
  const bool large = dataset.train().size() > 8000;
  switch (kind) {
    case ModelKind::kTransE:
      config.epochs = large ? 60 : 40;
      config.batch_size = 512;
      config.learning_rate = 0.03f;
      config.margin = 2.0f;
      config.negatives_per_positive = 5;
      config.post_training_epochs = 30;
      config.post_training_lr = 0.05f;
      break;
    case ModelKind::kRotatE:
      config.epochs = large ? 60 : 40;
      config.batch_size = 512;
      config.learning_rate = 0.05f;
      config.margin = 3.0f;
      config.negatives_per_positive = 5;
      config.post_training_epochs = 30;
      config.post_training_lr = 0.05f;
      break;
    case ModelKind::kComplEx:
    case ModelKind::kDistMult:
      config.epochs = large ? 30 : 20;
      config.batch_size = 512;
      config.learning_rate = 0.1f;
      config.regularization = 5e-3f;
      config.post_training_epochs = 25;
      config.post_training_lr = 0.1f;
      break;
    case ModelKind::kConvE:
      config.epochs = large ? 60 : 50;
      config.batch_size = 256;
      config.learning_rate = 0.1f;  // Adagrad, embeddings + biases
      config.conv_lr = 0.01f;       // Adam, conv/FC weights
      config.conv_channels = 8;
      config.conv_kernel = 3;
      config.reshape_height = 4;
      config.label_smoothing = 0.1f;
      config.post_training_epochs = 25;
      config.post_training_lr = 0.1f;
      break;
  }
  return config;
}

Status ValidateConfig(ModelKind kind, const TrainConfig& config) {
  if (config.dim == 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (config.batch_size == 0) {
    return Status::InvalidArgument("batch size must be positive");
  }
  if ((kind == ModelKind::kComplEx || kind == ModelKind::kRotatE) &&
      config.dim % 2 != 0) {
    return Status::InvalidArgument(
        std::string(ModelKindName(kind)) + " requires an even dim, got " +
        std::to_string(config.dim));
  }
  if (kind == ModelKind::kConvE) {
    if (config.reshape_height == 0 ||
        config.dim % config.reshape_height != 0) {
      return Status::InvalidArgument(
          "ConvE requires dim divisible by reshape_height, got dim=" +
          std::to_string(config.dim) + " reshape_height=" +
          std::to_string(config.reshape_height));
    }
  }
  if (config.max_recoveries < 0) {
    return Status::InvalidArgument("max recoveries must be >= 0");
  }
  if (!(config.lr_backoff > 0.0f && config.lr_backoff < 1.0f)) {
    return Status::InvalidArgument(
        "lr backoff must be in (0, 1), got " +
        std::to_string(config.lr_backoff));
  }
  if (config.grad_clip_norm < 0.0f) {
    return Status::InvalidArgument("gradient clip norm must be >= 0");
  }
  return Status::Ok();
}

std::unique_ptr<LinkPredictionModel> CreateModel(ModelKind kind,
                                                 const Dataset& dataset,
                                                 const TrainConfig& config) {
  const size_t n_ent = dataset.num_entities();
  const size_t n_rel = dataset.num_relations();
  switch (kind) {
    case ModelKind::kTransE:
      return std::make_unique<TransE>(n_ent, n_rel, config);
    case ModelKind::kComplEx:
      return std::make_unique<ComplEx>(n_ent, n_rel, config);
    case ModelKind::kConvE:
      return std::make_unique<ConvE>(n_ent, n_rel, config);
    case ModelKind::kDistMult:
      return std::make_unique<DistMult>(n_ent, n_rel, config);
    case ModelKind::kRotatE:
      return std::make_unique<RotatE>(n_ent, n_rel, config);
  }
  return nullptr;
}

std::unique_ptr<LinkPredictionModel> CreateAndTrain(ModelKind kind,
                                                    const Dataset& dataset,
                                                    uint64_t seed) {
  auto model = CreateModel(kind, dataset, DefaultConfig(kind, dataset));
  Rng rng(seed);
  Status trained = model->Train(dataset, rng);
  // Default configs are known-stable; a divergence here is a programmer
  // error, not a user-recoverable condition.
  KELPIE_CHECK(trained.ok()) << trained.ToString();
  return model;
}

}  // namespace kelpie
