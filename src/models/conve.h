#ifndef KELPIE_MODELS_CONVE_H_
#define KELPIE_MODELS_CONVE_H_

#include "math/matrix.h"
#include "math/quant.h"
#include "ml/conv2d.h"
#include "models/model.h"

namespace kelpie {

/// ConvE (Dettmers et al., AAAI 2018): the deep-learning representative.
/// The head and relation embeddings are reshaped to 2D, stacked into an
/// image, passed through a convolution, ReLU, a fully-connected projection
/// and another ReLU; the result is dot-multiplied with the tail embedding
/// and a per-entity output bias is added:
///
///   φ(h, r, t) = < ReLU(FC(ReLU(Conv([h̄ ; r̄])))), t > + b_t
///
/// Trained with the original protocol: reciprocal-relation augmentation
/// (every fact also trains <t, r_inv, h>, and head queries are answered as
/// tail queries on r_inv), 1-N binary cross-entropy with label smoothing,
/// and the paper's three dropouts (input / feature map / hidden) realized
/// with deterministic seeded masks. Batch norm is replaced by the seeded
/// dropout + Adagrad/Adam combination (DESIGN.md §3); the head/relation
/// image uses row-interleaved stacking so every convolution window spans
/// both inputs.
class ConvE final : public LinkPredictionModel {
 public:
  ConvE(size_t num_entities, size_t num_relations, TrainConfig config);

  std::string_view Name() const override { return "ConvE"; }
  size_t num_entities() const override { return entity_embeddings_.rows(); }
  size_t num_relations() const override { return num_base_relations_; }

  /// Id of the reciprocal relation r_inv used by the 1-N training protocol
  /// and by head queries.
  RelationId ReciprocalOf(RelationId r) const {
    return r + static_cast<RelationId>(num_base_relations_);
  }
  size_t entity_dim() const override { return entity_embeddings_.cols(); }

  Status Train(const Dataset& dataset, Rng& rng,
               const TrainControl& control = {}) override;

  float Score(const Triple& t) const override;
  void ScoreAllTails(EntityId h, RelationId r,
                     std::span<float> out) const override;
  void ScoreAllHeads(RelationId r, EntityId t,
                     std::span<float> out) const override;
  void ScoreAllTailsWithHeadVec(std::span<const float> head_vec, RelationId r,
                                std::span<float> out) const override;
  void ScoreAllHeadsWithTailVec(RelationId r,
                                std::span<const float> tail_vec,
                                std::span<float> out) const override;
  float ScoreWithEntityVec(const Triple& t, EntityId which,
                           std::span<const float> vec) const override;
  std::vector<float> ScoreGradWrtHead(const Triple& t) const override;
  std::vector<float> ScoreGradWrtTail(const Triple& t) const override;
  using LinkPredictionModel::PostTrainMimic;
  std::vector<float> PostTrainMimic(const Dataset& dataset, EntityId entity,
                                    const std::vector<Triple>& facts,
                                    Rng& rng,
                                    std::span<const float> warm_init)
      const override;
  Status SaveParameters(std::ostream& out) const override;
  Status LoadParameters(std::istream& in) override;

  std::span<const float> EntityEmbedding(EntityId e) const override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }
  std::span<float> MutableEntityEmbedding(EntityId e) override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }

  /// Per-entity output bias b_e (exposed for tests).
  const std::vector<float>& entity_bias() const { return entity_bias_; }

  std::optional<CandidateSweep> TailSweepWithHeadVec(
      std::span<const float> head_vec, RelationId r) const override;
  std::optional<CandidateSweep> HeadSweepWithTailVec(
      RelationId r, std::span<const float> tail_vec) const override;
  const Matrix* EntityTable() const override { return &entity_embeddings_; }
  std::shared_ptr<const quant::QuantizedTable> QuantizedEntityTable()
      const override {
    return quant_cache_.Get(entity_embeddings_);
  }

 private:
  /// Intermediate activations of one (head, relation) forward pass, kept
  /// for the backward pass. When dropout is active (training only), the
  /// masks hold inverted-dropout multipliers (0 or 1/(1-p)).
  struct ForwardCache {
    std::vector<float> image;     // interleaved [h̄ ; r̄], (2*rh) x rw
    std::vector<float> conv_out;  // post-ReLU (post-dropout) activations
    std::vector<float> v;         // post-ReLU (post-dropout) FC output
    std::vector<float> image_mask;
    std::vector<float> conv_mask;
    std::vector<float> v_mask;
    bool has_dropout = false;
  };

  /// Gradient accumulators for the shared (non-embedding) parameters.
  struct SharedGrads {
    std::vector<float> conv_w;
    std::vector<float> conv_b;
    std::vector<float> fc_w;
    std::vector<float> fc_b;
    void Resize(const Conv2d& conv, const DenseLayer& fc);
    void Zero();
  };

  /// Runs the conv/FC pipeline on explicit head/relation vectors. When
  /// `dropout_rng` is non-null the original paper's three dropouts (input,
  /// feature map, hidden) are applied with deterministic seeded masks;
  /// inference passes use no dropout.
  void ForwardMlp(std::span<const float> head_vec,
                  std::span<const float> rel_vec, ForwardCache& cache,
                  Rng* dropout_rng = nullptr) const;

  /// Backpropagates dL/dv through the pipeline. Accumulates into the
  /// optional outputs (pass empty spans to skip shared-weight grads).
  void BackwardMlp(const ForwardCache& cache, std::span<const float> dv,
                   SharedGrads* shared, std::span<float> grad_head,
                   std::span<float> grad_rel) const;

  size_t image_h() const { return 2 * config_.reshape_height; }
  size_t image_w() const { return config_.dim / config_.reshape_height; }

  size_t num_base_relations_ = 0;
  Matrix entity_embeddings_;
  Matrix relation_embeddings_;
  std::vector<float> entity_bias_;
  Conv2d conv_;
  DenseLayer fc_;
  quant::TableCache quant_cache_;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_CONVE_H_
