#ifndef KELPIE_MODELS_MODEL_STORE_H_
#define KELPIE_MODELS_MODEL_STORE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "models/factory.h"

namespace kelpie {

/// File-level model persistence. The on-disk format is self-describing:
/// magic + version, the architecture kind, entity/relation counts, the
/// full TrainConfig (so a loaded model can be post-trained with the exact
/// hyperparameters it was trained with — which is what the Relevance
/// Engine's fidelity depends on), then the raw parameters.
///
/// Typical flow: train once, SaveModel(); later sessions LoadModel() and
/// run Kelpie extractions without retraining.

/// Writes `model` to `path`, overwriting.
Status SaveModel(const LinkPredictionModel& model, ModelKind kind,
                 const std::string& path);

/// Reconstructs a model from `path`. The returned model is ready for
/// scoring, explanation extraction and post-training.
Result<std::unique_ptr<LinkPredictionModel>> LoadModel(
    const std::string& path);

/// Instantiates an untrained model directly from sizes (used by LoadModel
/// and by callers that do not hold a Dataset).
std::unique_ptr<LinkPredictionModel> CreateModelWithSizes(
    ModelKind kind, size_t num_entities, size_t num_relations,
    const TrainConfig& config);

}  // namespace kelpie

#endif  // KELPIE_MODELS_MODEL_STORE_H_
