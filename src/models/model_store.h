#ifndef KELPIE_MODELS_MODEL_STORE_H_
#define KELPIE_MODELS_MODEL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "models/factory.h"

namespace kelpie {

/// File-level model persistence. The on-disk format is self-describing:
/// magic + version, the architecture kind, entity/relation counts, the
/// full TrainConfig (so a loaded model can be post-trained with the exact
/// hyperparameters it was trained with — which is what the Relevance
/// Engine's fidelity depends on), the raw parameters, and a trailing
/// CRC32C over everything before it. Writes are atomic (temp + fsync +
/// rename), so a crash mid-save leaves the previous file intact, and
/// LoadModel rejects truncated or bit-flipped files via the checksum.

/// One section of the serialized model file; `end_offset` is the byte
/// offset one past the section's last byte. Corruption tests use these to
/// truncate/flip at exact structural boundaries.
struct ModelFileSection {
  std::string name;
  size_t end_offset = 0;
};

/// Writes `model` to `path`, overwriting atomically. When `sections` is
/// non-null it receives the layout of the written file.
Status SaveModel(const LinkPredictionModel& model, ModelKind kind,
                 const std::string& path,
                 std::vector<ModelFileSection>* sections = nullptr);

/// Reconstructs a model from `path`. The returned model is ready for
/// scoring, explanation extraction and post-training. Returns
/// `Status::DataLoss` when the checksum does not match the payload
/// (truncation, bit flips, torn writes).
Result<std::unique_ptr<LinkPredictionModel>> LoadModel(
    const std::string& path);

/// Instantiates an untrained model directly from sizes (used by LoadModel
/// and by callers that do not hold a Dataset).
std::unique_ptr<LinkPredictionModel> CreateModelWithSizes(
    ModelKind kind, size_t num_entities, size_t num_relations,
    const TrainConfig& config);

/// Fingerprint of a training setup: the architecture, every TrainConfig
/// field (serialized exactly as SaveModel stores it, epochs included), the
/// dataset shape and train split contents, and the training seed. Two runs
/// with equal fingerprints and the same binary produce bitwise-identical
/// parameters, which is what makes resuming a training checkpoint
/// (ml/checkpoint.h) safe: a stale fingerprint means the checkpointed
/// trajectory belongs to a different run and must be discarded.
uint64_t ComputeTrainFingerprint(ModelKind kind, const TrainConfig& config,
                                 const Dataset& dataset, uint64_t seed);

}  // namespace kelpie

#endif  // KELPIE_MODELS_MODEL_STORE_H_
