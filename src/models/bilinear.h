#ifndef KELPIE_MODELS_BILINEAR_H_
#define KELPIE_MODELS_BILINEAR_H_

#include "math/matrix.h"
#include "math/quant.h"
#include "ml/optimizer.h"
#include "models/model.h"

namespace kelpie {

/// Base class for models whose score factorizes as a dot product against
/// the candidate entity on either side:
///
///   φ(h, r, t) = <TailQuery(h, r), t> = <h, HeadQuery(r, t)>
///
/// ComplEx and DistMult are both of this form. The base class implements:
///  - all scoring entry points (single, batched, with override vectors);
///  - score gradients w.r.t. entity embeddings;
///  - full training with the multiclass negative log-likelihood loss over
///    both prediction directions and N3 regularization, optimized with
///    per-row Adagrad (the Lacroix et al. recipe the paper's ComplEx uses);
///  - post-training of mimic embeddings under the same loss with every
///    non-mimic parameter frozen.
///
/// Subclasses provide the two query maps and their backward passes.
class BilinearModel : public LinkPredictionModel {
 public:
  size_t num_entities() const override { return entity_embeddings_.rows(); }
  size_t num_relations() const override {
    return relation_embeddings_.rows();
  }
  size_t entity_dim() const override { return entity_embeddings_.cols(); }

  Status Train(const Dataset& dataset, Rng& rng,
               const TrainControl& control = {}) override;

  float Score(const Triple& t) const override;
  void ScoreAllTails(EntityId h, RelationId r,
                     std::span<float> out) const override;
  void ScoreAllHeads(RelationId r, EntityId t,
                     std::span<float> out) const override;
  void ScoreAllTailsWithHeadVec(std::span<const float> head_vec, RelationId r,
                                std::span<float> out) const override;
  void ScoreAllHeadsWithTailVec(RelationId r,
                                std::span<const float> tail_vec,
                                std::span<float> out) const override;
  float ScoreWithEntityVec(const Triple& t, EntityId which,
                           std::span<const float> vec) const override;
  std::vector<float> ScoreGradWrtHead(const Triple& t) const override;
  std::vector<float> ScoreGradWrtTail(const Triple& t) const override;
  using LinkPredictionModel::PostTrainMimic;
  std::vector<float> PostTrainMimic(const Dataset& dataset, EntityId entity,
                                    const std::vector<Triple>& facts,
                                    Rng& rng,
                                    std::span<const float> warm_init)
      const override;
  Status SaveParameters(std::ostream& out) const override;
  Status LoadParameters(std::istream& in) override;

  std::span<const float> EntityEmbedding(EntityId e) const override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }
  std::span<float> MutableEntityEmbedding(EntityId e) override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }

  std::optional<CandidateSweep> TailSweepWithHeadVec(
      std::span<const float> head_vec, RelationId r) const override;
  std::optional<CandidateSweep> HeadSweepWithTailVec(
      RelationId r, std::span<const float> tail_vec) const override;
  const Matrix* EntityTable() const override { return &entity_embeddings_; }
  std::shared_ptr<const quant::QuantizedTable> QuantizedEntityTable()
      const override {
    return quant_cache_.Get(entity_embeddings_);
  }

 protected:
  BilinearModel(size_t num_entities, size_t num_relations,
                TrainConfig config);

  /// out = TailQuery(h, r); all spans have entity_dim() floats.
  virtual void TailQuery(std::span<const float> h, std::span<const float> r,
                         std::span<float> out) const = 0;
  /// out = HeadQuery(r, t).
  virtual void HeadQuery(std::span<const float> r, std::span<const float> t,
                         std::span<float> out) const = 0;
  /// Given dL/dq for q = TailQuery(h, r), accumulates dL/dh into `gh` and
  /// dL/dr into `gr`. Either may be empty to skip.
  virtual void BackpropTailQuery(std::span<const float> h,
                                 std::span<const float> r,
                                 std::span<const float> dq,
                                 std::span<float> gh,
                                 std::span<float> gr) const = 0;
  /// Given dL/dw for w = HeadQuery(r, t), accumulates dL/dr and dL/dt.
  virtual void BackpropHeadQuery(std::span<const float> r,
                                 std::span<const float> t,
                                 std::span<const float> dw,
                                 std::span<float> gr,
                                 std::span<float> gt) const = 0;

  Matrix entity_embeddings_;
  Matrix relation_embeddings_;

 private:
  /// Adds the N3 regularization gradient λ·3·|x|·x to `grad`.
  void AddN3Gradient(std::span<const float> row, std::span<float> grad) const;

  quant::TableCache quant_cache_;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_BILINEAR_H_
