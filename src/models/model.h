#ifndef KELPIE_MODELS_MODEL_H_
#define KELPIE_MODELS_MODEL_H_

#include <iostream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "kgraph/dataset.h"
#include "kgraph/triple.h"
#include "math/rng.h"
#include "ml/train_guard.h"

namespace kelpie {

class Matrix;
namespace quant {
struct QuantizedTable;
}  // namespace quant

/// Closed-form description of an all-candidates sweep: every model's
/// ScoreAll* path reduces to "build one composite query vector, run one
/// entity-table kernel, apply a fixed transform". Exposing that shape lets
/// the quantized-shortlist rank path (eval/ranking.cc) classify candidates
/// against certified int8 bounds and re-score only the uncertain band.
///
/// Contract: `query` must be built with the *exact same float arithmetic*
/// as the model's ScoreAll* composite, so that
///   kDot:             fl(Dot(row_e, query)) [+ bias_e]
///   kSquaredDistance: -sqrt(fl(SquaredDistance(row_e, query)))
/// evaluated per row through the simd kernels reproduces the sweep output
/// for entity e bit for bit (the PR 5 per-row equivalence guarantee).
struct CandidateSweep {
  enum class Kernel { kDot, kSquaredDistance };
  Kernel kernel = Kernel::kDot;
  /// The composite query vector (entity_dim floats).
  std::vector<float> query;
  /// Per-entity additive bias applied after the dot kernel (ConvE's b_e;
  /// added as `score += 1.0f * bias[e]`, matching the sweep's Axpy). Empty
  /// for models without one. Points into model-owned storage and is only
  /// valid while the model is alive and unmodified.
  std::span<const float> bias;
};

/// Hyperparameters shared by all model trainers. Every model reads the
/// fields that apply to its architecture and ignores the rest; the factory
/// (factory.h) provides per-model, per-dataset defaults.
struct TrainConfig {
  /// Entity/relation embedding width in floats. For ComplEx this is twice
  /// the complex rank ([real | imaginary] halves).
  size_t dim = 32;
  size_t epochs = 40;
  size_t batch_size = 512;
  float learning_rate = 0.1f;
  /// Regularization weight: N3 for ComplEx/DistMult, L2 elsewhere.
  float regularization = 0.0f;

  // Pairwise-ranking specifics (TransE).
  float margin = 2.0f;
  int negatives_per_positive = 5;

  // ConvE specifics.
  size_t conv_channels = 8;
  size_t conv_kernel = 3;
  /// Adam learning rate of the shared conv/FC weights (embeddings use
  /// `learning_rate`).
  float conv_lr = 0.01f;
  /// Height of the 2D reshape of an embedding; dim must be divisible by it.
  size_t reshape_height = 4;
  float label_smoothing = 0.1f;
  /// The original ConvE's three dropout rates (training-time only, with
  /// deterministic seeded masks).
  float input_dropout = 0.2f;
  float feature_dropout = 0.2f;
  float hidden_dropout = 0.3f;

  // Post-training (Relevance Engine) specifics.
  size_t post_training_epochs = 30;
  /// Learning rate for post-training; <= 0 means "reuse learning_rate".
  float post_training_lr = -1.0f;

  /// Route embedding-table gradients through the sparse optimizers
  /// (ml/optimizer.h, SparseRowAdagrad): per-row accumulator state
  /// materializes lazily for touched rows instead of being allocated for
  /// the whole table. The step arithmetic is identical, so flipping this
  /// changes memory behavior and checkpoint layout, never parameter bytes
  /// (sparse ≡ dense, byte for byte — asserted per model by the
  /// equivalence suite). Dense layers (ConvE's conv/FC Adam) are
  /// unaffected. Deliberately excluded from model-file serialization and
  /// the train fingerprint: models trained either way are interchangeable.
  bool sparse_updates = false;

  // Robustness guardrails (see ml/train_guard.h for semantics).
  /// Check the per-epoch loss proxy and all parameters/optimizer state for
  /// finiteness after every epoch. Off = no scans, no snapshots, no
  /// recovery.
  bool check_finite = true;
  /// On a non-finite epoch, rewind to the last finite state, back off the
  /// learning rate, and retry; when false, Train() returns Aborted instead.
  bool recover_on_divergence = true;
  /// Rewind-and-retry budget per Train() call.
  int max_recoveries = 3;
  /// Learning-rate scale multiplier applied on each recovery.
  float lr_backoff = 0.5f;
  /// When > 0, clip per-example gradient vectors to this L2 norm in the
  /// trainers that can produce unbounded gradients (ComplEx/DistMult,
  /// ConvE). TransE and RotatE use unit-norm residual directions and are
  /// bounded by construction. 0 disables clipping.
  float grad_clip_norm = 0.0f;
};

/// Abstract embedding-based link-prediction model.
///
/// This is the single surface the rest of the library sees. It exposes what
/// the paper's framework requires of any model:
///  - the scoring function φ (higher = more plausible), over stored
///    embeddings and over "override" vectors standing in for an entity;
///  - batched all-candidates scoring for ranking;
///  - ∂φ/∂(entity embedding), needed by the Data Poisoning and Criage
///    baselines;
///  - full training (used for original models and end-to-end retraining);
///  - *post-training* (Section 4.2): training one fresh embedding row — a
///    mimic — on a chosen fact set while every other parameter is frozen.
class LinkPredictionModel {
 public:
  virtual ~LinkPredictionModel() = default;

  /// Short architecture name ("TransE", "ComplEx", "ConvE", ...).
  virtual std::string_view Name() const = 0;

  virtual size_t num_entities() const = 0;
  virtual size_t num_relations() const = 0;
  /// Floats per entity embedding row.
  virtual size_t entity_dim() const = 0;

  const TrainConfig& config() const { return config_; }

  /// Trains from random initialization on `dataset.train()`; any previous
  /// parameters are discarded. Deterministic given `rng`'s state.
  ///
  /// Runs under the guardrails configured in TrainConfig (finiteness
  /// checks, divergence rewind + learning-rate backoff). Returns
  /// `Status::Aborted` when training diverges and recovery is disabled or
  /// its budget is exhausted; the parameters are then the last finite
  /// state, never NaN/Inf garbage. Not marked [[nodiscard]]: call sites
  /// that train with known-stable configs may ignore the result, and a
  /// diverged model still holds finite parameters.
  ///
  /// `control` optionally wires in crash-safe checkpointing and cooperative
  /// cancellation (ml/checkpoint.h, ml/train_guard.h). The default —
  /// no checkpointer, never cancelled — is exactly the historical behavior.
  /// With a checkpointer in resume mode, a run interrupted at any point
  /// (`kill -9` included) and re-run with the same dataset/config/seed
  /// converges to bitwise-identical final parameters.
  virtual Status Train(const Dataset& dataset, Rng& rng,
                       const TrainControl& control = {}) = 0;

  /// Guardrail report (epochs run, recoveries, backoff events) of the most
  /// recent Train() call on this model. Empty before the first call.
  const TrainReport& last_train_report() const { return last_train_report_; }

  /// φ(h, r, t) with stored embeddings.
  virtual float Score(const Triple& t) const = 0;

  /// Writes φ(h, r, e) for every entity e into `out`
  /// (out.size() == num_entities()).
  virtual void ScoreAllTails(EntityId h, RelationId r,
                             std::span<float> out) const = 0;

  /// Writes the head-ranking score of every candidate entity e for the
  /// query <?, r, t> into `out`. For most models this is φ(e, r, t);
  /// models trained with reciprocal relations (ConvE) implement it as the
  /// inverse tail query φ(t, r_inv, e), matching their training protocol.
  virtual void ScoreAllHeads(RelationId r, EntityId t,
                             std::span<float> out) const = 0;

  /// ScoreAllTails with the head embedding replaced by `head_vec`
  /// (entity_dim floats). This is how mimic entities are evaluated.
  virtual void ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                        RelationId r,
                                        std::span<float> out) const = 0;

  /// ScoreAllHeads with the tail embedding replaced by `tail_vec`.
  virtual void ScoreAllHeadsWithTailVec(RelationId r,
                                        std::span<const float> tail_vec,
                                        std::span<float> out) const = 0;

  /// φ(t) where the embedding of entity `which` is `vec` instead of the
  /// stored row. If `which` appears on both sides, `vec` is used for both.
  virtual float ScoreWithEntityVec(const Triple& t, EntityId which,
                                   std::span<const float> vec) const = 0;

  /// ∂φ(t)/∂h — gradient of the score w.r.t. the head embedding, evaluated
  /// at the stored embeddings. entity_dim floats.
  virtual std::vector<float> ScoreGradWrtHead(const Triple& t) const = 0;

  /// ∂φ(t)/∂t (tail embedding).
  virtual std::vector<float> ScoreGradWrtTail(const Triple& t) const = 0;

  /// Post-training (the Relevance Engine primitive): returns a freshly
  /// initialized embedding row trained on `facts` — in which every mention
  /// of `entity` denotes the mimic — with all other parameters frozen.
  /// `dataset` supplies candidate pools for sampled/contrast terms.
  ///
  /// Seeding contract: implementations must draw *all* randomness
  /// (initialization, shuffling, sampled negatives, dropout masks) from
  /// `rng` and must not touch mutable shared state, so that the mimic is a
  /// pure function of (model parameters, entity, facts, rng state) and the
  /// call is safe to run concurrently with other post-trainings. The
  /// Relevance Engine seeds `rng` from (engine seed, entity, fact set)
  /// alone, which makes parallel extraction schedules bitwise-reproducible.
  ///
  /// `warm_init`, when non-empty and of entity_dim floats, seeds the mimic
  /// row from that vector instead of the architecture's random init scheme
  /// (the RNG draws the init would have consumed are still skipped — warm
  /// and cold mimics are separately, not mutually, deterministic). The
  /// Relevance Engine's warm-start mode passes the stored embedding of the
  /// entity being mimicked, giving post-training a converged starting point.
  virtual std::vector<float> PostTrainMimic(const Dataset& dataset,
                                            EntityId entity,
                                            const std::vector<Triple>& facts,
                                            Rng& rng,
                                            std::span<const float> warm_init)
      const = 0;

  /// Cold-start convenience overload (the historical 4-argument call).
  std::vector<float> PostTrainMimic(const Dataset& dataset, EntityId entity,
                                    const std::vector<Triple>& facts,
                                    Rng& rng) const {
    return PostTrainMimic(dataset, entity, facts, rng, {});
  }

  /// Closed-form sweep descriptor of ScoreAllTailsWithHeadVec (see
  /// CandidateSweep). Default: nullopt — no closed form; callers must use
  /// the exact ScoreAll* path. All five built-in models implement it.
  virtual std::optional<CandidateSweep> TailSweepWithHeadVec(
      std::span<const float> head_vec, RelationId r) const {
    (void)head_vec;
    (void)r;
    return std::nullopt;
  }

  /// Closed-form sweep descriptor of ScoreAllHeadsWithTailVec.
  virtual std::optional<CandidateSweep> HeadSweepWithTailVec(
      RelationId r, std::span<const float> tail_vec) const {
    (void)r;
    (void)tail_vec;
    return std::nullopt;
  }

  /// The entity table the CandidateSweep kernels run against (row e =
  /// entity e's embedding), or nullptr when the model has no single such
  /// table. Only valid while the model is alive.
  virtual const Matrix* EntityTable() const { return nullptr; }

  /// Per-row int8 quantization of EntityTable(), cached per model and
  /// invalidated whenever the table mutates (post-training mimic updates,
  /// baseline perturbations, LoadParameters — anything that bumps
  /// Matrix::version()). nullptr when unavailable. Thread-safe.
  virtual std::shared_ptr<const quant::QuantizedTable> QuantizedEntityTable()
      const {
    return nullptr;
  }

  /// Stored embedding row of entity `e`.
  virtual std::span<const float> EntityEmbedding(EntityId e) const = 0;

  /// Mutable access for adversarial-perturbation baselines and tests.
  virtual std::span<float> MutableEntityEmbedding(EntityId e) = 0;

  /// Serializes every learned parameter (embeddings, shared weights) in a
  /// portable binary format. Hyperparameters are not stored; the model
  /// must be constructed with matching shapes before LoadParameters.
  virtual Status SaveParameters(std::ostream& out) const = 0;

  /// Restores parameters written by SaveParameters. Fails with
  /// InvalidArgument on any shape mismatch and IoError on truncated
  /// streams; the model state is unspecified after a failed load.
  virtual Status LoadParameters(std::istream& in) = 0;

 protected:
  explicit LinkPredictionModel(TrainConfig config)
      : config_(std::move(config)) {}

  /// GuardConfig mirror of this model's robustness fields, carrying the
  /// caller's checkpointing/cancellation control into the guard.
  GuardConfig MakeGuardConfig(const TrainControl& control = {}) const {
    GuardConfig guard;
    guard.epochs = config_.epochs;
    guard.check_finite = config_.check_finite;
    guard.recover_on_divergence = config_.recover_on_divergence;
    guard.max_recoveries = config_.max_recoveries;
    guard.lr_backoff = config_.lr_backoff;
    guard.checkpointer = control.checkpointer;
    guard.cancel = control.cancel;
    return guard;
  }

  TrainConfig config_;
  TrainReport last_train_report_;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_MODEL_H_
