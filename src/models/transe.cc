#include "models/transe.h"

#include <cmath>

#include "common/logging.h"
#include "math/simd.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/negative_sampling.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

constexpr float kDistanceEpsilon = 1e-9f;

/// Per-thread scratch for the h + r composite, so the scoring paths do not
/// allocate per call (RelevanceEngine issues millions of them per
/// extraction).
std::span<float> TranslatedScratch(size_t dim) {
  thread_local std::vector<float> scratch;
  scratch.resize(dim);
  return scratch;
}

}  // namespace

TransE::TransE(size_t num_entities, size_t num_relations, TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      entity_embeddings_(num_entities, config_.dim),
      relation_embeddings_(num_relations, config_.dim) {}

float TransE::ScoreVecs(std::span<const float> h, std::span<const float> r,
                        std::span<const float> t) const {
  // Computed as ||(h + r) - t|| with the 8-lane reduction so that a single
  // Score() is bit-identical to the same entity's slot in a ScoreAll sweep.
  std::span<float> translated = TranslatedScratch(h.size());
  for (size_t i = 0; i < h.size(); ++i) {
    translated[i] = h[i] + r[i];
  }
  return -std::sqrt(simd::SquaredDistance(translated, t));
}

float TransE::Score(const Triple& t) const {
  return ScoreVecs(entity_embeddings_.Row(static_cast<size_t>(t.head)),
                   relation_embeddings_.Row(static_cast<size_t>(t.relation)),
                   entity_embeddings_.Row(static_cast<size_t>(t.tail)));
}

void TransE::ScoreAllTails(EntityId h, RelationId r,
                           std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void TransE::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                      RelationId r,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  std::span<float> translated = TranslatedScratch(entity_dim());
  for (size_t i = 0; i < translated.size(); ++i) {
    translated[i] = head_vec[i] + rel[i];
  }
  simd::SquaredDistanceRows(entity_embeddings_.Data().data(), num_entities(),
                            entity_dim(), translated.data(), out.data());
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(out[e]);
  }
}

void TransE::ScoreAllHeads(RelationId r, EntityId t,
                           std::span<float> out) const {
  ScoreAllHeadsWithTailVec(r, entity_embeddings_.Row(static_cast<size_t>(t)),
                           out);
}

void TransE::ScoreAllHeadsWithTailVec(RelationId r,
                                      std::span<const float> tail_vec,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  // φ(e, r, t) = -||e - (t - r)||.
  std::span<float> target = TranslatedScratch(entity_dim());
  for (size_t i = 0; i < target.size(); ++i) {
    target[i] = tail_vec[i] - rel[i];
  }
  simd::SquaredDistanceRows(entity_embeddings_.Data().data(), num_entities(),
                            entity_dim(), target.data(), out.data());
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(out[e]);
  }
}

std::optional<CandidateSweep> TransE::TailSweepWithHeadVec(
    std::span<const float> head_vec, RelationId r) const {
  // Same composite arithmetic as ScoreAllTailsWithHeadVec, element for
  // element, so the per-row exact re-score matches the sweep bit for bit.
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kSquaredDistance;
  sweep.query.resize(entity_dim());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  for (size_t i = 0; i < sweep.query.size(); ++i) {
    sweep.query[i] = head_vec[i] + rel[i];
  }
  return sweep;
}

std::optional<CandidateSweep> TransE::HeadSweepWithTailVec(
    RelationId r, std::span<const float> tail_vec) const {
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kSquaredDistance;
  sweep.query.resize(entity_dim());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  for (size_t i = 0; i < sweep.query.size(); ++i) {
    sweep.query[i] = tail_vec[i] - rel[i];
  }
  return sweep;
}

float TransE::ScoreWithEntityVec(const Triple& t, EntityId which,
                                 std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  return ScoreVecs(h, relation_embeddings_.Row(static_cast<size_t>(t.relation)),
                   tl);
}

std::vector<float> TransE::ScoreGradWrtHead(const Triple& t) const {
  // φ = -||h + r - t||; ∂φ/∂h = -(h + r - t)/||h + r - t||.
  std::span<const float> h =
      entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> r =
      relation_embeddings_.Row(static_cast<size_t>(t.relation));
  std::span<const float> tl =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> delta(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = h[i] + r[i] - tl[i];
    norm_sq += delta[i] * delta[i];
  }
  float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  for (float& v : delta) {
    v = -v / norm;
  }
  return delta;
}

std::vector<float> TransE::ScoreGradWrtTail(const Triple& t) const {
  // ∂φ/∂t = +(h + r - t)/||h + r - t|| = -∂φ/∂h.
  std::vector<float> grad = ScoreGradWrtHead(t);
  for (float& v : grad) {
    v = -v;
  }
  return grad;
}

namespace {

/// Fills `delta` with h + r - t and returns the distance d = ||delta||.
/// One fused pass replaces the Score + UnitResidual pair the training
/// loops used to run: the margin test consumes the returned distance, and
/// the same residual (normalized via NormalizeResidual only for triples
/// that violate the margin) drives the SGD update.
float ResidualInto(std::span<const float> h, std::span<const float> r,
                   std::span<const float> t, std::vector<float>& delta) {
  delta.resize(h.size());
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = h[i] + r[i] - t[i];
  }
  std::span<const float> d(delta);
  return std::sqrt(simd::Dot(d, d));
}

/// Turns a ResidualInto() delta into the gradient direction of the
/// distance w.r.t. its arguments: ∂d/∂h = ∂d/∂r = delta/d, ∂d/∂t =
/// -delta/d. Zeros the vector when d ~ 0 (degenerate residual).
void NormalizeResidual(std::vector<float>& delta, float norm) {
  if (norm < kDistanceEpsilon) {
    std::fill(delta.begin(), delta.end(), 0.0f);
    return;
  }
  for (float& v : delta) {
    v /= norm;
  }
}

}  // namespace

Status TransE::Train(const Dataset& dataset, Rng& rng,
                     const TrainControl& control) {
  const double init_bound = 6.0 / std::sqrt(static_cast<double>(config_.dim));
  InitMatrix(entity_embeddings_, InitScheme::kUniform, init_bound, rng);
  InitMatrix(relation_embeddings_, InitScheme::kUniform, init_bound, rng);
  for (size_t r = 0; r < relation_embeddings_.rows(); ++r) {
    ProjectToL2Ball(relation_embeddings_.Row(r), 1.0f);
  }
  last_train_report_ = TrainReport{};

  const std::vector<Triple>& train = dataset.train();
  if (train.empty()) return Status::Ok();
  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/true);
  Batcher batcher(train.size(), config_.batch_size);
  const float margin = config_.margin;

  // TransE's SGD carries no per-row optimizer state: each step writes only
  // the embedding rows of the triple in hand, so the trainer is already the
  // sparse path and TrainConfig::sparse_updates is a (documented) no-op —
  // the byte-identity suite still covers it alongside the stateful models.
  GuardedTrainHooks hooks;
  hooks.params = [&] {
    return std::vector<std::span<float>>{entity_embeddings_.Data(),
                                         relation_embeddings_.Data()};
  };
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    const float lr = config_.learning_rate * lr_scale;
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    // Hoisted out of the loops: the negatives batch and both residuals
    // reuse their capacity across all steps of the epoch.
    std::vector<Triple> negatives;
    std::vector<float> pos_dir, neg_dir;
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      for (size_t idx : batch) {
        const Triple& pos = train[idx];
        // Original TransE renormalizes entity embeddings before each step.
        ProjectToL2Ball(
            entity_embeddings_.Row(static_cast<size_t>(pos.head)), 1.0f);
        ProjectToL2Ball(
            entity_embeddings_.Row(static_cast<size_t>(pos.tail)), 1.0f);
        // Drawing the whole negatives batch up front consumes the RNG in
        // exactly the per-negative order (the update below draws nothing),
        // so results are unchanged.
        sampler.CorruptEitherSideBatch(
            pos, static_cast<size_t>(config_.negatives_per_positive), rng,
            negatives);
        for (const Triple& neg : negatives) {
          float pos_dist = ResidualInto(
              entity_embeddings_.Row(static_cast<size_t>(pos.head)),
              relation_embeddings_.Row(static_cast<size_t>(pos.relation)),
              entity_embeddings_.Row(static_cast<size_t>(pos.tail)), pos_dir);
          float neg_dist = ResidualInto(
              entity_embeddings_.Row(static_cast<size_t>(neg.head)),
              relation_embeddings_.Row(static_cast<size_t>(neg.relation)),
              entity_embeddings_.Row(static_cast<size_t>(neg.tail)), neg_dir);
          if (margin + pos_dist - neg_dist <= 0.0f) continue;
          epoch_loss += margin + pos_dist - neg_dist;
          // Loss = margin + d(pos) - d(neg); descend.
          NormalizeResidual(pos_dir, pos_dist);
          NormalizeResidual(neg_dir, neg_dist);
          // Positive triple: pull d(pos) down.
          Axpy(-lr, pos_dir,
               entity_embeddings_.Row(static_cast<size_t>(pos.head)));
          Axpy(-lr, pos_dir,
               relation_embeddings_.Row(static_cast<size_t>(pos.relation)));
          Axpy(+lr, pos_dir,
               entity_embeddings_.Row(static_cast<size_t>(pos.tail)));
          // Negative triple: push d(neg) up.
          Axpy(+lr, neg_dir,
               entity_embeddings_.Row(static_cast<size_t>(neg.head)));
          Axpy(+lr, neg_dir,
               relation_embeddings_.Row(static_cast<size_t>(neg.relation)));
          Axpy(-lr, neg_dir,
               entity_embeddings_.Row(static_cast<size_t>(neg.tail)));
        }
      }
    }
    return epoch_loss;
  };

  hooks.save_rng = [&] { return rng.SaveState(); };
  hooks.restore_rng = [&](const RngState& state) { rng.LoadState(state); };

  Result<TrainReport> report =
      RunGuardedEpochs(MakeGuardConfig(control), hooks);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> TransE::PostTrainMimic(const Dataset& dataset,
                                          EntityId entity,
                                          const std::vector<Triple>& facts,
                                          Rng& rng,
                                          std::span<const float> warm_init)
    const {
  std::vector<float> mimic(entity_dim());
  if (warm_init.size() == mimic.size()) {
    std::copy(warm_init.begin(), warm_init.end(), mimic.begin());
  } else {
    const double init_bound =
        6.0 / std::sqrt(static_cast<double>(config_.dim));
    InitRow(mimic, InitScheme::kUniform, init_bound, rng);
  }
  ProjectToL2Ball(mimic, 1.0f);
  if (facts.empty()) return mimic;

  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/false);
  const float lr =
      config_.post_training_lr > 0 ? config_.post_training_lr
                                   : config_.learning_rate;
  const float margin = config_.margin;
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<Triple> negatives;
  std::vector<float> pos_dir, neg_dir;
  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& pos = facts[idx];
      // Corrupt the side NOT held by the mimic so the mimic embedding
      // receives gradient from both the positive and the negative term.
      // The whole batch is drawn up front; the updates below consume no
      // RNG, so the draw order (and hence the result) is unchanged.
      bool mimic_is_head = (pos.head == entity);
      sampler.CorruptBatch(pos, /*corrupt_tail=*/mimic_is_head,
                           static_cast<size_t>(config_.negatives_per_positive),
                           rng, negatives);
      for (const Triple& neg : negatives) {
        auto resolve = [&](EntityId e) -> std::span<const float> {
          return e == entity
                     ? std::span<const float>(mimic)
                     : entity_embeddings_.Row(static_cast<size_t>(e));
        };
        std::span<const float> rel =
            relation_embeddings_.Row(static_cast<size_t>(pos.relation));
        float pos_dist =
            ResidualInto(resolve(pos.head), rel, resolve(pos.tail), pos_dir);
        float neg_dist =
            ResidualInto(resolve(neg.head), rel, resolve(neg.tail), neg_dir);
        if (margin + pos_dist - neg_dist <= 0.0f) continue;
        NormalizeResidual(pos_dir, pos_dist);
        NormalizeResidual(neg_dir, neg_dist);
        // Only the mimic row moves; frozen parameters get no updates.
        if (pos.head == entity) Axpy(-lr, pos_dir, std::span<float>(mimic));
        if (pos.tail == entity) Axpy(+lr, pos_dir, std::span<float>(mimic));
        if (neg.head == entity) Axpy(+lr, neg_dir, std::span<float>(mimic));
        if (neg.tail == entity) Axpy(-lr, neg_dir, std::span<float>(mimic));
      }
      ProjectToL2Ball(mimic, 1.0f);
    }
  }
  return mimic;
}

Status TransE::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  return WriteMatrix(out, relation_embeddings_);
}

Status TransE::LoadParameters(std::istream& in) {
  Matrix entities, relations;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, relations));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      relations.rows() != relation_embeddings_.rows() ||
      relations.cols() != relation_embeddings_.cols()) {
    return Status::InvalidArgument("TransE parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_embeddings_ = std::move(relations);
  return Status::Ok();
}

}  // namespace kelpie
