#include "models/transe.h"

#include <cmath>

#include "common/logging.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/negative_sampling.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {
constexpr float kDistanceEpsilon = 1e-9f;
}  // namespace

TransE::TransE(size_t num_entities, size_t num_relations, TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      entity_embeddings_(num_entities, config_.dim),
      relation_embeddings_(num_relations, config_.dim) {}

float TransE::ScoreVecs(std::span<const float> h, std::span<const float> r,
                        std::span<const float> t) const {
  float acc = 0.0f;
  for (size_t i = 0; i < h.size(); ++i) {
    float d = h[i] + r[i] - t[i];
    acc += d * d;
  }
  return -std::sqrt(acc);
}

float TransE::Score(const Triple& t) const {
  return ScoreVecs(entity_embeddings_.Row(static_cast<size_t>(t.head)),
                   relation_embeddings_.Row(static_cast<size_t>(t.relation)),
                   entity_embeddings_.Row(static_cast<size_t>(t.tail)));
}

void TransE::ScoreAllTails(EntityId h, RelationId r,
                           std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void TransE::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                      RelationId r,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  std::vector<float> translated(entity_dim());
  for (size_t i = 0; i < translated.size(); ++i) {
    translated[i] = head_vec[i] + rel[i];
  }
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(
        SquaredDistance(translated, entity_embeddings_.Row(e)));
  }
}

void TransE::ScoreAllHeads(RelationId r, EntityId t,
                           std::span<float> out) const {
  ScoreAllHeadsWithTailVec(r, entity_embeddings_.Row(static_cast<size_t>(t)),
                           out);
}

void TransE::ScoreAllHeadsWithTailVec(RelationId r,
                                      std::span<const float> tail_vec,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<const float> rel =
      relation_embeddings_.Row(static_cast<size_t>(r));
  // φ(e, r, t) = -||e - (t - r)||.
  std::vector<float> target(entity_dim());
  for (size_t i = 0; i < target.size(); ++i) {
    target[i] = tail_vec[i] - rel[i];
  }
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] =
        -std::sqrt(SquaredDistance(target, entity_embeddings_.Row(e)));
  }
}

float TransE::ScoreWithEntityVec(const Triple& t, EntityId which,
                                 std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  return ScoreVecs(h, relation_embeddings_.Row(static_cast<size_t>(t.relation)),
                   tl);
}

std::vector<float> TransE::ScoreGradWrtHead(const Triple& t) const {
  // φ = -||h + r - t||; ∂φ/∂h = -(h + r - t)/||h + r - t||.
  std::span<const float> h =
      entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> r =
      relation_embeddings_.Row(static_cast<size_t>(t.relation));
  std::span<const float> tl =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> delta(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = h[i] + r[i] - tl[i];
    norm_sq += delta[i] * delta[i];
  }
  float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  for (float& v : delta) {
    v = -v / norm;
  }
  return delta;
}

std::vector<float> TransE::ScoreGradWrtTail(const Triple& t) const {
  // ∂φ/∂t = +(h + r - t)/||h + r - t|| = -∂φ/∂h.
  std::vector<float> grad = ScoreGradWrtHead(t);
  for (float& v : grad) {
    v = -v;
  }
  return grad;
}

namespace {

/// Computes the gradient direction of the distance d = ||h + r - t|| w.r.t.
/// its argument vectors: ∂d/∂h = ∂d/∂r = delta/d, ∂d/∂t = -delta/d.
/// Returns delta/d (the unit residual), or zeros when d ~ 0.
std::vector<float> UnitResidual(std::span<const float> h,
                                std::span<const float> r,
                                std::span<const float> t) {
  std::vector<float> delta(h.size());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = h[i] + r[i] - t[i];
    norm_sq += delta[i] * delta[i];
  }
  float norm = std::sqrt(norm_sq);
  if (norm < kDistanceEpsilon) {
    std::fill(delta.begin(), delta.end(), 0.0f);
    return delta;
  }
  for (float& v : delta) {
    v /= norm;
  }
  return delta;
}

}  // namespace

Status TransE::Train(const Dataset& dataset, Rng& rng) {
  const double init_bound = 6.0 / std::sqrt(static_cast<double>(config_.dim));
  InitMatrix(entity_embeddings_, InitScheme::kUniform, init_bound, rng);
  InitMatrix(relation_embeddings_, InitScheme::kUniform, init_bound, rng);
  for (size_t r = 0; r < relation_embeddings_.rows(); ++r) {
    ProjectToL2Ball(relation_embeddings_.Row(r), 1.0f);
  }
  last_train_report_ = TrainReport{};

  const std::vector<Triple>& train = dataset.train();
  if (train.empty()) return Status::Ok();
  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/true);
  Batcher batcher(train.size(), config_.batch_size);
  const float margin = config_.margin;

  GuardedTrainHooks hooks;
  hooks.params = [&] {
    return std::vector<std::span<float>>{entity_embeddings_.Data(),
                                         relation_embeddings_.Data()};
  };
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    const float lr = config_.learning_rate * lr_scale;
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      for (size_t idx : batch) {
        const Triple& pos = train[idx];
        // Original TransE renormalizes entity embeddings before each step.
        ProjectToL2Ball(
            entity_embeddings_.Row(static_cast<size_t>(pos.head)), 1.0f);
        ProjectToL2Ball(
            entity_embeddings_.Row(static_cast<size_t>(pos.tail)), 1.0f);
        for (int n = 0; n < config_.negatives_per_positive; ++n) {
          Triple neg = sampler.CorruptEitherSide(pos, rng);
          float pos_dist = -Score(pos);
          float neg_dist = -Score(neg);
          if (margin + pos_dist - neg_dist <= 0.0f) continue;
          epoch_loss += margin + pos_dist - neg_dist;
          // Loss = margin + d(pos) - d(neg); descend.
          std::vector<float> pos_dir = UnitResidual(
              entity_embeddings_.Row(static_cast<size_t>(pos.head)),
              relation_embeddings_.Row(static_cast<size_t>(pos.relation)),
              entity_embeddings_.Row(static_cast<size_t>(pos.tail)));
          std::vector<float> neg_dir = UnitResidual(
              entity_embeddings_.Row(static_cast<size_t>(neg.head)),
              relation_embeddings_.Row(static_cast<size_t>(neg.relation)),
              entity_embeddings_.Row(static_cast<size_t>(neg.tail)));
          // Positive triple: pull d(pos) down.
          Axpy(-lr, pos_dir,
               entity_embeddings_.Row(static_cast<size_t>(pos.head)));
          Axpy(-lr, pos_dir,
               relation_embeddings_.Row(static_cast<size_t>(pos.relation)));
          Axpy(+lr, pos_dir,
               entity_embeddings_.Row(static_cast<size_t>(pos.tail)));
          // Negative triple: push d(neg) up.
          Axpy(+lr, neg_dir,
               entity_embeddings_.Row(static_cast<size_t>(neg.head)));
          Axpy(+lr, neg_dir,
               relation_embeddings_.Row(static_cast<size_t>(neg.relation)));
          Axpy(-lr, neg_dir,
               entity_embeddings_.Row(static_cast<size_t>(neg.tail)));
        }
      }
    }
    return epoch_loss;
  };

  Result<TrainReport> report = RunGuardedEpochs(MakeGuardConfig(), hooks);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> TransE::PostTrainMimic(const Dataset& dataset,
                                          EntityId entity,
                                          const std::vector<Triple>& facts,
                                          Rng& rng) const {
  const double init_bound = 6.0 / std::sqrt(static_cast<double>(config_.dim));
  std::vector<float> mimic(entity_dim());
  InitRow(mimic, InitScheme::kUniform, init_bound, rng);
  ProjectToL2Ball(mimic, 1.0f);
  if (facts.empty()) return mimic;

  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/false);
  const float lr =
      config_.post_training_lr > 0 ? config_.post_training_lr
                                   : config_.learning_rate;
  const float margin = config_.margin;
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& pos = facts[idx];
      for (int n = 0; n < config_.negatives_per_positive; ++n) {
        // Corrupt the side NOT held by the mimic so the mimic embedding
        // receives gradient from both the positive and the negative term.
        bool mimic_is_head = (pos.head == entity);
        Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/mimic_is_head, rng);

        auto resolve = [&](EntityId e) -> std::span<const float> {
          return e == entity
                     ? std::span<const float>(mimic)
                     : entity_embeddings_.Row(static_cast<size_t>(e));
        };
        std::span<const float> rel =
            relation_embeddings_.Row(static_cast<size_t>(pos.relation));
        float pos_dist = -ScoreVecs(resolve(pos.head), rel, resolve(pos.tail));
        float neg_dist = -ScoreVecs(resolve(neg.head), rel, resolve(neg.tail));
        if (margin + pos_dist - neg_dist <= 0.0f) continue;
        std::vector<float> pos_dir =
            UnitResidual(resolve(pos.head), rel, resolve(pos.tail));
        std::vector<float> neg_dir =
            UnitResidual(resolve(neg.head), rel, resolve(neg.tail));
        // Only the mimic row moves; frozen parameters get no updates.
        if (pos.head == entity) Axpy(-lr, pos_dir, std::span<float>(mimic));
        if (pos.tail == entity) Axpy(+lr, pos_dir, std::span<float>(mimic));
        if (neg.head == entity) Axpy(+lr, neg_dir, std::span<float>(mimic));
        if (neg.tail == entity) Axpy(-lr, neg_dir, std::span<float>(mimic));
      }
      ProjectToL2Ball(mimic, 1.0f);
    }
  }
  return mimic;
}

Status TransE::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  return WriteMatrix(out, relation_embeddings_);
}

Status TransE::LoadParameters(std::istream& in) {
  Matrix entities, relations;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, relations));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      relations.rows() != relation_embeddings_.rows() ||
      relations.cols() != relation_embeddings_.cols()) {
    return Status::InvalidArgument("TransE parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_embeddings_ = std::move(relations);
  return Status::Ok();
}

}  // namespace kelpie
