#ifndef KELPIE_MODELS_DISTMULT_H_
#define KELPIE_MODELS_DISTMULT_H_

#include "models/bilinear.h"

namespace kelpie {

/// DistMult (Yang et al., ICLR 2015): the simplest tensor-decomposition
/// model, φ(h, r, t) = Σ_k h_k · r_k · t_k. Inherently symmetric in h and
/// t; included as an extra multiplicative model beyond the paper's three
/// (it is the architecture Criage's derivations target most directly).
class DistMult final : public BilinearModel {
 public:
  DistMult(size_t num_entities, size_t num_relations, TrainConfig config)
      : BilinearModel(num_entities, num_relations, std::move(config)) {}

  std::string_view Name() const override { return "DistMult"; }

 protected:
  void TailQuery(std::span<const float> h, std::span<const float> r,
                 std::span<float> out) const override {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = h[i] * r[i];
    }
  }
  void HeadQuery(std::span<const float> r, std::span<const float> t,
                 std::span<float> out) const override {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = r[i] * t[i];
    }
  }
  void BackpropTailQuery(std::span<const float> h, std::span<const float> r,
                         std::span<const float> dq, std::span<float> gh,
                         std::span<float> gr) const override {
    for (size_t i = 0; i < dq.size(); ++i) {
      if (!gh.empty()) gh[i] += dq[i] * r[i];
      if (!gr.empty()) gr[i] += dq[i] * h[i];
    }
  }
  void BackpropHeadQuery(std::span<const float> r, std::span<const float> t,
                         std::span<const float> dw, std::span<float> gr,
                         std::span<float> gt) const override {
    for (size_t i = 0; i < dw.size(); ++i) {
      if (!gr.empty()) gr[i] += dw[i] * t[i];
      if (!gt.empty()) gt[i] += dw[i] * r[i];
    }
  }
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_DISTMULT_H_
