#include "models/rotate.h"

#include <cmath>

#include "common/logging.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/negative_sampling.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {
constexpr float kDistanceEpsilon = 1e-9f;
}  // namespace

RotatE::RotatE(size_t num_entities, size_t num_relations, TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      entity_embeddings_(num_entities, config_.dim),
      relation_phases_(num_relations, config_.dim / 2) {
  KELPIE_CHECK(config_.dim % 2 == 0);
}

void RotatE::Rotate(std::span<const float> h, RelationId r,
                    std::span<float> out) const {
  const size_t k = rank();
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(r));
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    out[j] = h[j] * c - h[k + j] * s;
    out[k + j] = h[j] * s + h[k + j] * c;
  }
}

void RotatE::RotateInverse(std::span<const float> t, RelationId r,
                           std::span<float> out) const {
  const size_t k = rank();
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(r));
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    out[j] = t[j] * c + t[k + j] * s;
    out[k + j] = -t[j] * s + t[k + j] * c;
  }
}

float RotatE::ScoreVecs(std::span<const float> h, RelationId r,
                        std::span<const float> t) const {
  std::vector<float> rotated(entity_dim());
  Rotate(h, r, rotated);
  return -std::sqrt(SquaredDistance(rotated, t));
}

float RotatE::Score(const Triple& t) const {
  return ScoreVecs(entity_embeddings_.Row(static_cast<size_t>(t.head)),
                   t.relation,
                   entity_embeddings_.Row(static_cast<size_t>(t.tail)));
}

void RotatE::ScoreAllTails(EntityId h, RelationId r,
                           std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void RotatE::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                      RelationId r,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::vector<float> rotated(entity_dim());
  Rotate(head_vec, r, rotated);
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(SquaredDistance(rotated, entity_embeddings_.Row(e)));
  }
}

void RotatE::ScoreAllHeads(RelationId r, EntityId t,
                           std::span<float> out) const {
  ScoreAllHeadsWithTailVec(r, entity_embeddings_.Row(static_cast<size_t>(t)),
                           out);
}

void RotatE::ScoreAllHeadsWithTailVec(RelationId r,
                                      std::span<const float> tail_vec,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  // Rotations are isometries: ||e∘r - t|| == ||e - t∘r⁻¹||.
  std::vector<float> target(entity_dim());
  RotateInverse(tail_vec, r, target);
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(SquaredDistance(target, entity_embeddings_.Row(e)));
  }
}

float RotatE::ScoreWithEntityVec(const Triple& t, EntityId which,
                                 std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  return ScoreVecs(h, t.relation, tl);
}

std::vector<float> RotatE::ScoreGradWrtHead(const Triple& t) const {
  // φ = -||d||, d = h∘r - t. ∂φ/∂h = -(rotate⁻¹ applied to the unit
  // residual): ∂φ/∂h_re[j] = -(d_re c + d_im s)/||d||,
  // ∂φ/∂h_im[j] = -(-d_re s + d_im c)/||d||.
  const size_t k = rank();
  std::vector<float> rotated(entity_dim());
  Rotate(entity_embeddings_.Row(static_cast<size_t>(t.head)), t.relation,
         rotated);
  std::span<const float> tail =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> d(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = rotated[i] - tail[i];
    norm_sq += d[i] * d[i];
  }
  const float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(t.relation));
  std::vector<float> grad(entity_dim());
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    grad[j] = -(d[j] * c + d[k + j] * s) / norm;
    grad[k + j] = -(-d[j] * s + d[k + j] * c) / norm;
  }
  return grad;
}

std::vector<float> RotatE::ScoreGradWrtTail(const Triple& t) const {
  // ∂φ/∂t = +d/||d||.
  std::vector<float> rotated(entity_dim());
  Rotate(entity_embeddings_.Row(static_cast<size_t>(t.head)), t.relation,
         rotated);
  std::span<const float> tail =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> d(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = rotated[i] - tail[i];
    norm_sq += d[i] * d[i];
  }
  const float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  for (float& v : d) {
    v /= norm;
  }
  return d;
}

namespace {

/// Gradient pieces of one margin-loss term for RotatE. Given the residual
/// direction u = (h∘r - t)/||h∘r - t||, the distance gradients are:
/// ∂d/∂t = -u; ∂d/∂h = rotate⁻¹(u); ∂d/∂θ_j = u · ∂(h∘r)/∂θ_j.
struct RotateGrads {
  std::vector<float> unit;     // u, 2k floats (zero when d ~ 0)
  std::vector<float> rotated;  // h∘r, cached
};

RotateGrads ComputeResidual(std::span<const float> rotated,
                            std::span<const float> t) {
  RotateGrads out;
  out.rotated.assign(rotated.begin(), rotated.end());
  out.unit.resize(rotated.size());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < rotated.size(); ++i) {
    out.unit[i] = rotated[i] - t[i];
    norm_sq += out.unit[i] * out.unit[i];
  }
  float norm = std::sqrt(norm_sq);
  if (norm < kDistanceEpsilon) {
    std::fill(out.unit.begin(), out.unit.end(), 0.0f);
  } else {
    for (float& v : out.unit) {
      v /= norm;
    }
  }
  return out;
}

}  // namespace

Status RotatE::Train(const Dataset& dataset, Rng& rng) {
  const size_t k = rank();
  InitMatrix(entity_embeddings_, InitScheme::kUniform, 0.5, rng);
  // Phases uniform over [-π, π].
  for (size_t r = 0; r < relation_phases_.rows(); ++r) {
    for (float& v : relation_phases_.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-M_PI, M_PI));
    }
  }
  last_train_report_ = TrainReport{};

  const std::vector<Triple>& train = dataset.train();
  if (train.empty()) return Status::Ok();
  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/true);
  Batcher batcher(train.size(), config_.batch_size);
  float lr = config_.learning_rate;
  const float margin = config_.margin;
  std::vector<float> rotated(entity_dim());

  // Applies one side (positive: sign=+1 pulls the distance down; negative:
  // sign=-1 pushes it up) of the margin loss.
  auto apply = [&](const Triple& triple, float sign) {
    const size_t h = static_cast<size_t>(triple.head);
    const size_t r = static_cast<size_t>(triple.relation);
    const size_t t = static_cast<size_t>(triple.tail);
    Rotate(entity_embeddings_.Row(h), triple.relation, rotated);
    RotateGrads g =
        ComputeResidual(rotated, entity_embeddings_.Row(t));
    std::span<float> theta = relation_phases_.Row(r);
    std::span<float> head = entity_embeddings_.Row(h);
    std::span<float> tail = entity_embeddings_.Row(t);
    for (size_t j = 0; j < k; ++j) {
      const float c = std::cos(theta[j]);
      const float s = std::sin(theta[j]);
      const float u_re = g.unit[j];
      const float u_im = g.unit[k + j];
      // ∂d/∂h (inverse rotation of u).
      const float gh_re = u_re * c + u_im * s;
      const float gh_im = -u_re * s + u_im * c;
      // ∂d/∂θ = u_re * (-(h∘r)_im) + u_im * (h∘r)_re.
      const float gtheta =
          -u_re * g.rotated[k + j] + u_im * g.rotated[j];
      head[j] -= sign * lr * gh_re;
      head[k + j] -= sign * lr * gh_im;
      tail[j] += sign * lr * u_re;
      tail[k + j] += sign * lr * u_im;
      theta[j] -= sign * lr * gtheta;
    }
  };

  GuardedTrainHooks hooks;
  hooks.params = [&] {
    return std::vector<std::span<float>>{entity_embeddings_.Data(),
                                         relation_phases_.Data()};
  };
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    lr = config_.learning_rate * lr_scale;  // `apply` captures lr by reference
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      for (size_t idx : batch) {
        const Triple& pos = train[idx];
        for (int n = 0; n < config_.negatives_per_positive; ++n) {
          Triple neg = sampler.CorruptEitherSide(pos, rng);
          float pos_dist = -Score(pos);
          float neg_dist = -Score(neg);
          if (margin + pos_dist - neg_dist <= 0.0f) continue;
          epoch_loss += margin + pos_dist - neg_dist;
          apply(pos, +1.0f);
          apply(neg, -1.0f);
        }
      }
    }
    return epoch_loss;
  };

  Result<TrainReport> report = RunGuardedEpochs(MakeGuardConfig(), hooks);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> RotatE::PostTrainMimic(const Dataset& dataset,
                                          EntityId entity,
                                          const std::vector<Triple>& facts,
                                          Rng& rng) const {
  const size_t k = rank();
  std::vector<float> mimic(entity_dim());
  InitRow(mimic, InitScheme::kUniform, 0.5, rng);
  if (facts.empty()) return mimic;

  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/false);
  const float lr = config_.post_training_lr > 0 ? config_.post_training_lr
                                                : config_.learning_rate;
  const float margin = config_.margin;
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<float> rotated(entity_dim());

  auto resolve = [&](EntityId e) -> std::span<const float> {
    return e == entity ? std::span<const float>(mimic)
                       : entity_embeddings_.Row(static_cast<size_t>(e));
  };
  // Accumulates only the mimic's gradient for one loss term.
  auto apply_mimic = [&](const Triple& triple, float sign) {
    Rotate(resolve(triple.head), triple.relation, rotated);
    RotateGrads g = ComputeResidual(rotated, resolve(triple.tail));
    std::span<const float> theta =
        relation_phases_.Row(static_cast<size_t>(triple.relation));
    for (size_t j = 0; j < k; ++j) {
      const float u_re = g.unit[j];
      const float u_im = g.unit[k + j];
      if (triple.head == entity) {
        const float c = std::cos(theta[j]);
        const float s = std::sin(theta[j]);
        mimic[j] -= sign * lr * (u_re * c + u_im * s);
        mimic[k + j] -= sign * lr * (-u_re * s + u_im * c);
      }
      if (triple.tail == entity) {
        mimic[j] += sign * lr * u_re;
        mimic[k + j] += sign * lr * u_im;
      }
    }
  };

  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& pos = facts[idx];
      for (int n = 0; n < config_.negatives_per_positive; ++n) {
        bool mimic_is_head = (pos.head == entity);
        Triple neg = sampler.Corrupt(pos, /*corrupt_tail=*/mimic_is_head, rng);
        Rotate(resolve(pos.head), pos.relation, rotated);
        float pos_dist = std::sqrt(
            SquaredDistance(rotated, resolve(pos.tail)));
        Rotate(resolve(neg.head), neg.relation, rotated);
        float neg_dist = std::sqrt(
            SquaredDistance(rotated, resolve(neg.tail)));
        if (margin + pos_dist - neg_dist <= 0.0f) continue;
        apply_mimic(pos, +1.0f);
        apply_mimic(neg, -1.0f);
      }
    }
  }
  return mimic;
}

Status RotatE::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  return WriteMatrix(out, relation_phases_);
}

Status RotatE::LoadParameters(std::istream& in) {
  Matrix entities, phases;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, phases));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      phases.rows() != relation_phases_.rows() ||
      phases.cols() != relation_phases_.cols()) {
    return Status::InvalidArgument("RotatE parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_phases_ = std::move(phases);
  return Status::Ok();
}

}  // namespace kelpie
