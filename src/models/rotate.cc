#include "models/rotate.h"

#include <cmath>

#include "common/logging.h"
#include "math/simd.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/negative_sampling.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

constexpr float kDistanceEpsilon = 1e-9f;

/// Per-thread scratch for the h∘r composite so the scoring paths do not
/// allocate per call.
std::span<float> RotatedScratch(size_t dim) {
  thread_local std::vector<float> scratch;
  scratch.resize(dim);
  return scratch;
}

}  // namespace

RotatE::RotatE(size_t num_entities, size_t num_relations, TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      entity_embeddings_(num_entities, config_.dim),
      relation_phases_(num_relations, config_.dim / 2) {
  KELPIE_CHECK(config_.dim % 2 == 0);
}

void RotatE::Rotate(std::span<const float> h, RelationId r,
                    std::span<float> out) const {
  const size_t k = rank();
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(r));
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    out[j] = h[j] * c - h[k + j] * s;
    out[k + j] = h[j] * s + h[k + j] * c;
  }
}

void RotatE::RotateInverse(std::span<const float> t, RelationId r,
                           std::span<float> out) const {
  const size_t k = rank();
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(r));
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    out[j] = t[j] * c + t[k + j] * s;
    out[k + j] = -t[j] * s + t[k + j] * c;
  }
}

float RotatE::ScoreVecs(std::span<const float> h, RelationId r,
                        std::span<const float> t) const {
  std::span<float> rotated = RotatedScratch(entity_dim());
  Rotate(h, r, rotated);
  return -std::sqrt(simd::SquaredDistance(rotated, t));
}

float RotatE::Score(const Triple& t) const {
  return ScoreVecs(entity_embeddings_.Row(static_cast<size_t>(t.head)),
                   t.relation,
                   entity_embeddings_.Row(static_cast<size_t>(t.tail)));
}

void RotatE::ScoreAllTails(EntityId h, RelationId r,
                           std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void RotatE::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                      RelationId r,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  std::span<float> rotated = RotatedScratch(entity_dim());
  Rotate(head_vec, r, rotated);
  simd::SquaredDistanceRows(entity_embeddings_.Data().data(), num_entities(),
                            entity_dim(), rotated.data(), out.data());
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(out[e]);
  }
}

void RotatE::ScoreAllHeads(RelationId r, EntityId t,
                           std::span<float> out) const {
  ScoreAllHeadsWithTailVec(r, entity_embeddings_.Row(static_cast<size_t>(t)),
                           out);
}

void RotatE::ScoreAllHeadsWithTailVec(RelationId r,
                                      std::span<const float> tail_vec,
                                      std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  // Rotations are isometries: ||e∘r - t|| == ||e - t∘r⁻¹||.
  std::span<float> target = RotatedScratch(entity_dim());
  RotateInverse(tail_vec, r, target);
  simd::SquaredDistanceRows(entity_embeddings_.Data().data(), num_entities(),
                            entity_dim(), target.data(), out.data());
  for (size_t e = 0; e < num_entities(); ++e) {
    out[e] = -std::sqrt(out[e]);
  }
}

std::optional<CandidateSweep> RotatE::TailSweepWithHeadVec(
    std::span<const float> head_vec, RelationId r) const {
  // Rotate() is the exact composite ScoreAllTailsWithHeadVec builds.
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kSquaredDistance;
  sweep.query.resize(entity_dim());
  Rotate(head_vec, r, sweep.query);
  return sweep;
}

std::optional<CandidateSweep> RotatE::HeadSweepWithTailVec(
    RelationId r, std::span<const float> tail_vec) const {
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kSquaredDistance;
  sweep.query.resize(entity_dim());
  RotateInverse(tail_vec, r, sweep.query);
  return sweep;
}

float RotatE::ScoreWithEntityVec(const Triple& t, EntityId which,
                                 std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  return ScoreVecs(h, t.relation, tl);
}

std::vector<float> RotatE::ScoreGradWrtHead(const Triple& t) const {
  // φ = -||d||, d = h∘r - t. ∂φ/∂h = -(rotate⁻¹ applied to the unit
  // residual): ∂φ/∂h_re[j] = -(d_re c + d_im s)/||d||,
  // ∂φ/∂h_im[j] = -(-d_re s + d_im c)/||d||.
  const size_t k = rank();
  std::vector<float> rotated(entity_dim());
  Rotate(entity_embeddings_.Row(static_cast<size_t>(t.head)), t.relation,
         rotated);
  std::span<const float> tail =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> d(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = rotated[i] - tail[i];
    norm_sq += d[i] * d[i];
  }
  const float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  std::span<const float> theta =
      relation_phases_.Row(static_cast<size_t>(t.relation));
  std::vector<float> grad(entity_dim());
  for (size_t j = 0; j < k; ++j) {
    const float c = std::cos(theta[j]);
    const float s = std::sin(theta[j]);
    grad[j] = -(d[j] * c + d[k + j] * s) / norm;
    grad[k + j] = -(-d[j] * s + d[k + j] * c) / norm;
  }
  return grad;
}

std::vector<float> RotatE::ScoreGradWrtTail(const Triple& t) const {
  // ∂φ/∂t = +d/||d||.
  std::vector<float> rotated(entity_dim());
  Rotate(entity_embeddings_.Row(static_cast<size_t>(t.head)), t.relation,
         rotated);
  std::span<const float> tail =
      entity_embeddings_.Row(static_cast<size_t>(t.tail));
  std::vector<float> d(entity_dim());
  float norm_sq = 0.0f;
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = rotated[i] - tail[i];
    norm_sq += d[i] * d[i];
  }
  const float norm = std::sqrt(norm_sq) + kDistanceEpsilon;
  for (float& v : d) {
    v /= norm;
  }
  return d;
}

namespace {

/// Fills `delta` with rotated - t and returns the distance d = ||delta||
/// (8-lane reduction, matching the scoring path bit for bit). The margin
/// test consumes the distance; NormalizeResidual() turns `delta` into the
/// residual direction u = delta/d only for triples that violate the
/// margin. Given u the distance gradients are: ∂d/∂t = -u; ∂d/∂h =
/// rotate⁻¹(u); ∂d/∂θ_j = u · ∂(h∘r)/∂θ_j.
float ResidualInto(std::span<const float> rotated, std::span<const float> t,
                   std::vector<float>& delta) {
  delta.resize(rotated.size());
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = rotated[i] - t[i];
  }
  std::span<const float> d(delta);
  return std::sqrt(simd::Dot(d, d));
}

/// delta -> delta/norm, or zeros when the residual is degenerate (d ~ 0).
void NormalizeResidual(std::vector<float>& delta, float norm) {
  if (norm < kDistanceEpsilon) {
    std::fill(delta.begin(), delta.end(), 0.0f);
    return;
  }
  for (float& v : delta) {
    v /= norm;
  }
}

}  // namespace

Status RotatE::Train(const Dataset& dataset, Rng& rng,
                     const TrainControl& control) {
  const size_t k = rank();
  InitMatrix(entity_embeddings_, InitScheme::kUniform, 0.5, rng);
  // Phases uniform over [-π, π].
  for (size_t r = 0; r < relation_phases_.rows(); ++r) {
    for (float& v : relation_phases_.Row(r)) {
      v = static_cast<float>(rng.UniformDouble(-M_PI, M_PI));
    }
  }
  last_train_report_ = TrainReport{};

  const std::vector<Triple>& train = dataset.train();
  if (train.empty()) return Status::Ok();
  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/true);
  Batcher batcher(train.size(), config_.batch_size);
  float lr = config_.learning_rate;
  const float margin = config_.margin;
  std::vector<float> rotated_pos(entity_dim()), rotated_neg(entity_dim());
  std::vector<float> unit_pos, unit_neg;
  std::vector<Triple> negatives;

  // Applies one side (positive: sign=+1 pulls the distance down; negative:
  // sign=-1 pushes it up) of the margin loss. `rot` is h∘r and `unit` the
  // normalized residual of `triple`, both computed against the current
  // (pre-update) parameters.
  auto apply = [&](const Triple& triple, float sign,
                   std::span<const float> rot, std::span<const float> unit) {
    const size_t h = static_cast<size_t>(triple.head);
    const size_t r = static_cast<size_t>(triple.relation);
    const size_t t = static_cast<size_t>(triple.tail);
    std::span<float> theta = relation_phases_.Row(r);
    std::span<float> head = entity_embeddings_.Row(h);
    std::span<float> tail = entity_embeddings_.Row(t);
    for (size_t j = 0; j < k; ++j) {
      const float c = std::cos(theta[j]);
      const float s = std::sin(theta[j]);
      const float u_re = unit[j];
      const float u_im = unit[k + j];
      // ∂d/∂h (inverse rotation of u).
      const float gh_re = u_re * c + u_im * s;
      const float gh_im = -u_re * s + u_im * c;
      // ∂d/∂θ = u_re * (-(h∘r)_im) + u_im * (h∘r)_re.
      const float gtheta = -u_re * rot[k + j] + u_im * rot[j];
      head[j] -= sign * lr * gh_re;
      head[k + j] -= sign * lr * gh_im;
      tail[j] += sign * lr * u_re;
      tail[k + j] += sign * lr * u_im;
      theta[j] -= sign * lr * gtheta;
    }
  };

  // Like TransE, RotatE's margin SGD holds no optimizer state beyond the
  // rows it writes: the `apply` closure above touches exactly the head,
  // tail and phase rows of one triple, so this trainer is already sparse
  // and TrainConfig::sparse_updates changes nothing (asserted byte-for-byte
  // by the equivalence suite).
  GuardedTrainHooks hooks;
  hooks.params = [&] {
    return std::vector<std::span<float>>{entity_embeddings_.Data(),
                                         relation_phases_.Data()};
  };
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    lr = config_.learning_rate * lr_scale;  // `apply` captures lr by reference
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      for (size_t idx : batch) {
        const Triple& pos = train[idx];
        // The whole negatives batch is drawn up front; per-negative
        // processing consumes no RNG, so the draw order is unchanged.
        sampler.CorruptEitherSideBatch(
            pos, static_cast<size_t>(config_.negatives_per_positive), rng,
            negatives);
        for (const Triple& neg : negatives) {
          Rotate(entity_embeddings_.Row(static_cast<size_t>(pos.head)),
                 pos.relation, rotated_pos);
          float pos_dist = ResidualInto(
              rotated_pos,
              entity_embeddings_.Row(static_cast<size_t>(pos.tail)), unit_pos);
          Rotate(entity_embeddings_.Row(static_cast<size_t>(neg.head)),
                 neg.relation, rotated_neg);
          float neg_dist = ResidualInto(
              rotated_neg,
              entity_embeddings_.Row(static_cast<size_t>(neg.tail)), unit_neg);
          if (margin + pos_dist - neg_dist <= 0.0f) continue;
          epoch_loss += margin + pos_dist - neg_dist;
          // The positive's rotation and residual are valid for its update
          // (no parameters changed since they were computed)…
          NormalizeResidual(unit_pos, pos_dist);
          apply(pos, +1.0f, rotated_pos, unit_pos);
          // …but apply(pos) may have touched rows the negative reads
          // (shared head/tail/phase rows), so the negative's rotation and
          // residual are recomputed against the updated parameters.
          Rotate(entity_embeddings_.Row(static_cast<size_t>(neg.head)),
                 neg.relation, rotated_neg);
          float neg_norm = ResidualInto(
              rotated_neg,
              entity_embeddings_.Row(static_cast<size_t>(neg.tail)), unit_neg);
          NormalizeResidual(unit_neg, neg_norm);
          apply(neg, -1.0f, rotated_neg, unit_neg);
        }
      }
    }
    return epoch_loss;
  };

  hooks.save_rng = [&] { return rng.SaveState(); };
  hooks.restore_rng = [&](const RngState& state) { rng.LoadState(state); };

  Result<TrainReport> report =
      RunGuardedEpochs(MakeGuardConfig(control), hooks);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> RotatE::PostTrainMimic(const Dataset& dataset,
                                          EntityId entity,
                                          const std::vector<Triple>& facts,
                                          Rng& rng,
                                          std::span<const float> warm_init)
    const {
  const size_t k = rank();
  std::vector<float> mimic(entity_dim());
  if (warm_init.size() == mimic.size()) {
    std::copy(warm_init.begin(), warm_init.end(), mimic.begin());
  } else {
    InitRow(mimic, InitScheme::kUniform, 0.5, rng);
  }
  if (facts.empty()) return mimic;

  NegativeSampler sampler(dataset.train_graph(), /*filtered=*/false);
  const float lr = config_.post_training_lr > 0 ? config_.post_training_lr
                                                : config_.learning_rate;
  const float margin = config_.margin;
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<float> rotated_pos(entity_dim()), rotated_neg(entity_dim());
  std::vector<float> unit_pos, unit_neg;
  std::vector<Triple> negatives;

  auto resolve = [&](EntityId e) -> std::span<const float> {
    return e == entity ? std::span<const float>(mimic)
                       : entity_embeddings_.Row(static_cast<size_t>(e));
  };
  // Accumulates only the mimic's gradient for one loss term. `unit` is the
  // triple's normalized residual against the current mimic value.
  auto apply_mimic = [&](const Triple& triple, float sign,
                         std::span<const float> unit) {
    std::span<const float> theta =
        relation_phases_.Row(static_cast<size_t>(triple.relation));
    for (size_t j = 0; j < k; ++j) {
      const float u_re = unit[j];
      const float u_im = unit[k + j];
      if (triple.head == entity) {
        const float c = std::cos(theta[j]);
        const float s = std::sin(theta[j]);
        mimic[j] -= sign * lr * (u_re * c + u_im * s);
        mimic[k + j] -= sign * lr * (-u_re * s + u_im * c);
      }
      if (triple.tail == entity) {
        mimic[j] += sign * lr * u_re;
        mimic[k + j] += sign * lr * u_im;
      }
    }
  };

  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& pos = facts[idx];
      // Batch draw; processing consumes no RNG, so order is unchanged.
      bool mimic_is_head = (pos.head == entity);
      sampler.CorruptBatch(pos, /*corrupt_tail=*/mimic_is_head,
                           static_cast<size_t>(config_.negatives_per_positive),
                           rng, negatives);
      for (const Triple& neg : negatives) {
        Rotate(resolve(pos.head), pos.relation, rotated_pos);
        float pos_dist = ResidualInto(rotated_pos, resolve(pos.tail), unit_pos);
        Rotate(resolve(neg.head), neg.relation, rotated_neg);
        float neg_dist = ResidualInto(rotated_neg, resolve(neg.tail), unit_neg);
        if (margin + pos_dist - neg_dist <= 0.0f) continue;
        // The positive's rotation/residual are still valid for its update;
        // the negative's must be recomputed because apply_mimic(pos) moves
        // the mimic row, which the negative reads on its uncorrupted side.
        NormalizeResidual(unit_pos, pos_dist);
        apply_mimic(pos, +1.0f, unit_pos);
        Rotate(resolve(neg.head), neg.relation, rotated_neg);
        float neg_norm = ResidualInto(rotated_neg, resolve(neg.tail), unit_neg);
        NormalizeResidual(unit_neg, neg_norm);
        apply_mimic(neg, -1.0f, unit_neg);
      }
    }
  }
  return mimic;
}

Status RotatE::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  return WriteMatrix(out, relation_phases_);
}

Status RotatE::LoadParameters(std::istream& in) {
  Matrix entities, phases;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, phases));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      phases.rows() != relation_phases_.rows() ||
      phases.cols() != relation_phases_.cols()) {
    return Status::InvalidArgument("RotatE parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_phases_ = std::move(phases);
  return Status::Ok();
}

}  // namespace kelpie
