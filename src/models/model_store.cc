#include "models/model_store.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/logging.h"
#include "ml/serialization.h"
#include "models/complex.h"
#include "models/conve.h"
#include "models/distmult.h"
#include "models/rotate.h"
#include "models/transe.h"

namespace kelpie {

namespace {

constexpr std::string_view kMagic = "KELPIEMD";
// v2: robustness fields in the config block + CRC32C trailer + atomic
// writes. v1 files carry no checksum and are no longer accepted.
constexpr uint64_t kVersion = 2;

Status WriteConfig(std::ostream& out, const TrainConfig& c) {
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.dim));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.epochs));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.batch_size));
  std::vector<float> floats{
      c.learning_rate,  c.regularization, c.margin,
      static_cast<float>(c.negatives_per_positive),
      c.conv_lr,        c.label_smoothing, c.input_dropout,
      c.feature_dropout, c.hidden_dropout, c.post_training_lr,
      c.lr_backoff,     c.grad_clip_norm};
  KELPIE_RETURN_IF_ERROR(WriteFloats(out, floats));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.conv_channels));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.conv_kernel));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.reshape_height));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.post_training_epochs));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.check_finite ? 1 : 0));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.recover_on_divergence ? 1 : 0));
  return WriteU64(out, static_cast<uint64_t>(c.max_recoveries));
}

Status ReadConfig(std::istream& in, TrainConfig& c) {
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.dim = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.epochs = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.batch_size = v;
  std::vector<float> floats;
  KELPIE_RETURN_IF_ERROR(ReadFloats(in, floats, 64));
  if (floats.size() != 12) {
    return Status::InvalidArgument("bad config float block");
  }
  c.learning_rate = floats[0];
  c.regularization = floats[1];
  c.margin = floats[2];
  c.negatives_per_positive = static_cast<int>(floats[3]);
  c.conv_lr = floats[4];
  c.label_smoothing = floats[5];
  c.input_dropout = floats[6];
  c.feature_dropout = floats[7];
  c.hidden_dropout = floats[8];
  c.post_training_lr = floats[9];
  c.lr_backoff = floats[10];
  c.grad_clip_norm = floats[11];
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.conv_channels = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.conv_kernel = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.reshape_height = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.post_training_epochs = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.check_finite = (v != 0);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.recover_on_divergence = (v != 0);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.max_recoveries = static_cast<int>(v);
  return Status::Ok();
}

}  // namespace

std::unique_ptr<LinkPredictionModel> CreateModelWithSizes(
    ModelKind kind, size_t num_entities, size_t num_relations,
    const TrainConfig& config) {
  switch (kind) {
    case ModelKind::kTransE:
      return std::make_unique<TransE>(num_entities, num_relations, config);
    case ModelKind::kComplEx:
      return std::make_unique<ComplEx>(num_entities, num_relations, config);
    case ModelKind::kConvE:
      return std::make_unique<ConvE>(num_entities, num_relations, config);
    case ModelKind::kDistMult:
      return std::make_unique<DistMult>(num_entities, num_relations, config);
    case ModelKind::kRotatE:
      return std::make_unique<RotatE>(num_entities, num_relations, config);
  }
  return nullptr;
}

Status SaveModel(const LinkPredictionModel& model, ModelKind kind,
                 const std::string& path,
                 std::vector<ModelFileSection>* sections) {
  std::ostringstream out;
  auto mark = [&](const char* name) {
    if (sections != nullptr) {
      sections->push_back(
          {name, static_cast<size_t>(out.tellp())});
    }
  };

  out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, kVersion));
  mark("header");
  KELPIE_RETURN_IF_ERROR(WriteString(out, ModelKindName(kind)));
  mark("kind");
  KELPIE_RETURN_IF_ERROR(WriteU64(out, model.num_entities()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, model.num_relations()));
  mark("sizes");
  KELPIE_RETURN_IF_ERROR(WriteConfig(out, model.config()));
  mark("config");
  KELPIE_RETURN_IF_ERROR(model.SaveParameters(out));
  mark("parameters");
  if (!out) {
    return Status::Internal("model serialization failed");
  }

  std::string payload = std::move(out).str();
  const uint32_t crc = Crc32c(payload);
  // Little-endian u32 trailer, independent of serialization.h framing so a
  // reader can always locate it at size-4.
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  if (sections != nullptr) {
    sections->push_back({"crc", payload.size()});
  }
  return WriteFileAtomic(path, payload);
}

Result<std::unique_ptr<LinkPredictionModel>> LoadModel(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in) {
    return Status::IoError("read failed: " + path);
  }
  const std::string contents = std::move(buf).str();

  if (contents.size() < kMagic.size() ||
      std::string_view(contents).substr(0, kMagic.size()) != kMagic) {
    return Status::InvalidArgument("not a kelpie model file: " + path);
  }
  if (contents.size() < kMagic.size() + 4) {
    return Status::DataLoss("model file truncated: " + path);
  }
  const size_t payload_size = contents.size() - 4;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(
                      static_cast<unsigned char>(contents[payload_size + i]))
                  << (8 * i);
  }
  const uint32_t actual_crc = Crc32c(contents.data(), payload_size);
  if (stored_crc != actual_crc) {
    return Status::DataLoss(
        "model file checksum mismatch (truncated, bit-flipped, or pre-CRC "
        "format): " + path);
  }

  std::istringstream payload(contents.substr(0, payload_size));
  payload.ignore(static_cast<std::streamsize>(kMagic.size()));
  uint64_t version = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(payload, version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model file version " +
                                   std::to_string(version));
  }
  std::string kind_name;
  KELPIE_RETURN_IF_ERROR(ReadString(payload, kind_name));
  ModelKind kind;
  KELPIE_ASSIGN_OR_RETURN(kind, ParseModelKind(kind_name));
  uint64_t num_entities = 0, num_relations = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(payload, num_entities));
  KELPIE_RETURN_IF_ERROR(ReadU64(payload, num_relations));
  TrainConfig config;
  KELPIE_RETURN_IF_ERROR(ReadConfig(payload, config));
  // A checksum-valid file can still describe shapes the constructors would
  // abort on; reject those as data errors instead.
  KELPIE_RETURN_IF_ERROR(ValidateConfig(kind, config));
  std::unique_ptr<LinkPredictionModel> model =
      CreateModelWithSizes(kind, num_entities, num_relations, config);
  if (model == nullptr) {
    return Status::Internal("model construction failed");
  }
  KELPIE_RETURN_IF_ERROR(model->LoadParameters(payload));
  return model;
}

uint64_t ComputeTrainFingerprint(ModelKind kind, const TrainConfig& config,
                                 const Dataset& dataset, uint64_t seed) {
  std::ostringstream out;
  Status s = WriteString(out, ModelKindName(kind));
  if (s.ok()) s = WriteU64(out, dataset.num_entities());
  if (s.ok()) s = WriteU64(out, dataset.num_relations());
  if (s.ok()) s = WriteU64(out, seed);
  if (s.ok()) s = WriteConfig(out, config);
  // In-memory serialization of a fixed-shape struct cannot fail.
  KELPIE_CHECK(s.ok());
  const uint32_t crc_setup = Crc32c(std::move(out).str());
  uint32_t crc_triples = 0;
  for (const Triple& t : dataset.train()) {
    const uint64_t key[3] = {static_cast<uint64_t>(t.head),
                             static_cast<uint64_t>(t.relation),
                             static_cast<uint64_t>(t.tail)};
    crc_triples = Crc32cExtend(crc_triples, key, sizeof(key));
  }
  return (static_cast<uint64_t>(crc_setup) << 32) | crc_triples;
}

}  // namespace kelpie
