#include "models/model_store.h"

#include <fstream>

#include "ml/serialization.h"
#include "models/complex.h"
#include "models/conve.h"
#include "models/distmult.h"
#include "models/rotate.h"
#include "models/transe.h"

namespace kelpie {

namespace {

constexpr std::string_view kMagic = "KELPIEMD";
constexpr uint64_t kVersion = 1;

Status WriteConfig(std::ostream& out, const TrainConfig& c) {
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.dim));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.epochs));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.batch_size));
  std::vector<float> floats{
      c.learning_rate,  c.regularization, c.margin,
      static_cast<float>(c.negatives_per_positive),
      c.conv_lr,        c.label_smoothing, c.input_dropout,
      c.feature_dropout, c.hidden_dropout, c.post_training_lr};
  KELPIE_RETURN_IF_ERROR(WriteFloats(out, floats));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.conv_channels));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.conv_kernel));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, c.reshape_height));
  return WriteU64(out, c.post_training_epochs);
}

Status ReadConfig(std::istream& in, TrainConfig& c) {
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.dim = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.epochs = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.batch_size = v;
  std::vector<float> floats;
  KELPIE_RETURN_IF_ERROR(ReadFloats(in, floats, 64));
  if (floats.size() != 10) {
    return Status::InvalidArgument("bad config float block");
  }
  c.learning_rate = floats[0];
  c.regularization = floats[1];
  c.margin = floats[2];
  c.negatives_per_positive = static_cast<int>(floats[3]);
  c.conv_lr = floats[4];
  c.label_smoothing = floats[5];
  c.input_dropout = floats[6];
  c.feature_dropout = floats[7];
  c.hidden_dropout = floats[8];
  c.post_training_lr = floats[9];
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.conv_channels = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.conv_kernel = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.reshape_height = v;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  c.post_training_epochs = v;
  return Status::Ok();
}

}  // namespace

std::unique_ptr<LinkPredictionModel> CreateModelWithSizes(
    ModelKind kind, size_t num_entities, size_t num_relations,
    const TrainConfig& config) {
  switch (kind) {
    case ModelKind::kTransE:
      return std::make_unique<TransE>(num_entities, num_relations, config);
    case ModelKind::kComplEx:
      return std::make_unique<ComplEx>(num_entities, num_relations, config);
    case ModelKind::kConvE:
      return std::make_unique<ConvE>(num_entities, num_relations, config);
    case ModelKind::kDistMult:
      return std::make_unique<DistMult>(num_entities, num_relations, config);
    case ModelKind::kRotatE:
      return std::make_unique<RotatE>(num_entities, num_relations, config);
  }
  return nullptr;
}

Status SaveModel(const LinkPredictionModel& model, ModelKind kind,
                 const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, kVersion));
  KELPIE_RETURN_IF_ERROR(WriteString(out, ModelKindName(kind)));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, model.num_entities()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, model.num_relations()));
  KELPIE_RETURN_IF_ERROR(WriteConfig(out, model.config()));
  KELPIE_RETURN_IF_ERROR(model.SaveParameters(out));
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Result<std::unique_ptr<LinkPredictionModel>> LoadModel(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string magic(kMagic.size(), '\0');
  in.read(magic.data(), static_cast<std::streamsize>(magic.size()));
  if (!in || magic != kMagic) {
    return Status::InvalidArgument("not a kelpie model file: " + path);
  }
  uint64_t version = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, version));
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported model file version " +
                                   std::to_string(version));
  }
  std::string kind_name;
  KELPIE_RETURN_IF_ERROR(ReadString(in, kind_name));
  ModelKind kind;
  KELPIE_ASSIGN_OR_RETURN(kind, ParseModelKind(kind_name));
  uint64_t num_entities = 0, num_relations = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, num_entities));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, num_relations));
  TrainConfig config;
  KELPIE_RETURN_IF_ERROR(ReadConfig(in, config));
  std::unique_ptr<LinkPredictionModel> model =
      CreateModelWithSizes(kind, num_entities, num_relations, config);
  if (model == nullptr) {
    return Status::Internal("model construction failed");
  }
  KELPIE_RETURN_IF_ERROR(model->LoadParameters(in));
  return model;
}

}  // namespace kelpie
