#include "models/conve.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "math/simd.h"
#include "math/vec.h"
#include "ml/batcher.h"
#include "ml/embedding_table.h"
#include "ml/optimizer.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

uint64_t PairKey(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

/// Draws an inverted-dropout mask (entries 0 or 1/(1-p)) and applies it to
/// `values` in place.
void ApplyDropout(std::span<float> values, float p, Rng& rng,
                  std::vector<float>& mask) {
  mask.resize(values.size());
  const float keep_scale = 1.0f / (1.0f - p);
  for (size_t i = 0; i < values.size(); ++i) {
    mask[i] = rng.Bernoulli(p) ? 0.0f : keep_scale;
    values[i] *= mask[i];
  }
}

/// Backward of dropout: multiplies the gradient by the stored mask.
void DropoutBackward(std::span<const float> mask, std::span<float> grad) {
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= mask[i];
  }
}

}  // namespace

ConvE::ConvE(size_t num_entities, size_t num_relations, TrainConfig config)
    : LinkPredictionModel(std::move(config)),
      num_base_relations_(num_relations),
      entity_embeddings_(num_entities, config_.dim),
      // Reciprocal-relation augmentation (the original ConvE training
      // protocol): relation r + num_relations is r's inverse, and head
      // queries <?, r, t> are answered as tail queries <t, r_inv, ?>.
      relation_embeddings_(2 * num_relations, config_.dim),
      entity_bias_(num_entities, 0.0f) {
  KELPIE_CHECK(config_.dim % config_.reshape_height == 0);
  conv_ = Conv2d(image_h(), image_w(), config_.conv_kernel,
                 config_.conv_kernel, config_.conv_channels);
  fc_ = DenseLayer(conv_.OutputSize(), config_.dim);
}

void ConvE::SharedGrads::Resize(const Conv2d& conv, const DenseLayer& fc) {
  conv_w.assign(conv.weights().size(), 0.0f);
  conv_b.assign(conv.bias().size(), 0.0f);
  fc_w.assign(fc.weights().size(), 0.0f);
  fc_b.assign(fc.bias().size(), 0.0f);
}

void ConvE::SharedGrads::Zero() {
  std::fill(conv_w.begin(), conv_w.end(), 0.0f);
  std::fill(conv_b.begin(), conv_b.end(), 0.0f);
  std::fill(fc_w.begin(), fc_w.end(), 0.0f);
  std::fill(fc_b.begin(), fc_b.end(), 0.0f);
}

void ConvE::ForwardMlp(std::span<const float> head_vec,
                       std::span<const float> rel_vec, ForwardCache& cache,
                       Rng* dropout_rng) const {
  const size_t dim = config_.dim;
  const size_t rw = image_w();
  const size_t rh = config_.reshape_height;
  cache.has_dropout = dropout_rng != nullptr;
  cache.image.resize(2 * dim);
  // Row-interleaved stacking: head row k at image row 2k, relation row k at
  // image row 2k+1, so every convolution window covers both inputs (plain
  // vertical stacking would confine head-relation interaction to the two
  // boundary rows, starving the model of multiplicative capacity at the
  // small dimensions this library uses).
  for (size_t k = 0; k < rh; ++k) {
    Copy(head_vec.subspan(k * rw, rw),
         std::span<float>(cache.image.data() + (2 * k) * rw, rw));
    Copy(rel_vec.subspan(k * rw, rw),
         std::span<float>(cache.image.data() + (2 * k + 1) * rw, rw));
  }
  if (dropout_rng != nullptr) {
    ApplyDropout(cache.image, config_.input_dropout, *dropout_rng,
                 cache.image_mask);
  }
  cache.conv_out.resize(conv_.OutputSize());
  conv_.Forward(cache.image, cache.conv_out);
  ReluInPlace(cache.conv_out);
  if (dropout_rng != nullptr) {
    ApplyDropout(cache.conv_out, config_.feature_dropout, *dropout_rng,
                 cache.conv_mask);
  }
  cache.v.resize(dim);
  fc_.Forward(cache.conv_out, cache.v);
  ReluInPlace(cache.v);
  if (dropout_rng != nullptr) {
    ApplyDropout(cache.v, config_.hidden_dropout, *dropout_rng,
                 cache.v_mask);
  }
}

void ConvE::BackwardMlp(const ForwardCache& cache, std::span<const float> dv,
                        SharedGrads* shared, std::span<float> grad_head,
                        std::span<float> grad_rel) const {
  const size_t dim = config_.dim;
  // Hidden dropout, then ReLU on v.
  std::vector<float> dv_masked(dv.begin(), dv.end());
  if (cache.has_dropout) {
    DropoutBackward(cache.v_mask, dv_masked);
  }
  ReluBackward(cache.v, dv_masked);
  // FC backward.
  std::vector<float> d_conv(conv_.OutputSize(), 0.0f);
  fc_.Backward(cache.conv_out, dv_masked,
               shared ? std::span<float>(shared->fc_w) : std::span<float>{},
               shared ? std::span<float>(shared->fc_b) : std::span<float>{},
               d_conv);
  // Feature-map dropout, then ReLU on conv activations.
  if (cache.has_dropout) {
    DropoutBackward(cache.conv_mask, d_conv);
  }
  ReluBackward(cache.conv_out, d_conv);
  // Conv backward.
  const bool need_input_grad = !grad_head.empty() || !grad_rel.empty();
  std::vector<float> d_image;
  if (need_input_grad) {
    d_image.assign(2 * dim, 0.0f);
  }
  conv_.Backward(
      cache.image, d_conv,
      shared ? std::span<float>(shared->conv_w) : std::span<float>{},
      shared ? std::span<float>(shared->conv_b) : std::span<float>{},
      need_input_grad ? std::span<float>(d_image) : std::span<float>{});
  if (cache.has_dropout && need_input_grad) {
    DropoutBackward(cache.image_mask, d_image);
  }
  const size_t rw = image_w();
  const size_t rh = config_.reshape_height;
  if (!grad_head.empty()) {
    for (size_t k = 0; k < rh; ++k) {
      for (size_t i = 0; i < rw; ++i) {
        grad_head[k * rw + i] += d_image[(2 * k) * rw + i];
      }
    }
  }
  if (!grad_rel.empty()) {
    for (size_t k = 0; k < rh; ++k) {
      for (size_t i = 0; i < rw; ++i) {
        grad_rel[k * rw + i] += d_image[(2 * k + 1) * rw + i];
      }
    }
  }
}

float ConvE::Score(const Triple& t) const {
  // thread_local: the const scoring paths run millions of forwards per
  // extraction; reusing the cache keeps them allocation-free. ForwardMlp
  // overwrites every field it reads, so stale contents are harmless.
  thread_local ForwardCache cache;
  ForwardMlp(entity_embeddings_.Row(static_cast<size_t>(t.head)),
             relation_embeddings_.Row(static_cast<size_t>(t.relation)),
             cache);
  return Dot(cache.v, entity_embeddings_.Row(static_cast<size_t>(t.tail))) +
         entity_bias_[static_cast<size_t>(t.tail)];
}

void ConvE::ScoreAllTails(EntityId h, RelationId r,
                          std::span<float> out) const {
  ScoreAllTailsWithHeadVec(entity_embeddings_.Row(static_cast<size_t>(h)), r,
                           out);
}

void ConvE::ScoreAllTailsWithHeadVec(std::span<const float> head_vec,
                                     RelationId r,
                                     std::span<float> out) const {
  KELPIE_DCHECK(out.size() == num_entities());
  thread_local ForwardCache cache;
  ForwardMlp(head_vec, relation_embeddings_.Row(static_cast<size_t>(r)),
             cache);
  simd::GemvRowMajor(entity_embeddings_.Data().data(), num_entities(),
                     entity_dim(), cache.v.data(), out.data());
  // out[e] += 1.0f * b_e adds the bias exactly as `Dot(...) + b_e` would.
  simd::Axpy(1.0f, entity_bias_, out);
}

void ConvE::ScoreAllHeads(RelationId r, EntityId t,
                          std::span<float> out) const {
  ScoreAllHeadsWithTailVec(r, entity_embeddings_.Row(static_cast<size_t>(t)),
                           out);
}

void ConvE::ScoreAllHeadsWithTailVec(RelationId r,
                                     std::span<const float> tail_vec,
                                     std::span<float> out) const {
  // Head queries use the reciprocal relation: the candidate heads are the
  // "tails" of <t, r_inv, ?>, exactly as in training. This is also what
  // makes head ranking as cheap as tail ranking (one convolution).
  ScoreAllTailsWithHeadVec(tail_vec, ReciprocalOf(r), out);
}

std::optional<CandidateSweep> ConvE::TailSweepWithHeadVec(
    std::span<const float> head_vec, RelationId r) const {
  thread_local ForwardCache cache;
  ForwardMlp(head_vec, relation_embeddings_.Row(static_cast<size_t>(r)),
             cache);
  CandidateSweep sweep;
  sweep.kernel = CandidateSweep::Kernel::kDot;
  sweep.query.assign(cache.v.begin(), cache.v.end());
  sweep.bias = std::span<const float>(entity_bias_);
  return sweep;
}

std::optional<CandidateSweep> ConvE::HeadSweepWithTailVec(
    RelationId r, std::span<const float> tail_vec) const {
  // Same reciprocal-relation trick as ScoreAllHeadsWithTailVec.
  return TailSweepWithHeadVec(tail_vec, ReciprocalOf(r));
}

float ConvE::ScoreWithEntityVec(const Triple& t, EntityId which,
                                std::span<const float> vec) const {
  std::span<const float> h =
      (t.head == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.head));
  std::span<const float> tl =
      (t.tail == which) ? vec
                        : entity_embeddings_.Row(static_cast<size_t>(t.tail));
  thread_local ForwardCache cache;
  ForwardMlp(h, relation_embeddings_.Row(static_cast<size_t>(t.relation)),
             cache);
  float bias =
      (t.tail == which) ? 0.0f : entity_bias_[static_cast<size_t>(t.tail)];
  return Dot(cache.v, tl) + bias;
}

std::vector<float> ConvE::ScoreGradWrtHead(const Triple& t) const {
  thread_local ForwardCache cache;
  ForwardMlp(entity_embeddings_.Row(static_cast<size_t>(t.head)),
             relation_embeddings_.Row(static_cast<size_t>(t.relation)),
             cache);
  // dφ/dv = t embedding; backprop to the head half of the input image.
  std::vector<float> grad_head(config_.dim, 0.0f);
  BackwardMlp(cache, entity_embeddings_.Row(static_cast<size_t>(t.tail)),
              nullptr, grad_head, {});
  return grad_head;
}

std::vector<float> ConvE::ScoreGradWrtTail(const Triple& t) const {
  thread_local ForwardCache cache;
  ForwardMlp(entity_embeddings_.Row(static_cast<size_t>(t.head)),
             relation_embeddings_.Row(static_cast<size_t>(t.relation)),
             cache);
  return cache.v;  // φ is linear in the tail embedding.
}

Status ConvE::Train(const Dataset& dataset, Rng& rng,
                    const TrainControl& control) {
  InitMatrix(entity_embeddings_, InitScheme::kNormal, 0.1, rng);
  InitMatrix(relation_embeddings_, InitScheme::kNormal, 0.1, rng);
  std::fill(entity_bias_.begin(), entity_bias_.end(), 0.0f);
  conv_.Init(rng);
  fc_.Init(rng);
  last_train_report_ = TrainReport{};

  if (dataset.train().empty()) return Status::Ok();
  const size_t n_ent = num_entities();
  const size_t dim = config_.dim;

  // Reciprocal augmentation: every fact <h, r, t> also trains the inverse
  // sample <t, r_inv, h>.
  std::vector<Triple> train;
  train.reserve(2 * dataset.train().size());
  for (const Triple& t : dataset.train()) {
    train.push_back(t);
    train.emplace_back(t.tail, ReciprocalOf(t.relation), t.head);
  }

  // Train-only label sets for 1-N scoring (the all-splits filter map of the
  // Dataset would leak validation/test answers into training).
  std::unordered_map<uint64_t, std::vector<EntityId>> train_tails;
  for (const Triple& t : train) {
    train_tails[PairKey(t.head, t.relation)].push_back(t.tail);
  }

  DenseAdam conv_w_opt(conv_.weights().rows(), conv_.weights().cols(),
                       config_.conv_lr);
  DenseAdam conv_b_opt(1, conv_.bias().size(), config_.conv_lr);
  DenseAdam fc_w_opt(fc_.weights().rows(), fc_.weights().cols(),
                     config_.conv_lr);
  DenseAdam fc_b_opt(1, fc_.bias().size(), config_.conv_lr);
  // Embedding tables and the entity bias route through the sparse-capable
  // row optimizer; the shared conv/FC layers are genuinely dense and keep
  // DenseAdam regardless of TrainConfig::sparse_updates.
  EmbeddingAdagrad entity_opt(config_.sparse_updates, n_ent, dim,
                              config_.learning_rate);
  EmbeddingAdagrad relation_opt(config_.sparse_updates,
                                relation_embeddings_.rows(), dim,
                                config_.learning_rate);
  EmbeddingAdagrad bias_opt(config_.sparse_updates, 1, n_ent,
                            config_.learning_rate);

  SharedGrads shared;
  shared.Resize(conv_, fc_);
  Batcher batcher(train.size(), config_.batch_size);

  ForwardCache cache;
  std::vector<float> scores(n_ent);
  std::vector<float> dv(dim), gh(dim), gr(dim), ge(dim);
  std::vector<float> bias_grad(n_ent, 0.0f);
  const float smooth_pos =
      1.0f - config_.label_smoothing +
      config_.label_smoothing / static_cast<float>(n_ent);
  const float smooth_neg = config_.label_smoothing / static_cast<float>(n_ent);

  const float clip = config_.grad_clip_norm;
  // Clip activations are tallied in a local (the clip sits inside the
  // innermost gradient loop) and flushed to the registry once per run.
  uint64_t clip_activations = 0;
  auto maybe_clip = [clip, &clip_activations](std::span<float> g) {
    if (clip > 0.0f && ProjectToL2Ball(g, clip)) ++clip_activations;
  };

  GuardedTrainHooks hooks;
  hooks.params = [&] {
    // Dense mode keeps the historical 18-span layout so pre-sparse
    // checkpoints stay resumable; in sparse mode the three Adagrad
    // accumulators move into the save_sparse/restore_sparse blob and the
    // Adam moments (dense by nature) stay here.
    std::vector<std::span<float>> spans{
        entity_embeddings_.Data(),   relation_embeddings_.Data(),
        std::span<float>(entity_bias_), conv_.weights().Data(),
        conv_.bias(),                fc_.weights().Data(),
        fc_.bias()};
    if (!config_.sparse_updates) {
      spans.push_back(entity_opt.DenseAccumData());
      spans.push_back(relation_opt.DenseAccumData());
      spans.push_back(bias_opt.DenseAccumData());
    }
    for (std::span<float> s :
         {conv_w_opt.MomentMData(), conv_w_opt.MomentVData(),
          conv_b_opt.MomentMData(), conv_b_opt.MomentVData(),
          fc_w_opt.MomentMData(), fc_w_opt.MomentVData(),
          fc_b_opt.MomentMData(), fc_b_opt.MomentVData()}) {
      spans.push_back(s);
    }
    return spans;
  };
  if (config_.sparse_updates) {
    hooks.save_sparse = [&] {
      return ComposeSparseBlobs({entity_opt.SaveSparseState(),
                                 relation_opt.SaveSparseState(),
                                 bias_opt.SaveSparseState()});
    };
    hooks.restore_sparse = [&](const std::string& blob) {
      std::vector<std::string> parts;
      if (!SplitSparseBlobs(blob, 3, parts)) return false;
      EmbeddingAdagrad probe_e = entity_opt;
      EmbeddingAdagrad probe_r = relation_opt;
      EmbeddingAdagrad probe_b = bias_opt;
      if (!probe_e.RestoreSparseState(parts[0]) ||
          !probe_r.RestoreSparseState(parts[1]) ||
          !probe_b.RestoreSparseState(parts[2])) {
        return false;
      }
      entity_opt = std::move(probe_e);
      relation_opt = std::move(probe_r);
      bias_opt = std::move(probe_b);
      return true;
    };
    hooks.sparse_finite = [&] {
      return entity_opt.SparseFinite() && relation_opt.SparseFinite() &&
             bias_opt.SparseFinite();
    };
  }
  hooks.save_counters = [&] {
    return std::vector<uint64_t>{
        static_cast<uint64_t>(conv_w_opt.step_count()),
        static_cast<uint64_t>(conv_b_opt.step_count()),
        static_cast<uint64_t>(fc_w_opt.step_count()),
        static_cast<uint64_t>(fc_b_opt.step_count())};
  };
  hooks.restore_counters = [&](const std::vector<uint64_t>& counters) {
    conv_w_opt.set_step_count(static_cast<int64_t>(counters[0]));
    conv_b_opt.set_step_count(static_cast<int64_t>(counters[1]));
    fc_w_opt.set_step_count(static_cast<int64_t>(counters[2]));
    fc_b_opt.set_step_count(static_cast<int64_t>(counters[3]));
  };
  hooks.run_epoch = [&](size_t /*epoch*/, float lr_scale) -> double {
    entity_opt.set_lr_scale(lr_scale);
    relation_opt.set_lr_scale(lr_scale);
    bias_opt.set_lr_scale(lr_scale);
    conv_w_opt.set_lr_scale(lr_scale);
    conv_b_opt.set_lr_scale(lr_scale);
    fc_w_opt.set_lr_scale(lr_scale);
    fc_b_opt.set_lr_scale(lr_scale);
    double epoch_loss = 0.0;
    batcher.Reshuffle(rng);
    for (std::span<const size_t> batch = batcher.NextBatch(); !batch.empty();
         batch = batcher.NextBatch()) {
      shared.Zero();
      for (size_t idx : batch) {
        const Triple& triple = train[idx];
        const size_t h = static_cast<size_t>(triple.head);
        const size_t r = static_cast<size_t>(triple.relation);

        ForwardMlp(entity_embeddings_.Row(h), relation_embeddings_.Row(r),
                   cache, &rng);
        simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                           cache.v.data(), scores.data());
        simd::Axpy(1.0f, entity_bias_, scores);
        // 1-N BCE with label smoothing; labels from train-only tails.
        std::vector<char> is_positive(n_ent, 0);
        auto it = train_tails.find(PairKey(triple.head, triple.relation));
        KELPIE_DCHECK(it != train_tails.end());
        for (EntityId t : it->second) {
          is_positive[static_cast<size_t>(t)] = 1;
        }
        Fill(std::span<float>(dv), 0.0f);
        std::fill(bias_grad.begin(), bias_grad.end(), 0.0f);
        const float inv_n = 1.0f / static_cast<float>(n_ent);
        epoch_loss += -std::log(std::max<double>(
            Sigmoid(scores[static_cast<size_t>(triple.tail)]), 1e-30));
        for (size_t e = 0; e < n_ent; ++e) {
          float label = is_positive[e] ? smooth_pos : smooth_neg;
          float dphi = (Sigmoid(scores[e]) - label) * inv_n;
          if (std::fabs(dphi) < 1e-9f) continue;
          // dL/dt_e = dphi * v, applied immediately.
          for (size_t i = 0; i < dim; ++i) {
            ge[i] = dphi * cache.v[i];
          }
          maybe_clip(ge);
          entity_opt.Step(entity_embeddings_, e, ge);
          bias_grad[e] = dphi;
          Axpy(dphi, entity_embeddings_.Row(e), std::span<float>(dv));
        }
        bias_opt.StepSpan(entity_bias_, 0, bias_grad);

        Fill(std::span<float>(gh), 0.0f);
        Fill(std::span<float>(gr), 0.0f);
        BackwardMlp(cache, dv, &shared, gh, gr);
        maybe_clip(gh);
        maybe_clip(gr);
        entity_opt.Step(entity_embeddings_, h, gh);
        relation_opt.Step(relation_embeddings_, r, gr);
      }
      // Shared weights step once per batch.
      conv_w_opt.Step(conv_.weights(), shared.conv_w);
      conv_b_opt.StepSpan(conv_.bias(), shared.conv_b);
      fc_w_opt.Step(fc_.weights(), shared.fc_w);
      fc_b_opt.StepSpan(fc_.bias(), shared.fc_b);
    }
    return epoch_loss;
  };

  hooks.save_rng = [&] { return rng.SaveState(); };
  hooks.restore_rng = [&](const RngState& state) { rng.LoadState(state); };

  Result<TrainReport> report =
      RunGuardedEpochs(MakeGuardConfig(control), hooks);
  metrics::Registry::Global()
      .GetCounter("kelpie_train_grad_clip_total", {},
                  metrics::Determinism::kDeterministic,
                  "Gradient clip activations (L2 projection rescales).")
      .Increment(clip_activations);
  if (!report.ok()) return report.status();
  last_train_report_ = std::move(report.value());
  return Status::Ok();
}

std::vector<float> ConvE::PostTrainMimic(const Dataset& dataset,
                                         EntityId entity,
                                         const std::vector<Triple>& facts,
                                         Rng& rng,
                                         std::span<const float> warm_init)
    const {
  (void)dataset;
  const size_t n_ent = num_entities();
  const size_t dim = config_.dim;
  std::vector<float> mimic(dim);
  if (warm_init.size() == mimic.size()) {
    std::copy(warm_init.begin(), warm_init.end(), mimic.begin());
  } else {
    InitRow(mimic, InitScheme::kNormal, 0.1, rng);
  }
  if (facts.empty()) return mimic;

  const float lr = config_.post_training_lr > 0 ? config_.post_training_lr
                                                : config_.learning_rate;
  // One-row optimizer for the mimic; under sparse_updates its accumulator
  // materializes on the first gradient (same bytes either way).
  EmbeddingAdagrad mimic_opt(config_.sparse_updates, 1, dim, lr);

  // Every fact becomes a mimic-as-head sample, using the reciprocal
  // relation when the mimic is the fact's tail — mirroring training.
  std::vector<Triple> samples;
  samples.reserve(facts.size());
  for (const Triple& f : facts) {
    if (f.head == entity) {
      samples.push_back(f);
    } else {
      samples.emplace_back(entity, ReciprocalOf(f.relation), f.head);
    }
  }
  std::unordered_map<uint64_t, std::vector<EntityId>> mimic_tails;
  for (const Triple& s : samples) {
    mimic_tails[PairKey(entity, s.relation)].push_back(s.tail);
  }

  ForwardCache cache;
  std::vector<float> scores(n_ent);
  std::vector<float> dv(dim), gm(dim);
  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const float smooth_pos =
      1.0f - config_.label_smoothing +
      config_.label_smoothing / static_cast<float>(n_ent);
  const float smooth_neg = config_.label_smoothing / static_cast<float>(n_ent);

  for (size_t epoch = 0; epoch < config_.post_training_epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const Triple& sample = samples[idx];
      Fill(std::span<float>(gm), 0.0f);
      // Mimic as head of the (possibly reciprocal) query: full 1-N BCE;
      // the gradient reaches the mimic through the convolution input while
      // every other parameter stays frozen.
      ForwardMlp(mimic,
                 relation_embeddings_.Row(static_cast<size_t>(sample.relation)),
                 cache, &rng);
      simd::GemvRowMajor(entity_embeddings_.Data().data(), n_ent, dim,
                         cache.v.data(), scores.data());
      simd::Axpy(1.0f, entity_bias_, scores);
      std::vector<char> is_positive(n_ent, 0);
      auto it = mimic_tails.find(PairKey(entity, sample.relation));
      if (it != mimic_tails.end()) {
        for (EntityId t : it->second) {
          is_positive[static_cast<size_t>(t)] = 1;
        }
      }
      Fill(std::span<float>(dv), 0.0f);
      const float inv_n = 1.0f / static_cast<float>(n_ent);
      for (size_t e = 0; e < n_ent; ++e) {
        float label = is_positive[e] ? smooth_pos : smooth_neg;
        float dphi = (Sigmoid(scores[e]) - label) * inv_n;
        Axpy(dphi, entity_embeddings_.Row(e), std::span<float>(dv));
      }
      BackwardMlp(cache, dv, nullptr, gm, {});
      mimic_opt.StepSpan(mimic, 0, gm);
    }
  }
  return mimic;
}

Status ConvE::SaveParameters(std::ostream& out) const {
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, entity_embeddings_));
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, relation_embeddings_));
  KELPIE_RETURN_IF_ERROR(WriteFloats(out, entity_bias_));
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, conv_.weights()));
  KELPIE_RETURN_IF_ERROR(WriteFloats(out, conv_.bias()));
  KELPIE_RETURN_IF_ERROR(WriteMatrix(out, fc_.weights()));
  return WriteFloats(out, fc_.bias());
}

Status ConvE::LoadParameters(std::istream& in) {
  Matrix entities, relations, conv_w, fc_w;
  std::vector<float> bias, conv_b, fc_b;
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, entities));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, relations));
  KELPIE_RETURN_IF_ERROR(ReadFloats(in, bias));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, conv_w));
  KELPIE_RETURN_IF_ERROR(ReadFloats(in, conv_b));
  KELPIE_RETURN_IF_ERROR(ReadMatrix(in, fc_w));
  KELPIE_RETURN_IF_ERROR(ReadFloats(in, fc_b));
  if (entities.rows() != entity_embeddings_.rows() ||
      entities.cols() != entity_embeddings_.cols() ||
      relations.rows() != relation_embeddings_.rows() ||
      relations.cols() != relation_embeddings_.cols() ||
      bias.size() != entity_bias_.size() ||
      conv_w.rows() != conv_.weights().rows() ||
      conv_w.cols() != conv_.weights().cols() ||
      conv_b.size() != conv_.bias().size() ||
      fc_w.rows() != fc_.weights().rows() ||
      fc_w.cols() != fc_.weights().cols() ||
      fc_b.size() != fc_.bias().size()) {
    return Status::InvalidArgument("ConvE parameter shape mismatch");
  }
  entity_embeddings_ = std::move(entities);
  relation_embeddings_ = std::move(relations);
  entity_bias_ = std::move(bias);
  conv_.weights() = std::move(conv_w);
  conv_.bias() = std::move(conv_b);
  fc_.weights() = std::move(fc_w);
  fc_.bias() = std::move(fc_b);
  return Status::Ok();
}

}  // namespace kelpie
