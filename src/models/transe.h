#ifndef KELPIE_MODELS_TRANSE_H_
#define KELPIE_MODELS_TRANSE_H_

#include "math/matrix.h"
#include "math/quant.h"
#include "models/model.h"

namespace kelpie {

/// TransE (Bordes et al., NeurIPS 2013): the pioneering geometric model.
/// Relations are translations in the embedding space; the score is the
/// negated L2 distance  φ(h, r, t) = -||h + r - t||₂  (higher = better).
/// Trained with pairwise ranking loss over uniformly corrupted negatives,
/// plain SGD, and the original paper's unit-ball normalization of entity
/// embeddings.
class TransE final : public LinkPredictionModel {
 public:
  TransE(size_t num_entities, size_t num_relations, TrainConfig config);

  std::string_view Name() const override { return "TransE"; }
  size_t num_entities() const override { return entity_embeddings_.rows(); }
  size_t num_relations() const override {
    return relation_embeddings_.rows();
  }
  size_t entity_dim() const override { return entity_embeddings_.cols(); }

  Status Train(const Dataset& dataset, Rng& rng,
               const TrainControl& control = {}) override;

  float Score(const Triple& t) const override;
  void ScoreAllTails(EntityId h, RelationId r,
                     std::span<float> out) const override;
  void ScoreAllHeads(RelationId r, EntityId t,
                     std::span<float> out) const override;
  void ScoreAllTailsWithHeadVec(std::span<const float> head_vec, RelationId r,
                                std::span<float> out) const override;
  void ScoreAllHeadsWithTailVec(RelationId r,
                                std::span<const float> tail_vec,
                                std::span<float> out) const override;
  float ScoreWithEntityVec(const Triple& t, EntityId which,
                           std::span<const float> vec) const override;
  std::vector<float> ScoreGradWrtHead(const Triple& t) const override;
  std::vector<float> ScoreGradWrtTail(const Triple& t) const override;
  using LinkPredictionModel::PostTrainMimic;
  std::vector<float> PostTrainMimic(const Dataset& dataset, EntityId entity,
                                    const std::vector<Triple>& facts,
                                    Rng& rng,
                                    std::span<const float> warm_init)
      const override;
  Status SaveParameters(std::ostream& out) const override;
  Status LoadParameters(std::istream& in) override;

  std::span<const float> EntityEmbedding(EntityId e) const override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }
  std::span<float> MutableEntityEmbedding(EntityId e) override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }

  std::optional<CandidateSweep> TailSweepWithHeadVec(
      std::span<const float> head_vec, RelationId r) const override;
  std::optional<CandidateSweep> HeadSweepWithTailVec(
      RelationId r, std::span<const float> tail_vec) const override;
  const Matrix* EntityTable() const override { return &entity_embeddings_; }
  std::shared_ptr<const quant::QuantizedTable> QuantizedEntityTable()
      const override {
    return quant_cache_.Get(entity_embeddings_);
  }

 private:
  float ScoreVecs(std::span<const float> h, std::span<const float> r,
                  std::span<const float> t) const;

  Matrix entity_embeddings_;
  Matrix relation_embeddings_;
  quant::TableCache quant_cache_;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_TRANSE_H_
