#ifndef KELPIE_MODELS_ROTATE_H_
#define KELPIE_MODELS_ROTATE_H_

#include "math/matrix.h"
#include "math/quant.h"
#include "models/model.h"

namespace kelpie {

/// RotatE (Sun et al., ICLR 2019): entities live in ℂ^k and each relation
/// is a rotation — a vector of phases θ with unit-modulus elements e^{iθ}:
///
///   φ(h, r, t) = -|| h ∘ e^{iθ_r} - t ||₂
///
/// Unlike TransE, rotations can model symmetric (θ = π), inverse
/// (θ' = -θ) and compositional (θ'' = θ + θ') relations, which is why it
/// is included as an extension beyond the paper's three models: it gives
/// the framework a geometric model that does not collapse on WN18RR.
/// Trained with pairwise ranking loss over uniformly corrupted negatives
/// and plain SGD (the original's self-adversarial weighting is omitted —
/// a documented simplification; see DESIGN.md §3).
///
/// Storage: entity rows are [real half | imaginary half] (entity_dim() ==
/// 2k, TrainConfig::dim must be even); relation rows store the k phases.
class RotatE final : public LinkPredictionModel {
 public:
  RotatE(size_t num_entities, size_t num_relations, TrainConfig config);

  std::string_view Name() const override { return "RotatE"; }
  size_t num_entities() const override { return entity_embeddings_.rows(); }
  size_t num_relations() const override {
    return relation_phases_.rows();
  }
  size_t entity_dim() const override { return entity_embeddings_.cols(); }

  /// Complex rank k (= dim / 2).
  size_t rank() const { return entity_dim() / 2; }

  Status Train(const Dataset& dataset, Rng& rng,
               const TrainControl& control = {}) override;

  float Score(const Triple& t) const override;
  void ScoreAllTails(EntityId h, RelationId r,
                     std::span<float> out) const override;
  void ScoreAllHeads(RelationId r, EntityId t,
                     std::span<float> out) const override;
  void ScoreAllTailsWithHeadVec(std::span<const float> head_vec, RelationId r,
                                std::span<float> out) const override;
  void ScoreAllHeadsWithTailVec(RelationId r,
                                std::span<const float> tail_vec,
                                std::span<float> out) const override;
  float ScoreWithEntityVec(const Triple& t, EntityId which,
                           std::span<const float> vec) const override;
  std::vector<float> ScoreGradWrtHead(const Triple& t) const override;
  std::vector<float> ScoreGradWrtTail(const Triple& t) const override;
  using LinkPredictionModel::PostTrainMimic;
  std::vector<float> PostTrainMimic(const Dataset& dataset, EntityId entity,
                                    const std::vector<Triple>& facts,
                                    Rng& rng,
                                    std::span<const float> warm_init)
      const override;
  Status SaveParameters(std::ostream& out) const override;
  Status LoadParameters(std::istream& in) override;

  std::span<const float> EntityEmbedding(EntityId e) const override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }
  std::span<float> MutableEntityEmbedding(EntityId e) override {
    return entity_embeddings_.Row(static_cast<size_t>(e));
  }

  std::optional<CandidateSweep> TailSweepWithHeadVec(
      std::span<const float> head_vec, RelationId r) const override;
  std::optional<CandidateSweep> HeadSweepWithTailVec(
      RelationId r, std::span<const float> tail_vec) const override;
  const Matrix* EntityTable() const override { return &entity_embeddings_; }
  std::shared_ptr<const quant::QuantizedTable> QuantizedEntityTable()
      const override {
    return quant_cache_.Get(entity_embeddings_);
  }

 private:
  /// out = h rotated by relation r's phases (2k floats).
  void Rotate(std::span<const float> h, RelationId r,
              std::span<float> out) const;
  /// out = t rotated by the *inverse* of r (used for head queries: the
  /// rotation is an isometry, so ||e∘r - t|| == ||e - t∘r⁻¹||).
  void RotateInverse(std::span<const float> t, RelationId r,
                     std::span<float> out) const;

  float ScoreVecs(std::span<const float> h, RelationId r,
                  std::span<const float> t) const;

  Matrix entity_embeddings_;  // num_entities x 2k
  Matrix relation_phases_;    // num_relations x k
  quant::TableCache quant_cache_;
};

}  // namespace kelpie

#endif  // KELPIE_MODELS_ROTATE_H_
