#include "datagen/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "math/rng.h"

namespace kelpie {

namespace {

/// Contiguous id range of one entity type.
struct TypeRange {
  EntityId begin = 0;
  EntityId end = 0;  // exclusive
  size_t size() const { return static_cast<size_t>(end - begin); }
};

/// A fact plus its provenance: derived facts are eligible for valid/test.
struct TaggedFact {
  Triple triple;
  bool derived = false;
};

/// Working state of one generation run.
struct Builder {
  const GeneratorSpec& spec;
  Rng rng;
  Dictionary entities;
  Dictionary relations;
  std::unordered_map<std::string, TypeRange> type_ranges;
  std::unordered_map<std::string, RelationId> relation_ids;
  std::unordered_map<std::string, const RelationSpec*> relation_specs;
  // Per-relation popularity permutation of the range type, for Zipf tails.
  std::unordered_map<std::string, std::vector<EntityId>> popularity;
  std::vector<TaggedFact> facts;
  std::unordered_set<uint64_t> seen;

  explicit Builder(const GeneratorSpec& s) : spec(s), rng(s.seed) {}

  bool AddFact(const Triple& t, bool derived) {
    if (t.head == t.tail) return false;
    if (!seen.insert(t.Key()).second) return false;
    facts.push_back({t, derived});
    return true;
  }
};

Status BuildTypes(Builder& b) {
  for (const TypeSpec& type : b.spec.types) {
    if (type.count == 0) {
      return Status::InvalidArgument("type with zero entities: " + type.name);
    }
    if (b.type_ranges.count(type.name)) {
      return Status::InvalidArgument("duplicate type: " + type.name);
    }
    TypeRange range;
    range.begin = static_cast<EntityId>(b.entities.size());
    for (size_t i = 0; i < type.count; ++i) {
      b.entities.GetOrAdd(type.name + "_" + std::to_string(i));
    }
    range.end = static_cast<EntityId>(b.entities.size());
    b.type_ranges[type.name] = range;
  }
  return Status::Ok();
}

Result<TypeRange> FindType(const Builder& b, const std::string& name) {
  auto it = b.type_ranges.find(name);
  if (it == b.type_ranges.end()) {
    return Status::InvalidArgument("unknown type: " + name);
  }
  return it->second;
}

Status BuildRelations(Builder& b) {
  for (const RelationSpec& rel : b.spec.relations) {
    if (b.relation_ids.count(rel.name)) {
      return Status::InvalidArgument("duplicate relation: " + rel.name);
    }
    TypeRange domain, range;
    KELPIE_ASSIGN_OR_RETURN(domain, FindType(b, rel.domain));
    KELPIE_ASSIGN_OR_RETURN(range, FindType(b, rel.range));
    (void)domain;
    b.relation_ids[rel.name] = b.relations.GetOrAdd(rel.name);
    b.relation_specs[rel.name] = &rel;
    // Popularity permutation over the range type for Zipf tails.
    std::vector<EntityId> perm(range.size());
    for (size_t i = 0; i < perm.size(); ++i) {
      perm[i] = range.begin + static_cast<EntityId>(i);
    }
    b.rng.Shuffle(perm);
    b.popularity[rel.name] = std::move(perm);
  }
  // Validate inverse references.
  for (const RelationSpec& rel : b.spec.relations) {
    if (!rel.inverse_of.empty() && !b.relation_ids.count(rel.inverse_of)) {
      return Status::InvalidArgument("inverse_of references unknown relation: " +
                                     rel.inverse_of);
    }
  }
  return Status::Ok();
}

/// Draws a tail for `rel` using its popularity permutation and Zipf skew.
EntityId DrawTail(Builder& b, const RelationSpec& rel) {
  const std::vector<EntityId>& perm = b.popularity[rel.name];
  size_t idx;
  if (rel.zipf_exponent > 1.0) {
    idx = SampleZipf(b.rng, perm.size(), rel.zipf_exponent);
  } else {
    idx = static_cast<size_t>(b.rng.UniformUint64(perm.size()));
  }
  return perm[idx];
}

Status BuildBaseFacts(Builder& b) {
  for (const RelationSpec& rel : b.spec.relations) {
    if (rel.facts_per_head <= 0.0 || !rel.inverse_of.empty()) continue;
    TypeRange domain;
    KELPIE_ASSIGN_OR_RETURN(domain, FindType(b, rel.domain));
    const RelationId rid = b.relation_ids[rel.name];
    for (EntityId h = domain.begin; h < domain.end; ++h) {
      size_t count;
      if (rel.functional) {
        count = b.rng.Bernoulli(std::min(rel.facts_per_head, 1.0)) ? 1 : 0;
      } else {
        double mean = rel.facts_per_head;
        count = static_cast<size_t>(mean);
        if (b.rng.Bernoulli(mean - static_cast<double>(count))) ++count;
      }
      for (size_t i = 0; i < count; ++i) {
        // Bounded retries against duplicates/self-loops.
        for (int attempt = 0; attempt < 8; ++attempt) {
          EntityId t = DrawTail(b, rel);
          if (b.AddFact(Triple(h, rid, t), /*derived=*/false)) break;
        }
      }
    }
  }
  return Status::Ok();
}

Status BuildCorrelations(Builder& b) {
  for (const CorrelationSpec& corr : b.spec.correlations) {
    auto via_it = b.relation_ids.find(corr.via_relation);
    auto anchor_it = b.relation_ids.find(corr.anchor_relation);
    auto target_it = b.relation_ids.find(corr.target_relation);
    if (via_it == b.relation_ids.end() || anchor_it == b.relation_ids.end() ||
        target_it == b.relation_ids.end()) {
      return Status::InvalidArgument("correlation references unknown relation");
    }
    TypeRange subjects;
    KELPIE_ASSIGN_OR_RETURN(subjects, FindType(b, corr.subject_type));
    const RelationSpec* target_spec = b.relation_specs[corr.target_relation];
    TypeRange target_range;
    KELPIE_ASSIGN_OR_RETURN(target_range, FindType(b, target_spec->range));

    // Index via and anchor facts (first match wins, deterministically).
    std::unordered_map<EntityId, EntityId> via_map;     // subject -> anchor
    std::unordered_map<EntityId, EntityId> anchor_map;  // anchor -> value
    for (const TaggedFact& f : b.facts) {
      if (f.triple.relation == via_it->second &&
          !via_map.count(f.triple.head)) {
        via_map[f.triple.head] = f.triple.tail;
      }
      if (f.triple.relation == anchor_it->second &&
          !anchor_map.count(f.triple.head)) {
        anchor_map[f.triple.head] = f.triple.tail;
      }
    }
    for (EntityId s = subjects.begin; s < subjects.end; ++s) {
      auto via = via_map.find(s);
      if (via == via_map.end()) continue;
      auto anchor = anchor_map.find(via->second);
      if (anchor == anchor_map.end()) continue;
      EntityId value;
      if (b.rng.Bernoulli(corr.strength)) {
        value = anchor->second;
      } else {
        value = target_range.begin + static_cast<EntityId>(b.rng.UniformUint64(
                                         target_range.size()));
      }
      b.AddFact(Triple(s, target_it->second, value), /*derived=*/true);
    }
  }
  return Status::Ok();
}

Status BuildRules(Builder& b) {
  for (const RuleSpec& rule : b.spec.rules) {
    auto p1 = b.relation_ids.find(rule.premise1);
    auto p2 = b.relation_ids.find(rule.premise2);
    auto con = b.relation_ids.find(rule.conclusion);
    if (p1 == b.relation_ids.end() || p2 == b.relation_ids.end() ||
        con == b.relation_ids.end()) {
      return Status::InvalidArgument("rule references unknown relation");
    }
    // premise2 index: Y -> {Z}.
    std::unordered_map<EntityId, std::vector<EntityId>> p2_index;
    std::vector<Triple> p1_facts;
    for (const TaggedFact& f : b.facts) {
      if (f.triple.relation == p2->second) {
        p2_index[f.triple.head].push_back(f.triple.tail);
      }
      if (f.triple.relation == p1->second) {
        p1_facts.push_back(f.triple);
      }
    }
    for (const Triple& f : p1_facts) {
      auto it = p2_index.find(f.tail);
      if (it == p2_index.end()) continue;
      for (EntityId z : it->second) {
        if (b.rng.Bernoulli(rule.apply_prob)) {
          b.AddFact(Triple(f.head, con->second, z), /*derived=*/true);
        }
      }
    }
  }
  return Status::Ok();
}

Status BuildSymmetricAndInverse(Builder& b) {
  // Snapshot: copies are generated from the current fact list only.
  const std::vector<TaggedFact> snapshot = b.facts;
  for (const RelationSpec& rel : b.spec.relations) {
    if (rel.symmetric) {
      const RelationId rid = b.relation_ids[rel.name];
      for (const TaggedFact& f : snapshot) {
        if (f.triple.relation != rid) continue;
        if (b.rng.Bernoulli(rel.symmetric_prob)) {
          b.AddFact(Triple(f.triple.tail, rid, f.triple.head),
                    /*derived=*/true);
        }
      }
    }
    if (!rel.inverse_of.empty()) {
      const RelationId rid = b.relation_ids[rel.name];
      const RelationId base = b.relation_ids[rel.inverse_of];
      for (const TaggedFact& f : snapshot) {
        if (f.triple.relation != base) continue;
        if (b.rng.Bernoulli(rel.inverse_prob)) {
          b.AddFact(Triple(f.triple.tail, rid, f.triple.head),
                    /*derived=*/true);
        }
      }
    }
  }
  return Status::Ok();
}

Status BuildClusters(Builder& b) {
  for (const ClusterSpec& cluster : b.spec.clusters) {
    auto rel_it = b.relation_ids.find(cluster.relation);
    if (rel_it == b.relation_ids.end()) {
      return Status::InvalidArgument("cluster references unknown relation: " +
                                     cluster.relation);
    }
    TypeRange members, items;
    KELPIE_ASSIGN_OR_RETURN(members, FindType(b, cluster.member_type));
    KELPIE_ASSIGN_OR_RETURN(items, FindType(b, cluster.item_type));
    const size_t need_members = cluster.num_groups * cluster.members_per_group;
    const size_t need_items = cluster.num_groups * cluster.items_per_group;
    if (need_members > members.size() || need_items > items.size()) {
      return Status::InvalidArgument("cluster spec larger than its types: " +
                                     cluster.relation);
    }
    std::vector<size_t> member_pick =
        b.rng.SampleWithoutReplacement(members.size(), need_members);
    std::vector<size_t> item_pick =
        b.rng.SampleWithoutReplacement(items.size(), need_items);
    size_t mi = 0, ii = 0;
    for (size_t g = 0; g < cluster.num_groups; ++g) {
      std::vector<EntityId> group_members, group_items;
      for (size_t i = 0; i < cluster.members_per_group; ++i) {
        group_members.push_back(members.begin +
                                static_cast<EntityId>(member_pick[mi++]));
      }
      for (size_t i = 0; i < cluster.items_per_group; ++i) {
        group_items.push_back(items.begin +
                              static_cast<EntityId>(item_pick[ii++]));
      }
      for (EntityId m : group_members) {
        for (EntityId item : group_items) {
          if (b.rng.Bernoulli(cluster.membership_prob)) {
            b.AddFact(Triple(m, rel_it->second, item), /*derived=*/true);
          }
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Dataset> GenerateDataset(const GeneratorSpec& spec) {
  if (spec.types.empty() || spec.relations.empty()) {
    return Status::InvalidArgument("spec needs at least one type and relation");
  }
  Builder b(spec);
  KELPIE_RETURN_IF_ERROR(BuildTypes(b));
  KELPIE_RETURN_IF_ERROR(BuildRelations(b));
  KELPIE_RETURN_IF_ERROR(BuildBaseFacts(b));
  KELPIE_RETURN_IF_ERROR(BuildCorrelations(b));
  KELPIE_RETURN_IF_ERROR(BuildRules(b));
  KELPIE_RETURN_IF_ERROR(BuildClusters(b));
  KELPIE_RETURN_IF_ERROR(BuildSymmetricAndInverse(b));

  // Split: derived facts are eligible for valid/test.
  std::vector<size_t> derived_indices;
  for (size_t i = 0; i < b.facts.size(); ++i) {
    if (b.facts[i].derived) derived_indices.push_back(i);
  }
  b.rng.Shuffle(derived_indices);
  size_t n_test = static_cast<size_t>(
      static_cast<double>(derived_indices.size()) * spec.test_fraction);
  size_t n_valid = static_cast<size_t>(
      static_cast<double>(derived_indices.size()) * spec.valid_fraction);
  if (spec.max_eval_facts > 0) {
    n_test = std::min(n_test, spec.max_eval_facts);
    n_valid = std::min(n_valid, spec.max_eval_facts);
  }

  std::vector<char> assignment(b.facts.size(), 0);  // 0 train, 1 valid, 2 test
  for (size_t i = 0; i < n_test; ++i) {
    assignment[derived_indices[i]] = 2;
  }
  for (size_t i = n_test; i < n_test + n_valid; ++i) {
    assignment[derived_indices[i]] = 1;
  }

  // Every entity referenced by an eval fact must keep at least one training
  // fact; demote eval facts that would orphan an entity.
  std::vector<int> train_degree(b.entities.size(), 0);
  for (size_t i = 0; i < b.facts.size(); ++i) {
    if (assignment[i] == 0) {
      ++train_degree[static_cast<size_t>(b.facts[i].triple.head)];
      ++train_degree[static_cast<size_t>(b.facts[i].triple.tail)];
    }
  }
  for (size_t i = 0; i < b.facts.size(); ++i) {
    if (assignment[i] == 0) continue;
    const Triple& t = b.facts[i].triple;
    if (train_degree[static_cast<size_t>(t.head)] == 0 ||
        train_degree[static_cast<size_t>(t.tail)] == 0) {
      assignment[i] = 0;
      ++train_degree[static_cast<size_t>(t.head)];
      ++train_degree[static_cast<size_t>(t.tail)];
    }
  }

  std::vector<Triple> train, valid, test;
  for (size_t i = 0; i < b.facts.size(); ++i) {
    switch (assignment[i]) {
      case 0:
        train.push_back(b.facts[i].triple);
        break;
      case 1:
        valid.push_back(b.facts[i].triple);
        break;
      default:
        test.push_back(b.facts[i].triple);
        break;
    }
  }
  return Dataset(spec.name, std::move(b.entities), std::move(b.relations),
                 std::move(train), std::move(valid), std::move(test));
}

}  // namespace kelpie
