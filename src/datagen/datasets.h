#ifndef KELPIE_DATAGEN_DATASETS_H_
#define KELPIE_DATAGEN_DATASETS_H_

#include <string_view>
#include <vector>

#include "datagen/generator.h"

namespace kelpie {

/// The five benchmark datasets of the paper's Table 1, as synthetic
/// stand-ins (DESIGN.md §3). Each preserves the structural signature of its
/// namesake:
///  - kFb15k:    many relations, rich composition, inverse-relation leakage;
///  - kFb15k237: kFb15k with the inverse relations removed;
///  - kWn18:     lexical hierarchy with inverse pairs (hypernym/hyponym ...);
///  - kWn18rr:   kWn18 without inverse pairs; symmetric relations dominate;
///  - kYago310:  sparse personal facts, acting ensembles, and the
///               football-team/birthplace bias of paper Table 8.
enum class BenchmarkDataset { kFb15k, kFb15k237, kWn18, kWn18rr, kYago310 };

/// Display name matching the paper ("FB15k", "FB15k-237", ...).
std::string_view BenchmarkDatasetName(BenchmarkDataset d);

/// All five datasets in Table-1 order.
std::vector<BenchmarkDataset> AllBenchmarkDatasets();

/// Generator spec of a benchmark stand-in. `scale` multiplies entity counts
/// (and cluster counts); 1.0 is the default experiment scale, smaller
/// values give quick test fixtures.
GeneratorSpec BenchmarkSpec(BenchmarkDataset d, double scale = 1.0,
                            uint64_t seed = 7);

/// Generates the dataset (convenience wrapper; aborts on spec errors, which
/// would be programming bugs for the built-in specs).
Dataset MakeBenchmark(BenchmarkDataset d, double scale = 1.0,
                      uint64_t seed = 7);

}  // namespace kelpie

#endif  // KELPIE_DATAGEN_DATASETS_H_
