#ifndef KELPIE_DATAGEN_GENERATOR_H_
#define KELPIE_DATAGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "kgraph/dataset.h"

namespace kelpie {

/// ---------------------------------------------------------------------------
/// Synthetic knowledge-graph generation.
///
/// The environment has no access to the five benchmark datasets the paper
/// uses, so this module builds scaled-down synthetic stand-ins that preserve
/// the structural properties the paper's experiments probe (DESIGN.md §3):
///  - typed entities with relation signatures;
///  - heavily skewed (Zipf) degree distributions;
///  - compositional 2-hop rules (the "born_in ∘ located_in ⇒ nationality"
///    pattern that makes explanations meaningful);
///  - inverse-relation pairs (FB15k/WN18 test leakage) and their removal;
///  - symmetric relations (WN18RR's dominant pattern);
///  - co-participation clusters (YAGO3-10's recurring acting groups);
///  - engineered correlations (YAGO3-10's football-team/birthplace bias).
///
/// Test and validation facts are sampled only from *derivable* facts — those
/// produced by rules, symmetry, inversion, clusters, or correlations — so
/// every evaluation fact is entailed by training evidence, which is exactly
/// the property explanation extraction investigates.
/// ---------------------------------------------------------------------------

/// A class of entities ("Person", "City", ...). Entities are named
/// "<name>_<i>".
struct TypeSpec {
  std::string name;
  size_t count = 0;
};

/// A relation with a type signature and generation parameters.
struct RelationSpec {
  std::string name;
  std::string domain;  // type of heads
  std::string range;   // type of tails
  /// Average number of base facts generated per domain entity; 0 means the
  /// relation is populated only by rules/correlations/clusters/inverses.
  double facts_per_head = 0.0;
  /// Zipf exponent for tail popularity (> 1); <= 1 means uniform.
  double zipf_exponent = 1.6;
  /// At most one base fact per head.
  bool functional = false;
  /// Each fact <h, r, t> also yields <t, r, h> with probability
  /// `symmetric_prob` (as a derived fact).
  bool symmetric = false;
  double symmetric_prob = 0.9;
  /// Non-empty: this relation is generated purely as the inverse of the
  /// named relation — every <h, that, t> yields <t, this, h> with
  /// probability `inverse_prob` (as a derived fact). FB15k/WN18 leakage.
  std::string inverse_of;
  double inverse_prob = 0.9;
};

/// A 2-hop composition rule: conclusion(X, Z) <- premise1(X, Y) AND
/// premise2(Y, Z), applied with the given probability per (X, Y, Z) match.
/// Conclusions are derived facts.
struct RuleSpec {
  std::string premise1;
  std::string premise2;
  std::string conclusion;
  double apply_prob = 0.9;
};

/// Co-participation clusters: `num_groups` disjoint groups of
/// `members_per_group` entities of `member_type` are each linked to the
/// same `items_per_group` entities of `item_type` through `relation`
/// (YAGO3-10's recurring acting ensembles). Each member-item link is
/// created with probability `membership_prob`; all links are derived facts
/// (each is predictable from the co-members' links).
struct ClusterSpec {
  std::string member_type;
  std::string relation;
  std::string item_type;
  size_t num_groups = 0;
  size_t members_per_group = 0;
  size_t items_per_group = 0;
  double membership_prob = 0.9;
};

/// An engineered statistical bias: for each entity X of `subject_type`
/// having via_relation(X, A) and anchor_relation(A, V), add
/// target_relation(X, V) with probability `strength`; with probability
/// 1 - strength the value V is replaced by a uniform draw from the target
/// relation's range type. Both outcomes are derived facts. This reproduces
/// YAGO3-10's "players tend to play for teams from their birthplace" bias
/// (paper Table 8) — with causality reversed so that the *target* relation
/// is the biased, explainable one.
struct CorrelationSpec {
  std::string subject_type;
  std::string via_relation;
  std::string anchor_relation;
  std::string target_relation;
  double strength = 0.7;
};

/// Full description of a synthetic dataset.
struct GeneratorSpec {
  std::string name;
  std::vector<TypeSpec> types;
  std::vector<RelationSpec> relations;
  std::vector<RuleSpec> rules;
  std::vector<ClusterSpec> clusters;
  std::vector<CorrelationSpec> correlations;
  /// Fractions of *derived* facts moved to the validation/test splits.
  double valid_fraction = 0.05;
  double test_fraction = 0.08;
  /// Hard cap on each of the valid/test splits (0 = unlimited).
  size_t max_eval_facts = 400;
  uint64_t seed = 7;
};

/// Generates the dataset described by `spec`. Fails if the spec references
/// unknown types/relations or is otherwise inconsistent.
Result<Dataset> GenerateDataset(const GeneratorSpec& spec);

}  // namespace kelpie

#endif  // KELPIE_DATAGEN_GENERATOR_H_
