#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kelpie {

namespace {

size_t Scaled(size_t count, double scale) {
  return std::max<size_t>(5, static_cast<size_t>(std::lround(
                                 static_cast<double>(count) * scale)));
}

/// Shared Freebase-like core (types, base relations, rules, clusters);
/// FB15k adds inverse relations on top, FB15k-237 does not.
GeneratorSpec FreebaseCore(double scale, uint64_t seed) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.types = {
      {"Person", Scaled(400, scale)},  {"City", Scaled(60, scale)},
      {"Country", Scaled(12, scale)},  {"Film", Scaled(120, scale)},
      {"Profession", Scaled(15, scale)},
      {"Organization", Scaled(60, scale)}, {"Genre", Scaled(10, scale)},
  };
  spec.relations = {
      {.name = "born_in", .domain = "Person", .range = "City",
       .facts_per_head = 1.0, .zipf_exponent = 1.6, .functional = true},
      {.name = "located_in", .domain = "City", .range = "Country",
       .facts_per_head = 1.0, .zipf_exponent = 1.4, .functional = true},
      {.name = "lives_in", .domain = "Person", .range = "City",
       .facts_per_head = 1.2, .zipf_exponent = 1.6},
      {.name = "works_for", .domain = "Person", .range = "Organization",
       .facts_per_head = 1.2, .zipf_exponent = 1.6},
      {.name = "org_based_in", .domain = "Organization", .range = "City",
       .facts_per_head = 1.0, .zipf_exponent = 1.4, .functional = true},
      {.name = "profession", .domain = "Person", .range = "Profession",
       .facts_per_head = 1.8, .zipf_exponent = 1.5},
      {.name = "acted_in", .domain = "Person", .range = "Film",
       .facts_per_head = 0.8, .zipf_exponent = 1.5},
      {.name = "film_genre", .domain = "Film", .range = "Genre",
       .facts_per_head = 1.4, .zipf_exponent = 1.3},
      // Rule-populated relations.
      {.name = "nationality", .domain = "Person", .range = "Country",
       .facts_per_head = 0.0},
      {.name = "lives_in_country", .domain = "Person", .range = "Country",
       .facts_per_head = 0.0},
  };
  spec.rules = {
      {.premise1 = "born_in", .premise2 = "located_in",
       .conclusion = "nationality", .apply_prob = 0.85},
      {.premise1 = "lives_in", .premise2 = "located_in",
       .conclusion = "lives_in_country", .apply_prob = 0.7},
  };
  spec.clusters = {
      {.member_type = "Person", .relation = "acted_in", .item_type = "Film",
       .num_groups = Scaled(14, scale), .members_per_group = 5,
       .items_per_group = 7, .membership_prob = 0.85},
  };
  spec.valid_fraction = 0.05;
  spec.test_fraction = 0.10;
  spec.max_eval_facts = 350;
  return spec;
}

/// Shared WordNet-like core; WN18 adds inverse relations, WN18RR does not.
GeneratorSpec WordNetCore(double scale, uint64_t seed) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.types = {{"Word", Scaled(600, scale)}};
  spec.relations = {
      {.name = "hypernym", .domain = "Word", .range = "Word",
       .facts_per_head = 1.3, .zipf_exponent = 1.8},
      {.name = "part_of", .domain = "Word", .range = "Word",
       .facts_per_head = 0.6, .zipf_exponent = 1.7},
      {.name = "member_of_domain", .domain = "Word", .range = "Word",
       .facts_per_head = 0.5, .zipf_exponent = 1.9},
      {.name = "similar_to", .domain = "Word", .range = "Word",
       .facts_per_head = 0.7, .zipf_exponent = 1.2, .symmetric = true,
       .symmetric_prob = 0.9},
      {.name = "derivationally_related", .domain = "Word", .range = "Word",
       .facts_per_head = 0.9, .zipf_exponent = 1.2, .symmetric = true,
       .symmetric_prob = 0.9},
      {.name = "also_see", .domain = "Word", .range = "Word",
       .facts_per_head = 0.4, .zipf_exponent = 1.2, .symmetric = true,
       .symmetric_prob = 0.85},
  };
  spec.valid_fraction = 0.06;
  spec.test_fraction = 0.12;
  spec.max_eval_facts = 350;
  return spec;
}

void AddInverse(GeneratorSpec& spec, const std::string& base,
                const std::string& inverse_name, const std::string& domain,
                const std::string& range) {
  RelationSpec inv;
  inv.name = inverse_name;
  inv.domain = domain;
  inv.range = range;
  inv.inverse_of = base;
  inv.inverse_prob = 0.85;
  spec.relations.push_back(inv);
}

}  // namespace

std::string_view BenchmarkDatasetName(BenchmarkDataset d) {
  switch (d) {
    case BenchmarkDataset::kFb15k:
      return "FB15k";
    case BenchmarkDataset::kFb15k237:
      return "FB15k-237";
    case BenchmarkDataset::kWn18:
      return "WN18";
    case BenchmarkDataset::kWn18rr:
      return "WN18RR";
    case BenchmarkDataset::kYago310:
      return "YAGO3-10";
  }
  return "Unknown";
}

std::vector<BenchmarkDataset> AllBenchmarkDatasets() {
  return {BenchmarkDataset::kFb15k, BenchmarkDataset::kFb15k237,
          BenchmarkDataset::kWn18, BenchmarkDataset::kWn18rr,
          BenchmarkDataset::kYago310};
}

GeneratorSpec BenchmarkSpec(BenchmarkDataset d, double scale, uint64_t seed) {
  switch (d) {
    case BenchmarkDataset::kFb15k: {
      GeneratorSpec spec = FreebaseCore(scale, seed);
      spec.name = "FB15k";
      // The test-leakage inverse relations of the original FB15k.
      AddInverse(spec, "born_in", "person_born_here", "City", "Person");
      AddInverse(spec, "acted_in", "has_actor", "Film", "Person");
      AddInverse(spec, "located_in", "contains", "Country", "City");
      AddInverse(spec, "works_for", "employs", "Organization", "Person");
      return spec;
    }
    case BenchmarkDataset::kFb15k237: {
      GeneratorSpec spec = FreebaseCore(scale, seed);
      spec.name = "FB15k-237";
      return spec;
    }
    case BenchmarkDataset::kWn18: {
      GeneratorSpec spec = WordNetCore(scale, seed);
      spec.name = "WN18";
      AddInverse(spec, "hypernym", "hyponym", "Word", "Word");
      AddInverse(spec, "part_of", "has_part", "Word", "Word");
      AddInverse(spec, "member_of_domain", "domain_member", "Word", "Word");
      return spec;
    }
    case BenchmarkDataset::kWn18rr: {
      GeneratorSpec spec = WordNetCore(scale, seed);
      spec.name = "WN18RR";
      return spec;
    }
    case BenchmarkDataset::kYago310: {
      GeneratorSpec spec;
      spec.seed = seed;
      spec.name = "YAGO3-10";
      spec.types = {
          {"Player", Scaled(400, scale)}, {"Team", Scaled(60, scale)},
          {"City", Scaled(60, scale)},    {"Country", Scaled(15, scale)},
          {"Actor", Scaled(100, scale)},  {"Film", Scaled(120, scale)},
      };
      spec.relations = {
          {.name = "plays_for", .domain = "Player", .range = "Team",
           .facts_per_head = 1.5, .zipf_exponent = 1.5},
          {.name = "affiliated_to", .domain = "Player", .range = "Team",
           .facts_per_head = 1.2, .zipf_exponent = 1.5},
          {.name = "team_based_in", .domain = "Team", .range = "City",
           .facts_per_head = 1.0, .zipf_exponent = 1.3, .functional = true},
          {.name = "located_in", .domain = "City", .range = "Country",
           .facts_per_head = 1.0, .zipf_exponent = 1.3, .functional = true},
          {.name = "acted_in", .domain = "Actor", .range = "Film",
           .facts_per_head = 1.5, .zipf_exponent = 1.4},
          {.name = "citizen_of", .domain = "Actor", .range = "Country",
           .facts_per_head = 0.6, .zipf_exponent = 1.4},
          // Populated by the bias correlation / rules below.
          {.name = "born_in", .domain = "Player", .range = "City",
           .facts_per_head = 0.0},
          {.name = "nationality", .domain = "Player", .range = "Country",
           .facts_per_head = 0.0},
      };
      // The Table-8 bias: birthplaces follow the player's football team.
      spec.correlations = {
          {.subject_type = "Player", .via_relation = "plays_for",
           .anchor_relation = "team_based_in", .target_relation = "born_in",
           .strength = 0.75},
      };
      // Personal facts are rare in YAGO3-10 (the source of the Table-8
      // bias); only a minority of players get an explicit nationality.
      spec.rules = {
          {.premise1 = "born_in", .premise2 = "located_in",
           .conclusion = "nationality", .apply_prob = 0.3},
      };
      // The recurring acting ensembles of paper Table 7.
      spec.clusters = {
          {.member_type = "Actor", .relation = "acted_in",
           .item_type = "Film", .num_groups = Scaled(14, scale),
           .members_per_group = 5, .items_per_group = 7,
           .membership_prob = 0.85},
      };
      spec.valid_fraction = 0.06;
      spec.test_fraction = 0.12;
      spec.max_eval_facts = 350;
      return spec;
    }
  }
  KELPIE_CHECK(false);
  return {};
}

Dataset MakeBenchmark(BenchmarkDataset d, double scale, uint64_t seed) {
  Result<Dataset> result = GenerateDataset(BenchmarkSpec(d, scale, seed));
  KELPIE_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace kelpie
