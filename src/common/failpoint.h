#ifndef KELPIE_COMMON_FAILPOINT_H_
#define KELPIE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "common/status.h"

namespace kelpie {
namespace failpoint {

/// -----------------------------------------------------------------------
/// Deterministic fault injection.
///
/// A *failpoint* is a named hook compiled into a production code path (a
/// training epoch boundary, a file write, a pipeline iteration). Tests arm
/// a failpoint by name; when the code path reaches it with a matching
/// value, the site observes `Fire(...) == true` and simulates the fault —
/// poisoning a parameter with NaN, abandoning a half-written temp file,
/// aborting a pipeline run. This proves recovery logic with exact,
/// repeatable triggers instead of flaky timing or signal tricks.
///
/// The registry is process-global and thread-safe. When nothing is armed
/// (the production configuration), `Fire` is a single relaxed atomic load.
/// -----------------------------------------------------------------------

/// Matches any value passed to Fire().
inline constexpr uint64_t kAnyValue = std::numeric_limits<uint64_t>::max();

/// Fires on every matching call until disarmed.
inline constexpr int kForever = -1;

/// Arms `name`: subsequent `Fire(name, value)` calls return true when
/// `value == match` (or `match == kAnyValue`), at most `times` times
/// (`kForever` = until disarmed). Re-arming an armed name replaces its
/// trigger and resets its counters.
void Arm(std::string_view name, uint64_t match = kAnyValue, int times = 1);

/// Disarms `name`; no-op if not armed.
void Disarm(std::string_view name);

/// Disarms everything. Tests call this in teardown.
void DisarmAll();

/// Arms failpoints from a textual spec — the format of the KELPIE_FAILPOINTS
/// environment variable: comma-separated entries `name[:match[:times]]`,
/// where `match` is a decimal value or `*` (any, the default) and `times` is
/// a decimal count or `forever` (default 1). Example:
///   KELPIE_FAILPOINTS="train.diverge:3,pipeline.interrupt:*:forever"
/// Returns InvalidArgument on a malformed entry (nothing beyond the valid
/// prefix is armed).
Status ArmFromSpec(std::string_view spec);

/// Checkpoint call, placed in production code. Returns true if `name` is
/// armed, `value` matches, and the firing budget is not exhausted; each
/// true return consumes one firing. Near-free when nothing is armed.
bool Fire(std::string_view name, uint64_t value = 0);

/// Number of times `name` has fired since it was (re-)armed. Returns 0 for
/// unarmed names.
uint64_t FireCount(std::string_view name);

/// RAII helper: arms on construction, disarms on destruction.
class Scoped {
 public:
  explicit Scoped(std::string_view name, uint64_t match = kAnyValue,
                  int times = 1)
      : name_(name) {
    Arm(name_, match, times);
  }
  ~Scoped() { Disarm(name_); }

  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace kelpie

#endif  // KELPIE_COMMON_FAILPOINT_H_
