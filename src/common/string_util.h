#ifndef KELPIE_COMMON_STRING_UTIL_H_
#define KELPIE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace kelpie {

/// Splits `text` on `sep`, keeping empty fields. Split("a\t\tb", '\t') ->
/// {"a", "", "b"}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision);

/// Formats a signed delta with an explicit sign, e.g. "+0.319" / "-0.490".
std::string FormatSigned(double value, int precision);

}  // namespace kelpie

#endif  // KELPIE_COMMON_STRING_UTIL_H_
