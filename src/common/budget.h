#ifndef KELPIE_COMMON_BUDGET_H_
#define KELPIE_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>

#include "common/status.h"

namespace kelpie {

/// -----------------------------------------------------------------------
/// Cooperative budgets, deadlines and cancellation.
///
/// Explanation extraction is the system's most expensive operation — every
/// candidate costs at least one post-training — so every long-running path
/// must be boundable and interruptible. Three orthogonal mechanisms:
///
///  - `WorkBudget` meters *deterministic work units* (non-homologous
///    post-trainings). Decisions driven by the budget happen at candidate
///    boundaries in the sequential replay of the Explanation Builder, so a
///    budgeted run returns bitwise-identical results on any machine and any
///    thread count.
///  - `Deadline` is a steady-clock wall-time overlay. Inherently
///    non-deterministic; use it to bound latency, not to reproduce results.
///  - `CancelToken` is a cooperative cancellation flag checkable from any
///    thread; the CLI wires it to SIGINT/SIGTERM.
///
/// `ExtractionControl` bundles the three for plumbing through the stack. A
/// default-constructed control imposes no limits; code paths handed one
/// behave exactly as before this layer existed.
/// -----------------------------------------------------------------------

/// How far an extraction got before it returned. Anything but `kComplete`
/// means the result is the best explanation found so far, not necessarily
/// the one an unbounded search would return.
enum class Completeness : uint8_t {
  /// The search ran to its natural end (acceptance or exhaustion).
  kComplete = 0,
  /// The work-unit budget ran out; deterministic given the same budget.
  kTruncatedBudget = 1,
  /// The deadline expired (wall clock; not reproducible).
  kTruncatedDeadline = 2,
  /// Cancellation was requested (Ctrl-C or a caller's token).
  kCancelled = 3,
};

/// Stable human-readable name ("Complete", "TruncatedBudget", ...).
std::string_view CompletenessName(Completeness completeness);

/// A meter of deterministic work units. Thread-safe; `TryCharge` either
/// charges the full amount or nothing, so concurrent chargers can never
/// overdraw. One unit = one non-homologous post-training: a necessary
/// candidate costs 1, a sufficient candidate costs its conversion-set size.
/// Homologous baselines are cached across candidates and are not charged.
class WorkBudget {
 public:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  explicit WorkBudget(uint64_t limit = kUnlimited) : limit_(limit) {}

  /// Reinitializes the meter with a new limit and zero usage. Setup only —
  /// not safe to call concurrently with TryCharge.
  void Reset(uint64_t limit) {
    limit_ = limit;
    used_.store(0, std::memory_order_relaxed);
  }

  bool unlimited() const { return limit_ == kUnlimited; }
  uint64_t limit() const { return limit_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t remaining() const {
    if (unlimited()) return kUnlimited;
    const uint64_t u = used();
    return u >= limit_ ? 0 : limit_ - u;
  }

  /// Charges `units` if the full amount fits the remaining budget; returns
  /// false (charging nothing) otherwise.
  bool TryCharge(uint64_t units) {
    if (unlimited()) return true;
    uint64_t u = used_.load(std::memory_order_relaxed);
    while (true) {
      if (units > limit_ - u) return false;
      if (used_.compare_exchange_weak(u, u + units,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

 private:
  uint64_t limit_;
  std::atomic<uint64_t> used_{0};
};

/// A point on the steady clock after which work should stop. Infinite by
/// default. Never uses the system clock: wall-time adjustments (NTP steps,
/// suspend/resume quirks) must not fire or un-fire a deadline.
class Deadline {
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "deadlines must be immune to system-clock adjustments");

 public:
  /// An infinite deadline (never expires).
  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now; non-positive values are already expired.
  static Deadline After(double seconds);

  /// The earlier of two deadlines (used to overlay a per-prediction timeout
  /// on a run-level deadline).
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool Expired() const { return !infinite() && Clock::now() >= at_; }

  /// Seconds until expiry; +infinity when infinite, <= 0 when expired.
  double RemainingSeconds() const;

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_;
};

/// A copyable handle to a shared cancellation flag. Copies observe the same
/// flag; `RequestCancel` is sticky (there is no reset — make a new token for
/// a new operation). Safe to read and set from any thread.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  friend void WireCancelToSignals(const CancelToken& token);

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Installs SIGINT/SIGTERM handlers that request cancellation on `token`.
/// The first signal sets the flag and lets the run drain cooperatively
/// (journal tails flush, best-so-far results return); a second signal exits
/// immediately with status 130, the conventional fatal-SIGINT code. Only one
/// token can be wired at a time; wiring again rebinds the handlers.
void WireCancelToSignals(const CancelToken& token);

/// The bundle threaded through the extraction stack. Non-owning: the budget
/// lives with whoever created the control (the Kelpie facade allocates one
/// per prediction). Default-constructed = no limits.
struct ExtractionControl {
  /// Deterministic work-unit meter; nullptr = unlimited.
  WorkBudget* budget = nullptr;
  Deadline deadline;
  CancelToken cancel;

  /// Non-deterministic interrupts only (cancellation, then deadline) — the
  /// budget is deliberately excluded: budget decisions are made at
  /// deterministic candidate boundaries, never from racing checks.
  Status CheckInterrupt() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("cancellation requested");
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired");
    }
    return Status::Ok();
  }

  uint64_t BudgetRemaining() const {
    return budget == nullptr ? WorkBudget::kUnlimited : budget->remaining();
  }

  /// Charges the budget if present; a control without a budget accepts any
  /// charge.
  bool TryCharge(uint64_t units) const {
    return budget == nullptr || budget->TryCharge(units);
  }
};

/// Maps an interrupt status (from ExtractionControl::CheckInterrupt) to the
/// completeness it implies; `kOk` maps to `kComplete`.
Completeness CompletenessFromStatus(const Status& status);

}  // namespace kelpie

#endif  // KELPIE_COMMON_BUDGET_H_
