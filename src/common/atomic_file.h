#ifndef KELPIE_COMMON_ATOMIC_FILE_H_
#define KELPIE_COMMON_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace kelpie {

/// Writes `contents` to `path` crash-safely: the bytes go to a temp file in
/// the same directory, which is fsynced, then atomically renamed over the
/// destination. A crash (or injected I/O failure) at any point leaves either
/// the previous file intact or the complete new file — never a torn mix.
/// On failure the temp file is removed and the destination is untouched.
///
/// Failpoints (see failpoint.h):
///   "atomic_file.partial_write" — only half of `contents` reaches the temp
///       file before the write "fails"; simulates a crash mid-write.
///   "atomic_file.rename"        — the temp file is fully written and synced
///       but the final rename "fails"; simulates a crash between flush and
///       publish.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace kelpie

#endif  // KELPIE_COMMON_ATOMIC_FILE_H_
