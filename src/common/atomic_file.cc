#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"

namespace kelpie {

namespace {

std::string Errno(int err) { return std::strerror(err); }

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed: " + Errno(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failure here is not fatal: the data file is already
/// synced, and some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " + Errno(errno));
  }

  size_t to_write = contents.size();
  bool injected_partial = failpoint::Fire("atomic_file.partial_write");
  if (injected_partial) to_write = contents.size() / 2;

  Status s = WriteAll(fd, contents.data(), to_write);
  if (s.ok() && injected_partial) {
    s = Status::IoError("injected partial write to " + tmp);
  }
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IoError("fsync " + tmp + ": " + Errno(errno));
  }
  if (::close(fd) != 0 && s.ok()) {
    s = Status::IoError("close " + tmp + ": " + Errno(errno));
  }
  if (s.ok() && failpoint::Fire("atomic_file.rename")) {
    s = Status::IoError("injected rename failure for " + tmp);
  }
  if (s.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    s = Status::IoError("rename " + tmp + " -> " + path + ": " + Errno(errno));
  }
  if (!s.ok()) {
    std::remove(tmp.c_str());  // destination untouched
    return s;
  }
  SyncParentDir(path);
  return Status::Ok();
}

}  // namespace kelpie
