#ifndef KELPIE_COMMON_LOGGING_H_
#define KELPIE_COMMON_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace kelpie {

/// Severity levels for the minimal logging facility. The library logs very
/// sparingly; experiments and benches use INFO for progress lines.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Logs and aborts; used by KELPIE_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace kelpie

#define KELPIE_LOG(level)                                               \
  ::kelpie::internal_logging::LogMessage(::kelpie::LogLevel::k##level, \
                                         __FILE__, __LINE__)

/// Invariant check: logs the failed condition and aborts. Used for
/// programmer errors (index bounds, dimension mismatches), never for
/// recoverable conditions — those return Status.
#define KELPIE_CHECK(condition)                                       \
  if (!(condition))                                                   \
  ::kelpie::internal_logging::FatalLogMessage(__FILE__, __LINE__,     \
                                              #condition)

#define KELPIE_DCHECK(condition) assert(condition)

#endif  // KELPIE_COMMON_LOGGING_H_
