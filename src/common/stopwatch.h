#ifndef KELPIE_COMMON_STOPWATCH_H_
#define KELPIE_COMMON_STOPWATCH_H_

#include <chrono>

namespace kelpie {

/// Monotonic stopwatch used by the timing experiments (Figures 5 and 6).
/// Always reads the steady clock: elapsed times must never go backwards or
/// jump when the system clock is adjusted (NTP steps, manual changes).
class Stopwatch {
 public:
  /// The clock every reading comes from — part of the public contract so
  /// deadline code can static_assert it stays steady.
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Stopwatch must be immune to system-clock adjustments");

  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  Clock::time_point start_;
};

}  // namespace kelpie

#endif  // KELPIE_COMMON_STOPWATCH_H_
