#ifndef KELPIE_COMMON_STOPWATCH_H_
#define KELPIE_COMMON_STOPWATCH_H_

#include <chrono>

namespace kelpie {

/// Wall-clock stopwatch used by the timing experiments (Figures 5 and 6).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kelpie

#endif  // KELPIE_COMMON_STOPWATCH_H_
