#include "common/budget.h"

#include <csignal>
#include <cstdlib>
#include <vector>

namespace kelpie {

std::string_view CompletenessName(Completeness completeness) {
  switch (completeness) {
    case Completeness::kComplete:
      return "Complete";
    case Completeness::kTruncatedBudget:
      return "TruncatedBudget";
    case Completeness::kTruncatedDeadline:
      return "TruncatedDeadline";
    case Completeness::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Deadline Deadline::After(double seconds) {
  const auto now = Clock::now();
  if (seconds <= 0.0) return Deadline(now);
  // Saturate instead of overflowing duration arithmetic on huge timeouts.
  const double max_seconds = std::chrono::duration<double>(
                                 Clock::time_point::max() - now)
                                 .count();
  if (seconds >= max_seconds) return Infinite();
  return Deadline(now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds)));
}

double Deadline::RemainingSeconds() const {
  if (infinite()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - Clock::now()).count();
}

namespace {

/// The flag the signal handler flips. A handler may only touch lock-free
/// atomics, so the shared_ptr control block stays out of reach: wiring
/// pins the token's flag here (and keeps a shared_ptr alive so the atomic
/// can never be destroyed under the handler).
std::atomic<std::atomic<bool>*> g_signal_flag{nullptr};

extern "C" void KelpieCancelSignalHandler(int /*signum*/) {
  std::atomic<bool>* flag = g_signal_flag.load(std::memory_order_acquire);
  if (flag == nullptr) return;
  // Second signal: the user insists. 130 = fatal-SIGINT convention.
  if (flag->exchange(true, std::memory_order_acq_rel)) {
    std::_Exit(130);
  }
}

}  // namespace

void WireCancelToSignals(const CancelToken& token) {
  // Pin the flag for the life of the process: the handler reads the raw
  // pointer at arbitrary times, so no rebind may ever free a previously
  // wired flag. The pin list stays reachable (not a leak under LSan) and is
  // never shrunk.
  static std::vector<std::shared_ptr<std::atomic<bool>>>* pinned =
      new std::vector<std::shared_ptr<std::atomic<bool>>>();
  pinned->push_back(token.flag_);
  g_signal_flag.store(token.flag_.get(), std::memory_order_release);

  struct sigaction action = {};
  action.sa_handler = &KelpieCancelSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking reads promptly
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

Completeness CompletenessFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled:
      return Completeness::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return Completeness::kTruncatedDeadline;
    default:
      return Completeness::kComplete;
  }
}

}  // namespace kelpie
