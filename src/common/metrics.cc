#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace kelpie {
namespace metrics {

namespace {

/// FNV-1a, good enough to spread family names over 8 shards.
size_t NameHash(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

/// Escapes a label value for text exposition (Prometheus escaping rules).
std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Canonical label string: keys sorted, `k="v"` joined by commas. Doubles
/// as the series map key and the exposition label block (sans braces).
std::string CanonicalLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out.push_back(',');
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out.push_back('"');
  }
  return out;
}

/// `name{labels}` or bare `name`; `extra` appends one more label (used for
/// histogram `le`).
std::string SeriesName(const std::string& family, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return family;
  std::string out = family;
  out.push_back('{');
  out += labels;
  if (!extra.empty()) {
    if (!labels.empty()) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

const char* TypeName(int type) {
  switch (type) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

std::atomic<Registry*> g_override{nullptr};

/// Doubles as JSON values: NaN/Inf are not valid JSON numbers, so
/// non-finite values are emitted as strings.
std::string JsonDouble(double v) {
  if (std::isfinite(v)) return FormatDouble(v);
  std::string out = "\"";
  out += FormatDouble(v);
  out += "\"";
  return out;
}

}  // namespace

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]),
      sum_bits_(std::bit_cast<uint64_t>(0.0)) {
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && !(v <= bounds_[i])) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed)) {
  }
}

std::vector<double> ExponentialBuckets(double bound, double growth,
                                       size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(bound);
    bound *= growth;
  }
  return out;
}

std::vector<double> LinearBuckets(double start, double width, size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(start + width * static_cast<double>(i));
  }
  return out;
}

Registry& Registry::Global() {
  // Leaked on purpose: resolved handles stay valid through process exit.
  static Registry* default_instance = new Registry();
  Registry* override = g_override.load(std::memory_order_acquire);
  return override != nullptr ? *override : *default_instance;
}

Registry::Shard& Registry::ShardOf(std::string_view name) {
  return shards_[NameHash(name) % kShards];
}

Registry::Family& Registry::GetFamily(Shard& shard, std::string_view name,
                                      Type type, Determinism det,
                                      std::string_view help) {
  auto it = shard.families.find(name);
  if (it == shard.families.end()) {
    Family family;
    family.name = std::string(name);
    family.type = type;
    family.det = det;
    family.help = std::string(help);
    it = shard.families.emplace(family.name, std::move(family)).first;
  }
  // One name, one type: silently reinterpreting a counter as a gauge would
  // corrupt snapshots.
  KELPIE_CHECK(it->second.type == type);
  return it->second;
}

Counter& Registry::GetCounter(std::string_view name, const Labels& labels,
                              Determinism det, std::string_view help) {
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = GetFamily(shard, name, Type::kCounter, det, help);
  std::unique_ptr<Counter>& slot = family.counters[CanonicalLabels(labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(std::string_view name, const Labels& labels,
                          Determinism det, std::string_view help) {
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = GetFamily(shard, name, Type::kGauge, det, help);
  std::unique_ptr<Gauge>& slot = family.gauges[CanonicalLabels(labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  std::vector<double> upper_bounds,
                                  const Labels& labels, Determinism det,
                                  std::string_view help) {
  Shard& shard = ShardOf(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  Family& family = GetFamily(shard, name, Type::kHistogram, det, help);
  if (family.histograms.empty() && family.bounds.empty()) {
    family.bounds = std::move(upper_bounds);
  }
  std::unique_ptr<Histogram>& slot =
      family.histograms[CanonicalLabels(labels)];
  if (!slot) slot = std::make_unique<Histogram>(family.bounds);
  return *slot;
}

uint64_t Registry::CounterFamilyTotal(std::string_view name) const {
  const Shard& shard = shards_[NameHash(name) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.families.find(name);
  if (it == shard.families.end()) return 0;
  uint64_t total = 0;
  for (const auto& [labels, counter] : it->second.counters) {
    total += counter->Value();
  }
  return total;
}

std::vector<const Registry::Family*> Registry::SortedFamilies() const {
  std::vector<const Family*> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, family] : shard.families) {
      out.push_back(&family);
    }
  }
  std::sort(out.begin(), out.end(), [](const Family* a, const Family* b) {
    return a->name < b->name;
  });
  return out;
}

std::string Registry::TextExposition(bool mask_wall_clock) const {
  std::string out;
  for (const Family* family : SortedFamilies()) {
    const bool mask =
        mask_wall_clock && family->det == Determinism::kWallClock;
    if (!family->help.empty()) {
      out += "# HELP " + family->name + " " + family->help + "\n";
    }
    out += "# TYPE " + family->name + " ";
    out += TypeName(static_cast<int>(family->type));
    out += "\n";
    auto value_or_masked = [mask](const std::string& v) {
      return mask ? std::string("MASKED") : v;
    };
    for (const auto& [labels, counter] : family->counters) {
      out += SeriesName(family->name, labels) + " " +
             value_or_masked(std::to_string(counter->Value())) + "\n";
    }
    for (const auto& [labels, gauge] : family->gauges) {
      out += SeriesName(family->name, labels) + " " +
             value_or_masked(FormatDouble(gauge->Value())) + "\n";
    }
    for (const auto& [labels, hist] : family->histograms) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= hist->bounds().size(); ++i) {
        cumulative += hist->BucketCount(i);
        const std::string le =
            i < hist->bounds().size() ? FormatDouble(hist->bounds()[i])
                                      : "+Inf";
        out += SeriesName(family->name + "_bucket", labels,
                          "le=\"" + le + "\"") +
               " " + value_or_masked(std::to_string(cumulative)) + "\n";
      }
      out += SeriesName(family->name + "_sum", labels) + " " +
             value_or_masked(FormatDouble(hist->Sum())) + "\n";
      out += SeriesName(family->name + "_count", labels) + " " +
             value_or_masked(std::to_string(hist->Count())) + "\n";
    }
  }
  return out;
}

std::string Registry::JsonSnapshot(bool mask_wall_clock) const {
  std::string out = "[";
  bool first_family = true;
  for (const Family* family : SortedFamilies()) {
    const bool mask =
        mask_wall_clock && family->det == Determinism::kWallClock;
    if (!first_family) out += ",";
    first_family = false;
    out += "{\"name\":\"" + JsonEscape(family->name) + "\",\"type\":\"";
    out += TypeName(static_cast<int>(family->type));
    out += "\",\"determinism\":\"";
    out += family->det == Determinism::kDeterministic ? "deterministic"
                                                      : "wall_clock";
    out += "\",\"help\":\"" + JsonEscape(family->help) + "\",\"series\":[";
    auto number_or_masked = [mask](const std::string& v) {
      return mask ? std::string("\"MASKED\"") : v;
    };
    bool first_series = true;
    auto begin_series = [&](const std::string& labels) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":\"" + JsonEscape(labels) + "\",";
    };
    for (const auto& [labels, counter] : family->counters) {
      begin_series(labels);
      out += "\"value\":" + number_or_masked(std::to_string(counter->Value())) +
             "}";
    }
    for (const auto& [labels, gauge] : family->gauges) {
      begin_series(labels);
      out += "\"value\":" + number_or_masked(JsonDouble(gauge->Value())) +
             "}";
    }
    for (const auto& [labels, hist] : family->histograms) {
      begin_series(labels);
      out += "\"buckets\":[";
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= hist->bounds().size(); ++i) {
        cumulative += hist->BucketCount(i);
        if (i > 0) out += ",";
        const std::string le =
            i < hist->bounds().size() ? FormatDouble(hist->bounds()[i])
                                      : "\"+Inf\"";
        out += "{\"le\":" + le +
               ",\"count\":" + number_or_masked(std::to_string(cumulative)) +
               "}";
      }
      out += "],\"sum\":" + number_or_masked(JsonDouble(hist->Sum()));
      out += ",\"count\":" + number_or_masked(std::to_string(hist->Count()));
      out += "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

ScopedRegistry::ScopedRegistry()
    : previous_(g_override.exchange(&registry_, std::memory_order_acq_rel)) {}

ScopedRegistry::~ScopedRegistry() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace metrics
}  // namespace kelpie
