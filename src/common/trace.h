#ifndef KELPIE_COMMON_TRACE_H_
#define KELPIE_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace kelpie {
namespace trace {

/// One finished span: a named steady-clock interval with a parent link.
/// `start_seconds` is measured from the collector's enable/clear instant,
/// so traces from different runs are comparable.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

/// Process-wide span collector, disabled by default. While disabled, Span
/// construction is a single relaxed atomic load and nothing else — no clock
/// reads, no allocation, no lock — so instrumented code paths cost nothing
/// unless a sink (CLI --metrics-out, a test) asks for traces.
///
/// Concurrent open/close from pool workers is safe (finish appends under a
/// mutex). Span *ids* are allocation-ordered: sequential span sites — all
/// of kelpie's production sites (the xp prediction loop, training,
/// evaluation, extraction entry points) — get deterministic ids, so the
/// masked JSON of a seeded run is byte-identical across runs and thread
/// counts. Wall-clock fields are schedule-dependent and print as MASKED in
/// masked snapshots.
class Collector {
 public:
  static Collector& Global();

  /// Enables collection and resets the clock origin and span ids.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all finished spans and resets the clock origin and span ids.
  void Clear();

  /// Finished spans sorted by id (i.e. open order).
  std::vector<SpanRecord> Finished() const;

  /// JSON forest of finished spans: roots in id order, children nested.
  /// With `mask_wall_clock`, start/duration render as "MASKED" — structure
  /// and names remain, so masked traces of a seeded run compare equal.
  std::string ToJson(bool mask_wall_clock = false) const;

  // Internal protocol used by Span.
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Record(SpanRecord record);
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  Collector() = default;
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::chrono::steady_clock::time_point origin_{};
  mutable std::mutex mu_;
  std::vector<SpanRecord> finished_;
};

/// RAII span: opens on construction, records on destruction. A no-op when
/// the global collector is disabled. Parentage is tracked per thread: the
/// innermost live Span on the constructing thread becomes the parent.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  std::string name_;
  std::chrono::steady_clock::time_point start_{};
};

/// Combined observability snapshot of the global registry and collector:
/// `{"metrics": [...], "spans": [...]}`. The CLI's --metrics-out writes
/// this; tests byte-compare it with `mask_wall_clock` on.
std::string ObservabilitySnapshotJson(bool mask_wall_clock = false);

}  // namespace trace
}  // namespace kelpie

#endif  // KELPIE_COMMON_TRACE_H_
