#ifndef KELPIE_COMMON_CRC32C_H_
#define KELPIE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kelpie {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum storage engines use to frame on-disk records (LevelDB, Kudu,
/// iSCSI). The model store and the experiment journal append a CRC32C
/// trailer to every payload so truncated or bit-flipped files are rejected
/// at load time instead of being reconstructed into corrupt state.

/// CRC32C of `size` bytes at `data`.
uint32_t Crc32c(const void* data, size_t size);

/// Convenience overload for string-like payloads.
inline uint32_t Crc32c(std::string_view s) { return Crc32c(s.data(), s.size()); }

/// Extends a running CRC with more bytes: Extend(Crc32c(a), b) ==
/// Crc32c(a+b). Pass the previous return value unchanged (the masking
/// against the initial/final XOR happens internally).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

}  // namespace kelpie

#endif  // KELPIE_COMMON_CRC32C_H_
