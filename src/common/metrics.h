#ifndef KELPIE_COMMON_METRICS_H_
#define KELPIE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kelpie {
namespace metrics {

/// Snapshot class of a metric family, fixed at registration.
///
/// The repo's extraction guarantees (DESIGN §7/§9) split observable
/// quantities in two: values the sequential replay commits — identical at
/// any thread count — and values tied to wall-clock time or to the thread
/// schedule (speculative post-trainings, cache contention, durations).
/// Families declare which class they are in, and snapshots taken with
/// `mask_wall_clock` print `MASKED` for every wall-clock value while still
/// listing the series. Masked snapshots of the same seeded workload are
/// therefore byte-identical across thread counts; the golden test in
/// tests/metrics_registry_test.cc enforces exactly that.
enum class Determinism {
  /// Schedule-invariant: committed by sequential code (training epochs,
  /// the builder's stopping-policy replay, fact-order accumulation).
  kDeterministic,
  /// Wall-clock or schedule-dependent: timings, speculative work counts,
  /// cache hit/miss/wait totals under parallel extraction.
  kWallClock,
};

/// Monotonic counter. Increment is a single relaxed atomic add — safe from
/// any thread, no locks, negligible cost on hot paths.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge (bits stored in an atomic u64).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics (a value lands in
/// the first bucket whose upper bound is >= it; the implicit +Inf bucket
/// catches the rest). Observe is lock-free: per-bucket relaxed adds plus a
/// CAS loop for the double sum, so concurrent merges from a pool are safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is +Inf.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& bounds() const { return bounds_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_;  // double bits, CAS-accumulated
};

/// `bound * growth^i` for i in [0, count): the usual latency bucket ladder.
std::vector<double> ExponentialBuckets(double bound, double growth,
                                       size_t count);
/// `start + width * i` for i in [0, count).
std::vector<double> LinearBuckets(double start, double width, size_t count);

/// Label set of one series; canonicalized (sorted by key) on registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Process-wide metric registry: named families of counters, gauges and
/// histograms, each family holding one series per label set.
///
/// Lookup (`Get*`) takes a sharded mutex and is meant for cold paths —
/// component constructors and per-call entry points resolve handles once,
/// then increment through the returned reference without any lock. The
/// returned references live as long as the registry.
///
/// Snapshots (`TextExposition`, `JsonSnapshot`) are deterministic: families
/// sorted by name, series by canonical label string, doubles printed with
/// round-trip precision. With `mask_wall_clock` every value of a
/// Determinism::kWallClock family prints as `MASKED` (series presence is
/// still compared — handles must be resolved on schedule-invariant paths).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry every component instruments against.
  /// Replaceable for test isolation via ScopedRegistry.
  static Registry& Global();

  Counter& GetCounter(std::string_view name, const Labels& labels = {},
                      Determinism det = Determinism::kWallClock,
                      std::string_view help = "");
  Gauge& GetGauge(std::string_view name, const Labels& labels = {},
                  Determinism det = Determinism::kWallClock,
                  std::string_view help = "");
  /// `upper_bounds` fixes the family's buckets on first registration;
  /// subsequent calls for the same family ignore it.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds,
                          const Labels& labels = {},
                          Determinism det = Determinism::kWallClock,
                          std::string_view help = "");

  /// Sum of all series of a counter family; 0 when the family does not
  /// exist (or is not a counter family). Cold, locked read — meant for
  /// benches and tests that report work totals, not for hot paths.
  uint64_t CounterFamilyTotal(std::string_view name) const;

  /// Prometheus text exposition (# HELP / # TYPE / series lines).
  std::string TextExposition(bool mask_wall_clock = false) const;
  /// JSON array of family objects (name/type/determinism/help/series).
  std::string JsonSnapshot(bool mask_wall_clock = false) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    std::string name;
    Type type = Type::kCounter;
    Determinism det = Determinism::kWallClock;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    // Keyed by canonical label string; std::map keeps series sorted for
    // deterministic snapshots.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  static constexpr size_t kShards = 8;

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Family, std::less<>> families;
  };

  Shard& ShardOf(std::string_view name);
  Family& GetFamily(Shard& shard, std::string_view name, Type type,
                    Determinism det, std::string_view help);
  /// All families of all shards, sorted by name, snapshotted under the
  /// shard locks (pointers stay valid: families are never removed).
  std::vector<const Family*> SortedFamilies() const;

  std::array<Shard, kShards> shards_;
};

/// RAII swap of the global registry, for test isolation: metrics recorded
/// while alive land in this instance instead of the process registry.
///
/// Components resolve metric handles from Registry::Global() when they are
/// constructed (or at call entry), so anything whose metrics the test wants
/// captured must be constructed *after* the ScopedRegistry — and must not
/// outlive it (its handles point into the scoped instance).
class ScopedRegistry {
 public:
  ScopedRegistry();
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  Registry& registry() { return registry_; }

 private:
  Registry registry_;
  Registry* previous_;
};

/// `%.17g` with canonical spellings for +Inf/-Inf/NaN: enough digits to
/// round-trip any double, stable across platforms for identical bits.
std::string FormatDouble(double v);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view s);

}  // namespace metrics
}  // namespace kelpie

#endif  // KELPIE_COMMON_METRICS_H_
