#ifndef KELPIE_COMMON_RESULT_H_
#define KELPIE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace kelpie {

/// A value-or-error wrapper in the style of arrow::Result / absl::StatusOr.
///
/// A `Result<T>` holds either a `T` (when `ok()`) or a non-OK `Status`.
/// Accessing the value of an errored result aborts in debug builds; callers
/// are expected to check `ok()` first or use the KELPIE_ASSIGN_OR_RETURN
/// macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return Status::NotFound(...)`.
  /// Constructing from an OK status is a programming error and is converted
  /// to an Internal error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// Returns the error status, or OK when a value is held.
  const Status& status() const { return status_; }

  /// Returns the held value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, `fallback` otherwise.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace kelpie

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs`. Usable in functions returning Status
/// or Result<U>.
#define KELPIE_ASSIGN_OR_RETURN(lhs, rexpr)     \
  KELPIE_ASSIGN_OR_RETURN_IMPL_(                \
      KELPIE_RESULT_CONCAT_(kelpie_result_, __LINE__), lhs, rexpr)

#define KELPIE_RESULT_CONCAT_INNER_(a, b) a##b
#define KELPIE_RESULT_CONCAT_(a, b) KELPIE_RESULT_CONCAT_INNER_(a, b)
#define KELPIE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

#endif  // KELPIE_COMMON_RESULT_H_
