#ifndef KELPIE_COMMON_STATUS_H_
#define KELPIE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace kelpie {

/// Error categories used across the library. Mirrors the coarse-grained
/// error taxonomy of mature storage engines: callers branch on the code,
/// humans read the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kDataLoss,
  kAborted,
  kCancelled,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Fallible operations in this library
/// return `Status` (or `Result<T>`, see result.h) instead of throwing:
/// exceptions are never used on library paths.
///
/// The class is cheap to copy in the success case (no allocation) and carries
/// a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An empty message is
  /// allowed but discouraged for non-OK codes.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Unrecoverable corruption of stored data (checksum mismatch, truncated
  /// file, bad framing). Distinct from kIoError: the I/O succeeded but the
  /// bytes are wrong.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  /// Operation deliberately stopped before completion (training divergence
  /// with recovery disabled or budget exhausted, an interrupted pipeline
  /// run). The system state is consistent; retrying may succeed.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// The caller (or a signal) requested cancellation. The operation drained
  /// cooperatively; partial results, if any, are valid best-so-far values.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A wall-clock deadline expired before the operation finished. Like
  /// kCancelled, any partial results are consistent best-so-far values.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service cannot take the request right now (admission control shed
  /// it — queue full or shutting down). Retrying later may succeed; nothing
  /// was executed on the request's behalf.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace kelpie

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define KELPIE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::kelpie::Status kelpie_status_macro_s_ = (expr); \
    if (!kelpie_status_macro_s_.ok()) {               \
      return kelpie_status_macro_s_;                  \
    }                                                 \
  } while (false)

#endif  // KELPIE_COMMON_STATUS_H_
