#include "common/trace.h"

#include <algorithm>
#include <unordered_map>

#include "common/metrics.h"

namespace kelpie {
namespace trace {

namespace {

/// Innermost live span of the current thread; 0 at top level. Pool workers
/// start at 0, so spans opened inside parallel regions parent to the worker
/// top level rather than racing on a shared stack.
thread_local uint64_t t_current_parent = 0;

}  // namespace

Collector& Collector::Global() {
  static Collector* instance = new Collector();  // leaked on purpose
  return *instance;
}

void Collector::Enable() {
  Clear();
  enabled_.store(true, std::memory_order_release);
}

void Collector::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void Collector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.clear();
  next_id_.store(1, std::memory_order_relaxed);
  origin_ = std::chrono::steady_clock::now();
}

void Collector::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  finished_.push_back(std::move(record));
}

std::vector<SpanRecord> Collector::Finished() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = finished_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.id < b.id;
            });
  return out;
}

namespace {

void AppendSpanJson(
    const SpanRecord& span,
    const std::unordered_map<uint64_t, std::vector<const SpanRecord*>>&
        children,
    bool mask, std::string& out) {
  out += "{\"name\":\"" + metrics::JsonEscape(span.name) + "\"";
  if (mask) {
    out += ",\"start_seconds\":\"MASKED\",\"duration_seconds\":\"MASKED\"";
  } else {
    out += ",\"start_seconds\":" + metrics::FormatDouble(span.start_seconds);
    out +=
        ",\"duration_seconds\":" + metrics::FormatDouble(span.duration_seconds);
  }
  out += ",\"children\":[";
  auto it = children.find(span.id);
  if (it != children.end()) {
    bool first = true;
    for (const SpanRecord* child : it->second) {
      if (!first) out += ",";
      first = false;
      AppendSpanJson(*child, children, mask, out);
    }
  }
  out += "]}";
}

}  // namespace

std::string Collector::ToJson(bool mask_wall_clock) const {
  const std::vector<SpanRecord> spans = Finished();
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  std::unordered_map<uint64_t, bool> known;
  for (const SpanRecord& s : spans) known[s.id] = true;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    // A parent that never finished (still open, or opened before Clear) is
    // not in the forest; treat its children as roots rather than dropping
    // them.
    if (s.parent != 0 && known.count(s.parent) > 0) {
      children[s.parent].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  std::string out = "[";
  bool first = true;
  for (const SpanRecord* root : roots) {
    if (!first) out += ",";
    first = false;
    AppendSpanJson(*root, children, mask_wall_clock, out);
  }
  out += "]";
  return out;
}

Span::Span(std::string_view name) {
  Collector& collector = Collector::Global();
  if (!collector.enabled()) return;
  active_ = true;
  name_ = std::string(name);
  id_ = collector.NextId();
  parent_ = t_current_parent;
  t_current_parent = id_;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  Collector& collector = Collector::Global();
  const auto end = std::chrono::steady_clock::now();
  t_current_parent = parent_;
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.start_seconds =
      std::chrono::duration<double>(start_ - collector.origin()).count();
  record.duration_seconds = std::chrono::duration<double>(end - start_).count();
  collector.Record(std::move(record));
}

std::string ObservabilitySnapshotJson(bool mask_wall_clock) {
  std::string out = "{\"metrics\":";
  out += metrics::Registry::Global().JsonSnapshot(mask_wall_clock);
  out += ",\"spans\":";
  out += Collector::Global().ToJson(mask_wall_clock);
  out += "}";
  return out;
}

}  // namespace trace
}  // namespace kelpie
