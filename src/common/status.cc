#include "common/status.h"

namespace kelpie {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "Ok";
  }
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace kelpie
