#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace kelpie {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  // Chunked dispatch: one task per worker strand, each claiming indices
  // from a shared atomic counter — cheap and balanced for heterogeneous
  // per-index costs (head ranks vary wildly across models).
  std::atomic<size_t> next{0};
  const size_t strands = std::min(pool.num_threads(), count);
  for (size_t s = 0; s < strands; ++s) {
    pool.Submit([&next, count, &fn] {
      while (true) {
        size_t i = next.fetch_add(1);
        if (i >= count) break;
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace kelpie
