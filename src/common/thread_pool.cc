#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>

namespace kelpie {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

namespace {

/// Shared state of one ParallelFor batch. Tasks keep the batch alive via
/// shared_ptr: helper strands that the pool only schedules after the batch
/// has already drained see `next >= count` and return without touching fn.
struct ParallelBatch {
  ParallelBatch(size_t n, std::function<void(size_t)> f)
      : count(n), fn(std::move(f)) {}

  const size_t count;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception; guarded by mu

  /// Claims indices until the batch is exhausted.
  void Run() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        // Completion may race with the caller's predicate check; notify
        // under the mutex so the wakeup cannot be lost.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

/// Shared state of one CancellableParallelFor batch. Claims and the stop
/// latch share one atomic word so they serialize: once the stop bit is set,
/// no CAS claim can succeed, which makes the claim count at latch time the
/// final, stable drain target. Claims are handed out in index order, so the
/// set of indices that ever run is always the contiguous prefix
/// [0, target).
struct CancellableBatch {
  static constexpr uint64_t kStopBit = uint64_t{1} << 63;

  CancellableBatch(size_t n, std::function<void(size_t)> f,
                   std::function<Status()> check)
      : count(n), fn(std::move(f)), interrupt(std::move(check)) {
    target.store(count);
  }

  const uint64_t count;
  const std::function<void(size_t)> fn;
  const std::function<Status()> interrupt;
  /// Low 63 bits: number of claimed indices. Bit 63: stop latch.
  std::atomic<uint64_t> state{0};
  std::atomic<uint64_t> done{0};
  /// Number of indices that must finish before the batch is drained.
  /// `count` until a latch lowers it to the claim count at latch time.
  std::atomic<uint64_t> target{0};
  std::mutex mu;
  std::condition_variable cv;
  Status status;             // first interrupt status; guarded by mu
  std::exception_ptr error;  // first exception; guarded by mu

  /// Sets the stop bit (idempotent) and records the first cause. The
  /// latcher always holds an unfinished claim of its own, so its Finish()
  /// — sequenced after the target store — performs the final notify if this
  /// one races with concurrent finishers.
  void LatchStop(Status interrupt_status, std::exception_ptr exception) {
    const uint64_t prior = state.fetch_or(kStopBit);
    std::lock_guard<std::mutex> lock(mu);
    if ((prior & kStopBit) == 0) {
      target.store(std::min(count, prior & ~kStopBit));
    }
    if (exception != nullptr) {
      if (!error) error = exception;
    } else if (status.ok() && !interrupt_status.ok()) {
      status = std::move(interrupt_status);
    }
    cv.notify_all();
  }

  void Finish() {
    if (done.fetch_add(1) + 1 == target.load()) {
      // Completion may race with the caller's predicate check; notify
      // under the mutex so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }

  /// Claims and runs indices until the batch is exhausted or stopped.
  void Run() {
    while (true) {
      uint64_t s = state.load();
      uint64_t index;
      while (true) {
        // Strands scheduled after the batch drained bail out here, before
        // touching the caller-owned closures.
        if ((s & kStopBit) != 0 || (s & ~kStopBit) >= count) return;
        if (state.compare_exchange_weak(s, s + 1)) {
          index = s;
          break;
        }
      }
      // The claim is committed: this index runs and counts toward the
      // drain target no matter what, so the caller cannot unblock (and the
      // closures cannot die) until Finish() below.
      if (interrupt) {
        Status interrupt_status = interrupt();
        if (!interrupt_status.ok()) {
          LatchStop(std::move(interrupt_status), nullptr);
        }
      }
      try {
        fn(static_cast<size_t>(index));
      } catch (...) {
        LatchStop(Status::Ok(), std::current_exception());
      }
      Finish();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  auto batch = std::make_shared<ParallelBatch>(count, fn);
  // The caller claims indices too, so only count - 1 helpers can ever be
  // useful. Caller participation is what makes nesting safe: a batch
  // started from inside a pool task completes even if no worker is free.
  const size_t helpers = std::min(pool.num_threads(), count - 1);
  for (size_t s = 0; s < helpers; ++s) {
    pool.Submit([batch] { batch->Run(); });
  }
  batch->Run();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done.load() == batch->count; });
  if (batch->error) std::rethrow_exception(batch->error);
}

ParallelOutcome CancellableParallelFor(
    ThreadPool& pool, size_t count, const std::function<void(size_t)>& fn,
    const std::function<Status()>& interrupt) {
  if (count == 0) return ParallelOutcome{Status::Ok(), 0};
  // Check once up front on the calling thread so an already-expired control
  // starts zero chunks instead of one per strand.
  if (interrupt) {
    Status entry = interrupt();
    if (!entry.ok()) return ParallelOutcome{std::move(entry), 0};
  }
  auto batch = std::make_shared<CancellableBatch>(count, fn, interrupt);
  const size_t helpers = std::min(pool.num_threads(), count - 1);
  for (size_t s = 0; s < helpers; ++s) {
    pool.Submit([batch] { batch->Run(); });
  }
  batch->Run();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock,
                 [&] { return batch->done.load() == batch->target.load(); });
  if (batch->error) std::rethrow_exception(batch->error);
  return ParallelOutcome{batch->status,
                         static_cast<size_t>(batch->done.load())};
}

}  // namespace kelpie
