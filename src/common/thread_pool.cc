#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace kelpie {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

namespace {

/// Shared state of one ParallelFor batch. Tasks keep the batch alive via
/// shared_ptr: helper strands that the pool only schedules after the batch
/// has already drained see `next >= count` and return without touching fn.
struct ParallelBatch {
  ParallelBatch(size_t n, std::function<void(size_t)> f)
      : count(n), fn(std::move(f)) {}

  const size_t count;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception; guarded by mu

  /// Claims indices until the batch is exhausted.
  void Run() {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= count) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        // Completion may race with the caller's predicate check; notify
        // under the mutex so the wakeup cannot be lost.
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  auto batch = std::make_shared<ParallelBatch>(count, fn);
  // The caller claims indices too, so only count - 1 helpers can ever be
  // useful. Caller participation is what makes nesting safe: a batch
  // started from inside a pool task completes even if no worker is free.
  const size_t helpers = std::min(pool.num_threads(), count - 1);
  for (size_t s = 0; s < helpers; ++s) {
    pool.Submit([batch] { batch->Run(); });
  }
  batch->Run();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done.load() == batch->count; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace kelpie
