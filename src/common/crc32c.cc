#include "common/crc32c.h"

#include <array>

namespace kelpie {

namespace {

/// Byte-at-a-time table for the reflected Castagnoli polynomial, built once
/// at static-init time. A software table keeps the implementation portable
/// (no SSE4.2 requirement) at ~1 GB/s — far above what the small model and
/// journal files need.
std::array<uint32_t, 256> BuildTable() {
  constexpr uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const std::array<uint32_t, 256>& table = Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace kelpie
