#include "common/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

namespace kelpie {
namespace failpoint {

namespace {

struct Entry {
  uint64_t match = kAnyValue;
  int remaining = 0;  // firings left; negative = unlimited
  uint64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

/// Count of armed failpoints; lets Fire() bail out with one relaxed load in
/// the (production) case where nothing is armed.
std::atomic<int> g_armed{0};

}  // namespace

void Arm(std::string_view name, uint64_t match, int times) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.entries.try_emplace(std::string(name));
  if (inserted) {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = Entry{match, times, 0};
}

void Disarm(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.entries.erase(std::string(name)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(static_cast<int>(registry.entries.size()),
                    std::memory_order_relaxed);
  registry.entries.clear();
}

bool Fire(std::string_view name, uint64_t value) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(std::string(name));
  if (it == registry.entries.end()) return false;
  Entry& entry = it->second;
  if (entry.match != kAnyValue && entry.match != value) return false;
  if (entry.remaining == 0) return false;
  if (entry.remaining > 0) --entry.remaining;
  ++entry.fired;
  return true;
}

uint64_t FireCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(std::string(name));
  return it == registry.entries.end() ? 0 : it->second.fired;
}

}  // namespace failpoint
}  // namespace kelpie
