#include "common/failpoint.h"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace kelpie {
namespace failpoint {

namespace {

struct Entry {
  uint64_t match = kAnyValue;
  int remaining = 0;  // firings left; negative = unlimited
  uint64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

/// Count of armed failpoints; lets Fire() bail out with one relaxed load in
/// the (production) case where nothing is armed.
std::atomic<int> g_armed{0};

}  // namespace

void Arm(std::string_view name, uint64_t match, int times) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.entries.try_emplace(std::string(name));
  if (inserted) {
    g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  it->second = Entry{match, times, 0};
}

void Disarm(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.entries.erase(std::string(name)) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  g_armed.fetch_sub(static_cast<int>(registry.entries.size()),
                    std::memory_order_relaxed);
  registry.entries.clear();
}

Status ArmFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    std::string_view fields[3];
    size_t n_fields = 0;
    size_t start = 0;
    while (n_fields < 3) {
      size_t colon = entry.find(':', start);
      if (colon == std::string_view::npos) {
        fields[n_fields++] = entry.substr(start);
        break;
      }
      fields[n_fields++] = entry.substr(start, colon - start);
      start = colon + 1;
      if (n_fields == 3) {
        return Status::InvalidArgument("failpoint spec entry '" +
                                       std::string(entry) +
                                       "' has too many fields");
      }
    }
    if (fields[0].empty()) {
      return Status::InvalidArgument("failpoint spec entry '" +
                                     std::string(entry) + "' has no name");
    }

    uint64_t match = kAnyValue;
    if (n_fields >= 2 && fields[1] != "*") {
      try {
        size_t end = 0;
        match = std::stoull(std::string(fields[1]), &end);
        if (end != fields[1].size()) throw std::invalid_argument("");
      } catch (const std::exception&) {
        return Status::InvalidArgument(
            "failpoint spec '" + std::string(entry) +
            "': match must be a number or '*', got '" +
            std::string(fields[1]) + "'");
      }
    }

    int times = 1;
    if (n_fields >= 3) {
      if (fields[2] == "forever") {
        times = kForever;
      } else {
        try {
          size_t end = 0;
          times = std::stoi(std::string(fields[2]), &end);
          if (end != fields[2].size() || times < 0) {
            throw std::invalid_argument("");
          }
        } catch (const std::exception&) {
          return Status::InvalidArgument(
              "failpoint spec '" + std::string(entry) +
              "': times must be a non-negative number or 'forever', got '" +
              std::string(fields[2]) + "'");
        }
      }
    }

    Arm(fields[0], match, times);
  }
  return Status::Ok();
}

bool Fire(std::string_view name, uint64_t value) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(std::string(name));
  if (it == registry.entries.end()) return false;
  Entry& entry = it->second;
  if (entry.match != kAnyValue && entry.match != value) return false;
  if (entry.remaining == 0) return false;
  if (entry.remaining > 0) --entry.remaining;
  ++entry.fired;
  return true;
}

uint64_t FireCount(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.entries.find(std::string(name));
  return it == registry.entries.end() ? 0 : it->second.fired;
}

}  // namespace failpoint
}  // namespace kelpie
