#ifndef KELPIE_COMMON_THREAD_POOL_H_
#define KELPIE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/status.h"

namespace kelpie {

/// A fixed-size worker pool for embarrassingly parallel read-only work:
/// evaluation ranks every test fact independently against an immutable
/// model, and the Relevance Engine / Explanation Builder evaluate candidate
/// explanations whose post-trainings are seeded independently of schedule.
/// Training stays single-threaded by design — its update order is part of
/// the deterministic contract.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) across the pool and waits for completion.
/// fn must be safe to call concurrently for distinct indices; iteration
/// order is unspecified but every index runs exactly once.
///
/// The calling thread participates in the work, so the call is re-entrant:
/// a ParallelFor issued from inside a pool task makes progress even when
/// every worker is busy (nested batches drain through their callers).
///
/// If one or more invocations of fn throw, the remaining indices still run
/// and the *first* captured exception is rethrown on the calling thread
/// after the batch completes.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

/// ParallelFor variant collecting per-index results: returns a vector v of
/// size `count` with v[i] = fn(i), always in index order regardless of the
/// execution schedule. The result type must be default-constructible.
template <typename Fn>
auto ParallelMap(ThreadPool& pool, size_t count, Fn&& fn)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(count);
  ParallelFor(pool, count, [&](size_t i) { out[i] = fn(i); });
  return out;
}

/// Result of a cancellable batch. `completed` is a *contiguous prefix*:
/// indices [0, completed) each ran exactly once and indices >= completed
/// never started. `status` is Ok when the batch ran to its natural end
/// (completed == count), otherwise the first interrupt status observed.
struct ParallelOutcome {
  Status status;
  size_t completed = 0;
};

/// ParallelFor with cooperative interruption. `interrupt` is polled at chunk
/// boundaries (never concurrently with itself from a drained batch); the
/// first non-OK status it returns stops new indices from starting. Chunks
/// already claimed — at most one per strand — still run to completion, so
/// the batch drains cleanly and `fn`/`interrupt` are never invoked after the
/// call returns. Exceptions from fn behave like ParallelFor's, except that
/// an exception also stops new indices (the first one is rethrown after the
/// drain).
///
/// Like ParallelFor, the calling thread participates, so nested calls from
/// inside pool tasks make progress even when every worker is busy.
ParallelOutcome CancellableParallelFor(
    ThreadPool& pool, size_t count, const std::function<void(size_t)>& fn,
    const std::function<Status()>& interrupt);

/// CancellableParallelFor collecting per-index results. Returns only the
/// completed prefix: the vector has size outcome->completed, with v[i] =
/// fn(i) in index order.
template <typename Fn>
auto CancellableParallelMap(ThreadPool& pool, size_t count, Fn&& fn,
                            const std::function<Status()>& interrupt,
                            ParallelOutcome* outcome)
    -> std::vector<decltype(fn(size_t{0}))> {
  std::vector<decltype(fn(size_t{0}))> out(count);
  *outcome = CancellableParallelFor(
      pool, count, [&](size_t i) { out[i] = fn(i); }, interrupt);
  out.resize(outcome->completed);
  return out;
}

}  // namespace kelpie

#endif  // KELPIE_COMMON_THREAD_POOL_H_
