#include "ml/embedding_table.h"

#include <cmath>

namespace kelpie {

void InitRow(std::span<float> row, InitScheme scheme, double scale, Rng& rng,
             size_t fan_in, size_t fan_out) {
  switch (scheme) {
    case InitScheme::kNormal:
      for (float& v : row) {
        v = static_cast<float>(rng.Normal(0.0, scale));
      }
      break;
    case InitScheme::kUniform:
      for (float& v : row) {
        v = static_cast<float>(rng.UniformDouble(-scale, scale));
      }
      break;
    case InitScheme::kXavierUniform: {
      double fan = static_cast<double>(fan_in + fan_out);
      if (fan <= 0.0) fan = static_cast<double>(row.size());
      double bound = std::sqrt(6.0 / fan);
      for (float& v : row) {
        v = static_cast<float>(rng.UniformDouble(-bound, bound));
      }
      break;
    }
  }
}

void InitMatrix(Matrix& m, InitScheme scheme, double scale, Rng& rng) {
  for (size_t r = 0; r < m.rows(); ++r) {
    InitRow(m.Row(r), scheme, scale, rng, m.cols(), m.rows());
  }
}

}  // namespace kelpie
