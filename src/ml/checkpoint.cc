#include "ml/checkpoint.h"

#include <bit>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/atomic_file.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "ml/serialization.h"

namespace kelpie {

namespace {

constexpr std::string_view kMagic = "KELPCKP1";
// v2 appends the "sparse" section (sparse optimizer blob). v1 files —
// written before sparse updates existed, necessarily by dense trainers —
// are still accepted on read and restore with an empty sparse blob.
constexpr uint64_t kVersion = 2;
constexpr uint64_t kSectionCount = 5;
constexpr uint64_t kVersionV1 = 1;
constexpr uint64_t kSectionCountV1 = 4;
constexpr std::string_view kFileName = "train.ckpt";
/// Upper bound on one section's payload (the largest legitimate payload is
/// the params section of a big model; a corrupt header must not drive a
/// multi-gigabyte allocation).
constexpr uint64_t kMaxSectionBytes = 1ull << 32;
/// Bound on restored list lengths (recovery events, counters, param spans);
/// far above anything real, low enough to reject corrupt headers cheaply.
constexpr uint64_t kMaxListEntries = 4096;

metrics::Counter& RestoreCounter(std::string_view outcome) {
  return metrics::Registry::Global().GetCounter(
      "kelpie_checkpoint_restore_total", {{"outcome", std::string(outcome)}},
      metrics::Determinism::kDeterministic,
      "Training checkpoint restore attempts by outcome.");
}

Status WriteF32Bits(std::ostream& out, float v) {
  return WriteU64(out, std::bit_cast<uint32_t>(v));
}

Status ReadF32Bits(std::istream& in, float& v) {
  uint64_t bits = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, bits));
  if (bits > std::numeric_limits<uint32_t>::max()) {
    return Status::DataLoss("float bit pattern out of range");
  }
  v = std::bit_cast<float>(static_cast<uint32_t>(bits));
  return Status::Ok();
}

/// name + u64 payload size + payload bytes + little-endian u32 CRC32C of
/// the payload. The CRC frames each section independently so corruption is
/// localized, and the declared size bounds the read so a torn tail is a
/// DataLoss instead of a short read into garbage.
Status WriteSection(std::ostream& out, std::string_view name,
                    const std::string& payload) {
  KELPIE_RETURN_IF_ERROR(WriteString(out, name));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const uint32_t crc = Crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>((crc >> (8 * i)) & 0xFF));
  }
  if (!out) return Status::Internal("checkpoint section write failed");
  return Status::Ok();
}

Status ReadSection(std::istream& in, std::string_view want_name,
                   std::string& payload) {
  std::string name;
  KELPIE_RETURN_IF_ERROR(ReadString(in, name));
  if (name != want_name) {
    return Status::DataLoss("checkpoint section order: expected '" +
                            std::string(want_name) + "', found '" + name +
                            "'");
  }
  uint64_t size = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, size));
  if (size > kMaxSectionBytes) {
    return Status::DataLoss("checkpoint section '" + name +
                            "' declares an implausible size");
  }
  payload.resize(size);
  in.read(payload.data(), static_cast<std::streamsize>(size));
  char crc_bytes[4];
  in.read(crc_bytes, 4);
  if (!in) {
    return Status::DataLoss("checkpoint section '" + name + "' truncated");
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(static_cast<unsigned char>(crc_bytes[i]))
              << (8 * i);
  }
  if (stored != Crc32c(payload)) {
    return Status::DataLoss("checkpoint section '" + name +
                            "' checksum mismatch");
  }
  return Status::Ok();
}

Status SerializeStateSection(const CheckpointState& state, std::string& out) {
  std::ostringstream os;
  KELPIE_RETURN_IF_ERROR(WriteU64(os, state.next_epoch));
  KELPIE_RETURN_IF_ERROR(WriteF32Bits(os, state.lr_scale));
  KELPIE_RETURN_IF_ERROR(
      WriteU64(os, static_cast<uint64_t>(state.recoveries_left)));
  KELPIE_RETURN_IF_ERROR(WriteU64(os, state.report.epochs_run));
  KELPIE_RETURN_IF_ERROR(
      WriteU64(os, static_cast<uint64_t>(state.report.recoveries)));
  KELPIE_RETURN_IF_ERROR(WriteF32Bits(os, state.report.lr_scale));
  KELPIE_RETURN_IF_ERROR(
      WriteU64(os, static_cast<uint64_t>(state.report.completeness)));
  KELPIE_RETURN_IF_ERROR(WriteU64(os, state.report.events.size()));
  for (const RecoveryEvent& e : state.report.events) {
    KELPIE_RETURN_IF_ERROR(WriteU64(os, e.epoch));
    KELPIE_RETURN_IF_ERROR(WriteF32Bits(os, e.lr_scale));
    KELPIE_RETURN_IF_ERROR(WriteString(os, e.reason));
  }
  out = std::move(os).str();
  return Status::Ok();
}

Status ParseStateSection(const std::string& payload, CheckpointState& state) {
  std::istringstream in(payload);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, state.next_epoch));
  KELPIE_RETURN_IF_ERROR(ReadF32Bits(in, state.lr_scale));
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  state.recoveries_left = static_cast<int64_t>(v);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, state.report.epochs_run));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  state.report.recoveries = static_cast<int>(v);
  KELPIE_RETURN_IF_ERROR(ReadF32Bits(in, state.report.lr_scale));
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  if (v > static_cast<uint64_t>(Completeness::kCancelled)) {
    return Status::DataLoss("checkpoint completeness out of range");
  }
  state.report.completeness = static_cast<Completeness>(v);
  uint64_t n_events = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, n_events));
  if (n_events > kMaxListEntries) {
    return Status::DataLoss("checkpoint recovery ledger implausibly long");
  }
  state.report.events.resize(n_events);
  for (RecoveryEvent& e : state.report.events) {
    KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
    e.epoch = v;
    KELPIE_RETURN_IF_ERROR(ReadF32Bits(in, e.lr_scale));
    KELPIE_RETURN_IF_ERROR(ReadString(in, e.reason));
  }
  return Status::Ok();
}

Status SerializeRngSection(const RngState& rng, std::string& out) {
  std::ostringstream os;
  for (uint64_t s : rng.s) KELPIE_RETURN_IF_ERROR(WriteU64(os, s));
  KELPIE_RETURN_IF_ERROR(WriteU64(os, rng.has_cached_normal ? 1 : 0));
  KELPIE_RETURN_IF_ERROR(
      WriteU64(os, std::bit_cast<uint64_t>(rng.cached_normal)));
  out = std::move(os).str();
  return Status::Ok();
}

Status ParseRngSection(const std::string& payload, RngState& rng) {
  std::istringstream in(payload);
  for (uint64_t& s : rng.s) KELPIE_RETURN_IF_ERROR(ReadU64(in, s));
  uint64_t v = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  rng.has_cached_normal = (v != 0);
  KELPIE_RETURN_IF_ERROR(ReadU64(in, v));
  rng.cached_normal = std::bit_cast<double>(v);
  return Status::Ok();
}

Status SerializeCountersSection(const std::vector<uint64_t>& counters,
                                std::string& out) {
  std::ostringstream os;
  KELPIE_RETURN_IF_ERROR(WriteU64(os, counters.size()));
  for (uint64_t c : counters) KELPIE_RETURN_IF_ERROR(WriteU64(os, c));
  out = std::move(os).str();
  return Status::Ok();
}

Status ParseCountersSection(const std::string& payload,
                            std::vector<uint64_t>& counters) {
  std::istringstream in(payload);
  uint64_t n = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, n));
  if (n > kMaxListEntries) {
    return Status::DataLoss("checkpoint counters implausibly long");
  }
  counters.resize(n);
  for (uint64_t& c : counters) KELPIE_RETURN_IF_ERROR(ReadU64(in, c));
  return Status::Ok();
}

Status SerializeParamsSection(const std::vector<std::vector<float>>& params,
                              std::string& out) {
  std::ostringstream os;
  KELPIE_RETURN_IF_ERROR(WriteU64(os, params.size()));
  for (const std::vector<float>& span : params) {
    KELPIE_RETURN_IF_ERROR(WriteFloats(os, span));
  }
  out = std::move(os).str();
  return Status::Ok();
}

Status ParseParamsSection(const std::string& payload,
                          std::vector<std::vector<float>>& params) {
  std::istringstream in(payload);
  uint64_t n = 0;
  KELPIE_RETURN_IF_ERROR(ReadU64(in, n));
  if (n > kMaxListEntries) {
    return Status::DataLoss("checkpoint params span count implausible");
  }
  params.resize(n);
  for (std::vector<float>& span : params) {
    KELPIE_RETURN_IF_ERROR(ReadFloats(in, span));
  }
  return Status::Ok();
}

}  // namespace

std::string_view CheckpointRestoreOutcomeName(CheckpointRestoreOutcome o) {
  switch (o) {
    case CheckpointRestoreOutcome::kNotAttempted:
      return "NotAttempted";
    case CheckpointRestoreOutcome::kNoFile:
      return "NoFile";
    case CheckpointRestoreOutcome::kRestored:
      return "Restored";
    case CheckpointRestoreOutcome::kCorrupt:
      return "Corrupt";
    case CheckpointRestoreOutcome::kStaleConfig:
      return "StaleConfig";
    case CheckpointRestoreOutcome::kShapeMismatch:
      return "ShapeMismatch";
  }
  return "Unknown";
}

TrainCheckpointer::TrainCheckpointer(CheckpointOptions options)
    : options_(std::move(options)) {
  if (options_.interval_epochs == 0) options_.interval_epochs = 1;
}

std::string TrainCheckpointer::FilePath() const {
  return (std::filesystem::path(options_.directory) / kFileName).string();
}

bool TrainCheckpointer::ShouldSave(uint64_t completed_epochs) const {
  return saves_enabled() && completed_epochs % options_.interval_epochs == 0;
}

std::optional<CheckpointState> TrainCheckpointer::TryRestore() {
  restored_epoch_ = 0;
  if (!options_.resume) {
    outcome_ = CheckpointRestoreOutcome::kNotAttempted;
    return std::nullopt;
  }
  const std::string path = FilePath();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    outcome_ = CheckpointRestoreOutcome::kNoFile;
    RestoreCounter("no_file").Increment();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string contents = std::move(buf).str();

  // Everything below degrades: a checkpoint that cannot be trusted is a
  // scratch start (or a restart from the last good checkpoint the atomic
  // writer preserved), never a hard failure.
  auto degrade = [&](CheckpointRestoreOutcome outcome,
                     const std::string& why) -> std::optional<CheckpointState> {
    outcome_ = outcome;
    RestoreCounter(outcome == CheckpointRestoreOutcome::kStaleConfig
                       ? "stale_config"
                       : "corrupt")
        .Increment();
    KELPIE_LOG(Warning) << "checkpoint " << path << ": " << why
                        << "; restarting training from scratch";
    return std::nullopt;
  };

  std::istringstream payload(contents);
  char magic[8];
  payload.read(magic, 8);
  if (!payload || std::string_view(magic, 8) != kMagic) {
    return degrade(CheckpointRestoreOutcome::kCorrupt, "bad magic");
  }
  uint64_t version = 0, fingerprint = 0, sections = 0;
  Status header = ReadU64(payload, version);
  if (header.ok()) header = ReadU64(payload, fingerprint);
  if (header.ok()) header = ReadU64(payload, sections);
  const bool is_v1 = version == kVersionV1 && sections == kSectionCountV1;
  const bool is_v2 = version == kVersion && sections == kSectionCount;
  if (!header.ok() || (!is_v1 && !is_v2)) {
    return degrade(CheckpointRestoreOutcome::kCorrupt,
                   "unreadable or wrong-version header");
  }
  uint64_t expected = options_.fingerprint;
  if (failpoint::Fire("checkpoint.stale_config")) expected ^= 1;
  if (options_.mode == CheckpointMode::kResume && fingerprint != expected) {
    return degrade(CheckpointRestoreOutcome::kStaleConfig,
                   "config fingerprint mismatch (different model, "
                   "hyperparameters, dataset or seed)");
  }

  CheckpointState state;
  std::string section;
  Status parsed = ReadSection(payload, "state", section);
  if (parsed.ok()) parsed = ParseStateSection(section, state);
  if (parsed.ok()) parsed = ReadSection(payload, "rng", section);
  if (parsed.ok()) parsed = ParseRngSection(section, state.rng);
  if (parsed.ok()) parsed = ReadSection(payload, "counters", section);
  if (parsed.ok()) parsed = ParseCountersSection(section, state.counters);
  if (parsed.ok()) parsed = ReadSection(payload, "params", section);
  if (parsed.ok()) parsed = ParseParamsSection(section, state.params);
  if (parsed.ok() && is_v2) {
    // The sparse section payload is the opaque save_sparse blob itself;
    // the trainer's restore_sparse hook is its parser.
    parsed = ReadSection(payload, "sparse", section);
    if (parsed.ok()) state.sparse = std::move(section);
  }
  if (!parsed.ok()) {
    return degrade(CheckpointRestoreOutcome::kCorrupt, parsed.ToString());
  }

  outcome_ = CheckpointRestoreOutcome::kRestored;
  restored_epoch_ = state.next_epoch;
  RestoreCounter("restored").Increment();
  return state;
}

Status TrainCheckpointer::Save(const CheckpointState& state) {
  std::ostringstream out;
  out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, kVersion));
  uint64_t fingerprint = options_.fingerprint;
  if (failpoint::Fire("checkpoint.stale_config")) fingerprint ^= 1;
  KELPIE_RETURN_IF_ERROR(WriteU64(out, fingerprint));
  KELPIE_RETURN_IF_ERROR(WriteU64(out, kSectionCount));
  std::string section;
  KELPIE_RETURN_IF_ERROR(SerializeStateSection(state, section));
  KELPIE_RETURN_IF_ERROR(WriteSection(out, "state", section));
  KELPIE_RETURN_IF_ERROR(SerializeRngSection(state.rng, section));
  KELPIE_RETURN_IF_ERROR(WriteSection(out, "rng", section));
  KELPIE_RETURN_IF_ERROR(SerializeCountersSection(state.counters, section));
  KELPIE_RETURN_IF_ERROR(WriteSection(out, "counters", section));
  const size_t params_start = static_cast<size_t>(out.tellp());
  KELPIE_RETURN_IF_ERROR(SerializeParamsSection(state.params, section));
  KELPIE_RETURN_IF_ERROR(WriteSection(out, "params", section));
  KELPIE_RETURN_IF_ERROR(WriteSection(out, "sparse", state.sparse));
  std::string image = std::move(out).str();

  if (failpoint::Fire("checkpoint.bit_flip")) {
    // Flip one byte inside the params section: framing survives, the
    // section CRC must catch it.
    const size_t off = params_start + (image.size() - params_start) / 2;
    image[off] = static_cast<char>(image[off] ^ 0x10);
  }
  if (failpoint::Fire("checkpoint.partial_write")) {
    // A crash mid-serialization: only a prefix (torn inside a section)
    // reaches the file.
    image.resize(image.size() * 3 / 5);
  }

  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint directory " +
                           options_.directory + ": " + ec.message());
  }
  KELPIE_RETURN_IF_ERROR(WriteFileAtomic(FilePath(), image));
  metrics::Registry::Global()
      .GetCounter("kelpie_checkpoint_saves_total", {},
                  metrics::Determinism::kDeterministic,
                  "Training checkpoints written.")
      .Increment();
  return Status::Ok();
}

}  // namespace kelpie
