#include "ml/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace kelpie {

void RowAdagrad::Step(Matrix& params, size_t row,
                      std::span<const float> grad) {
  StepSpan(params.Row(row), row, grad);
}

void RowAdagrad::StepSpan(std::span<float> params, size_t row,
                          std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  std::span<float> acc = accum_.Row(row);
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < params.size(); ++i) {
    acc[i] += grad[i] * grad[i];
    params[i] -= lr * grad[i] / (std::sqrt(acc[i]) + epsilon_);
  }
}

void DenseAdam::Step(Matrix& params, std::span<const float> grad) {
  StepSpan(params.Data(), grad);
}

void DenseAdam::StepSpan(std::span<float> params, std::span<const float> grad) {
  KELPIE_DCHECK(params.size() == grad.size());
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  std::span<float> p = params;
  std::span<float> m = m_.Data();
  std::span<float> v = v_.Data();
  const float lr = learning_rate_ * lr_scale_;
  for (size_t i = 0; i < p.size(); ++i) {
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad[i];
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad[i] * grad[i];
    float m_hat = static_cast<float>(m[i] / bias1);
    float v_hat = static_cast<float>(v[i] / bias2);
    p[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

void SgdStep(std::span<float> params, std::span<const float> grad,
             float learning_rate) {
  KELPIE_DCHECK(params.size() == grad.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i] -= learning_rate * grad[i];
  }
}

}  // namespace kelpie
